//! Offline stand-in for the `rayon` API subset this workspace uses:
//! `(range | vec).into_par_iter().map(..).collect()`, `map_init` for
//! per-thread scratch state, and [`current_num_threads`].
//!
//! Execution model: the source is materialised, then a scoped worker per
//! available core self-schedules items off a shared atomic counter —
//! dynamic (work-stealing-style) load balancing without `unsafe`. Items
//! are handed out one at a time, so a slow item never blocks the others;
//! results are reassembled in input order, which makes every parallel run
//! **bit-identical** to the serial one (the distance-matrix tests assert
//! exactly that).

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel call will use: the
/// `RAYON_NUM_THREADS` environment variable when set to a positive
/// integer (the knob real rayon honours, used by CI to exercise the
/// parallel paths both degenerate and fanned out), otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(raw) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The workspace's `use rayon::prelude::*` surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelIterator};
}

/// Marker trait so adapters share `collect` machinery.
pub trait ParallelIterator {}

/// Conversion into a (materialised) parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts `self` into a [`ParIter`].
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A materialised parallel iterator.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {}

impl<T: Send> ParIter<T> {
    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> ParMap<T, R, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Parallel map with per-worker scratch state: `init` runs once per
    /// worker thread, and the scratch is reused across all items that
    /// worker processes (rayon's `map_init`).
    pub fn map_init<S, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<T, S, R, INIT, F>
    where
        R: Send,
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, T) -> R + Sync,
    {
        ParMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

/// Pending parallel map.
pub struct ParMap<T: Send, R: Send, F: Fn(T) -> R + Sync> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParallelIterator for ParMap<T, R, F> {}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, R, F> {
    /// Executes the map and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let ParMap { items, f } = self;
        execute(items, || (), move |_: &mut (), item| f(item))
            .into_iter()
            .collect()
    }
}

/// Pending parallel map with per-worker scratch.
pub struct ParMapInit<T, S, R, INIT, F>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    items: Vec<T>,
    init: INIT,
    f: F,
}

impl<T, S, R, INIT, F> ParallelIterator for ParMapInit<T, S, R, INIT, F>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
}

impl<T, S, R, INIT, F> ParMapInit<T, S, R, INIT, F>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    /// Executes the map and collects results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let ParMapInit { items, init, f } = self;
        execute(items, init, f).into_iter().collect()
    }
}

/// Core executor: hands items to workers through an atomic cursor and
/// reassembles results in input order.
fn execute<T, S, R, INIT, F>(items: Vec<T>, init: INIT, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> R + Sync,
{
    let len = items.len();
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        // serial fast path (also the 1-core fallback)
        let mut scratch = init();
        return items
            .into_iter()
            .map(|item| f(&mut scratch, item))
            .collect();
    }

    // One-shot item slots: each worker takes ownership of item i exactly
    // once. Mutex-per-slot keeps the executor safe-Rust; the per-item cost
    // is an uncontended lock, negligible at the row/pair granularity this
    // workspace parallelises at.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);

    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut scratch = init();
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                        .expect("slot taken once");
                    local.push((i, f(&mut scratch, item)));
                }
                local
            }));
        }
        for handle in handles {
            tagged.extend(handle.join().expect("worker panicked"));
        }
    });

    tagged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), len);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_source_and_non_copy_items() {
        let items: Vec<String> = (0..64).map(|i| format!("s{i}")).collect();
        let out: Vec<usize> = items.clone().into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out, items.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_reuses_scratch_per_worker() {
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let out: Vec<usize> = (0..256usize)
            .into_par_iter()
            .map_init(
                || {
                    INITS.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |scratch, i| {
                    scratch.push(i);
                    scratch.len()
                },
            )
            .collect();
        assert_eq!(out.len(), 256);
        // scratch instances are bounded by the worker count, not the item
        // count — the whole point of map_init
        let inits = INITS.load(Ordering::Relaxed);
        assert!(
            inits <= super::current_num_threads(),
            "{inits} inits for {} workers",
            super::current_num_threads()
        );
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let f = |i: usize| (i as f64 * 0.1).sin() + (i as f64).sqrt();
        let serial: Vec<f64> = (0..500).map(f).collect();
        let parallel: Vec<f64> = (0..500usize).into_par_iter().map(f).collect();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let out: Vec<usize> = (5..6usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(out, vec![15]);
    }
}
