//! Offline stand-in for `parking_lot`: thin wrappers over `std::sync`
//! locks with parking_lot's non-poisoning API (`lock()`/`read()`/`write()`
//! return guards directly). Poisoning is converted into the inner value —
//! a panic while holding a lock in this workspace is already fatal to the
//! test run, so recovering the data is the behaviour parking_lot users
//! expect.

#![forbid(unsafe_code)]

use std::sync;

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquires the lock.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
