//! Derive macros for the offline `serde` shim.
//!
//! Hand-parses the item's token stream (no `syn`/`quote` available in this
//! environment) and emits `Serialize`/`Deserialize` impls that go through
//! the shim's `Value` tree. Supported shapes — which cover every type this
//! workspace derives on:
//!
//! * structs with named fields;
//! * enums whose variants are unit or have named fields (externally tagged
//!   on the wire, like real serde: `"Variant"` / `{"Variant": {...}}`).
//!
//! Anything else (generics, tuple structs/variants) produces a compile
//! error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips `#[...]` attribute groups (including doc comments) starting at
/// `i`; returns the next index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the named fields inside a brace group: returns the field names,
/// skipping types (tracking `<...>` depth so `Map<K, V>` commas don't
/// split fields).
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after `{name}`, found `{other}`"),
        }
        // consume the type: until a comma at angle depth 0
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Parses the variants inside an enum's brace group.
fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = Some(parse_named_fields(g));
                    i += 1;
                }
                Delimiter::Parenthesis => panic!(
                    "serde shim derive: tuple variant `{name}` is not supported (use named fields)"
                ),
                _ => {}
            }
        }
        // skip to past the next comma (also skips `= discriminant`)
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            panic!("serde shim derive: unit struct `{name}` is not supported")
        }
        other => panic!("serde shim derive: expected `{{...}}` body for `{name}`, found {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

/// Derives the shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_json(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
                 }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vname = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\
                         ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "fields.push((::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_json({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Object(fields))])\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n\
                 }}\n}}\n"
            )
        }
    };
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::from_json(::serde::obj_get(v, \"{f}\")?)?,\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if v.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::DeError::expected(\"object\", v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                 }}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_none()).collect();
            let tagged: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_some()).collect();
            let mut body = String::new();
            if !unit.is_empty() {
                let mut arms = String::new();
                for v in &unit {
                    let vname = &v.name;
                    arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                body.push_str(&format!(
                    "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                     return match s {{\n{arms}\
                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{other}}`\"))),\n\
                     }};\n}}\n"
                ));
            }
            if !tagged.is_empty() {
                let mut arms = String::new();
                for v in &tagged {
                    let vname = &v.name;
                    let mut inits = String::new();
                    for f in v.fields.as_ref().expect("tagged variant has fields") {
                        inits.push_str(&format!(
                            "{f}: ::serde::Deserialize::from_json(\
                             ::serde::obj_get(inner, \"{f}\")?)?,\n"
                        ));
                    }
                    arms.push_str(&format!(
                        "\"{vname}\" => return ::std::result::Result::Ok(\
                         {name}::{vname} {{\n{inits}}}),\n"
                    ));
                }
                body.push_str(&format!(
                    "if let ::std::option::Option::Some(obj) = v.as_object() {{\n\
                     if obj.len() == 1 {{\n\
                     let (tag, inner) = &obj[0];\n\
                     match tag.as_str() {{\n{arms}\
                     other => return ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{other}}`\"))),\n\
                     }}\n}}\n}}\n"
                ));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\
                 ::std::result::Result::Err(::serde::DeError::expected(\"enum variant\", v))\n\
                 }}\n}}\n"
            )
        }
    };
    out.parse().expect("generated Deserialize impl parses")
}
