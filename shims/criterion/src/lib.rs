//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`/`bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! with a simple adaptive timer: a warm-up estimates the per-iteration
//! cost, the measurement window is sized from it, and mean/min
//! nanoseconds per iteration are reported.
//!
//! Results print as one line per benchmark and, when
//! `CRITERION_OUTPUT_JSON` names a file, are also appended there as a
//! JSON array — that is how `BENCH_baseline.json` is produced.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

use serde::Serialize;

/// Target wall-clock length of one measurement window.
fn measure_budget() -> Duration {
    match std::env::var("CRITERION_MEASURE_MS") {
        Ok(ms) => Duration::from_millis(ms.parse().unwrap_or(200)),
        Err(_) => Duration::from_millis(200),
    }
}

/// One benchmark's aggregated measurement.
#[derive(Debug, Clone, Serialize)]
pub struct BenchRecord {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Iterations in the measurement window.
    pub iterations: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest single batch's nanoseconds per iteration.
    pub min_ns: f64,
}

static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self(parameter.to_string())
    }
}

/// Passed to the closure under test; [`Bencher::iter`] runs the timing.
pub struct Bencher {
    record: Option<(u64, f64, f64)>,
}

impl Bencher {
    /// Times `f`, adapting the iteration count to the measurement budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warm-up + cost estimate
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed();
        let budget = measure_budget();
        let per_iter = first.max(Duration::from_nanos(1));
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

        // measure in a few batches so `min` smooths scheduler noise
        let batches = if iters >= 4 { 4 } else { 1 };
        let per_batch = (iters / batches).max(1);
        let mut total = Duration::ZERO;
        let mut min_batch_ns = f64::INFINITY;
        let mut counted = 0u64;
        for _ in 0..batches {
            let t = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            total += elapsed;
            counted += per_batch;
            min_batch_ns = min_batch_ns.min(elapsed.as_nanos() as f64 / per_batch as f64);
        }
        let mean_ns = total.as_nanos() as f64 / counted as f64;
        self.record = Some((counted, mean_ns, min_batch_ns));
    }
}

fn run_one(id: String, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { record: None };
    f(&mut bencher);
    let (iterations, mean_ns, min_ns) = bencher.record.unwrap_or((0, 0.0, 0.0));
    println!(
        "bench {id:<50} {:>12.1} ns/iter (min {:>12.1}, {} iters)",
        mean_ns, min_ns, iterations
    );
    RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(BenchRecord {
            id,
            iterations,
            mean_ns,
            min_ns,
        });
}

/// Benchmark driver (the `c` in `fn bench(c: &mut Criterion)`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _c: self,
        }
    }
}

/// A group of related benchmarks (`group/...` ids).
pub struct BenchmarkGroup<'a> {
    name: String,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(format!("{}/{name}", self.name), f);
        self
    }

    /// Ends the group (kept for API compatibility; measurement is eager).
    pub fn finish(self) {}
}

/// Dumps accumulated results; called by `criterion_main!` after all groups
/// ran. Honours `CRITERION_OUTPUT_JSON`.
pub fn finalize() {
    let results = RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") {
        let json = serde_json::to_string_pretty(&*results).expect("bench records serialise");
        std::fs::write(&path, json).expect("benchmark output file must be writable");
        eprintln!("[criterion-shim] wrote {} records to {path}", results.len());
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_times() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        let results = RESULTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let r = results.iter().find(|r| r.id == "spin").expect("recorded");
        assert!(r.mean_ns > 0.0);
        assert!(r.iterations > 0);
        assert!(r.min_ns <= r.mean_ns * 1.5);
    }

    #[test]
    fn ids_compose() {
        assert_eq!(BenchmarkId::new("f", 32).0, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
