//! Offline stand-in for `serde_json`: JSON text ⇄ the serde shim's
//! [`Value`] tree.
//!
//! Covers the workspace's usage: `to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, `from_value`, and a simplified `json!` macro
//! (object/array literals whose values are expressions). Floats are
//! written with Rust's shortest round-trippable formatting, so
//! `to_string` → `from_str` reproduces `f64` bits exactly — tests rely on
//! that.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

pub use serde::{DeError as Error, Number, Value};

/// `Result` alias matching real serde_json's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialises any shim-`Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_json(&value)
}

/// Serialises to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), None, 0);
    Ok(out)
}

/// Serialises to pretty-printed JSON text (two-space indent, like real
/// serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::from_json(&value)
}

// ------------------------------------------------------------------ writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, level, ('[', ']'), write_value),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            indent,
            level,
            ('{', '}'),
            |o, (k, val), ind, lvl| {
                write_string(o, k);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                write_value(o, val, ind, lvl);
            },
        ),
    }
}

fn write_seq<I, T>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) where
    I: ExactSizeIterator<Item = T>,
{
    out.push(brackets.0);
    let n = items.len();
    if n == 0 {
        out.push(brackets.1);
        return;
    }
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(width * (level + 1)) {
                out.push(' ');
            }
        }
        write_item(out, item, indent, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) => {
            if !v.is_finite() {
                // real serde_json writes null for non-finite floats
                out.push_str("null");
            } else if v == v.trunc() && v.abs() < 1e15 {
                // keep integral floats recognisable as floats
                let _ = write!(out, "{v:.1}");
            } else {
                // Rust's shortest round-trippable representation
                let _ = write!(out, "{v}");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // surrogate pairs are not produced by this shim's
                            // writer; accept BMP scalars only
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u scalar".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // re-decode UTF-8 from the byte stream
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Builds a [`Value`] in place. Simplified relative to real serde_json:
/// object keys must be string literals, and nested values are arbitrary
/// expressions (serialised via [`to_value`]); use nested `json!` calls
/// explicitly for literal sub-objects.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$value)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "-7", "1.5"] {
            let v = parse(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            let v2 = parse(&out).unwrap();
            assert_eq!(v, v2, "{text}");
        }
    }

    #[test]
    fn float_bits_survive_text_round_trip() {
        for &f in &[
            0.1,
            std::f64::consts::PI,
            1.0 / 3.0,
            -2.2250738585072014e-308,
            1e300,
            123_456_789.123_456_78,
        ] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} via {s}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1F600}é";
        let text = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, 2.5, null], "b": {"c": "x"}}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"n": 2usize, "data": vec![1.0f64, 2.0]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back = parse(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        let arr = json!([1usize, 2usize]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
        let n = 3usize;
        let obj = json!({"n": n, "name": "x"});
        assert_eq!(obj.get("n").unwrap(), &Value::Number(Number::U(3)));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
