//! Offline stand-in for the `serde` facade.
//!
//! The build environment of this repository has no access to a crate
//! registry, so the workspace vendors a minimal serialisation framework
//! under the familiar package names. The surface mirrors what the sDTW
//! crates actually use: `#[derive(Serialize, Deserialize)]` on structs and
//! enums with named/unit variants, and JSON round-trips via the sibling
//! `serde_json` shim.
//!
//! Unlike real serde there is no zero-copy or format-generic layer: both
//! traits go through the in-memory [`Value`] tree. That keeps the derive
//! macros (hand-rolled, no `syn`/`quote`) small while preserving the JSON
//! wire format real serde would produce for the same types (externally
//! tagged enums, `Duration` as `{secs, nanos}`, `Option` as value-or-null).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// JSON number: integers are kept exact, everything else is an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer payload.
    U(u64),
    /// Negative integer payload.
    I(i64),
    /// Floating-point payload.
    F(f64),
}

impl Number {
    /// Lossy view as `f64` (exact for integers below 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// Exact view as `u64` when representable.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// Exact view as `i64` when representable.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

/// In-memory JSON document tree (the shim's single data model).
///
/// Objects preserve insertion order, matching what serde_json's
/// `preserve_order` feature would do; key lookup is linear, which is fine
/// for the struct-sized objects this workspace serialises.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object (ordered key/value pairs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object view, if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Array view, if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String view, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// One-word description used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialisation error (a plain message, like `serde_json::Error`'s
/// display form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }

    /// Type-mismatch helper used by the generated impls.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialisation into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Value;
}

/// Deserialisation from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_json(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a required object member (used by derived impls).
pub fn obj_get<'v>(v: &'v Value, key: &str) -> Result<&'v Value, DeError> {
    v.get(key)
        .ok_or_else(|| DeError(format!("missing field `{key}`")))
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                    _ => Err(DeError::expected("number", v)),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            // serde_json emits null for non-finite floats; accept it back
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

// ---------------------------------------------------------------- strings

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(inner) => inner.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        T::from_json(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != 2 {
            return Err(DeError(format!(
                "expected 2-tuple, got {} items",
                items.len()
            )));
        }
        Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
        if items.len() != 3 {
            return Err(DeError(format!(
                "expected 3-tuple, got {} items",
                items.len()
            )));
        }
        Ok((
            A::from_json(&items[0])?,
            B::from_json(&items[1])?,
            C::from_json(&items[2])?,
        ))
    }
}

/// Map keys must render as JSON object keys (strings on the wire).
pub trait MapKey: Sized {
    /// Key to string.
    fn to_key(&self) -> String;
    /// Key from string.
    fn from_key(key: &str) -> Result<Self, DeError>;
}

macro_rules! impl_map_key_parse {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse()
                    .map_err(|_| DeError(format!("bad map key `{key}`")))
            }
        }
    )*};
}

impl_map_key_parse!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, String);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_json(val)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json(&self) -> Value {
        // deterministic output: sort keys on the wire
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_json()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        fields
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_json(val)?)))
            .collect()
    }
}

// --------------------------------------------------------------- std types

impl Serialize for Duration {
    fn to_json(&self) -> Value {
        // real serde's wire format for Duration
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_json()),
            ("nanos".to_string(), self.subsec_nanos().to_json()),
        ])
    }
}

impl Deserialize for Duration {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_json(obj_get(v, "secs")?)?;
        let nanos = u32::from_json(obj_get(v, "nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_json(&7u32.to_json()).unwrap(), 7);
        assert_eq!(i64::from_json(&(-3i64).to_json()).unwrap(), -3);
        assert_eq!(f64::from_json(&1.5f64.to_json()).unwrap(), 1.5);
        assert!(bool::from_json(&true.to_json()).unwrap());
        assert_eq!(
            String::from_json(&"hi".to_string().to_json()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_vectors_tuples() {
        let v: Option<u32> = None;
        assert_eq!(v.to_json(), Value::Null);
        assert_eq!(Option::<u32>::from_json(&Value::Null).unwrap(), None);
        let xs = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_json(&xs.to_json()).unwrap(), xs);
        let t = (4usize, 5usize);
        assert_eq!(<(usize, usize)>::from_json(&t.to_json()).unwrap(), t);
    }

    #[test]
    fn maps_and_durations() {
        let mut m = BTreeMap::new();
        m.insert(5usize, 0.25f64);
        let back = BTreeMap::<usize, f64>::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        let d = Duration::new(3, 450);
        assert_eq!(Duration::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn errors_name_the_mismatch() {
        let e = u32::from_json(&Value::String("x".into())).unwrap_err();
        assert!(e.to_string().contains("number"), "{e}");
        let e = obj_get(&Value::Object(vec![]), "missing").unwrap_err();
        assert!(e.to_string().contains("missing"), "{e}");
    }
}
