//! Band visualiser: renders the search bands of the four constraint
//! families as ASCII art — the shapes of the paper's Figure 10 — for a
//! pair of series with a strong time shift.
//!
//! Run with `cargo run --release --example band_visualizer`.

use sdtw_suite::prelude::*;
use sdtw_suite::salient::feature::extract_features;

fn main() {
    // A pattern whose second instance is strongly left-compressed: the
    // true warp path dives below the diagonal.
    let proto = TimeSeries::new(
        (0..160)
            .map(|i| {
                let a = (i as f64 - 40.0) / 7.0;
                let b = (i as f64 - 115.0) / 11.0;
                (-a * a / 2.0).exp() + 0.7 * (-b * b / 2.0).exp()
            })
            .collect(),
    )
    .expect("finite samples");
    let warp = WarpMap::from_anchors(&[(0.5, 0.33)]).expect("valid anchors");
    let x = proto.clone();
    let y = warp.apply(&proto, 160).expect("warp applies");

    let salient = SalientConfig::default();
    let fx = extract_features(&x, &salient).expect("extraction succeeds");
    let fy = extract_features(&y, &salient).expect("extraction succeeds");

    for policy in [
        ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.12 },
        ConstraintPolicy::adaptive_core_fixed_width(0.12),
        ConstraintPolicy::fixed_core_adaptive_width(),
        ConstraintPolicy::adaptive_core_adaptive_width(),
        ConstraintPolicy::Itakura { slope: 2.0 },
    ] {
        let engine = SDtw::new(SDtwConfig {
            policy,
            ..SDtwConfig::default()
        })
        .expect("valid config");
        let (band, _) = engine.plan_band(&fx, &fy, x.len(), y.len());
        println!(
            "=== {} ===   area {} ({:.1}% of grid)",
            policy.label(),
            band.area(),
            band.coverage() * 100.0
        );
        println!("{}", band.render_ascii());
    }
    println!("(x runs left-to-right, y bottom-to-top, as in the paper's Figure 10;");
    println!(" the adaptive-core bands bend below the diagonal, following the");
    println!(" compressed first half of y.)");
}
