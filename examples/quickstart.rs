//! Quickstart: compute the full DTW and the sDTW (adaptive core &
//! adaptive width) distance between two warped instances of one pattern,
//! and compare cost and accuracy.
//!
//! Run with `cargo run --release --example quickstart`.

use sdtw_suite::prelude::*;

fn main() {
    // A pattern with two salient features...
    let proto = TimeSeries::new(
        (0..240)
            .map(|i| {
                let a = (i as f64 - 60.0) / 9.0;
                let b = (i as f64 - 170.0) / 15.0;
                (-a * a / 2.0).exp() + 0.6 * (-b * b / 2.0).exp()
            })
            .collect(),
    )
    .expect("finite samples");

    // ...and a time-warped sibling: the first half is compressed, so the
    // features drift far from the diagonal.
    let warp = WarpMap::from_anchors(&[(0.5, 0.36)]).expect("valid anchors");
    let x = proto.clone();
    let y = warp.apply(&proto, 240).expect("warp applies");

    // Reference: optimal DTW over the full grid.
    let full = dtw_full(&x, &y, &DtwOptions::default());
    println!(
        "full DTW        distance = {:10.4}   cells = {}",
        full.distance, full.cells_filled
    );

    // sDTW with the paper's best-performing policy (ac2,aw).
    let engine = SDtw::new(SDtwConfig {
        policy: ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
        ..SDtwConfig::default()
    })
    .expect("valid config");
    let out = engine
        .query(&x, &y)
        .run()
        .expect("extraction succeeds")
        .expect("no cutoff configured");
    println!(
        "sDTW (ac2,aw)   distance = {:10.4}   cells = {}   band coverage = {:.1}%",
        out.distance,
        out.cells_filled,
        out.band_coverage * 100.0
    );
    println!(
        "matching: {} raw pairs -> {} consistent pairs ({} descriptor comparisons)",
        out.raw_pairs, out.consistent_pairs, out.descriptor_comparisons
    );

    // A Sakoe-Chiba band of the same area class for comparison.
    let sakoe = SDtw::new(SDtwConfig {
        policy: ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.10 },
        ..SDtwConfig::default()
    })
    .expect("valid config");
    let sc = sakoe
        .query(&x, &y)
        .run()
        .expect("no extraction needed")
        .expect("no cutoff configured");
    println!(
        "Sakoe 10%       distance = {:10.4}   cells = {}",
        sc.distance, sc.cells_filled
    );

    let err = |d: f64| (d - full.distance) / full.distance.max(1e-12) * 100.0;
    println!(
        "\nrelative error vs optimal: sDTW {:+.2}%  |  Sakoe {:+.2}%",
        err(out.distance),
        err(sc.distance)
    );
    println!(
        "work saved vs full grid:   sDTW {:.1}%  |  Sakoe {:.1}%",
        (1.0 - out.cells_filled as f64 / full.cells_filled as f64) * 100.0,
        (1.0 - sc.cells_filled as f64 / full.cells_filled as f64) * 100.0
    );
}
