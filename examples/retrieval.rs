//! Retrieval scenario (the paper's Figure 1 motivation): a corpus of
//! economic-index-style series where designated groups are pairwise
//! similar. We index salient features once, then compare top-k retrieval
//! under full DTW vs sDTW policies.
//!
//! Run with `cargo run --release --example retrieval`.

use sdtw_suite::datasets::econ;
use sdtw_suite::eval::{compute_matrix, retrieval::retrieval_accuracy};
use sdtw_suite::prelude::*;

fn main() {
    // 6 groups x 4 series, like Figure 1's A/B vs C/D pairs but larger.
    let corpus = econ::generate(2024, 6, 4).series;
    println!(
        "corpus: {} series of length {}",
        corpus.len(),
        corpus[0].len()
    );

    // one-time feature indexing (the paper's §3.4 cost model)
    let store = FeatureStore::new(SalientConfig::default()).expect("valid config");
    let t0 = std::time::Instant::now();
    store.warm(&corpus).expect("extraction succeeds");
    println!(
        "indexed salient features for {} series in {:?}\n",
        store.cached_count(),
        t0.elapsed()
    );

    let reference_engine = SDtw::new(SDtwConfig {
        policy: ConstraintPolicy::FullGrid,
        ..SDtwConfig::default()
    })
    .expect("valid config");
    let reference =
        compute_matrix(&corpus, &reference_engine, &store, true).expect("matrix computes");

    println!(
        "{:<12} {:>7} {:>7} {:>12} {:>12}",
        "policy", "acc@3", "acc@5", "cells", "vs full"
    );
    for policy in [
        ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.06 },
        ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.20 },
        ConstraintPolicy::fixed_core_adaptive_width(),
        ConstraintPolicy::adaptive_core_fixed_width(0.06),
        ConstraintPolicy::adaptive_core_adaptive_width(),
        ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
    ] {
        let engine = SDtw::new(SDtwConfig {
            policy,
            ..SDtwConfig::default()
        })
        .expect("valid config");
        let matrix = compute_matrix(&corpus, &engine, &store, true).expect("matrix computes");
        let a3 = retrieval_accuracy(&reference, &matrix, 3);
        let a5 = retrieval_accuracy(&reference, &matrix, 5);
        println!(
            "{:<12} {:>7.3} {:>7.3} {:>12} {:>11.1}%",
            policy.label(),
            a3,
            a5,
            matrix.stats.cells_filled,
            matrix.stats.cells_filled as f64 / reference.stats.cells_filled as f64 * 100.0
        );
    }

    // And the headline query: nearest neighbour of series 0 should be a
    // series of the same group under every decent policy.
    let nn = reference.top_k(0, 1)[0];
    println!(
        "\nnearest neighbour of series 0 (group {}) under full DTW: series {} (group {})",
        corpus[0].label().unwrap(),
        nn,
        corpus[nn].label().unwrap()
    );
}
