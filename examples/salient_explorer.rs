//! Salient feature explorer: extracts features from a warped pair, shows
//! their positions/scales/scopes, the matched pairs before and after
//! inconsistency pruning, and the resulting interval partition — the
//! content of the paper's Figures 4, 7 and 9.
//!
//! Run with `cargo run --release --example salient_explorer`.

use sdtw_suite::align::{match_features, MatchConfig};
use sdtw_suite::prelude::*;
use sdtw_suite::salient::feature::extract_features;

fn sparkline(ts: &TimeSeries, width: usize) -> String {
    const GLYPHS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    let (min, max) = (ts.min(), ts.max());
    let range = (max - min).max(1e-9);
    let n = ts.len();
    (0..width)
        .map(|c| {
            let i = c * (n - 1) / (width - 1).max(1);
            let level = ((ts.at(i) - min) / range * 7.0).round() as usize;
            GLYPHS[level.min(7)]
        })
        .collect()
}

fn main() {
    let proto = TimeSeries::new(
        (0..200)
            .map(|i| {
                let a = (i as f64 - 50.0) / 7.0;
                let b = (i as f64 - 140.0) / 12.0;
                (-a * a / 2.0).exp() + 0.7 * (-b * b / 2.0).exp()
            })
            .collect(),
    )
    .expect("finite samples");
    let warp = WarpMap::from_anchors(&[(0.5, 0.4)]).expect("valid anchors");
    let x = proto.clone();
    let y = warp.apply(&proto, 220).expect("warp applies");

    println!("series X ({} samples): {}", x.len(), sparkline(&x, 72));
    println!("series Y ({} samples): {}", y.len(), sparkline(&y, 72));

    let cfg = SalientConfig::default();
    let fx = extract_features(&x, &cfg).expect("extraction succeeds");
    let fy = extract_features(&y, &cfg).expect("extraction succeeds");
    println!("\nsalient features: {} on X, {} on Y", fx.len(), fy.len());
    println!("\nstrongest features of X (position, sigma, scope, polarity):");
    let mut strongest: Vec<&_> = fx.iter().collect();
    strongest.sort_by(|a, b| {
        b.keypoint
            .response
            .abs()
            .partial_cmp(&a.keypoint.response.abs())
            .expect("finite")
    });
    for f in strongest.iter().take(6) {
        println!(
            "  pos {:>4}  sigma {:>6.2}  scope [{:>3}, {:>3}]  {:?}",
            f.keypoint.position, f.keypoint.sigma, f.scope_start, f.scope_end, f.keypoint.polarity
        );
    }

    let result = match_features(&fx, &fy, x.len(), y.len(), &MatchConfig::default());
    println!(
        "\nmatching: {} raw pairs -> {} after inconsistency pruning",
        result.raw_pairs.len(),
        result.consistent_pairs.len()
    );
    println!("\nconsistent pairs (X-scope -> Y-scope, score):");
    for p in result.consistent_pairs.iter().take(10) {
        println!(
            "  [{:>3},{:>3}] -> [{:>3},{:>3}]   mu_comb {:.3}",
            p.scope1.0, p.scope1.1, p.scope2.0, p.scope2.1, p.combined_score
        );
    }

    let part = &result.partition;
    println!(
        "\ninterval partition ({} intervals):",
        part.interval_count()
    );
    for k in 0..part.interval_count() {
        let (sx, ex) = part.bounds_x(k);
        let (sy, ey) = part.bounds_y(k);
        println!(
            "  {}  X[{:>3},{:>3}] <-> Y[{:>3},{:>3}]",
            (b'A' + (k % 26) as u8) as char,
            sx,
            ex,
            sy,
            ey
        );
    }
    println!("\n(these corresponding intervals drive the adaptive core/width");
    println!(" constraints of the sDTW band builders.)");
}
