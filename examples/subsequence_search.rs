//! Subsequence search: find where a short pattern occurs inside a long
//! series — batch, then live from a sample-by-sample stream.
//!
//! Run with `cargo run --release --example subsequence_search`.

use sdtw_suite::prelude::*;

fn main() {
    // The pattern to look for: a two-bump shape, 64 samples.
    let query = TimeSeries::new(
        (0..64)
            .map(|i| {
                let a = (i as f64 - 20.0) / 5.0;
                let b = (i as f64 - 45.0) / 8.0;
                (-a * a / 2.0).exp() + 0.7 * (-b * b / 2.0).exp()
            })
            .collect(),
    )
    .expect("finite samples");

    // A long, drifting recording with the pattern planted three times at
    // different gains and offsets — per-window z-normalisation makes the
    // matcher invariant to both.
    let mut hay = vec![0.0; 2400];
    for (start, gain, level) in [(300usize, 1.0, 0.0), (1100, 2.5, 4.0), (1900, 0.6, -2.0)] {
        for i in 0..64 {
            hay[start + i] += gain * query.at(i) + level;
        }
    }
    for (i, v) in hay.iter_mut().enumerate() {
        *v += 0.3 * (i as f64 / 180.0).sin() + 0.02 * (i as f64 / 3.0).cos();
    }
    let hay = TimeSeries::new(hay).expect("finite samples");

    // Batch search: prepare the query once, slide the cascade over every
    // window, keep the 3 best non-overlapping matches.
    let matcher =
        SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).expect("valid configuration");
    let result = matcher.find(&hay, 3).expect("search succeeds");
    println!("batch search over {} windows:", result.stats.windows);
    for m in &result.matches {
        println!("  offset {:>5}  distance {:.4}", m.offset, m.distance);
    }
    let c = &result.stats.cascade;
    println!(
        "cascade: {} visits -> kim {} / keogh {} / abandoned {} / dp {}  ({:.1}% pruned)",
        c.candidates,
        c.pruned_kim,
        c.pruned_keogh,
        c.abandoned,
        c.dp_completed,
        result.stats.prune_rate() * 100.0,
    );

    // Streaming: the same query, but samples arrive one at a time into a
    // query-sized ring buffer. Track the single best occurrence online.
    let mut monitor =
        StreamMonitor::new(matcher, 1, f64::INFINITY).expect("valid monitor parameters");
    let mut improvements = 0u32;
    for &v in hay.values() {
        if monitor.push(v).expect("push succeeds").is_some() {
            improvements += 1;
        }
    }
    let best = monitor.matches()[0];
    println!(
        "stream monitor: best match at offset {} (distance {:.4}) after {} candidate updates",
        best.offset, best.distance, improvements
    );
}
