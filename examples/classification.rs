//! Classification scenario: k-NN over a busy 50Words-style corpus, the
//! workload of the paper's Figure 16. Compares the label sets produced
//! under optimal DTW with those produced under constrained policies, and
//! reports the ground-truth accuracy of each.
//!
//! Run with `cargo run --release --example classification`.

use sdtw_suite::eval::classify::{classification_accuracy, knn_self_accuracy};
use sdtw_suite::eval::{compute_matrix, experiment::subsample};
use sdtw_suite::prelude::*;

fn main() {
    // Restrict to 10 of the 50 classes and take 5 members each: ground
    // truth needs several same-class neighbours per query, and the smaller
    // corpus keeps the demo quick (the full corpus is 450 series).
    let dataset = UcrAnalog::Words50.generate(7);
    let ten_classes = Dataset {
        name: dataset.name.clone(),
        series: dataset
            .series
            .iter()
            .filter(|s| s.label().unwrap_or(0) < 10)
            .cloned()
            .collect(),
    };
    let corpus = subsample(&ten_classes, 50);
    let labels: Vec<u32> = corpus.iter().map(|s| s.label().unwrap()).collect();
    println!(
        "corpus: {} series, {} classes, length {}",
        corpus.len(),
        ten_classes.class_count(),
        corpus[0].len()
    );

    let store = FeatureStore::new(SalientConfig::default()).expect("valid config");
    store.warm(&corpus).expect("extraction succeeds");

    let reference_engine = SDtw::new(SDtwConfig {
        policy: ConstraintPolicy::FullGrid,
        ..SDtwConfig::default()
    })
    .expect("valid config");
    let reference =
        compute_matrix(&corpus, &reference_engine, &store, true).expect("matrix computes");
    println!(
        "\nfull-DTW 1-NN ground-truth accuracy: {:.3}",
        knn_self_accuracy(&reference, &labels, 1)
    );

    println!(
        "\n{:<12} {:>8} {:>8} {:>10} {:>10}",
        "policy", "agree@5", "agree@10", "truth@1", "work"
    );
    for policy in [
        ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.06 },
        ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.20 },
        ConstraintPolicy::fixed_core_adaptive_width(),
        ConstraintPolicy::adaptive_core_fixed_width(0.10),
        ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
    ] {
        let engine = SDtw::new(SDtwConfig {
            policy,
            ..SDtwConfig::default()
        })
        .expect("valid config");
        let matrix = compute_matrix(&corpus, &engine, &store, true).expect("matrix computes");
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>10.3} {:>9.1}%",
            policy.label(),
            classification_accuracy(&reference, &matrix, &labels, 5),
            classification_accuracy(&reference, &matrix, &labels, 10),
            knn_self_accuracy(&matrix, &labels, 1),
            matrix.stats.cells_filled as f64 / reference.stats.cells_filled as f64 * 100.0,
        );
    }
    println!("\n(agree@k = Jaccard overlap with the full-DTW label sets; truth@1 =");
    println!(" fraction of queries whose 1-NN label set contains the true class)");
}
