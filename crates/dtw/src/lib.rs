//! # sdtw-dtw — DTW engine substrate
//!
//! The dynamic-time-warping machinery everything else drives (paper §2.1).
//! Design pivot: **every** grid-pruning policy — the full grid, the classic
//! Sakoe-Chiba band (*fixed core & fixed width*), the Itakura parallelogram,
//! and all of sDTW's locally relevant constraints — compiles down to a
//! [`band::Band`]: one allowed column interval per row of the `N × M` grid.
//! A single banded dynamic-programming kernel ([`engine`]) executes any
//! band, so accuracy/cost comparisons across policies measure the
//! constraint, never the implementation.
//!
//! Modules:
//!
//! * [`band`] — the band type, area accounting, union (for the symmetric
//!   variant of sDTW), and the **sanitiser** that makes an arbitrary raw
//!   band feasible for the DP recurrence (bridging the gaps the paper
//!   describes in §3.3.2) while only ever *adding* cells;
//! * [`engine`] — banded DP fill (`O(band area)` time and memory) and warp
//!   path traceback;
//! * [`path`] — warp-path representation and validity checking (the
//!   §2.1.1 conditions);
//! * [`sakoe`] — Sakoe-Chiba fixed core & fixed width bands;
//! * [`itakura`] — Itakura parallelogram (slope-constrained) bands;
//! * [`lower_bound`] — the LB_Kim constant-time bound (endpoint/extremum
//!   summaries) and the LB_Keogh envelope bound (extensions; they power
//!   the `sdtw-index` retrieval cascade and the pruning ablations);
//! * [`cascade`] — the composable pruning pipeline built from those
//!   bounds: the [`cascade::PruneStage`] abstraction, the
//!   [`cascade::Cascade`] runner, the coarse PAA pre-filter
//!   ([`cascade::CoarseEnvelope`]) and the shared per-stage
//!   [`cascade::CascadeStats`] accounting that `sdtw-index` (per corpus
//!   candidate) and `sdtw-stream` (per window) both execute;
//! * [`kernel`] — the [`kernel::DtwKernel`] trait (cost accumulation,
//!   step weighting, normalisation) with the standard and amerced (ADTW)
//!   kernels, plus the serialisable [`kernel::KernelChoice`] selector;
//! * [`multires`] — coarse-to-fine (FastDTW-style) corridor DTW, the
//!   reduced-representation family the paper calls orthogonal to sDTW;
//! * [`simd`] — the portable explicit-SIMD lane layer: the aligned
//!   [`simd::F64Lanes`] vector type the wavefront fill and the batched
//!   bounds sweep with, and the [`simd::SimdMode`] selector
//!   (`SDTW_SIMD=scalar|lanes`, bit-identical by differential test).
//!
//! The execution surface is the unified [`engine::dtw_run`] /
//! [`engine::dtw_run_options`] pair; the historical `dtw_banded*` entry
//! points are `#[deprecated]` shims over it. (The former `search` module's
//! pruned 1-NN scan was superseded by the `sdtw-index` cascade and has
//! been removed; `sdtw_eval::compute_query_matrix` is the brute-force
//! oracle the test suites compare against.)
//!
//! # Example
//!
//! ```
//! use sdtw_tseries::TimeSeries;
//! use sdtw_dtw::engine::{dtw_full, dtw_run_options, DtwOptions, DtwScratch};
//! use sdtw_dtw::sakoe::sakoe_chiba_band;
//!
//! let x = TimeSeries::new(vec![0.0, 1.0, 2.0, 1.0, 0.0]).unwrap();
//! let y = TimeSeries::new(vec![0.0, 0.0, 1.0, 2.0, 1.0, 0.0]).unwrap();
//! let full = dtw_full(&x, &y, &DtwOptions::default());
//! let band = sakoe_chiba_band(x.len(), y.len(), 0.5);
//! let mut scratch = DtwScratch::new();
//! let banded = dtw_run_options(&x, &y, &band, &DtwOptions::default(), None, &mut scratch)
//!     .expect("no cutoff configured");
//! assert!(banded.distance >= full.distance); // constrained search can only do worse
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod band;
pub mod cascade;
pub mod engine;
pub mod itakura;
pub mod kernel;
pub mod lower_bound;
pub mod multires;
pub mod path;
pub mod sakoe;
pub mod simd;

pub use band::Band;
pub use cascade::{
    Cascade, CascadeScratch, CascadeStats, CoarseEnvelope, PruneStage, SampleInput, StageKind,
};
#[allow(deprecated)] // the legacy entry points stay reachable during migration
pub use engine::{
    dtw_banded, dtw_banded_early_abandon, dtw_banded_early_abandon_with_scratch,
    dtw_banded_with_scratch,
};
pub use engine::{
    dtw_full, dtw_run, dtw_run_options, dtw_run_options_values, dtw_run_options_values_pinned,
    dtw_run_options_values_with, dtw_run_values, dtw_run_values_pinned, dtw_run_values_with,
    DtwEngine, DtwOptions, DtwResult, DtwScratch, Normalization, StepPattern,
};
pub use kernel::{AmercedKernel, DtwKernel, KernelChoice, StandardKernel};
pub use lower_bound::{
    lb_keogh, lb_keogh_batch, lb_keogh_batch_windows, lb_keogh_batch_windows_with,
    lb_keogh_batch_with, lb_keogh_values, lb_kim, lb_kim_batch, lb_kim_batch_with, Envelope,
    SeriesSummary, LB_LANES,
};
pub use multires::{dtw_multires, dtw_multires_with_scratch, MultiresScratch};
pub use path::WarpPath;
pub use simd::{F64Lanes, LaneMask, SimdMode, LANE_WIDTH};
