//! # sdtw-dtw — DTW engine substrate
//!
//! The dynamic-time-warping machinery everything else drives (paper §2.1).
//! Design pivot: **every** grid-pruning policy — the full grid, the classic
//! Sakoe-Chiba band (*fixed core & fixed width*), the Itakura parallelogram,
//! and all of sDTW's locally relevant constraints — compiles down to a
//! [`band::Band`]: one allowed column interval per row of the `N × M` grid.
//! A single banded dynamic-programming kernel ([`engine`]) executes any
//! band, so accuracy/cost comparisons across policies measure the
//! constraint, never the implementation.
//!
//! Modules:
//!
//! * [`band`] — the band type, area accounting, union (for the symmetric
//!   variant of sDTW), and the **sanitiser** that makes an arbitrary raw
//!   band feasible for the DP recurrence (bridging the gaps the paper
//!   describes in §3.3.2) while only ever *adding* cells;
//! * [`engine`] — banded DP fill (`O(band area)` time and memory) and warp
//!   path traceback;
//! * [`path`] — warp-path representation and validity checking (the
//!   §2.1.1 conditions);
//! * [`sakoe`] — Sakoe-Chiba fixed core & fixed width bands;
//! * [`itakura`] — Itakura parallelogram (slope-constrained) bands;
//! * [`lower_bound`] — the LB_Kim constant-time bound (endpoint/extremum
//!   summaries) and the LB_Keogh envelope bound (extensions; they power
//!   the `sdtw-index` retrieval cascade and the pruning ablations);
//! * [`multires`] — coarse-to-fine (FastDTW-style) corridor DTW, the
//!   reduced-representation family the paper calls orthogonal to sDTW;
//! * [`search`] — pruned 1-NN search (LB_Keogh prefilter + early-abandoned
//!   banded DP). Deprecated in favour of the `sdtw-index` crate's cascade;
//!   kept as the exactness oracle in tests.
//!
//! # Example
//!
//! ```
//! use sdtw_tseries::TimeSeries;
//! use sdtw_dtw::engine::{dtw_full, dtw_banded, DtwOptions};
//! use sdtw_dtw::sakoe::sakoe_chiba_band;
//!
//! let x = TimeSeries::new(vec![0.0, 1.0, 2.0, 1.0, 0.0]).unwrap();
//! let y = TimeSeries::new(vec![0.0, 0.0, 1.0, 2.0, 1.0, 0.0]).unwrap();
//! let full = dtw_full(&x, &y, &DtwOptions::default());
//! let band = sakoe_chiba_band(x.len(), y.len(), 0.5);
//! let banded = dtw_banded(&x, &y, &band, &DtwOptions::default());
//! assert!(banded.distance >= full.distance); // constrained search can only do worse
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod band;
pub mod engine;
pub mod itakura;
pub mod lower_bound;
pub mod multires;
pub mod path;
pub mod sakoe;
pub mod search;

pub use band::Band;
pub use engine::{
    dtw_banded, dtw_banded_early_abandon, dtw_banded_early_abandon_with_scratch,
    dtw_banded_with_scratch, dtw_full, DtwOptions, DtwResult, DtwScratch,
};
pub use lower_bound::{lb_keogh, lb_kim, Envelope, SeriesSummary};
pub use path::WarpPath;
