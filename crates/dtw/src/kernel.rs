//! Pluggable DTW kernels: cost accumulation, step weighting, and
//! normalisation behind one trait.
//!
//! The banded DP engine ([`crate::engine`]) is generic over a
//! [`DtwKernel`], which decides what each local transition costs and how
//! the accumulated corner cost is turned into the reported distance. The
//! built-in kernels are
//!
//! * [`StandardKernel`] — the classic recurrence the paper uses, covering
//!   both Sakoe-Chiba step patterns ([`StepPattern::Symmetric1`] pays `d`
//!   on every transition, [`StepPattern::Symmetric2`] pays `2d` on the
//!   diagonal) and the optional `/(N+M)` length normalisation;
//! * [`AmercedKernel`] — ADTW (Herrmann & Webb, *Amercing: An intuitive
//!   and effective constraint for dynamic time warping*, 2021): every
//!   off-diagonal transition pays an **additive** warp penalty `ω` on top
//!   of the local cost, so warping is discouraged smoothly instead of
//!   being cut off by a band edge. `ω = 0` degenerates to symmetric1;
//!   `ω → ∞` approaches the (diagonal-only) Euclidean distance.
//!
//! Kernels are plugged in two ways: statically, by calling
//! [`crate::engine::dtw_run`] with any `impl DtwKernel` (zero dynamic
//! dispatch — the fill loop monomorphises per kernel); or through
//! configuration, via the serialisable [`KernelChoice`] selector carried
//! by [`crate::engine::DtwOptions`] and dispatched once per call by
//! [`crate::engine::dtw_run_options`].

use crate::engine::{Normalization, StepPattern};
use crate::simd::{lanes_eval, F64Lanes};
use sdtw_tseries::ElementMetric;
use serde::{Deserialize, Serialize};

/// The cost model of one DTW recurrence: how each parent transition is
/// charged and how the raw accumulated cost becomes the reported
/// distance.
///
/// # Contract
///
/// The engine relies on two properties, both documented per method:
///
/// * **Monotonicity** — every transition cost must be ≥ the parent value
///   (local costs and penalties are non-negative), so a completed row's
///   minimum is a lower bound on any path through it. Early abandoning
///   ([`crate::engine::dtw_run`] with a cutoff) is unsound otherwise.
/// * **Bound compatibility** — [`DtwKernel::lower_bounds_admissible`]
///   must return `true` only when the kernel's accumulated cost dominates
///   the plain symmetric1 accumulation on the same band, which is what
///   `LB_Kim`/`LB_Keogh` actually bound. Retrieval cascades consult this
///   before enabling lower-bound pruning.
/// * **Infinity propagation** — every transition must map a `+∞` parent
///   to `+∞` (any finite additive cost does this for free). Both fill
///   orders represent unreachable/out-of-band parents as `+∞`, and the
///   wavefront engine additionally drops transition arms whose parent
///   cell cannot exist (first row/column) on the strength of
///   `min(x, +∞) == x`; a kernel that collapsed infinities would break
///   the row/wavefront bit-identity the differential harness asserts.
/// * **Lane bit-identity** — the `*_lanes` methods must compute, in every
///   lane, the *bit-identical* result of the corresponding scalar method
///   on that lane's inputs. The defaults guarantee this by delegating
///   per-lane; an override may only reorder *across* lanes (which is what
///   makes it vectorisable), never alter the per-lane op sequence —
///   `SDTW_SIMD=lanes` vs `=scalar` bit-identity rests on it, and the
///   differential harness asserts it per kernel.
pub trait DtwKernel {
    /// Cost of the origin cell of a warp path (no parent).
    #[inline]
    fn start(&self, local: f64) -> f64 {
        local
    }

    /// Cost of arriving from the cell above (`(i-1, j)`).
    fn up(&self, parent: f64, local: f64) -> f64;

    /// Cost of arriving from the cell to the left (`(i, j-1)`).
    fn left(&self, parent: f64, local: f64) -> f64;

    /// Cost of arriving from the diagonal parent (`(i-1, j-1)`).
    fn diagonal(&self, parent: f64, local: f64) -> f64;

    /// Lanewise local cost: lane `l` must equal `metric.eval(x[l], y[l])`
    /// bitwise. The default delegates per lane; built-in kernels override
    /// with [`lanes_eval`] (same per-lane op sequence, vector shape).
    #[inline]
    fn local_lanes(&self, metric: ElementMetric, x: F64Lanes, y: F64Lanes) -> F64Lanes {
        F64Lanes::from_fn(|l| metric.eval(x.lane(l), y.lane(l)))
    }

    /// Lanewise [`DtwKernel::up`]: lane `l` must equal
    /// `self.up(parent[l], local[l])` bitwise.
    #[inline]
    fn up_lanes(&self, parent: F64Lanes, local: F64Lanes) -> F64Lanes {
        F64Lanes::from_fn(|l| self.up(parent.lane(l), local.lane(l)))
    }

    /// Lanewise [`DtwKernel::left`]: lane `l` must equal
    /// `self.left(parent[l], local[l])` bitwise.
    #[inline]
    fn left_lanes(&self, parent: F64Lanes, local: F64Lanes) -> F64Lanes {
        F64Lanes::from_fn(|l| self.left(parent.lane(l), local.lane(l)))
    }

    /// Lanewise [`DtwKernel::diagonal`]: lane `l` must equal
    /// `self.diagonal(parent[l], local[l])` bitwise.
    #[inline]
    fn diagonal_lanes(&self, parent: F64Lanes, local: F64Lanes) -> F64Lanes {
        F64Lanes::from_fn(|l| self.diagonal(parent.lane(l), local.lane(l)))
    }

    /// Converts a raw accumulated cost into reported-distance units.
    /// Must be monotone non-decreasing in `raw` (early-abandon thresholds
    /// are compared in these units).
    fn normalize(&self, raw: f64, n: usize, m: usize) -> f64;

    /// Whether `LB_Kim`/`LB_Keogh` (computed for the plain symmetric1
    /// accumulation) still lower-bound this kernel's distance. True for
    /// every built-in kernel: symmetric2 and amerced costs dominate the
    /// symmetric1 cost of the same path cell-for-cell.
    fn lower_bounds_admissible(&self) -> bool;

    /// Short human-readable label (experiment output, CLI).
    fn label(&self) -> String;
}

/// The classic DTW recurrence: `up`/`left` pay `d`, the diagonal pays
/// `w·d` with `w` from the [`StepPattern`] (1 for symmetric1, 2 for
/// symmetric2), and the distance is optionally `/(N+M)`-normalised.
///
/// Bit-identical to the pre-trait engine: the arithmetic is the same
/// expressions in the same order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StandardKernel {
    diagonal_weight: f64,
    normalization: Normalization,
}

impl StandardKernel {
    /// Builds the kernel for a step pattern and normalisation.
    pub fn new(step_pattern: StepPattern, normalization: Normalization) -> Self {
        Self {
            diagonal_weight: step_pattern.diagonal_weight(),
            normalization,
        }
    }
}

impl DtwKernel for StandardKernel {
    #[inline(always)]
    fn up(&self, parent: f64, local: f64) -> f64 {
        parent + local
    }

    #[inline(always)]
    fn left(&self, parent: f64, local: f64) -> f64 {
        parent + local
    }

    #[inline(always)]
    fn diagonal(&self, parent: f64, local: f64) -> f64 {
        // symmetric2 charges the diagonal transition 2·d
        parent + self.diagonal_weight * local
    }

    #[inline(always)]
    fn local_lanes(&self, metric: ElementMetric, x: F64Lanes, y: F64Lanes) -> F64Lanes {
        lanes_eval(metric, x, y)
    }

    #[inline(always)]
    fn up_lanes(&self, parent: F64Lanes, local: F64Lanes) -> F64Lanes {
        parent + local
    }

    #[inline(always)]
    fn left_lanes(&self, parent: F64Lanes, local: F64Lanes) -> F64Lanes {
        parent + local
    }

    #[inline(always)]
    fn diagonal_lanes(&self, parent: F64Lanes, local: F64Lanes) -> F64Lanes {
        // same association as the scalar: parent + (w * local)
        parent + F64Lanes::splat(self.diagonal_weight) * local
    }

    #[inline(always)]
    fn normalize(&self, raw: f64, n: usize, m: usize) -> f64 {
        match self.normalization {
            Normalization::None => raw,
            Normalization::LengthSum => raw / (n + m) as f64,
        }
    }

    fn lower_bounds_admissible(&self) -> bool {
        // diagonal_weight >= 1 and up/left pay full d: the accumulated
        // cost dominates the symmetric1 cost the bounds were derived for
        true
    }

    fn label(&self) -> String {
        if self.diagonal_weight == 2.0 {
            "sym2".to_string()
        } else {
            "sym1".to_string()
        }
    }
}

/// ADTW's amerced recurrence: off-diagonal transitions pay the local cost
/// **plus** an additive warp penalty `ω ≥ 0`; the diagonal pays the local
/// cost alone (symmetric1 weighting).
///
/// `D(i,j) = d + min(D(i-1,j-1), D(i-1,j) + ω, D(i,j-1) + ω)`
///
/// The penalty is amortised per warp step, so the distance interpolates
/// smoothly between unconstrained DTW (`ω = 0`) and the rigid diagonal
/// alignment (`ω → ∞`) — a tunable stiffness rather than a hard band.
/// Because `ω ≥ 0`, the amerced cost of any path dominates its symmetric1
/// cost, so the standard lower bounds remain admissible and early
/// abandoning stays sound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmercedKernel {
    penalty: f64,
    normalization: Normalization,
}

impl AmercedKernel {
    /// Builds the kernel with the given warp penalty (finite, ≥ 0).
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite penalty (programmer error —
    /// config-driven paths validate via
    /// [`crate::engine::DtwOptions::validate`] first).
    pub fn new(penalty: f64, normalization: Normalization) -> Self {
        assert!(
            penalty.is_finite() && penalty >= 0.0,
            "amerced penalty must be finite and >= 0, got {penalty}"
        );
        Self {
            penalty,
            normalization,
        }
    }

    /// The additive warp penalty `ω`.
    pub fn penalty(&self) -> f64 {
        self.penalty
    }
}

impl DtwKernel for AmercedKernel {
    #[inline(always)]
    fn up(&self, parent: f64, local: f64) -> f64 {
        parent + local + self.penalty
    }

    #[inline(always)]
    fn left(&self, parent: f64, local: f64) -> f64 {
        parent + local + self.penalty
    }

    #[inline(always)]
    fn diagonal(&self, parent: f64, local: f64) -> f64 {
        parent + local
    }

    #[inline(always)]
    fn local_lanes(&self, metric: ElementMetric, x: F64Lanes, y: F64Lanes) -> F64Lanes {
        lanes_eval(metric, x, y)
    }

    #[inline(always)]
    fn up_lanes(&self, parent: F64Lanes, local: F64Lanes) -> F64Lanes {
        // same association as the scalar: (parent + local) + ω
        parent + local + F64Lanes::splat(self.penalty)
    }

    #[inline(always)]
    fn left_lanes(&self, parent: F64Lanes, local: F64Lanes) -> F64Lanes {
        parent + local + F64Lanes::splat(self.penalty)
    }

    #[inline(always)]
    fn diagonal_lanes(&self, parent: F64Lanes, local: F64Lanes) -> F64Lanes {
        parent + local
    }

    #[inline(always)]
    fn normalize(&self, raw: f64, n: usize, m: usize) -> f64 {
        match self.normalization {
            Normalization::None => raw,
            Normalization::LengthSum => raw / (n + m) as f64,
        }
    }

    fn lower_bounds_admissible(&self) -> bool {
        // ω >= 0: every path's amerced cost >= its symmetric1 cost
        true
    }

    fn label(&self) -> String {
        format!("amerced(w={})", self.penalty)
    }
}

/// Serialisable kernel selector carried by
/// [`crate::engine::DtwOptions`]: the configuration-level counterpart of
/// the [`DtwKernel`] trait. [`crate::engine::dtw_run_options`] dispatches
/// it to a concrete kernel once per call, so the fill loop stays
/// monomorphic.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum KernelChoice {
    /// [`StandardKernel`], parameterised by the options' `step_pattern`
    /// and `normalization` fields.
    #[default]
    Standard,
    /// [`AmercedKernel`] with the given warp penalty (the options'
    /// `step_pattern` is ignored — amercing defines its own weighting —
    /// while `normalization` still applies).
    Amerced {
        /// Additive penalty `ω` per off-diagonal step (finite, ≥ 0).
        penalty: f64,
    },
}

impl KernelChoice {
    /// Short label for experiment output and the CLI.
    pub fn label(&self, step_pattern: StepPattern) -> String {
        match self {
            KernelChoice::Standard => match step_pattern {
                StepPattern::Symmetric1 => "sym1".to_string(),
                StepPattern::Symmetric2 => "sym2".to_string(),
            },
            KernelChoice::Amerced { penalty } => format!("amerced(w={penalty})"),
        }
    }

    /// Whether the standard lower bounds stay admissible under this
    /// kernel (see [`DtwKernel::lower_bounds_admissible`]).
    pub fn lower_bounds_admissible(&self) -> bool {
        match self {
            KernelChoice::Standard => true,
            // admissible precisely because validate() rejects ω < 0
            KernelChoice::Amerced { .. } => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_kernel_matches_the_legacy_expressions() {
        let k1 = StandardKernel::new(StepPattern::Symmetric1, Normalization::None);
        assert_eq!(k1.up(3.0, 2.0), 5.0);
        assert_eq!(k1.left(3.0, 2.0), 5.0);
        assert_eq!(k1.diagonal(3.0, 2.0), 5.0);
        assert_eq!(k1.start(2.0), 2.0);
        let k2 = StandardKernel::new(StepPattern::Symmetric2, Normalization::None);
        assert_eq!(k2.diagonal(3.0, 2.0), 7.0);
        assert_eq!(k2.up(3.0, 2.0), 5.0);
    }

    #[test]
    fn standard_normalization_divides_by_length_sum() {
        let k = StandardKernel::new(StepPattern::Symmetric1, Normalization::LengthSum);
        assert_eq!(k.normalize(10.0, 3, 2), 2.0);
        let raw = StandardKernel::new(StepPattern::Symmetric1, Normalization::None);
        assert_eq!(raw.normalize(10.0, 3, 2), 10.0);
    }

    #[test]
    fn amerced_charges_off_diagonal_steps_only() {
        let k = AmercedKernel::new(0.5, Normalization::None);
        assert_eq!(k.diagonal(3.0, 2.0), 5.0);
        assert_eq!(k.up(3.0, 2.0), 5.5);
        assert_eq!(k.left(3.0, 2.0), 5.5);
        assert_eq!(k.penalty(), 0.5);
        assert!(k.lower_bounds_admissible());
    }

    #[test]
    fn amerced_zero_penalty_equals_symmetric1() {
        let a = AmercedKernel::new(0.0, Normalization::None);
        let s = StandardKernel::new(StepPattern::Symmetric1, Normalization::None);
        for (p, l) in [(0.0, 1.0), (2.5, 0.25), (100.0, 7.0)] {
            assert_eq!(a.up(p, l).to_bits(), s.up(p, l).to_bits());
            assert_eq!(a.left(p, l).to_bits(), s.left(p, l).to_bits());
            assert_eq!(a.diagonal(p, l).to_bits(), s.diagonal(p, l).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn negative_penalty_panics() {
        let _ = AmercedKernel::new(-1.0, Normalization::None);
    }

    #[test]
    fn kernel_choice_labels_and_default() {
        assert_eq!(KernelChoice::default(), KernelChoice::Standard);
        assert_eq!(
            KernelChoice::Standard.label(StepPattern::Symmetric1),
            "sym1"
        );
        assert_eq!(
            KernelChoice::Standard.label(StepPattern::Symmetric2),
            "sym2"
        );
        assert_eq!(
            KernelChoice::Amerced { penalty: 0.25 }.label(StepPattern::Symmetric1),
            "amerced(w=0.25)"
        );
        assert!(KernelChoice::Amerced { penalty: 0.25 }.lower_bounds_admissible());
    }

    #[test]
    fn kernel_choice_roundtrips_through_serde() {
        for k in [
            KernelChoice::Standard,
            KernelChoice::Amerced { penalty: 1.5 },
        ] {
            let json = serde_json::to_string(&k).unwrap();
            let back: KernelChoice = serde_json::from_str(&json).unwrap();
            assert_eq!(k, back);
        }
    }

    #[test]
    fn lane_methods_match_scalar_methods_bitwise() {
        use crate::simd::LANE_WIDTH;
        let parents = F64Lanes::from_fn(|l| 0.37 * l as f64 + 0.1);
        let locals = F64Lanes::from_fn(|l| 1.13 * (LANE_WIDTH - l) as f64);
        let xs = F64Lanes::from_fn(|l| 0.7 * l as f64 - 2.0);
        let ys = F64Lanes::from_fn(|l| -0.3 * l as f64 + 1.0);
        let std2 = StandardKernel::new(StepPattern::Symmetric2, Normalization::None);
        let am = AmercedKernel::new(0.75, Normalization::None);

        fn check<K: DtwKernel>(k: &K, p: F64Lanes, d: F64Lanes, x: F64Lanes, y: F64Lanes) {
            use crate::simd::LANE_WIDTH;
            for metric in [ElementMetric::Squared, ElementMetric::Absolute] {
                let lanes = k.local_lanes(metric, x, y);
                for l in 0..LANE_WIDTH {
                    assert_eq!(
                        lanes.lane(l).to_bits(),
                        metric.eval(x.lane(l), y.lane(l)).to_bits()
                    );
                }
            }
            let (u, le, di) = (k.up_lanes(p, d), k.left_lanes(p, d), k.diagonal_lanes(p, d));
            for l in 0..LANE_WIDTH {
                assert_eq!(u.lane(l).to_bits(), k.up(p.lane(l), d.lane(l)).to_bits());
                assert_eq!(le.lane(l).to_bits(), k.left(p.lane(l), d.lane(l)).to_bits());
                assert_eq!(
                    di.lane(l).to_bits(),
                    k.diagonal(p.lane(l), d.lane(l)).to_bits()
                );
            }
        }
        check(&std2, parents, locals, xs, ys);
        check(&am, parents, locals, xs, ys);

        // a kernel relying on the default (per-lane delegating) impls
        struct Plain;
        impl DtwKernel for Plain {
            fn up(&self, p: f64, d: f64) -> f64 {
                p + 2.0 * d
            }
            fn left(&self, p: f64, d: f64) -> f64 {
                p + d + 0.5
            }
            fn diagonal(&self, p: f64, d: f64) -> f64 {
                p + d
            }
            fn normalize(&self, raw: f64, _: usize, _: usize) -> f64 {
                raw
            }
            fn lower_bounds_admissible(&self) -> bool {
                false
            }
            fn label(&self) -> String {
                "plain".into()
            }
        }
        check(&Plain, parents, locals, xs, ys);
    }

    #[test]
    fn infinities_propagate_through_transitions() {
        // out-of-band parents are +inf; kernels must keep them +inf
        let s = StandardKernel::new(StepPattern::Symmetric2, Normalization::None);
        let a = AmercedKernel::new(3.0, Normalization::None);
        assert_eq!(s.up(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(s.diagonal(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(a.left(f64::INFINITY, 1.0), f64::INFINITY);
    }
}
