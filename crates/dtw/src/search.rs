//! Pruned nearest-neighbour search: LB_Keogh prefilter + early-abandoning
//! banded DTW.
//!
//! The classic similarity-search stack (the paper's references `[7]` and
//! `[16]`): candidates are first screened with the cheap LB_Keogh lower
//! bound against the running best distance; survivors run the banded DP
//! with early abandoning. The result is exactly the brute-force nearest
//! neighbour under the same band, at a fraction of the cells filled.
//!
//! LB_Keogh requires equal-length series and its window must dominate the
//! band; [`NnSearch`] applies the bound only when both conditions hold, so
//! the search is correct for arbitrary corpora (just without the prefilter
//! where it would be unsound).
//!
//! **Deprecated**: the `sdtw-index` crate supersedes this with a prebuilt
//! corpus index running the full cascade (LB_Kim → LB_Keogh → reversed
//! LB_Keogh → early-abandoned banded DP) over precomputed envelopes and
//! cached salient features, with top-k, batch parallelism and
//! serialization. `NnSearch` remains the small self-contained exactness
//! oracle the test suites compare against.

use crate::band::Band;
use crate::engine::{
    dtw_banded, dtw_banded_early_abandon_with_scratch, DtwOptions, DtwScratch, Normalization,
};
use crate::lower_bound::{lb_keogh, Envelope};
use sdtw_tseries::TimeSeries;

/// Result of a pruned 1-NN search.
#[derive(Debug, Clone, PartialEq)]
pub struct NnResult {
    /// Index of the nearest candidate.
    pub index: usize,
    /// Its (possibly normalised) DTW distance.
    pub distance: f64,
    /// Candidates eliminated by LB_Keogh without running the DP.
    pub lb_pruned: usize,
    /// Candidates whose DP run was abandoned early.
    pub abandoned: usize,
    /// Total DP cells filled across all candidates.
    pub cells_filled: usize,
}

/// Pruned 1-NN search configuration.
#[deprecated(
    since = "0.1.0",
    note = "superseded by the `sdtw-index` crate's cascading kNN index; \
            kept as the brute-force-equivalent exactness oracle for tests"
)]
#[derive(Debug, Clone)]
pub struct NnSearch<F> {
    /// Builds the band for a `(n, m)` pair (e.g. a Sakoe-Chiba closure or
    /// an sDTW planner).
    pub band_for: F,
    /// DP options. LB_Keogh pruning is only sound without normalisation
    /// (the bound is on raw accumulated cost) — with `LengthSum` the
    /// prefilter is skipped, early abandoning still applies.
    pub opts: DtwOptions,
    /// Envelope window radius for the LB_Keogh prefilter. The bound is
    /// only applied when every band row stays within this radius of its
    /// row index (otherwise the bound could exceed the banded distance).
    pub lb_radius: usize,
}

#[allow(deprecated)] // the impl of the deprecated oracle itself
impl<F: Fn(usize, usize) -> Band> NnSearch<F> {
    /// Whether LB_Keogh soundly lower-bounds the banded DTW distance for
    /// this query/candidate pair: equal lengths, raw costs, and a band
    /// contained in the `±lb_radius` Sakoe window.
    fn lb_applicable(&self, band: &Band, n: usize, m: usize) -> bool {
        if n != m || self.opts.normalization != Normalization::None {
            return false;
        }
        (0..band.n()).all(|i| {
            let r = band.row(i);
            r.lo + self.lb_radius >= i && r.hi <= i + self.lb_radius
        })
    }

    /// Finds the nearest neighbour of `query` among `candidates`
    /// (non-empty). Identical result to running `dtw_banded` on every
    /// candidate and taking the minimum (stable tie-break: lower index).
    ///
    /// # Panics
    ///
    /// Panics when `candidates` is empty.
    pub fn nearest(&self, query: &TimeSeries, candidates: &[TimeSeries]) -> NnResult {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let query_env = Envelope::build(query, self.lb_radius);
        // one DP scratch for the whole candidate sweep
        let mut scratch = DtwScratch::new();
        let mut best: Option<(usize, f64)> = None;
        let mut lb_pruned = 0usize;
        let mut abandoned = 0usize;
        let mut cells_filled = 0usize;
        for (idx, cand) in candidates.iter().enumerate() {
            let band = (self.band_for)(query.len(), cand.len());
            let threshold = best.map_or(f64::INFINITY, |(_, d)| d);
            if self.lb_applicable(&band, query.len(), cand.len()) {
                // LB on the *query's* envelope bounds DTW(query, cand)
                let lb = lb_keogh(cand, &query_env, self.opts.metric);
                if lb > threshold {
                    lb_pruned += 1;
                    continue;
                }
            }
            match dtw_banded_early_abandon_with_scratch(
                query,
                cand,
                &band,
                &self.opts,
                threshold,
                &mut scratch,
            ) {
                None => {
                    abandoned += 1;
                    // the abandoning run still paid for part of the grid;
                    // count the full band conservatively
                    cells_filled += band.area();
                }
                Some(r) => {
                    cells_filled += r.cells_filled;
                    match best {
                        Some((_, d)) if r.distance >= d => {}
                        _ => best = Some((idx, r.distance)),
                    }
                }
            }
        }
        // threshold pruning can only ever discard strictly-worse
        // candidates; when everything was abandoned (possible only with an
        // infinite threshold never being set — i.e. never), fall back
        let (index, distance) = best.unwrap_or_else(|| {
            // all candidates abandoned against +inf cannot happen; recover
            // by brute force to keep the API total
            let mut bi = 0usize;
            let mut bd = f64::INFINITY;
            for (idx, cand) in candidates.iter().enumerate() {
                let band = (self.band_for)(query.len(), cand.len());
                let d = dtw_banded(query, cand, &band, &self.opts).distance;
                if d < bd {
                    bd = d;
                    bi = idx;
                }
            }
            (bi, bd)
        });
        NnResult {
            index,
            distance,
            lb_pruned,
            abandoned,
            cells_filled,
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // exercising the deprecated oracle is the point
mod tests {
    use super::*;
    use crate::sakoe::sakoe_chiba_band;

    fn corpus(n_series: usize, len: usize) -> Vec<TimeSeries> {
        (0..n_series)
            .map(|k| {
                TimeSeries::new(
                    (0..len)
                        .map(|i| {
                            let t = i as f64;
                            ((t + 13.0 * k as f64) / 9.0).sin()
                                + 0.3 * ((t * (1.0 + k as f64 * 0.01)) / 23.0).cos()
                        })
                        .collect(),
                )
                .unwrap()
            })
            .collect()
    }

    fn brute_force(
        query: &TimeSeries,
        candidates: &[TimeSeries],
        radius: usize,
        opts: &DtwOptions,
    ) -> (usize, f64) {
        let mut bi = 0;
        let mut bd = f64::INFINITY;
        for (i, c) in candidates.iter().enumerate() {
            let band = sakoe_chiba_band(query.len(), c.len(), 2.0 * radius as f64 / c.len() as f64);
            let d = dtw_banded(query, c, &band, opts).distance;
            if d < bd {
                bd = d;
                bi = i;
            }
        }
        (bi, bd)
    }

    #[test]
    fn pruned_search_matches_brute_force() {
        let len = 80;
        let radius = 8;
        let cands = corpus(12, len);
        let query = TimeSeries::new(
            (0..len)
                .map(|i| ((i as f64 + 40.0) / 9.0).sin() + 0.29 * (i as f64 / 23.0).cos())
                .collect(),
        )
        .unwrap();
        let opts = DtwOptions::default();
        let search = NnSearch {
            band_for: |n, m| sakoe_chiba_band(n, m, 2.0 * 8.0 / m as f64),
            opts,
            lb_radius: radius,
        };
        let r = search.nearest(&query, &cands);
        let (bi, bd) = brute_force(&query, &cands, radius, &opts);
        assert_eq!(r.index, bi);
        assert!((r.distance - bd).abs() < 1e-9);
    }

    #[test]
    fn pruning_actually_fires_and_saves_work() {
        let len = 100;
        let cands = corpus(30, len);
        let query = cands[0].clone();
        let opts = DtwOptions::default();
        let search = NnSearch {
            band_for: |n, m| sakoe_chiba_band(n, m, 0.2),
            opts,
            lb_radius: 10,
        };
        let r = search.nearest(&query, &cands);
        assert_eq!(r.index, 0, "self is its own nearest neighbour");
        assert_eq!(r.distance, 0.0);
        assert!(
            r.lb_pruned + r.abandoned > 0,
            "with a zero-distance best, pruning must fire"
        );
        // work must be well below running the full DP everywhere
        let full_work: usize = cands
            .iter()
            .map(|c| sakoe_chiba_band(len, c.len(), 0.2).area())
            .sum();
        assert!(r.cells_filled < full_work);
    }

    #[test]
    fn lb_prefilter_skipped_for_unequal_lengths() {
        let cands = vec![
            TimeSeries::new((0..60).map(|i| (i as f64 / 7.0).sin()).collect()).unwrap(),
            TimeSeries::new((0..90).map(|i| (i as f64 / 7.0).sin()).collect()).unwrap(),
        ];
        let query = TimeSeries::new((0..75).map(|i| (i as f64 / 7.0).sin()).collect()).unwrap();
        let search = NnSearch {
            band_for: Band::full,
            opts: DtwOptions::default(),
            lb_radius: 5,
        };
        let r = search.nearest(&query, &cands);
        assert_eq!(r.lb_pruned, 0, "LB must not fire on unequal lengths");
        assert!(r.distance.is_finite());
    }

    #[test]
    fn normalized_mode_still_correct_without_lb() {
        let len = 64;
        let cands = corpus(8, len);
        let query = cands[3].clone();
        let opts = DtwOptions::normalized_symmetric2();
        let search = NnSearch {
            band_for: |n, m| sakoe_chiba_band(n, m, 0.25),
            opts,
            lb_radius: 8,
        };
        let r = search.nearest(&query, &cands);
        assert_eq!(r.index, 3);
        assert_eq!(r.lb_pruned, 0, "LB unsound under normalisation");
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let q = TimeSeries::new(vec![0.0, 1.0]).unwrap();
        let search = NnSearch {
            band_for: Band::full,
            opts: DtwOptions::default(),
            lb_radius: 1,
        };
        let _ = search.nearest(&q, &[]);
    }
}
