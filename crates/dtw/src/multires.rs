//! Multi-resolution (coarse-to-fine) DTW — the reduced-representation
//! speedup family the paper cites as orthogonal to sDTW (§2.1.4, refs
//! [2, 8, 18]; the algorithm here follows Salvador & Chan's FastDTW).
//!
//! The recursion: shrink both series by 2, solve that problem (recursively),
//! project the resulting warp path back to full resolution, widen it by a
//! `radius`, and run the banded kernel inside the projected corridor. Cost
//! is `O((N + M) · radius)` per level. Like every banded method the result
//! upper-bounds the optimum; larger radii trade time for accuracy.
//!
//! The paper notes sDTW "can naturally be implemented along with reduced
//! representation based solutions"; [`multires_band`] exposes the corridor
//! as a [`Band`], so it can be intersected/unioned with an sDTW band — the
//! combination is exercised by the ablation benchmarks.

use crate::band::{Band, ColRange};
use crate::engine::{dtw_run_options, DtwOptions, DtwResult, DtwScratch};
use crate::path::WarpPath;
use sdtw_tseries::TimeSeries;

/// Minimum problem size solved exactly (full grid) at the recursion base.
const BASE_SIZE: usize = 16;

/// Reusable buffers for the coarse-to-fine computation: the DP scratch
/// shared by every resolution level plus a pool of sample buffers the
/// shrink pyramid is built from (and recycled into after each call).
///
/// Historically each recursion level allocated its own [`DtwScratch`] and
/// shrink vectors; threading one `MultiresScratch` through the whole
/// pyramid turns the per-level allocations into buffer reuse while
/// producing bit-identical results (asserted by the tests below).
#[derive(Debug, Default)]
pub struct MultiresScratch {
    /// The DP buffers, shared across every level and the final run.
    pub dtw: DtwScratch,
    /// Recycled sample buffers for the shrink pyramid.
    pool: Vec<Vec<f64>>,
}

impl MultiresScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes the multi-resolution DTW distance with the given corridor
/// `radius` (FastDTW's radius parameter; 1–2 is customary, larger is more
/// accurate).
///
/// Always returns a warp path when `opts.compute_path` is set; the path is
/// optimal *within the corridor*.
pub fn dtw_multires(x: &TimeSeries, y: &TimeSeries, radius: usize, opts: &DtwOptions) -> DtwResult {
    dtw_multires_with_scratch(x, y, radius, opts, &mut MultiresScratch::new())
}

/// [`dtw_multires`] with caller-owned buffers: one [`MultiresScratch`]
/// serves every resolution level of the pyramid *and* the final banded
/// run, so batch loops pay no per-level allocations. Results are
/// bit-identical with or without reuse.
pub fn dtw_multires_with_scratch(
    x: &TimeSeries,
    y: &TimeSeries,
    radius: usize,
    opts: &DtwOptions,
    scratch: &mut MultiresScratch,
) -> DtwResult {
    let band = multires_band_with_scratch(x, y, radius, opts, scratch);
    dtw_run_options(x, y, &band, opts, None, &mut scratch.dtw)
        .expect("a run without a cutoff never abandons")
}

/// The coarse-to-fine corridor band for a pair (without the final DP run).
pub fn multires_band(x: &TimeSeries, y: &TimeSeries, radius: usize, opts: &DtwOptions) -> Band {
    multires_band_with_scratch(x, y, radius, opts, &mut MultiresScratch::new())
}

/// [`multires_band`] with caller-owned buffers (see
/// [`dtw_multires_with_scratch`]).
///
/// The historical recursion is unrolled into an explicit pyramid walk —
/// shrink to the base size, then run the coarse DP and project one level
/// at a time — so a single DP scratch threads through every level and the
/// shrink buffers recycle through the scratch's pool. The sequence of
/// arithmetic operations is unchanged, so the corridor (and any distance
/// computed inside it) is bit-identical to the recursive formulation.
pub fn multires_band_with_scratch(
    x: &TimeSeries,
    y: &TimeSeries,
    radius: usize,
    opts: &DtwOptions,
    scratch: &mut MultiresScratch,
) -> Band {
    // Shrink pyramid, finest coarse level first (`levels[0]` is the
    // half-resolution pair; level 0 — the inputs — stays borrowed).
    let mut levels: Vec<(TimeSeries, TimeSeries)> = Vec::new();
    loop {
        let (px, py) = match levels.last() {
            None => (x, y),
            Some((a, b)) => (a, b),
        };
        if px.len() <= BASE_SIZE || py.len() <= BASE_SIZE {
            break;
        }
        let nx = shrink_half_reusing(px, &mut scratch.pool);
        let ny = shrink_half_reusing(py, &mut scratch.pool);
        levels.push((nx, ny));
    }

    // The recursion base: the coarsest level is solved on the full grid.
    let (bn, bm) = match levels.last() {
        None => (x.len(), y.len()),
        Some((a, b)) => (a.len(), b.len()),
    };
    let mut band = Band::full(bn, bm);

    // Unwind: solve each coarse level inside its corridor, project the
    // warp path one level finer, widen by `radius`.
    for k in (0..levels.len()).rev() {
        let (cx, cy) = &levels[k];
        let coarse = dtw_run_options(
            cx,
            cy,
            &band,
            &DtwOptions {
                metric: opts.metric,
                compute_path: true,
                ..*opts
            },
            None,
            &mut scratch.dtw,
        )
        .expect("a run without a cutoff never abandons");
        let path = coarse.path.expect("path requested");
        let (fine_n, fine_m) = match k {
            0 => (x.len(), y.len()),
            _ => (levels[k - 1].0.len(), levels[k - 1].1.len()),
        };
        band = project_path(&path, fine_n, fine_m, radius);
    }

    // Recycle the pyramid's sample buffers for the next call.
    for (a, b) in levels.drain(..) {
        scratch.pool.push(a.into_values());
        scratch.pool.push(b.into_values());
    }
    band
}

/// Halves a series by averaging adjacent samples (odd tails keep the last
/// sample as-is), writing into a buffer recycled from `pool` when one is
/// available.
fn shrink_half_reusing(ts: &TimeSeries, pool: &mut Vec<Vec<f64>>) -> TimeSeries {
    let v = ts.values();
    let mut out = pool.pop().unwrap_or_default();
    out.clear();
    out.reserve(v.len() / 2 + 1);
    let mut i = 0;
    while i + 1 < v.len() {
        out.push(0.5 * (v[i] + v[i + 1]));
        i += 2;
    }
    if i < v.len() {
        out.push(v[i]);
    }
    TimeSeries::new(out).expect("halving preserves finiteness")
}

/// Halves a series by averaging adjacent samples (unit-test reference).
#[cfg(test)]
fn shrink_half(ts: &TimeSeries) -> TimeSeries {
    shrink_half_reusing(ts, &mut Vec::new())
}

/// Projects a coarse warp path onto the `n × m` grid and widens it by
/// `radius` cells in every direction, producing a feasible corridor band.
fn project_path(path: &WarpPath, n: usize, m: usize, radius: usize) -> Band {
    // each coarse cell (i, j) covers fine rows 2i..2i+1, cols 2j..2j+1
    let mut lo = vec![usize::MAX; n];
    let mut hi = vec![0usize; n];
    let mut touch = |i: usize, j_lo: usize, j_hi: usize| {
        if i < n {
            lo[i] = lo[i].min(j_lo.min(m - 1));
            hi[i] = hi[i].max(j_hi.min(m - 1));
        }
    };
    for &(ci, cj) in path.steps() {
        let j_lo = (2 * cj).saturating_sub(radius);
        let j_hi = 2 * cj + 1 + radius;
        for di in 0..2 {
            let fi = 2 * ci + di;
            let fi_lo = fi.saturating_sub(radius);
            let fi_hi = fi + radius;
            for i in fi_lo..=fi_hi {
                touch(i, j_lo, j_hi);
            }
        }
    }
    let ranges = (0..n)
        .map(|i| {
            if lo[i] == usize::MAX {
                // row untouched (possible at odd tails): seed the diagonal
                let c = if n > 1 { i * (m - 1) / (n - 1) } else { 0 };
                ColRange::new(c, c)
            } else {
                ColRange::new(lo[i], hi[i])
            }
        })
        .collect();
    Band::from_ranges(n, m, ranges).sanitize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::dtw_full;

    fn wavy(n: usize, phase: f64, stretch: f64) -> TimeSeries {
        TimeSeries::new(
            (0..n)
                .map(|i| {
                    let t = i as f64 * stretch;
                    (t / 11.0 + phase).sin() + 0.3 * (t / 29.0).cos()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn shrink_half_averages_pairs() {
        let ts = TimeSeries::new(vec![0.0, 2.0, 4.0, 6.0, 9.0]).unwrap();
        let s = shrink_half(&ts);
        assert_eq!(s.values(), &[1.0, 5.0, 9.0]);
        let even = shrink_half(&TimeSeries::new(vec![1.0, 3.0]).unwrap());
        assert_eq!(even.values(), &[2.0]);
    }

    #[test]
    fn small_inputs_solve_exactly() {
        let x = wavy(12, 0.0, 1.0);
        let y = wavy(14, 0.5, 1.0);
        let opts = DtwOptions::default();
        let exact = dtw_full(&x, &y, &opts).distance;
        let fast = dtw_multires(&x, &y, 1, &opts).distance;
        assert!((exact - fast).abs() < 1e-12);
    }

    #[test]
    fn upper_bounds_and_approaches_the_optimum_with_radius() {
        let x = wavy(200, 0.0, 1.0);
        let y = wavy(200, 0.9, 1.07);
        let opts = DtwOptions::default();
        let exact = dtw_full(&x, &y, &opts).distance;
        let mut prev_err = f64::INFINITY;
        for radius in [1usize, 4, 16] {
            let fast = dtw_multires(&x, &y, radius, &opts);
            assert!(fast.distance >= exact - 1e-9);
            let err = fast.distance - exact;
            assert!(
                err <= prev_err + 1e-9,
                "error must not grow with radius: {err} after {prev_err}"
            );
            prev_err = err;
        }
        // a modest radius should already be close
        let fast = dtw_multires(&x, &y, 8, &opts).distance;
        assert!(
            (fast - exact) <= 0.05 * exact.max(1e-9) + 1e-9,
            "radius 8 error too large: {fast} vs {exact}"
        );
    }

    #[test]
    fn fills_far_fewer_cells_than_full_grid() {
        let x = wavy(512, 0.0, 1.0);
        let y = wavy(512, 1.3, 1.0);
        let opts = DtwOptions::default();
        let fast = dtw_multires(&x, &y, 2, &opts);
        assert!(
            fast.cells_filled < 512 * 512 / 5,
            "corridor filled {} cells",
            fast.cells_filled
        );
    }

    #[test]
    fn produces_valid_paths() {
        let x = wavy(130, 0.0, 1.0);
        let y = wavy(170, 0.7, 1.1);
        let r = dtw_multires(&x, &y, 2, &DtwOptions::with_path());
        r.path.unwrap().validate(130, 170).unwrap();
    }

    #[test]
    fn identical_series_still_zero() {
        let x = wavy(256, 0.0, 1.0);
        let r = dtw_multires(&x, &x, 1, &DtwOptions::default());
        assert!(r.distance.abs() < 1e-12);
    }

    #[test]
    fn corridor_band_is_feasible_and_narrow() {
        let x = wavy(300, 0.0, 1.0);
        let y = wavy(300, 0.4, 1.0);
        let band = multires_band(&x, &y, 2, &DtwOptions::default());
        assert!(band.is_feasible());
        assert!(band.coverage() < 0.2, "coverage {:.3}", band.coverage());
    }

    /// The historical recursive formulation (fresh scratch at every
    /// level), kept as the reference the pyramid walk must reproduce
    /// bit-for-bit.
    fn reference_band(x: &TimeSeries, y: &TimeSeries, radius: usize, opts: &DtwOptions) -> Band {
        let n = x.len();
        let m = y.len();
        if n <= BASE_SIZE || m <= BASE_SIZE {
            return Band::full(n, m);
        }
        let xc = shrink_half(x);
        let yc = shrink_half(y);
        let coarse_band = reference_band(&xc, &yc, radius, opts);
        let coarse = dtw_run_options(
            &xc,
            &yc,
            &coarse_band,
            &DtwOptions {
                metric: opts.metric,
                compute_path: true,
                ..*opts
            },
            None,
            &mut DtwScratch::new(),
        )
        .expect("a run without a cutoff never abandons");
        let path = coarse.path.expect("path requested");
        project_path(&path, n, m, radius)
    }

    #[test]
    fn pyramid_walk_is_bit_identical_to_the_recursive_formulation() {
        let opts = DtwOptions::default();
        for (n, m, radius) in [(40, 40, 1), (130, 170, 2), (257, 300, 4), (12, 300, 1)] {
            let x = wavy(n, 0.0, 1.0);
            let y = wavy(m, 0.7, 1.09);
            let reference = reference_band(&x, &y, radius, &opts);
            let walked = multires_band(&x, &y, radius, &opts);
            assert_eq!(reference, walked, "corridor diverged at {n}x{m} r{radius}");
            let d_ref = dtw_run_options(&x, &y, &reference, &opts, None, &mut DtwScratch::new())
                .unwrap()
                .distance;
            let d_new = dtw_multires(&x, &y, radius, &opts).distance;
            assert_eq!(d_ref.to_bits(), d_new.to_bits());
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_mixed_shapes() {
        // one scratch reused across pairs of different sizes must
        // reproduce the fresh-scratch path exactly, paths included
        let mut scratch = MultiresScratch::new();
        for (k, n, m) in [(0usize, 64, 80), (1, 200, 150), (2, 90, 90)] {
            let x = wavy(n, 0.1 * k as f64, 1.0);
            let y = wavy(m, 0.5, 1.03);
            for opts in [DtwOptions::with_path(), DtwOptions::normalized_symmetric2()] {
                let fresh = dtw_multires(&x, &y, 2, &opts);
                let reused = dtw_multires_with_scratch(&x, &y, 2, &opts, &mut scratch);
                assert_eq!(fresh.distance.to_bits(), reused.distance.to_bits());
                assert_eq!(fresh.cells_filled, reused.cells_filled);
                assert_eq!(fresh.path, reused.path);
            }
        }
        // the pool actually retained buffers for the next call
        assert!(!scratch.pool.is_empty(), "shrink buffers are recycled");
    }
}
