//! The composable lower-bound pruning pipeline shared by every cascade
//! consumer in the workspace.
//!
//! Historically the retrieval cascade existed twice: `sdtw_index` ran a
//! per-candidate copy (LB_Kim → LB_Keogh → reversed LB_Keogh → DP) and
//! `sdtw_stream` a per-window copy (rolling LB_Kim → LB_Keogh → DP), each
//! with its own threshold comparisons, applicability checks and stats
//! bookkeeping. This module is the single implementation both build on:
//!
//! * [`PruneStage`] — one admissible lower-bound stage. Evaluating a
//!   stage against a candidate yields *keep* or *prune* (attributed to
//!   the stage's [`StageKind`]); a stage whose admissibility
//!   precondition fails for the pair is *inapplicable* and skipped
//!   (counted once per candidate), and a stage whose inputs are
//!   untrustworthy may *abstain* (rolling statistics; not counted).
//! * [`Cascade`] — the configured stage list plus the shared bound
//!   normalisation/metric, run in two phases per candidate:
//!   [`Cascade::screen_summary`] (O(1) stages that need no band — the
//!   precomputed LB_Kim) and [`Cascade::screen_samples`] (the
//!   sample-level stages, once the pair's band is known). The split
//!   exists because band planning is itself costly and is skipped for
//!   summary-pruned candidates.
//! * [`CascadeStats`] — the per-stage accounting, with
//!   [`CascadeStats::merge`] so parallel shards and monitor banks
//!   aggregate counts instead of dropping them.
//! * [`CoarseEnvelope`] — the coarse (PAA) pre-filter artefact: a
//!   fixed-width piecewise-aggregate compression of an LB_Keogh
//!   [`Envelope`], giving a bound that costs `O(len / width)` metric
//!   evaluations after one `O(len)` segment-mean pass.
//!
//! # Admissibility of the PAA pre-filter
//!
//! [`CoarseEnvelope::lower_bound`] never exceeds the fine
//! [`lb_keogh_values`] bound of the same pair, so it inherits LB_Keogh's
//! admissibility (band inside the `±radius` window, equal lengths).
//! Per segment `S` with integer weight `w = |S|`, writing `Û = max_{i∈S}
//! U_i`, `x̄ = mean_{i∈S} x_i` and `d_i = max(x_i − U_i, 0)` for the
//! upper side:
//!
//! * each fine LB_Keogh term is ≥ `metric(d_i)` (it uses `U_i ≤ Û`);
//! * **absolute** metric: `Σ d_i ≥ Σ (x_i − Û) = w·(x̄ − Û)`;
//! * **squared** metric: `Σ d_i² ≥ (Σ d_i)²/w ≥ w·(x̄ − Û)²` by
//!   Cauchy-Schwarz, whenever `x̄ > Û`.
//!
//! So charging `w · metric(x̄, Û)` for segments whose PAA mean escapes
//! the coarse tube (symmetrically `L̂ = min L_i` below) lower-bounds the
//! fine bound. The integer segmentation of
//! [`sdtw_tseries::transform::paa_fixed_values`] — the same repeated
//! halving idea the multi-resolution pyramid (`crate::multires`) shrinks
//! by, with the tail kept whole — is what keeps the weights exact.

use crate::band::Band;
use crate::engine::Normalization;
use crate::lower_bound::{lb_keogh_values, Envelope};
use sdtw_tseries::transform::paa_fixed_values;
use sdtw_tseries::ElementMetric;
use serde::{Deserialize, Serialize};

/// Identifies the cascade stage that disposed of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// O(1) endpoint/extremum bound (LB_Kim).
    Kim,
    /// Coarse piecewise-aggregate (PAA) pre-filter.
    Paa,
    /// LB_Keogh: left samples against the right side's envelope.
    Keogh,
    /// Reversed LB_Keogh: right samples against the left side's envelope.
    KeoghRev,
}

/// One admissible lower-bound stage of a [`Cascade`].
///
/// Stages are configuration, not state: the same stage list is shared by
/// every candidate of a query (and by every clone of a prepared matcher).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneStage {
    /// The O(1) LB_Kim stage. It consumes a bound the caller precomputed
    /// (indexes compute it for every entry up front to order visits;
    /// streams maintain it from O(1) rolling statistics), passed to
    /// [`Cascade::screen_summary`]; `None` means the producer abstained.
    ///
    /// `guard` is the relative slack the bound must clear the threshold
    /// by before it may prune — 0 for exactly-computed bounds (strict
    /// comparison, ties survive), a small positive value for bounds
    /// carrying rolling-statistics error (see `sdtw-stream`'s
    /// admissibility argument in DESIGN.md §9).
    Kim {
        /// Relative pruning slack; 0 = exact strict comparison.
        guard: f64,
    },
    /// The coarse PAA pre-filter: PAA of the left samples against the
    /// right side's [`CoarseEnvelope`]. Inapplicable whenever LB_Keogh
    /// is (and when no coarse envelope was supplied).
    Paa,
    /// LB_Keogh of the left samples against the right side's
    /// [`Envelope`]. Inapplicable on unequal lengths or when the band
    /// escapes the envelope's `±radius` window.
    Keogh,
    /// LB_Keogh in the reversed direction (right samples against the
    /// left side's envelope) — the classic second chance when the first
    /// direction is too loose.
    KeoghRev,
}

/// Per-candidate inputs of the sample-phase stages
/// ([`Cascade::screen_samples`]). Envelopes that a consumer does not
/// precompute are simply `None`; the stages needing them then report
/// themselves inapplicable.
#[derive(Debug, Clone, Copy)]
pub struct SampleInput<'a> {
    /// Left-side samples, normalised exactly as the DP will see them.
    pub x: &'a [f64],
    /// Right-side samples.
    pub y: &'a [f64],
    /// Envelope of `y` (drives [`PruneStage::Keogh`]).
    pub y_envelope: Option<&'a Envelope>,
    /// Precomputed raw forward LB_Keogh bound of `x` against
    /// `y_envelope`, produced by one of the batched lane loops
    /// ([`crate::lower_bound::lb_keogh_batch`] /
    /// [`crate::lower_bound::lb_keogh_batch_windows`], bit-identical to
    /// the scalar bound by construction). When present and the Keogh
    /// stage is applicable, the stage consumes it instead of recomputing;
    /// the stage's own applicability check stays authoritative, so a
    /// stray value on an inapplicable candidate is ignored.
    pub y_keogh_raw: Option<f64>,
    /// Envelope of `x` (drives [`PruneStage::KeoghRev`]).
    pub x_envelope: Option<&'a Envelope>,
    /// Coarse envelope of `y` (drives [`PruneStage::Paa`]).
    pub y_coarse: Option<&'a CoarseEnvelope>,
}

/// Reusable buffers for per-candidate stage work (currently the PAA
/// segment means). Keep one per worker/monitor, like a DP scratch.
#[derive(Debug, Clone, Default)]
pub struct CascadeScratch {
    paa: Vec<f64>,
}

impl CascadeScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fixed-width PAA compression of an LB_Keogh [`Envelope`]: per segment,
/// the maximum of the upper envelope and the minimum of the lower one —
/// the loosest tube any sample of the segment lives in, which is what
/// makes [`CoarseEnvelope::lower_bound`] a lower bound of the fine
/// LB_Keogh (see the module docs for the argument).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseEnvelope {
    /// `upper[j] = max(env.upper[j·width .. (j+1)·width])`.
    upper: Vec<f64>,
    /// `lower[j] = min(env.lower[j·width .. (j+1)·width])`.
    lower: Vec<f64>,
    /// Segment width (≥ 2; the tail segment may be shorter).
    width: usize,
    /// Length of the series the source envelope was built over.
    source_len: usize,
    /// The source envelope's window radius (the stage's admissibility
    /// condition is inherited from it).
    radius: usize,
}

impl CoarseEnvelope {
    /// Compresses an envelope into segments of `width` samples.
    ///
    /// # Panics
    ///
    /// Panics when `width < 2` (a width of 1 is the fine envelope —
    /// use [`PruneStage::Keogh`] directly) or the envelope is empty.
    pub fn build(env: &Envelope, width: usize) -> Self {
        assert!(width >= 2, "coarse envelope needs a width of at least 2");
        let n = env.upper.len();
        assert!(n > 0, "coarse envelope needs a non-empty envelope");
        let mut upper = Vec::with_capacity(n.div_ceil(width));
        let mut lower = Vec::with_capacity(n.div_ceil(width));
        let mut j = 0;
        while j < n {
            let hi = (j + width).min(n);
            upper.push(env.upper[j..hi].iter().cloned().fold(f64::MIN, f64::max));
            lower.push(env.lower[j..hi].iter().cloned().fold(f64::MAX, f64::min));
            j = hi;
        }
        Self {
            upper,
            lower,
            width,
            source_len: n,
            radius: env.radius,
        }
    }

    /// Reassembles a coarse envelope from parts a codec decoded,
    /// re-validating the structural invariants [`CoarseEnvelope::build`]
    /// guarantees: width ≥ 2, a non-empty source, matching column
    /// lengths, and exactly `ceil(source_len / width)` segments. The
    /// tube *values* are trusted (like any snapshot payload — rebuild
    /// from the envelope if provenance is in doubt).
    ///
    /// # Errors
    ///
    /// [`sdtw_tseries::TsError::InvalidParameter`] naming the violated
    /// invariant.
    pub fn from_parts(
        upper: Vec<f64>,
        lower: Vec<f64>,
        width: usize,
        source_len: usize,
        radius: usize,
    ) -> Result<Self, sdtw_tseries::TsError> {
        let invalid = |reason: String| sdtw_tseries::TsError::InvalidParameter {
            name: "coarse_envelope",
            reason,
        };
        if width < 2 {
            return Err(invalid(format!("segment width must be >= 2, got {width}")));
        }
        if source_len == 0 {
            return Err(invalid("source length must be non-zero".to_string()));
        }
        let segments = source_len.div_ceil(width);
        if upper.len() != segments || lower.len() != segments {
            return Err(invalid(format!(
                "expected {segments} segments for source_len {source_len} / width {width}, \
                 got upper {} / lower {}",
                upper.len(),
                lower.len()
            )));
        }
        Ok(Self {
            upper,
            lower,
            width,
            source_len,
            radius,
        })
    }

    /// Segment width the envelope was compressed with.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The per-segment upper tube (`max` of the source envelope's upper
    /// side over each segment).
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// The per-segment lower tube (`min` of the source envelope's lower
    /// side over each segment).
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Length of the series the source envelope covered.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// The source envelope's window radius.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// The coarse (PAA) lower bound of `x` against this tube, in raw
    /// accumulated-cost units. `x` must have the source length (the
    /// cascade checks this before calling); `paa_buf` receives the
    /// segment means.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch (programmer error — the cascade's
    /// applicability check guards it).
    pub fn lower_bound(&self, x: &[f64], metric: ElementMetric, paa_buf: &mut Vec<f64>) -> f64 {
        assert_eq!(x.len(), self.source_len, "PAA bound needs equal lengths");
        paa_fixed_values(x, self.width, paa_buf);
        debug_assert_eq!(paa_buf.len(), self.upper.len());
        let mut acc = 0.0;
        for (j, &mean) in paa_buf.iter().enumerate() {
            // the tail segment's weight is whatever is left of the series
            let weight = self.width.min(self.source_len - j * self.width) as f64;
            if mean > self.upper[j] {
                acc += weight * metric.eval(mean, self.upper[j]);
            } else if mean < self.lower[j] {
                acc += weight * metric.eval(mean, self.lower[j]);
            }
        }
        acc
    }
}

/// A configured pruning cascade: the ordered stage list plus everything
/// the threshold comparisons need (metric, bound normalisation, and the
/// kernel's admissibility switch).
///
/// The cascade is stateless per candidate — accounting lands in a
/// caller-owned [`CascadeStats`], scratch buffers in a caller-owned
/// [`CascadeScratch`] — so one instance serves a whole query, a cloned
/// matcher, or a rayon worker without synchronisation.
///
/// Per candidate the driving loop is:
///
/// 1. [`Cascade::screen_summary`] with the precomputed O(1) bound —
///    prunes without planning a band;
/// 2. plan (or adopt) the pair's band;
/// 3. [`Cascade::screen_samples`] with the sample-phase inputs;
/// 4. run the early-abandoned DP, recording the outcome via
///    [`CascadeStats::record_abandoned`] /
///    [`CascadeStats::record_completed`].
#[derive(Debug, Clone)]
pub struct Cascade {
    stages: Vec<PruneStage>,
    metric: ElementMetric,
    normalization: Normalization,
    bounds_enabled: bool,
}

impl Cascade {
    /// Builds a cascade over the given stage list. `bounds_enabled`
    /// carries the kernel's `lower_bounds_admissible()` verdict: when
    /// false every stage is disabled (the candidate goes straight to the
    /// early-abandoned DP) and [`CascadeStats::bounds_disabled`] records
    /// why the prune counters stay at zero.
    pub fn new(
        stages: Vec<PruneStage>,
        metric: ElementMetric,
        normalization: Normalization,
        bounds_enabled: bool,
    ) -> Self {
        Self {
            stages,
            metric,
            normalization,
            bounds_enabled,
        }
    }

    /// Whether the lower-bound stages are live for this cascade.
    pub fn bounds_enabled(&self) -> bool {
        self.bounds_enabled
    }

    /// The configured stage list.
    pub fn stages(&self) -> &[PruneStage] {
        &self.stages
    }

    /// Converts a raw accumulated-cost bound into the units of the
    /// configured normalisation, so it compares against final distances.
    fn normalize_bound(&self, raw: f64, n: usize, m: usize) -> f64 {
        match self.normalization {
            Normalization::None => raw,
            Normalization::LengthSum => raw / (n + m) as f64,
        }
    }

    /// Whether a Kim bound prunes against `threshold` under `guard`
    /// relative slack (0 = exact strict comparison; ties must survive
    /// either way).
    fn kim_prunes(kim: f64, threshold: f64, guard: f64) -> bool {
        if guard == 0.0 {
            kim > threshold
        } else {
            kim > threshold + guard * (1.0 + threshold.abs() + kim)
        }
    }

    /// Phase 1 of a candidate: opens its accounting (`candidates`,
    /// `bounds_disabled`) and runs the summary stages against the
    /// caller-precomputed LB_Kim bound (`None` = the producer abstained
    /// — rolling statistics in an untrustworthy regime). The bound must
    /// already be in reported-distance units.
    ///
    /// Returns the pruning stage, or `None` when the candidate survives
    /// (proceed to band planning and [`Cascade::screen_samples`]).
    pub fn screen_summary(
        &self,
        stats: &mut CascadeStats,
        kim: Option<f64>,
        threshold: f64,
    ) -> Option<StageKind> {
        stats.candidates += 1;
        stats.bounds_disabled = !self.bounds_enabled;
        if !self.bounds_enabled {
            return None;
        }
        for stage in &self.stages {
            if let PruneStage::Kim { guard } = stage {
                if let Some(kim) = kim {
                    if Self::kim_prunes(kim, threshold, *guard) {
                        stats.pruned_kim += 1;
                        return Some(StageKind::Kim);
                    }
                }
            }
        }
        None
    }

    /// Phase 2 of a candidate: the sample-level stages, in configured
    /// order, against the pair's (sanitised) band. A stage whose
    /// admissibility precondition fails is skipped; if any stage was
    /// skipped that way the candidate is charged one `lb_inapplicable`
    /// (informational — it still proceeds to the DP).
    ///
    /// Returns the pruning stage, or `None` when the DP must decide.
    pub fn screen_samples(
        &self,
        stats: &mut CascadeStats,
        input: &SampleInput,
        band: &Band,
        threshold: f64,
        scratch: &mut CascadeScratch,
    ) -> Option<StageKind> {
        if !self.bounds_enabled {
            return None;
        }
        let (n, m) = (input.x.len(), input.y.len());
        let mut inapplicable = false;
        for stage in &self.stages {
            let evaluated: Option<(StageKind, f64)> = match stage {
                PruneStage::Kim { .. } => continue,
                PruneStage::Paa => match input.y_coarse {
                    Some(c) if n == m && c.source_len() == m && band.within_window(c.radius()) => {
                        let raw = c.lower_bound(input.x, self.metric, &mut scratch.paa);
                        Some((StageKind::Paa, self.normalize_bound(raw, n, m)))
                    }
                    _ => None,
                },
                PruneStage::Keogh => match input.y_envelope {
                    Some(env) if n == m && band.within_window(env.radius) => {
                        let raw = input
                            .y_keogh_raw
                            .unwrap_or_else(|| lb_keogh_values(input.x, env, self.metric));
                        Some((StageKind::Keogh, self.normalize_bound(raw, n, m)))
                    }
                    _ => None,
                },
                PruneStage::KeoghRev => match input.x_envelope {
                    Some(env) if n == m && band.within_window(env.radius) => {
                        let raw = lb_keogh_values(input.y, env, self.metric);
                        Some((StageKind::KeoghRev, self.normalize_bound(raw, n, m)))
                    }
                    _ => None,
                },
            };
            match evaluated {
                None => inapplicable = true,
                // strict comparisons throughout: a candidate tying the
                // threshold must still be examined — tie-breaks decide it
                Some((kind, bound)) if bound > threshold => {
                    match kind {
                        StageKind::Kim => unreachable!("Kim is a summary stage"),
                        StageKind::Paa => stats.pruned_paa += 1,
                        StageKind::Keogh => stats.pruned_keogh += 1,
                        StageKind::KeoghRev => stats.pruned_keogh_rev += 1,
                    }
                    return Some(kind);
                }
                Some(_) => {}
            }
        }
        if inapplicable {
            stats.lb_inapplicable += 1;
        }
        None
    }
}

// `CascadeStats` is defined in the telemetry spine (`sdtw_obs`) and
// re-exported from its historical home here, so every PR 2-6 call site
// keeps compiling unchanged while the counters stay a view of the
// canonical `QueryTrace` counter block.
pub use sdtw_obs::CascadeStats;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bound::Envelope;
    use crate::sakoe::sakoe_chiba_band;

    fn seeded(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        }
    }

    #[test]
    fn coarse_envelope_compresses_to_the_loosest_tube() {
        let env = Envelope {
            upper: vec![1.0, 3.0, 2.0, 5.0, 4.0],
            lower: vec![-1.0, 0.0, -2.0, 1.0, 0.5],
            radius: 2,
        };
        let coarse = CoarseEnvelope::build(&env, 2);
        assert_eq!(coarse.width(), 2);
        assert_eq!(coarse.source_len(), 5);
        assert_eq!(coarse.radius(), 2);
        assert_eq!(coarse.upper, vec![3.0, 5.0, 4.0]);
        assert_eq!(coarse.lower, vec![-1.0, -2.0, 0.5]);
    }

    #[test]
    fn paa_bound_never_exceeds_lb_keogh_on_seeded_pairs() {
        // the admissibility chain the pre-filter stage rests on:
        // coarse PAA bound <= fine LB_Keogh, for both metrics, across
        // segment widths that do and don't divide the length
        let mut rng = seeded(0xc0a3);
        for metric in [ElementMetric::Squared, ElementMetric::Absolute] {
            for width in [2usize, 3, 4, 8] {
                for _ in 0..10 {
                    let n = 45;
                    let x: Vec<f64> = (0..n).map(|_| 2.0 * rng()).collect();
                    let y: Vec<f64> = (0..n).map(|_| 2.0 * rng()).collect();
                    let env = Envelope::build_from_values(&y, 4);
                    let coarse = CoarseEnvelope::build(&env, width);
                    let fine = lb_keogh_values(&x, &env, metric);
                    let paa = coarse.lower_bound(&x, metric, &mut Vec::new());
                    assert!(
                        paa <= fine + 1e-9,
                        "PAA bound {paa} exceeded LB_Keogh {fine} (w={width}, {metric:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn paa_bound_is_zero_when_the_means_stay_inside_the_tube() {
        let y = vec![0.0, 1.0, 2.0, 1.0, 0.0, -1.0];
        let env = Envelope::build_from_values(&y, 3);
        let coarse = CoarseEnvelope::build(&env, 2);
        let bound = coarse.lower_bound(&y, ElementMetric::Squared, &mut Vec::new());
        assert_eq!(bound, 0.0, "a series is inside its own tube");
    }

    #[test]
    fn cascade_prunes_and_accounts_each_stage() {
        let metric = ElementMetric::Squared;
        let n = 16;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = vec![100.0; n];
        let env = Envelope::build_from_values(&y, 2);
        let x_env = Envelope::build_from_values(&x, 2);
        let coarse = CoarseEnvelope::build(&env, 4);
        let band = sakoe_chiba_band(n, n, 0.25);
        let cascade = Cascade::new(
            vec![
                PruneStage::Kim { guard: 0.0 },
                PruneStage::Paa,
                PruneStage::Keogh,
                PruneStage::KeoghRev,
            ],
            metric,
            Normalization::None,
            true,
        );
        let input = SampleInput {
            x: &x,
            y: &y,
            y_envelope: Some(&env),
            y_keogh_raw: None,
            x_envelope: Some(&x_env),
            y_coarse: Some(&coarse),
        };
        let mut scratch = CascadeScratch::new();

        // a tiny threshold: the Kim bound disposes of the candidate
        let mut stats = CascadeStats::default();
        let verdict = cascade.screen_summary(&mut stats, Some(5.0), 1.0);
        assert_eq!(verdict, Some(StageKind::Kim));
        assert_eq!(stats.pruned_kim, 1);
        assert!(stats.is_consistent());

        // Kim abstains; the PAA stage catches it at the sample phase
        let mut stats = CascadeStats::default();
        assert_eq!(cascade.screen_summary(&mut stats, None, 1.0), None);
        let verdict = cascade.screen_samples(&mut stats, &input, &band, 1.0, &mut scratch);
        assert_eq!(verdict, Some(StageKind::Paa));
        assert_eq!(stats.pruned_paa, 1);
        assert!(stats.is_consistent());

        // a huge threshold: nothing prunes, the DP must decide
        let mut stats = CascadeStats::default();
        assert_eq!(cascade.screen_summary(&mut stats, Some(5.0), 1e12), None);
        let verdict = cascade.screen_samples(&mut stats, &input, &band, 1e12, &mut scratch);
        assert_eq!(verdict, None);
        assert_eq!(stats.lb_inapplicable, 0);
        stats.record_completed(64);
        assert!(stats.is_consistent());
    }

    #[test]
    fn inapplicable_stages_are_counted_once_per_candidate() {
        let n = 12;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = x.clone();
        // a radius-0 envelope with a wide band: every envelope stage is
        // inapplicable, but the candidate is charged only once
        let env = Envelope::build_from_values(&y, 0);
        let coarse = CoarseEnvelope::build(&env, 3);
        let band = sakoe_chiba_band(n, n, 0.5);
        assert!(!band.within_window(0));
        let cascade = Cascade::new(
            vec![PruneStage::Paa, PruneStage::Keogh, PruneStage::KeoghRev],
            ElementMetric::Squared,
            Normalization::None,
            true,
        );
        let input = SampleInput {
            x: &x,
            y: &y,
            y_envelope: Some(&env),
            y_keogh_raw: None,
            x_envelope: Some(&env),
            y_coarse: Some(&coarse),
        };
        let mut stats = CascadeStats {
            candidates: 1,
            ..CascadeStats::default()
        };
        let verdict =
            cascade.screen_samples(&mut stats, &input, &band, 0.0, &mut CascadeScratch::new());
        assert_eq!(verdict, None);
        assert_eq!(stats.lb_inapplicable, 1);
    }

    #[test]
    fn disabled_bounds_skip_every_stage_and_log_it() {
        let cascade = Cascade::new(
            vec![PruneStage::Kim { guard: 0.0 }, PruneStage::Keogh],
            ElementMetric::Squared,
            Normalization::None,
            false,
        );
        let mut stats = CascadeStats::default();
        assert_eq!(cascade.screen_summary(&mut stats, Some(1e9), 0.0), None);
        let x = vec![0.0; 4];
        let env = Envelope::build_from_values(&x, 4);
        let input = SampleInput {
            x: &x,
            y: &x,
            y_envelope: Some(&env),
            y_keogh_raw: None,
            x_envelope: None,
            y_coarse: None,
        };
        let band = sakoe_chiba_band(4, 4, 1.0);
        let verdict =
            cascade.screen_samples(&mut stats, &input, &band, 0.0, &mut CascadeScratch::new());
        assert_eq!(verdict, None);
        assert!(stats.bounds_disabled);
        assert_eq!(stats.pruned_kim + stats.pruned_keogh, 0);
        assert_eq!(stats.lb_inapplicable, 0);
    }

    #[test]
    fn guarded_kim_comparison_is_conservative() {
        // with a guard the bound must clear the threshold by the slack;
        // without one the comparison is exactly strict
        assert!(Cascade::kim_prunes(1.0 + 1e-6, 1.0, 0.0));
        assert!(!Cascade::kim_prunes(1.0, 1.0, 0.0), "ties survive");
        assert!(!Cascade::kim_prunes(1.0 + 1e-9, 1.0, 1e-7));
        assert!(Cascade::kim_prunes(1.1, 1.0, 1e-7));
        // infinite thresholds never prune, guarded or not
        assert!(!Cascade::kim_prunes(1e300, f64::INFINITY, 0.0));
        assert!(!Cascade::kim_prunes(1e300, f64::INFINITY, 1e-7));
    }

    #[test]
    fn bound_normalization_matches_the_engine_units() {
        let c = Cascade::new(
            vec![],
            ElementMetric::Squared,
            Normalization::LengthSum,
            true,
        );
        assert_eq!(c.normalize_bound(10.0, 3, 7), 1.0);
        let c = Cascade::new(vec![], ElementMetric::Squared, Normalization::None, true);
        assert_eq!(c.normalize_bound(10.0, 3, 7), 10.0);
    }

    #[test]
    #[should_panic(expected = "width of at least 2")]
    fn coarse_envelope_rejects_fine_widths() {
        let env = Envelope::build_from_values(&[0.0, 1.0], 1);
        let _ = CoarseEnvelope::build(&env, 1);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let env = Envelope {
            upper: vec![1.0, 3.0, 2.0, 5.0, 4.0],
            lower: vec![-1.0, 0.0, -2.0, 1.0, 0.5],
            radius: 2,
        };
        let built = CoarseEnvelope::build(&env, 2);
        let re = CoarseEnvelope::from_parts(
            built.upper().to_vec(),
            built.lower().to_vec(),
            built.width(),
            built.source_len(),
            built.radius(),
        )
        .unwrap();
        assert_eq!(re, built, "accessors + from_parts are a round trip");
        // violated invariants are rejected, not silently accepted
        assert!(CoarseEnvelope::from_parts(vec![0.0], vec![0.0], 1, 2, 0).is_err());
        assert!(CoarseEnvelope::from_parts(vec![0.0], vec![0.0], 2, 0, 0).is_err());
        assert!(
            CoarseEnvelope::from_parts(vec![0.0; 2], vec![0.0; 3], 2, 5, 0).is_err(),
            "column lengths must agree with the segmentation"
        );
        assert!(CoarseEnvelope::from_parts(vec![0.0; 4], vec![0.0; 4], 2, 5, 0).is_err());
    }
}
