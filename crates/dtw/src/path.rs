//! Warp-path representation and validation.

use sdtw_tseries::{ElementMetric, TimeSeries};
use serde::{Deserialize, Serialize};

/// A warp path `W = (w_1 … w_K)` over an `N × M` grid (paper §2.1.1):
///
/// * `max(N, M) ≤ K ≤ N + M`,
/// * `w_1 = (0, 0)` and `w_K = (N−1, M−1)` (0-based here),
/// * consecutive steps differ by `(1,0)`, `(0,1)` or `(1,1)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarpPath {
    steps: Vec<(usize, usize)>,
}

impl WarpPath {
    /// Wraps a step sequence without validation (the engine guarantees
    /// validity by construction; call [`WarpPath::validate`] in tests).
    pub fn from_steps(steps: Vec<(usize, usize)>) -> Self {
        Self { steps }
    }

    /// The steps, first-to-last.
    pub fn steps(&self) -> &[(usize, usize)] {
        &self.steps
    }

    /// Path length `K`.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a valid path is never empty
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Checks all warp-path conditions for an `n × m` grid; returns a
    /// human-readable violation if any.
    pub fn validate(&self, n: usize, m: usize) -> Result<(), String> {
        if self.steps.is_empty() {
            return Err("empty path".into());
        }
        if self.steps[0] != (0, 0) {
            return Err(format!("path starts at {:?}, not (0,0)", self.steps[0]));
        }
        let last = *self.steps.last().expect("non-empty");
        if last != (n - 1, m - 1) {
            return Err(format!("path ends at {last:?}, not ({},{})", n - 1, m - 1));
        }
        for (k, w) in self.steps.windows(2).enumerate() {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            let di = i1 as isize - i0 as isize;
            let dj = j1 as isize - j0 as isize;
            if !matches!((di, dj), (1, 0) | (0, 1) | (1, 1)) {
                return Err(format!("illegal step {k}: {:?} -> {:?}", w[0], w[1]));
            }
        }
        let k = self.steps.len();
        if k < n.max(m) || k > n + m {
            return Err(format!(
                "path length {k} outside [max(N,M), N+M] = [{}, {}]",
                n.max(m),
                n + m
            ));
        }
        Ok(())
    }

    /// Total cost of the path under a metric:
    /// `Δ(W) = Σ Δ(x[w_l.0], y[w_l.1])` (paper §2.1.2).
    pub fn cost(&self, x: &TimeSeries, y: &TimeSeries, metric: ElementMetric) -> f64 {
        self.steps
            .iter()
            .map(|&(i, j)| metric.eval(x.at(i), y.at(j)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_path() {
        let p = WarpPath::from_steps(vec![(0, 0), (1, 1), (1, 2), (2, 2)]);
        assert!(p.validate(3, 3).is_ok());
    }

    #[test]
    fn rejects_wrong_endpoints() {
        let p = WarpPath::from_steps(vec![(0, 1), (1, 1), (2, 2)]);
        assert!(p.validate(3, 3).unwrap_err().contains("starts"));
        let p = WarpPath::from_steps(vec![(0, 0), (1, 1)]);
        assert!(p.validate(3, 3).unwrap_err().contains("ends"));
    }

    #[test]
    fn rejects_illegal_steps() {
        // backwards
        let p = WarpPath::from_steps(vec![(0, 0), (1, 1), (0, 1), (2, 2)]);
        assert!(p.validate(3, 3).unwrap_err().contains("illegal step"));
        // jump
        let p = WarpPath::from_steps(vec![(0, 0), (2, 2)]);
        assert!(p.validate(3, 3).unwrap_err().contains("illegal step"));
        // stall
        let p = WarpPath::from_steps(vec![(0, 0), (0, 0), (1, 1), (2, 2)]);
        assert!(p.validate(3, 3).is_err());
    }

    #[test]
    fn rejects_empty() {
        assert!(WarpPath::from_steps(vec![]).validate(1, 1).is_err());
    }

    #[test]
    fn length_bounds_are_enforced_structurally() {
        // pure-diagonal path has length max(N,M) on a square grid
        let p = WarpPath::from_steps(vec![(0, 0), (1, 1), (2, 2)]);
        assert!(p.validate(3, 3).is_ok());
        // all-right-then-down path hits the N+M-1 upper region
        let p = WarpPath::from_steps(vec![(0, 0), (0, 1), (0, 2), (1, 2), (2, 2)]);
        assert!(p.validate(3, 3).is_ok());
    }

    #[test]
    fn one_cell_grid_path() {
        let p = WarpPath::from_steps(vec![(0, 0)]);
        assert!(p.validate(1, 1).is_ok());
    }

    #[test]
    fn cost_sums_element_metric_along_path() {
        let x = TimeSeries::new(vec![0.0, 1.0]).unwrap();
        let y = TimeSeries::new(vec![0.0, 3.0]).unwrap();
        let p = WarpPath::from_steps(vec![(0, 0), (1, 1)]);
        assert_eq!(p.cost(&x, &y, ElementMetric::Squared), 4.0);
        assert_eq!(p.cost(&x, &y, ElementMetric::Absolute), 2.0);
    }
}
