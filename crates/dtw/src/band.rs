//! Band representation: one allowed column interval per grid row.
//!
//! A band over an `N × M` DTW grid stores, for each row `i` (an element of
//! the first series `X`), the inclusive interval of columns `j` (elements of
//! the second series `Y`) the warp path may visit. Bands are the common
//! currency of every pruning policy in this repository.

use serde::{Deserialize, Serialize};

/// Inclusive column interval `[lo, hi]` for one grid row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColRange {
    /// First allowed column.
    pub lo: usize,
    /// Last allowed column (inclusive).
    pub hi: usize,
}

impl ColRange {
    /// Constructs a range, normalising an inverted pair.
    pub fn new(lo: usize, hi: usize) -> Self {
        if lo <= hi {
            Self { lo, hi }
        } else {
            Self { lo: hi, hi: lo }
        }
    }

    /// Number of columns in the range.
    #[inline]
    pub fn width(&self) -> usize {
        self.hi - self.lo + 1
    }

    /// Whether the range contains column `j`.
    #[inline]
    pub fn contains(&self, j: usize) -> bool {
        self.lo <= j && j <= self.hi
    }
}

/// A band over an `N × M` grid: `rows[i]` is the allowed column interval of
/// row `i`. Invariants (enforced by constructors): `rows.len() == n`, every
/// range is within `[0, m)`.
///
/// A band is *feasible* when the DP recurrence can complete: row 0 contains
/// column 0, row `n-1` contains column `m-1`, and a monotone warp path can
/// thread the rows. [`Band::sanitize`] turns any band into a feasible one by
/// only ever widening ranges (so the sanitised band is a superset — pruning
/// decisions made by a constraint builder are never reversed, gaps are
/// bridged exactly as the paper requires in §3.3.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Band {
    n: usize,
    m: usize,
    rows: Vec<ColRange>,
}

impl Band {
    /// Builds a band from per-row ranges, clamping every range into
    /// `[0, m)`.
    ///
    /// # Panics
    ///
    /// Panics when `ranges.len() != n`, or `n == 0`, or `m == 0` — these are
    /// programmer errors, not data errors.
    pub fn from_ranges(n: usize, m: usize, ranges: Vec<ColRange>) -> Self {
        assert!(n > 0 && m > 0, "band dimensions must be positive");
        assert_eq!(ranges.len(), n, "one range per row required");
        let rows = ranges
            .into_iter()
            .map(|r| ColRange::new(r.lo.min(m - 1), r.hi.min(m - 1)))
            .collect();
        Self { n, m, rows }
    }

    /// The full (unconstrained) band: every row allows every column.
    pub fn full(n: usize, m: usize) -> Self {
        assert!(n > 0 && m > 0, "band dimensions must be positive");
        Self {
            n,
            m,
            rows: vec![ColRange { lo: 0, hi: m - 1 }; n],
        }
    }

    /// Number of rows (`N`, length of `X`).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of columns (`M`, length of `Y`).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Range of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> ColRange {
        self.rows[i]
    }

    /// All ranges.
    pub fn rows(&self) -> &[ColRange] {
        &self.rows
    }

    /// Whether cell `(i, j)` is inside the band.
    #[inline]
    pub fn contains(&self, i: usize, j: usize) -> bool {
        i < self.n && self.rows[i].contains(j)
    }

    /// Whether both band edges are non-decreasing row over row (a
    /// "staircase" band). Every classic constraint family — full grid,
    /// Sakoe-Chiba, Itakura — and most sanitised sDTW bands have this
    /// shape; the wavefront engine exploits it to enumerate each
    /// anti-diagonal's cells as one tight, hole-free row interval without
    /// per-cell membership tests.
    pub fn is_staircase(&self) -> bool {
        self.rows
            .windows(2)
            .all(|w| w[0].lo <= w[1].lo && w[0].hi <= w[1].hi)
    }

    /// Number of grid cells inside the band — the work the DP kernel will
    /// do. This is the deterministic cost proxy reported throughout the
    /// experiments.
    pub fn area(&self) -> usize {
        self.rows.iter().map(|r| r.width()).sum()
    }

    /// Fraction of the full grid covered by the band, in `(0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.area() as f64 / (self.n as f64 * self.m as f64)
    }

    /// Pointwise union with another band of the same dimensions. Used for
    /// the symmetric variant of the adaptive constraints (paper §3.3.3:
    /// "performing the dynamic programming step using a combined band").
    ///
    /// Because each row holds a single interval, the union of two intervals
    /// is their convex hull — a superset of the set union, which keeps the
    /// result representable and errs on the side of *less* pruning (never
    /// worse accuracy).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn union(&self, other: &Band) -> Band {
        assert_eq!(
            (self.n, self.m),
            (other.n, other.m),
            "band dimensions must match"
        );
        let rows = self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| ColRange {
                lo: a.lo.min(b.lo),
                hi: a.hi.max(b.hi),
            })
            .collect();
        Band {
            n: self.n,
            m: self.m,
            rows,
        }
    }

    /// Pointwise intersection with another band of the same dimensions.
    /// Rows whose intervals are disjoint collapse to a single seed cell
    /// (the midpoint of the gap between them, clamped into the wider
    /// interval's end) and are left for the sanitiser to bridge. Used to
    /// combine an sDTW band with a multi-resolution corridor — the paper's
    /// "naturally be implemented along with reduced representation based
    /// solutions" (§2.1.4).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn intersect(&self, other: &Band) -> Band {
        assert_eq!(
            (self.n, self.m),
            (other.n, other.m),
            "band dimensions must match"
        );
        let rows = self
            .rows
            .iter()
            .zip(&other.rows)
            .map(|(a, b)| {
                let lo = a.lo.max(b.lo);
                let hi = a.hi.min(b.hi);
                if lo <= hi {
                    ColRange { lo, hi }
                } else {
                    // disjoint: seed the midpoint of the gap
                    let mid = (a.hi.min(b.hi) + a.lo.max(b.lo)) / 2;
                    ColRange::new(mid.min(self.m - 1), mid.min(self.m - 1))
                }
            })
            .collect();
        Band {
            n: self.n,
            m: self.m,
            rows,
        }
    }

    /// Whether every band row stays inside the symmetric `±radius`
    /// Sakoe-Chiba window (`j ∈ [i − radius, i + radius]` for every
    /// in-band cell `(i, j)`).
    ///
    /// This is the containment condition under which an LB_Keogh envelope
    /// of radius `radius` soundly lower-bounds the banded DTW distance:
    /// the envelope tube dominates every alignment the band can make.
    /// Retrieval cascades (`sdtw-index`, `sdtw-stream`) consult it before
    /// enabling their LB_Keogh stages. Callers comparing equal-length
    /// series should additionally require `n == m` (the classic LB_Keogh
    /// formulation); this method checks only the window containment.
    pub fn within_window(&self, radius: usize) -> bool {
        self.rows
            .iter()
            .enumerate()
            .all(|(i, r)| r.lo.saturating_add(radius) >= i && r.hi <= i.saturating_add(radius))
    }

    /// Transposes the band: the result constrains the `M × N` grid of
    /// `(Y, X)` with exactly the cells `(j, i)` for in-band `(i, j)` —
    /// except that per-row storage forces each transposed row to the convex
    /// hull of its column set. Used to combine asymmetric adaptive bands.
    #[must_use]
    pub fn transpose(&self) -> Band {
        let mut lo = vec![usize::MAX; self.m];
        let mut hi = vec![0usize; self.m];
        for (i, r) in self.rows.iter().enumerate() {
            for j in r.lo..=r.hi {
                lo[j] = lo[j].min(i);
                hi[j] = hi[j].max(i);
            }
        }
        // Columns never touched by the band get a minimal placeholder range
        // on the main diagonal; sanitisation will bridge them.
        let rows = (0..self.m)
            .map(|j| {
                if lo[j] == usize::MAX {
                    let diag = if self.m > 1 {
                        j * (self.n - 1) / (self.m - 1).max(1)
                    } else {
                        0
                    };
                    ColRange::new(diag.min(self.n - 1), diag.min(self.n - 1))
                } else {
                    ColRange::new(lo[j], hi[j])
                }
            })
            .collect();
        Band {
            n: self.m,
            m: self.n,
            rows,
        }
    }

    /// Checks feasibility: row 0 contains column 0, the last row contains
    /// the last column, and every consecutive row pair admits a monotone
    /// step (`lo[i] ≤ hi[i-1] + 1` and the running reachable left edge
    /// stays inside every row).
    pub fn is_feasible(&self) -> bool {
        if self.rows[0].lo != 0 || self.rows[self.n - 1].hi != self.m - 1 {
            return false;
        }
        // Simulate reachability: a_i = left edge of the reachable suffix of
        // row i (see sanitize for the invariant argument).
        let mut a = self.rows[0].lo;
        for i in 1..self.n {
            let prev = self.rows[i - 1];
            let cur = self.rows[i];
            if cur.lo > prev.hi + 1 {
                return false;
            }
            let entry = a.max(cur.lo);
            if entry > cur.hi || entry > prev.hi + 1 {
                return false;
            }
            a = entry;
        }
        true
    }

    /// Makes the band feasible by minimally widening ranges:
    ///
    /// 1. row 0 is extended to contain column 0, the last row to contain
    ///    the last column;
    /// 2. whenever `lo[i] > hi[i-1] + 1` (a gap the warp path could not
    ///    jump), `lo[i]` is pulled down to `hi[i-1] + 1` — this is the
    ///    paper's gap bridging;
    /// 3. whenever the running reachable left edge `a` exceeds `hi[i]`,
    ///    `hi[i]` is raised to `a` (the row would otherwise sit entirely to
    ///    the left of anything reachable).
    ///
    /// The result always contains the input band and satisfies
    /// [`Band::is_feasible`].
    #[must_use]
    pub fn sanitize(&self) -> Band {
        let mut rows = self.rows.clone();
        rows[0].lo = 0;
        let last = self.n - 1;
        rows[last].hi = self.m - 1;
        let mut a = rows[0].lo; // reachable left edge of row 0
        for i in 1..self.n {
            if rows[i].lo > rows[i - 1].hi + 1 {
                rows[i].lo = rows[i - 1].hi + 1;
            }
            let entry = a.max(rows[i].lo);
            if entry > rows[i].hi {
                rows[i].hi = entry;
            }
            a = entry;
        }
        let out = Band {
            n: self.n,
            m: self.m,
            rows,
        };
        debug_assert!(out.is_feasible(), "sanitize must produce a feasible band");
        out
    }

    /// Whether `other` covers at least every cell of `self`.
    pub fn is_subset_of(&self, other: &Band) -> bool {
        self.n == other.n
            && self.m == other.m
            && self
                .rows
                .iter()
                .zip(&other.rows)
                .all(|(a, b)| b.lo <= a.lo && a.hi <= b.hi)
    }

    /// Renders the band as ASCII art (rows printed top-to-bottom as in the
    /// paper's Figure 10, i.e. the last row of `X` first), `#` for in-band
    /// cells. Intended for examples and debugging, capped at 80×80.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        let max_dim = 80;
        let row_step = self.n.div_ceil(max_dim);
        let col_step = self.m.div_ceil(max_dim);
        for i_chunk in (0..self.n).step_by(row_step.max(1)).rev() {
            for j_chunk in (0..self.m).step_by(col_step.max(1)) {
                let mut hit = false;
                'scan: for i in i_chunk..(i_chunk + row_step).min(self.n) {
                    for j in j_chunk..(j_chunk + col_step).min(self.m) {
                        if self.contains(i, j) {
                            hit = true;
                            break 'scan;
                        }
                    }
                }
                out.push(if hit { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band(n: usize, m: usize, ranges: &[(usize, usize)]) -> Band {
        Band::from_ranges(
            n,
            m,
            ranges
                .iter()
                .map(|&(lo, hi)| ColRange::new(lo, hi))
                .collect(),
        )
    }

    #[test]
    fn staircase_detection() {
        assert!(Band::full(4, 6).is_staircase());
        assert!(band(3, 8, &[(0, 2), (1, 4), (3, 7)]).is_staircase());
        // lo dips back down between rows: feasible, but not a staircase
        assert!(!band(3, 8, &[(0, 7), (3, 7), (1, 7)]).is_staircase());
        // hi regresses
        assert!(!band(3, 8, &[(0, 6), (0, 4), (0, 7)]).is_staircase());
    }

    #[test]
    fn col_range_normalises_and_measures() {
        let r = ColRange::new(5, 2);
        assert_eq!((r.lo, r.hi), (2, 5));
        assert_eq!(r.width(), 4);
        assert!(r.contains(2) && r.contains(5) && !r.contains(6));
    }

    #[test]
    fn full_band_covers_everything() {
        let b = Band::full(3, 4);
        assert_eq!(b.area(), 12);
        assert!((b.coverage() - 1.0).abs() < 1e-12);
        assert!(b.is_feasible());
        assert!(b.contains(2, 3));
        assert!(!b.contains(3, 0));
    }

    #[test]
    fn from_ranges_clamps_to_grid() {
        let b = band(2, 3, &[(0, 99), (1, 99)]);
        assert_eq!(b.row(0), ColRange { lo: 0, hi: 2 });
        assert_eq!(b.row(1), ColRange { lo: 1, hi: 2 });
    }

    #[test]
    #[should_panic(expected = "one range per row")]
    fn from_ranges_requires_matching_len() {
        let _ = Band::from_ranges(3, 3, vec![ColRange::new(0, 1)]);
    }

    #[test]
    fn area_and_coverage() {
        let b = band(3, 5, &[(0, 1), (1, 3), (4, 4)]);
        assert_eq!(b.area(), 2 + 3 + 1);
        assert!((b.coverage() - 6.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn feasibility_detects_missing_corners() {
        let b = band(3, 3, &[(1, 2), (0, 2), (0, 2)]);
        assert!(!b.is_feasible()); // (0,0) missing
        let b = band(3, 3, &[(0, 2), (0, 2), (0, 1)]);
        assert!(!b.is_feasible()); // (2,2) missing
    }

    #[test]
    fn feasibility_detects_gaps() {
        // row1 starts at column 2 but row0 ends at column 0: unjumpable
        let b = band(3, 4, &[(0, 0), (2, 3), (3, 3)]);
        assert!(!b.is_feasible());
        let fixed = b.sanitize();
        assert!(fixed.is_feasible());
        assert!(b.is_subset_of(&fixed));
    }

    #[test]
    fn sanitize_bridges_backward_jumps() {
        // row1 sits entirely left of anything reachable from row0
        let b = band(3, 6, &[(3, 5), (0, 1), (4, 5)]);
        let fixed = b.sanitize();
        assert!(fixed.is_feasible());
        assert!(b.is_subset_of(&fixed));
        // row0 must now include column 0
        assert_eq!(fixed.row(0).lo, 0);
    }

    #[test]
    fn sanitize_is_idempotent_on_feasible_bands() {
        let b = Band::full(5, 7);
        assert_eq!(b.sanitize(), b);
        let diag = band(4, 4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(diag.is_feasible());
        assert_eq!(diag.sanitize(), diag);
    }

    #[test]
    fn intersect_keeps_common_cells() {
        let a = band(3, 8, &[(0, 4), (2, 6), (4, 7)]);
        let b = band(3, 8, &[(2, 7), (0, 3), (5, 7)]);
        let i = a.intersect(&b);
        assert_eq!(i.row(0), ColRange { lo: 2, hi: 4 });
        assert_eq!(i.row(1), ColRange { lo: 2, hi: 3 });
        assert_eq!(i.row(2), ColRange { lo: 5, hi: 7 });
        assert!(i.is_subset_of(&a) && i.is_subset_of(&b));
    }

    #[test]
    fn intersect_of_disjoint_rows_seeds_and_sanitises() {
        let a = band(2, 10, &[(0, 2), (0, 2)]);
        let b = band(2, 10, &[(7, 9), (7, 9)]);
        let i = a.intersect(&b).sanitize();
        assert!(i.is_feasible());
        // seeded rows carry exactly one pre-sanitise cell each
        let raw = a.intersect(&b);
        assert_eq!(raw.row(0).width(), 1);
    }

    #[test]
    fn intersect_with_full_is_identity() {
        let a = band(3, 5, &[(0, 1), (1, 3), (2, 4)]);
        assert_eq!(a.intersect(&Band::full(3, 5)), a);
    }

    #[test]
    fn union_takes_convex_hull_per_row() {
        let a = band(2, 6, &[(0, 1), (4, 5)]);
        let b = band(2, 6, &[(3, 4), (0, 1)]);
        let u = a.union(&b);
        assert_eq!(u.row(0), ColRange { lo: 0, hi: 4 });
        assert_eq!(u.row(1), ColRange { lo: 0, hi: 5 });
        assert!(a.is_subset_of(&u) && b.is_subset_of(&u));
    }

    #[test]
    #[should_panic(expected = "band dimensions must match")]
    fn union_rejects_dimension_mismatch() {
        let _ = Band::full(2, 2).union(&Band::full(3, 2));
    }

    #[test]
    fn transpose_swaps_dimensions_and_keeps_cells() {
        let b = band(3, 4, &[(0, 1), (1, 2), (2, 3)]);
        let t = b.transpose();
        assert_eq!(t.n(), 4);
        assert_eq!(t.m(), 3);
        for i in 0..3 {
            for j in 0..4 {
                if b.contains(i, j) {
                    assert!(t.contains(j, i), "cell ({i},{j}) lost in transpose");
                }
            }
        }
    }

    #[test]
    fn transpose_fills_untouched_columns_with_diagonal_seed() {
        // band touching only column 0: other columns get placeholder cells
        let b = band(3, 4, &[(0, 0), (0, 0), (0, 0)]);
        let t = b.transpose();
        assert_eq!(t.n(), 4);
        for j in 0..4 {
            assert!(t.row(j).width() >= 1);
        }
    }

    #[test]
    fn subset_reflexive_and_detects_non_subsets() {
        let b = band(2, 4, &[(0, 2), (1, 3)]);
        assert!(b.is_subset_of(&b));
        assert!(b.is_subset_of(&Band::full(2, 4)));
        assert!(!Band::full(2, 4).is_subset_of(&b));
    }

    #[test]
    fn render_ascii_shape() {
        let b = band(3, 3, &[(0, 0), (1, 1), (2, 2)]);
        let art = b.render_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        // top line is the LAST row of X (paper orientation)
        assert_eq!(lines[0], "..#");
        assert_eq!(lines[1], ".#.");
        assert_eq!(lines[2], "#..");
    }

    #[test]
    fn one_by_one_grid() {
        let b = Band::full(1, 1);
        assert!(b.is_feasible());
        assert_eq!(b.area(), 1);
        assert_eq!(b.sanitize(), b);
    }

    #[test]
    fn within_window_accepts_contained_bands_and_rejects_escapes() {
        // diagonal ± 1 fits a radius-1 window, not radius 0
        let b = band(4, 4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(b.within_window(1));
        assert!(!b.within_window(0));
        // the full band only fits once the radius covers the whole grid
        let full = Band::full(5, 5);
        assert!(full.within_window(4));
        assert!(!full.within_window(3));
        // the identity diagonal fits radius 0
        let diag = band(3, 3, &[(0, 0), (1, 1), (2, 2)]);
        assert!(diag.within_window(0));
        // oversized radii saturate instead of overflowing
        assert!(full.within_window(usize::MAX));
    }
}
