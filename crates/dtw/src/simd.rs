//! Portable explicit-SIMD lane layer: a fixed-width `f64` vector type and
//! the process-wide lane-mode selector.
//!
//! The wavefront DP fill ([`crate::engine`]) and the batched lower bounds
//! ([`crate::lower_bound`]) restructure their hot loops around
//! [`F64Lanes`]: a `#[repr(align(64))]` wrapper over `[f64; LANE_WIDTH]`
//! whose lanewise operations are plain per-lane loops over a fixed-size
//! array — the shape LLVM reliably widens to vector instructions (2×
//! `vaddpd`/`vminpd` on AVX2, 1× on AVX-512, plain `addpd` pairs on SSE2)
//! without any `unsafe`, `std::simd`, or registry dependency.
//!
//! # Bit-identity contract
//!
//! Every consumer of this module relies on lane results being
//! **bit-identical** to the scalar reference:
//!
//! * each lane executes the *same IEEE-754 op sequence* as the scalar
//!   code — per-lane `a + b`, `a * b`, `a - b`, `|a|` are the very same
//!   hardware operations whether they sit in a vector register or not, so
//!   per-cell values cannot drift;
//! * [`F64Lanes::min`] / [`F64Lanes::max`] are defined by comparison +
//!   select, which equals `f64::min` / `f64::max` bitwise on the values
//!   that occur here (no NaNs — inputs are finite by `TimeSeries`
//!   construction, and `+∞ + finite = +∞`; no `-0.0` — local costs are
//!   `d²` or `|d|`, and sums of non-negative values stay `+0.0`);
//! * [`F64Lanes::horizontal_min`] folds lanes with `f64::min`, which is
//!   associative and commutative over non-NaN values, so a lane-then-fold
//!   minimum equals the scalar left-to-right minimum *as a value* even
//!   though the fold order differs — early-abandon decisions compare the
//!   same number either way;
//! * [`F64Lanes::select`] reproduces scalar `if`/`else if`/`else` chains
//!   lane-by-lane (the taken branch's value, bit for bit); evaluating the
//!   untaken branch's expression lanewise is harmless because its result
//!   is discarded by the select.
//!
//! [`SimdMode`] mirrors [`crate::engine::DtwEngine`]: `SDTW_SIMD=scalar`
//! forces the scalar loops, `=lanes` (or unset) the explicit lanes, and
//! the differential harness pins both modes inside one process to prove
//! them bit-identical.

use sdtw_tseries::{ElementMetric, TsError};
use std::sync::OnceLock;

/// Number of `f64` lanes in one [`F64Lanes`] vector.
///
/// Eight lanes (512 bits) keep the type one cache line wide and give the
/// autovectoriser room to emit two AVX2 (or one AVX-512) operation(s) per
/// lanewise call; [`crate::lower_bound::LB_LANES`] is defined as this
/// width so the batched-bound chunking and the DP lane sweep agree on one
/// number.
pub const LANE_WIDTH: usize = 8;

/// A fixed-width vector of `f64` lanes (see the module docs for the
/// bit-identity contract its operations honour).
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(64))]
pub struct F64Lanes([f64; LANE_WIDTH]);

/// A per-lane boolean mask, produced by lane comparisons and consumed by
/// [`F64Lanes::select`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneMask([bool; LANE_WIDTH]);

impl LaneMask {
    /// Builds a mask lane-by-lane from a predicate on the lane index.
    #[inline(always)]
    pub fn from_fn(f: impl FnMut(usize) -> bool) -> Self {
        Self(std::array::from_fn(f))
    }

    /// The lane at index `l`.
    #[inline(always)]
    pub fn lane(&self, l: usize) -> bool {
        self.0[l]
    }
}

impl F64Lanes {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; LANE_WIDTH])
    }

    /// Builds a vector lane-by-lane from a function of the lane index
    /// (the gather shape: one value per candidate of a chunk).
    #[inline(always)]
    pub fn from_fn(f: impl FnMut(usize) -> f64) -> Self {
        Self(std::array::from_fn(f))
    }

    /// Loads the first [`LANE_WIDTH`] values of `src` (forward,
    /// contiguous).
    ///
    /// # Panics
    ///
    /// Panics when `src` holds fewer than [`LANE_WIDTH`] values.
    #[inline(always)]
    pub fn load(src: &[f64]) -> Self {
        let mut out = [0.0; LANE_WIDTH];
        out.copy_from_slice(&src[..LANE_WIDTH]);
        Self(out)
    }

    /// Loads the first [`LANE_WIDTH`] values of `src` in reverse order:
    /// lane `l` gets `src[LANE_WIDTH - 1 - l]`. This is the `Y`-side load
    /// of a wavefront chunk — along an anti-diagonal `d`, ascending rows
    /// `i` read *descending* columns `j = d - i`, so the column window is
    /// contiguous but reversed.
    ///
    /// # Panics
    ///
    /// Panics when `src` holds fewer than [`LANE_WIDTH`] values.
    #[inline(always)]
    pub fn load_reversed(src: &[f64]) -> Self {
        let window = &src[..LANE_WIDTH];
        Self(std::array::from_fn(|l| window[LANE_WIDTH - 1 - l]))
    }

    /// Stores all lanes into the first [`LANE_WIDTH`] slots of `dst`.
    ///
    /// # Panics
    ///
    /// Panics when `dst` holds fewer than [`LANE_WIDTH`] slots.
    #[inline(always)]
    pub fn store(self, dst: &mut [f64]) {
        dst[..LANE_WIDTH].copy_from_slice(&self.0);
    }

    /// The lanes as a plain array reference (bulk appends).
    #[inline(always)]
    pub fn as_array(&self) -> &[f64; LANE_WIDTH] {
        &self.0
    }

    /// The lane at index `l`.
    #[inline(always)]
    pub fn lane(&self, l: usize) -> f64 {
        self.0[l]
    }

    /// Lanewise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        Self::from_fn(|l| self.0[l].abs())
    }

    /// Lanewise minimum by compare-and-select (`vminpd` shape). Equals
    /// `f64::min` bitwise on non-NaN inputs without mixed-sign zeros —
    /// the only values the DP and the bounds produce (module docs).
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        Self::from_fn(|l| {
            if self.0[l] <= rhs.0[l] {
                self.0[l]
            } else {
                rhs.0[l]
            }
        })
    }

    /// Lanewise maximum by compare-and-select (`vmaxpd` shape); same
    /// equivalence caveats as [`F64Lanes::min`].
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        Self::from_fn(|l| {
            if self.0[l] >= rhs.0[l] {
                self.0[l]
            } else {
                rhs.0[l]
            }
        })
    }

    /// Lanewise `self > rhs`.
    #[inline(always)]
    pub fn gt(self, rhs: Self) -> LaneMask {
        LaneMask::from_fn(|l| self.0[l] > rhs.0[l])
    }

    /// Lanewise `self < rhs`.
    #[inline(always)]
    pub fn lt(self, rhs: Self) -> LaneMask {
        LaneMask::from_fn(|l| self.0[l] < rhs.0[l])
    }

    /// Per-lane `if mask { on_true } else { on_false }` (`vblendvpd`
    /// shape).
    #[inline(always)]
    pub fn select(mask: LaneMask, on_true: Self, on_false: Self) -> Self {
        Self::from_fn(|l| {
            if mask.lane(l) {
                on_true.0[l]
            } else {
                on_false.0[l]
            }
        })
    }

    /// Horizontal minimum across all lanes, folded with `f64::min`. Over
    /// non-NaN values the result equals the scalar running minimum of the
    /// same set regardless of accumulation order, which is why the
    /// wavefront's early-abandon test may use it in place of the scalar
    /// per-cell fold.
    #[inline(always)]
    pub fn horizontal_min(self) -> f64 {
        self.0.iter().fold(f64::INFINITY, |acc, &v| acc.min(v))
    }
}

impl std::ops::Add for F64Lanes {
    type Output = Self;

    /// Lanewise `self + rhs`.
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self::from_fn(|l| self.0[l] + rhs.0[l])
    }
}

impl std::ops::Sub for F64Lanes {
    type Output = Self;

    /// Lanewise `self - rhs`.
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self::from_fn(|l| self.0[l] - rhs.0[l])
    }
}

impl std::ops::Mul for F64Lanes {
    type Output = Self;

    /// Lanewise `self * rhs`.
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self::from_fn(|l| self.0[l] * rhs.0[l])
    }
}

/// Lanewise [`ElementMetric::eval`]: the identical per-lane op sequence
/// (`d = x - y`, then `d * d` or `|d|`), hence bit-identical to the
/// scalar metric on every lane.
#[inline(always)]
pub fn lanes_eval(metric: ElementMetric, x: F64Lanes, y: F64Lanes) -> F64Lanes {
    let d = x - y;
    match metric {
        ElementMetric::Squared => d * d,
        ElementMetric::Absolute => d.abs(),
    }
}

/// Whether the hot loops run their explicit-lane or scalar form.
///
/// Mirrors [`crate::engine::DtwEngine`]: process-wide default from the
/// `SDTW_SIMD` environment variable ([`SimdMode::selected`]), overridable
/// per call via the engine's `*_pinned` entry points or the core
/// `Query::simd` builder knob. The two modes are **bit-identical** in
/// distances, abandon decisions and cascade counters — the differential
/// harness pins both inside one process to prove it — so the choice is
/// purely an execution-shape decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimdMode {
    /// One cell / one candidate at a time (the PR 6 loops; also the
    /// reference the lanes mode is differentially tested against).
    Scalar,
    /// Explicit [`F64Lanes`] sweeps with scalar tails (the default).
    #[default]
    Lanes,
}

impl SimdMode {
    /// Parses a mode name (`"scalar"` / `"lanes"`, case-insensitive; the
    /// empty string selects the default). Returns `None` for anything
    /// else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "lanes" => Some(Self::Lanes),
            "scalar" => Some(Self::Scalar),
            _ => None,
        }
    }

    /// Resolves an optional `SDTW_SIMD` value to a mode: `None` (unset)
    /// is the default; an unparsable value is a proper
    /// [`TsError::InvalidParameter`], never a panic. This is the pure
    /// core of [`SimdMode::from_env`], split out so tests can exercise
    /// the error path without mutating the process environment.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] on an unrecognised value.
    pub fn from_env_value(value: Option<&str>) -> Result<Self, TsError> {
        match value {
            None => Ok(Self::default()),
            Some(v) => Self::parse(v).ok_or_else(|| TsError::InvalidParameter {
                name: "SDTW_SIMD",
                reason: format!("must be 'scalar' or 'lanes', got '{v}'"),
            }),
        }
    }

    /// Reads and validates the `SDTW_SIMD` environment variable.
    /// Front-ends (the CLI) call this once at startup so a misspelt
    /// override surfaces as an error message instead of a panic or a
    /// silently benchmarked default.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] on an unrecognised value.
    pub fn from_env() -> Result<Self, TsError> {
        Self::from_env_value(std::env::var("SDTW_SIMD").ok().as_deref())
    }

    /// The process-wide mode selection: `SDTW_SIMD`, read once and cached
    /// (the CI matrix forces each value in turn); unset defaults to
    /// [`SimdMode::Lanes`]. An invalid value also falls back to the
    /// default here — validation lives in [`SimdMode::from_env`], which
    /// front-ends invoke at startup to fail fast with a proper error.
    pub fn selected() -> Self {
        static SELECTED: OnceLock<SimdMode> = OnceLock::new();
        *SELECTED.get_or_init(|| Self::from_env().unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                4.0 * (((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
            })
            .collect()
    }

    #[test]
    fn splat_load_store_roundtrip() {
        let v = seeded(1, LANE_WIDTH + 3);
        let lanes = F64Lanes::load(&v);
        let mut out = vec![0.0; LANE_WIDTH];
        lanes.store(&mut out);
        assert_eq!(out, v[..LANE_WIDTH]);
        assert!(F64Lanes::splat(2.5).as_array().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn load_reversed_reverses_the_window() {
        let v = seeded(2, LANE_WIDTH + 2);
        let lanes = F64Lanes::load_reversed(&v);
        for l in 0..LANE_WIDTH {
            assert_eq!(lanes.lane(l).to_bits(), v[LANE_WIDTH - 1 - l].to_bits());
        }
    }

    #[test]
    fn lanewise_arithmetic_matches_scalar_bitwise() {
        let a = F64Lanes::load(&seeded(3, LANE_WIDTH));
        let b = F64Lanes::load(&seeded(4, LANE_WIDTH));
        for l in 0..LANE_WIDTH {
            assert_eq!((a + b).lane(l).to_bits(), (a.lane(l) + b.lane(l)).to_bits());
            assert_eq!((a - b).lane(l).to_bits(), (a.lane(l) - b.lane(l)).to_bits());
            assert_eq!((a * b).lane(l).to_bits(), (a.lane(l) * b.lane(l)).to_bits());
            assert_eq!(a.abs().lane(l).to_bits(), a.lane(l).abs().to_bits());
        }
    }

    #[test]
    fn min_max_equal_std_on_engine_values() {
        // the values the DP produces: non-negative, +0.0 only, +inf
        let a = F64Lanes::from_fn(|l| [0.0, 1.5, f64::INFINITY, 2.0, 0.0, 3.0, 7.0, 1.0][l]);
        let b = F64Lanes::from_fn(|l| [0.0, 2.5, 4.0, f64::INFINITY, 1.0, 3.0, 0.5, 9.0][l]);
        for l in 0..LANE_WIDTH {
            assert_eq!(
                a.min(b).lane(l).to_bits(),
                a.lane(l).min(b.lane(l)).to_bits()
            );
            assert_eq!(
                a.max(b).lane(l).to_bits(),
                a.lane(l).max(b.lane(l)).to_bits()
            );
        }
    }

    #[test]
    fn horizontal_min_is_order_independent() {
        let v = seeded(5, LANE_WIDTH);
        let lanes = F64Lanes::load(&v);
        let scalar = v.iter().fold(f64::INFINITY, |acc, &x| acc.min(x));
        assert_eq!(lanes.horizontal_min().to_bits(), scalar.to_bits());
        let all_inf = F64Lanes::splat(f64::INFINITY);
        assert_eq!(all_inf.horizontal_min(), f64::INFINITY);
    }

    #[test]
    fn select_reproduces_branch_chains() {
        let x = F64Lanes::load(&seeded(6, LANE_WIDTH));
        let hi = F64Lanes::splat(0.5);
        let lo = F64Lanes::splat(-0.5);
        let dev = F64Lanes::select(
            x.gt(hi),
            lanes_eval(ElementMetric::Squared, x, hi),
            F64Lanes::select(
                x.lt(lo),
                lanes_eval(ElementMetric::Squared, x, lo),
                F64Lanes::splat(0.0),
            ),
        );
        for l in 0..LANE_WIDTH {
            let xi = x.lane(l);
            let want = if xi > 0.5 {
                ElementMetric::Squared.eval(xi, 0.5)
            } else if xi < -0.5 {
                ElementMetric::Squared.eval(xi, -0.5)
            } else {
                0.0
            };
            assert_eq!(dev.lane(l).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn lanes_eval_matches_scalar_metric_bitwise() {
        let x = F64Lanes::load(&seeded(7, LANE_WIDTH));
        let y = F64Lanes::load(&seeded(8, LANE_WIDTH));
        for metric in [ElementMetric::Squared, ElementMetric::Absolute] {
            let got = lanes_eval(metric, x, y);
            for l in 0..LANE_WIDTH {
                assert_eq!(
                    got.lane(l).to_bits(),
                    metric.eval(x.lane(l), y.lane(l)).to_bits()
                );
            }
        }
    }

    #[test]
    fn mode_names_parse_and_default_to_lanes() {
        assert_eq!(SimdMode::parse("lanes"), Some(SimdMode::Lanes));
        assert_eq!(SimdMode::parse(" Scalar "), Some(SimdMode::Scalar));
        assert_eq!(SimdMode::parse(""), Some(SimdMode::Lanes));
        assert_eq!(SimdMode::parse("avx512"), None);
        assert_eq!(SimdMode::default(), SimdMode::Lanes);
    }

    #[test]
    fn from_env_value_errors_instead_of_panicking() {
        assert_eq!(SimdMode::from_env_value(None).unwrap(), SimdMode::Lanes);
        assert_eq!(
            SimdMode::from_env_value(Some("scalar")).unwrap(),
            SimdMode::Scalar
        );
        let err = SimdMode::from_env_value(Some("gpu")).unwrap_err();
        match err {
            TsError::InvalidParameter { name, reason } => {
                assert_eq!(name, "SDTW_SIMD");
                assert!(reason.contains("gpu"), "reason names the bad value");
            }
            other => panic!("wrong error kind: {other:?}"),
        }
    }
}
