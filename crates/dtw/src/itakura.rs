//! Itakura parallelogram — the classic slope-constrained band (paper
//! Figure 2(c)).
//!
//! The warp path's local slope is bounded by `slope` (and `1/slope`): in
//! normalised coordinates `u = i/(N−1)`, `v = j/(M−1)` the feasible region
//! is the intersection of
//!
//! * `v ≤ slope · u` and `v ≥ u / slope` (cone from the lower-left corner),
//! * `v ≥ 1 − slope · (1 − u)` and `v ≤ 1 − (1 − u)/slope` (cone into the
//!   upper-right corner),
//!
//! which is a parallelogram-shaped region pinched at both corners.

use crate::band::{Band, ColRange};

/// Builds the Itakura parallelogram band for an `n × m` grid with the given
/// maximum local slope (conventionally 2.0). The band is sanitised, so it
/// is always feasible even for extreme length ratios.
///
/// # Panics
///
/// Panics when `n == 0 || m == 0` or `slope <= 1` (a slope of exactly 1
/// admits only the diagonal, which is empty off the diagonal for `n != m`).
pub fn itakura_band(n: usize, m: usize, slope: f64) -> Band {
    assert!(n > 0 && m > 0, "grid dimensions must be positive");
    assert!(
        slope.is_finite() && slope > 1.0,
        "slope must be finite and > 1, got {slope}"
    );
    if n == 1 || m == 1 {
        return Band::full(n, m);
    }
    let nf = (n - 1) as f64;
    let mf = (m - 1) as f64;
    let ranges = (0..n)
        .map(|i| {
            let u = i as f64 / nf;
            // lower bounds on v
            let lb = (u / slope).max(1.0 - slope * (1.0 - u));
            // upper bounds on v
            let ub = (slope * u).min(1.0 - (1.0 - u) / slope);
            let lo = (lb * mf).floor().max(0.0) as usize;
            let hi = (ub * mf).ceil().min(mf) as usize;
            if lo <= hi {
                ColRange::new(lo, hi)
            } else {
                // numerically pinched row: seed with the diagonal cell and
                // let sanitisation bridge it
                let c = (u * mf).round() as usize;
                ColRange::new(c.min(m - 1), c.min(m - 1))
            }
        })
        .collect();
    Band::from_ranges(n, m, ranges).sanitize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinched_at_corners_wide_in_middle() {
        let b = itakura_band(101, 101, 2.0);
        assert!(b.is_feasible());
        assert!(b.row(0).width() <= 3);
        assert!(b.row(100).width() <= 3);
        let mid = b.row(50);
        assert!(mid.width() > 20, "middle width {}", mid.width());
    }

    #[test]
    fn respects_slope_bounds_away_from_corners() {
        let n = 101;
        let b = itakura_band(n, n, 2.0);
        // at u = 0.25 the reachable v range is [0.125, 0.5]
        let r = b.row(25);
        assert!(r.lo >= 11 && r.lo <= 14, "lo = {}", r.lo);
        assert!(r.hi >= 49 && r.hi <= 51, "hi = {}", r.hi);
    }

    #[test]
    fn contains_the_diagonal() {
        let b = itakura_band(60, 60, 2.0);
        for i in 0..60 {
            assert!(b.contains(i, i), "diagonal cell ({i},{i}) missing");
        }
    }

    #[test]
    fn larger_slope_means_larger_area() {
        let tight = itakura_band(80, 80, 1.5);
        let loose = itakura_band(80, 80, 3.0);
        assert!(tight.area() < loose.area());
    }

    #[test]
    fn smaller_than_full_grid() {
        let b = itakura_band(100, 100, 2.0);
        assert!(b.coverage() < 0.8);
    }

    #[test]
    fn unequal_lengths_are_feasible() {
        for (n, m) in [(30, 90), (90, 30), (7, 200)] {
            let b = itakura_band(n, m, 2.0);
            assert!(b.is_feasible(), "infeasible for {n}x{m}");
        }
    }

    #[test]
    fn degenerate_single_row_or_column() {
        assert!(itakura_band(1, 50, 2.0).is_feasible());
        assert!(itakura_band(50, 1, 2.0).is_feasible());
    }

    #[test]
    #[should_panic(expected = "slope")]
    fn rejects_slope_of_one() {
        let _ = itakura_band(10, 10, 1.0);
    }
}
