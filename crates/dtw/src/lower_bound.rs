//! Lower bounds on the DTW distance (extensions beyond the paper's core).
//!
//! Two classic bounds power the retrieval cascade:
//!
//! * **LB_Kim** ([`lb_kim`]): a constant-time bound from endpoint and
//!   extremum summaries ([`SeriesSummary`]). The corner cells `(0, 0)` and
//!   `(N−1, M−1)` lie on *every* warp path (of any feasible band), so their
//!   local costs always accrue; and the global maximum (minimum) of `X`
//!   must align with *some* sample of `Y`, paying at least its distance to
//!   the closest value `Y` can offer — its own maximum (minimum). The
//!   bound is the larger of the two arguments, never their sum (the cells
//!   involved could coincide).
//! * **LB_Keogh** ([`lb_keogh`], the paper's reference `[7]`): build the
//!   upper/lower envelope of `Y` under a window `r`, then sum, over each
//!   `x_i`, the distance from `x_i` to the envelope tube. Lower bounds any
//!   DTW whose band stays within the `±r` Sakoe window.
//!
//! Retrieval loops skip the DP entirely when the running k-NN threshold is
//! below a bound; `sdtw-index` chains them cheapest-first. Neither bound is
//! part of the sDTW algorithm itself.

use crate::simd::{lanes_eval, F64Lanes, SimdMode, LANE_WIDTH};
use sdtw_tseries::{ElementMetric, TimeSeries};
use serde::{Deserialize, Serialize};

/// Upper/lower envelope of a series under a symmetric window of radius `r`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// `upper[i] = max(y[i-r ..= i+r])`
    pub upper: Vec<f64>,
    /// `lower[i] = min(y[i-r ..= i+r])`
    pub lower: Vec<f64>,
    /// The window radius the envelope was built with.
    pub radius: usize,
}

impl Envelope {
    /// Builds the envelope with a monotonic-deque sliding min/max, `O(n)`.
    pub fn build(y: &TimeSeries, radius: usize) -> Self {
        Self::build_from_values(y.values(), radius)
    }

    /// [`Envelope::build`] over a raw sample slice — for callers whose
    /// series is a window of a larger buffer (subsequence search builds
    /// the envelope of a z-normalised query held in a plain `Vec`).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice (programmer error).
    pub fn build_from_values(v: &[f64], radius: usize) -> Self {
        assert!(!v.is_empty(), "envelope needs a non-empty series");
        let n = v.len();
        let mut upper = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        // Deques hold indices; front is the current extremum.
        let mut maxq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut minq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        // window for output i is [i-radius, i+radius]; sweep right edge
        // (saturating: a radius of usize::MAX order must mean "the whole
        // series", not wrap around)
        let mut right = 0usize;
        for i in 0..n {
            let hi = i.saturating_add(radius).min(n - 1);
            while right <= hi {
                while let Some(&b) = maxq.back() {
                    if v[b] <= v[right] {
                        maxq.pop_back();
                    } else {
                        break;
                    }
                }
                maxq.push_back(right);
                while let Some(&b) = minq.back() {
                    if v[b] >= v[right] {
                        minq.pop_back();
                    } else {
                        break;
                    }
                }
                minq.push_back(right);
                right += 1;
            }
            let lo_edge = i.saturating_sub(radius);
            while let Some(&f) = maxq.front() {
                if f < lo_edge {
                    maxq.pop_front();
                } else {
                    break;
                }
            }
            while let Some(&f) = minq.front() {
                if f < lo_edge {
                    minq.pop_front();
                } else {
                    break;
                }
            }
            upper.push(v[*maxq.front().expect("window non-empty")]);
            lower.push(v[*minq.front().expect("window non-empty")]);
        }
        Self {
            upper,
            lower,
            radius,
        }
    }
}

/// LB_Keogh: lower bound on the Sakoe-Chiba-constrained DTW distance
/// between `x` and the series whose envelope is given. Requires
/// `x.len() == envelope.len()` (the classic formulation assumes
/// equal-length series; resample first otherwise).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn lb_keogh(x: &TimeSeries, env: &Envelope, metric: ElementMetric) -> f64 {
    lb_keogh_values(x.values(), env, metric)
}

/// [`lb_keogh`] over a raw sample slice (subsequence windows, normalised
/// scratch buffers).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn lb_keogh_values(x: &[f64], env: &Envelope, metric: ElementMetric) -> f64 {
    assert_eq!(
        x.len(),
        env.upper.len(),
        "LB_Keogh requires equal lengths (resample first)"
    );
    let mut acc = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        if xi > env.upper[i] {
            acc += metric.eval(xi, env.upper[i]);
        } else if xi < env.lower[i] {
            acc += metric.eval(xi, env.lower[i]);
        }
    }
    acc
}

/// Constant-size summary of a series for [`lb_kim`]: the endpoint values
/// and the global extremes. An index precomputes one per corpus entry (and
/// one per incoming query), making the first cascade filter O(1) per pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// First sample.
    pub first: f64,
    /// Last sample.
    pub last: f64,
    /// Global minimum.
    pub min: f64,
    /// Global maximum.
    pub max: f64,
    /// Series length (corner cells coincide when both series have length 1).
    pub len: usize,
}

impl SeriesSummary {
    /// Summarises a series in one pass.
    pub fn of(ts: &TimeSeries) -> Self {
        Self::of_values(ts.values())
    }

    /// [`SeriesSummary::of`] over a raw sample slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice (programmer error).
    pub fn of_values(v: &[f64]) -> Self {
        assert!(!v.is_empty(), "summary needs a non-empty series");
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &s in v {
            min = min.min(s);
            max = max.max(s);
        }
        Self {
            first: v[0],
            last: v[v.len() - 1],
            min,
            max,
            len: v.len(),
        }
    }
}

/// LB_Kim: constant-time lower bound on the DTW distance between the two
/// summarised series — full-grid *or* constrained to any feasible band,
/// under either step pattern (transition weights are all ≥ 1), on the raw
/// (unnormalised) accumulated cost.
///
/// The bound is the maximum of two admissible arguments:
///
/// * **endpoints** — cells `(0, 0)` and `(N−1, M−1)` are on every warp
///   path, so `d(x_0, y_0) + d(x_{N−1}, y_{M−1})` always accrues (the two
///   terms are summed only when the cells are distinct);
/// * **extremes** — the global maximum of `X` aligns with *some* `y_j ≤
///   max(Y)`, costing at least `d(max X, max Y)` whenever
///   `max X > max Y`; symmetrically for the minima.
///
/// Unlike [`lb_keogh`] it needs no equal lengths and no window/band
/// containment — it is sound for every pair the banded kernel accepts.
pub fn lb_kim(x: &SeriesSummary, y: &SeriesSummary, metric: ElementMetric) -> f64 {
    let ends = if x.len == 1 && y.len == 1 {
        // a 1×1 grid has a single cell; don't count it twice
        metric.eval(x.first, y.first)
    } else {
        metric.eval(x.first, y.first) + metric.eval(x.last, y.last)
    };
    let top = if x.max > y.max {
        metric.eval(x.max, y.max)
    } else if y.max > x.max {
        metric.eval(y.max, x.max)
    } else {
        0.0
    };
    let bottom = if x.min < y.min {
        metric.eval(x.min, y.min)
    } else if y.min < x.min {
        metric.eval(y.min, x.min)
    } else {
        0.0
    };
    ends.max(top).max(bottom)
}

/// Lane width of the batched bound loops: one chunk carries this many
/// candidates (index cascade) or windows (stream matcher) per pass.
/// Defined as [`crate::simd::LANE_WIDTH`] — the *one* place the lane
/// width lives — so the explicit-SIMD chunk bodies below, the DP lane
/// sweep, and every batching caller (`sdtw-index` candidate queues,
/// `sdtw-stream` deferred window queues) agree on the same number.
///
/// The batched variants below restructure the `O(n)` bound loops from
/// one-candidate-at-a-time into chunk loops with one accumulator per lane
/// (chunked scalar or explicit [`F64Lanes`], per [`SimdMode`]). Two
/// invariants make every lane **bit-identical** to its scalar
/// counterpart, and the SIMD rewrite leans on both:
///
/// * **each lane accumulates in the exact sequential order of the scalar
///   reference** — sample `i` is folded into lane `l`'s accumulator
///   before sample `i + 1`, exactly as `lb_keogh_values` would;
/// * **in-tube samples add a literal `+0.0`** — where the scalar
///   reference *skips* the add, the chunked loops add `0.0`, a bitwise
///   no-op on the non-negative accumulator (`+0.0 + +0.0 == +0.0`; no
///   value here is `-0.0` or NaN), which is what lets the lane body be
///   branch-free (mask-select of the deviation, add unconditionally).
///
/// Ragged tails shorter than a chunk fall back to the scalar functions —
/// callers must not assume output batches are produced in lane-width
/// groups, only that the order matches the input order.
pub const LB_LANES: usize = LANE_WIDTH;

/// Branch-free LB_Keogh deviation of one lane vector against the tube
/// `[lower, upper]`: the lane image of the scalar
/// `if xi > upper { eval(xi, upper) } else if xi < lower { eval(xi, lower) } else { 0.0 }`
/// chain — the nested select keeps the branch priority, the taken
/// branch's value is bit-identical, and the untaken branches' lanewise
/// evaluations are discarded by the select (finite inputs, never NaN).
#[inline(always)]
fn keogh_dev_lanes(
    xi: F64Lanes,
    upper: F64Lanes,
    lower: F64Lanes,
    metric: ElementMetric,
) -> F64Lanes {
    F64Lanes::select(
        xi.gt(upper),
        lanes_eval(metric, xi, upper),
        F64Lanes::select(
            xi.lt(lower),
            lanes_eval(metric, xi, lower),
            F64Lanes::splat(0.0),
        ),
    )
}

/// Batched [`lb_keogh_values`], index shape: one probe `x` scored against
/// many candidate envelopes (the per-query cascade batches corpus
/// entries). Appends one bound per envelope to `out`, in order; each is
/// bit-identical to `lb_keogh_values(x, env, metric)` (see [`LB_LANES`]
/// for the two invariants that make the chunked loops exact). Runs in the
/// process-wide [`SimdMode::selected`]; [`lb_keogh_batch_with`] pins it.
///
/// # Panics
///
/// Panics on any length mismatch.
pub fn lb_keogh_batch(x: &[f64], envs: &[&Envelope], metric: ElementMetric, out: &mut Vec<f64>) {
    lb_keogh_batch_with(SimdMode::selected(), x, envs, metric, out);
}

/// [`lb_keogh_batch`] with the SIMD mode pinned explicitly — the
/// differential harness drives both modes through this entry point in one
/// process to prove them bit-identical.
///
/// # Panics
///
/// Panics on any length mismatch.
pub fn lb_keogh_batch_with(
    mode: SimdMode,
    x: &[f64],
    envs: &[&Envelope],
    metric: ElementMetric,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(envs.len());
    let mut chunks = envs.chunks_exact(LB_LANES);
    for chunk in &mut chunks {
        for env in chunk {
            assert_eq!(
                x.len(),
                env.upper.len(),
                "LB_Keogh requires equal lengths (resample first)"
            );
        }
        match mode {
            SimdMode::Scalar => {
                let mut acc = [0.0f64; LB_LANES];
                for (i, &xi) in x.iter().enumerate() {
                    for (l, env) in chunk.iter().enumerate() {
                        let dev = if xi > env.upper[i] {
                            metric.eval(xi, env.upper[i])
                        } else if xi < env.lower[i] {
                            metric.eval(xi, env.lower[i])
                        } else {
                            0.0
                        };
                        acc[l] += dev;
                    }
                }
                out.extend_from_slice(&acc);
            }
            SimdMode::Lanes => {
                // lane l walks envelope chunk[l]; the envelope values are
                // gathered per sample (the tubes live in separate Vecs),
                // the probe sample is a splat shared by every lane
                let mut acc = F64Lanes::splat(0.0);
                for (i, &s) in x.iter().enumerate() {
                    let xi = F64Lanes::splat(s);
                    let upper = F64Lanes::from_fn(|l| chunk[l].upper[i]);
                    let lower = F64Lanes::from_fn(|l| chunk[l].lower[i]);
                    acc = acc + keogh_dev_lanes(xi, upper, lower, metric);
                }
                out.extend_from_slice(acc.as_array());
            }
        }
    }
    for env in chunks.remainder() {
        out.push(lb_keogh_values(x, env, metric));
    }
}

/// Batched [`lb_keogh_values`], stream shape: many (z-normalised) windows
/// of one stream scored against the shared query envelope. Appends one
/// bound per window to `out`, in order; each is bit-identical to
/// `lb_keogh_values(w, env, metric)` (see [`LB_LANES`] for the chunk
/// invariants). Runs in the process-wide [`SimdMode::selected`];
/// [`lb_keogh_batch_windows_with`] pins it.
///
/// # Panics
///
/// Panics on any length mismatch.
pub fn lb_keogh_batch_windows(
    windows: &[&[f64]],
    env: &Envelope,
    metric: ElementMetric,
    out: &mut Vec<f64>,
) {
    lb_keogh_batch_windows_with(SimdMode::selected(), windows, env, metric, out);
}

/// [`lb_keogh_batch_windows`] with the SIMD mode pinned explicitly (the
/// differential harness's entry point).
///
/// # Panics
///
/// Panics on any length mismatch.
pub fn lb_keogh_batch_windows_with(
    mode: SimdMode,
    windows: &[&[f64]],
    env: &Envelope,
    metric: ElementMetric,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(windows.len());
    let mut chunks = windows.chunks_exact(LB_LANES);
    for chunk in &mut chunks {
        for w in chunk {
            assert_eq!(
                w.len(),
                env.upper.len(),
                "LB_Keogh requires equal lengths (resample first)"
            );
        }
        match mode {
            SimdMode::Scalar => {
                let mut acc = [0.0f64; LB_LANES];
                for i in 0..env.upper.len() {
                    let (upper, lower) = (env.upper[i], env.lower[i]);
                    for (l, w) in chunk.iter().enumerate() {
                        let xi = w[i];
                        let dev = if xi > upper {
                            metric.eval(xi, upper)
                        } else if xi < lower {
                            metric.eval(xi, lower)
                        } else {
                            0.0
                        };
                        acc[l] += dev;
                    }
                }
                out.extend_from_slice(&acc);
            }
            SimdMode::Lanes => {
                // lane l walks window chunk[l]; the shared tube is a
                // splat, the window samples are gathered per position
                let mut acc = F64Lanes::splat(0.0);
                for (i, (&upper, &lower)) in env.upper.iter().zip(&env.lower).enumerate() {
                    let upper = F64Lanes::splat(upper);
                    let lower = F64Lanes::splat(lower);
                    let xi = F64Lanes::from_fn(|l| chunk[l][i]);
                    acc = acc + keogh_dev_lanes(xi, upper, lower, metric);
                }
                out.extend_from_slice(acc.as_array());
            }
        }
    }
    for w in chunks.remainder() {
        out.push(lb_keogh_values(w, env, metric));
    }
}

/// Batched [`lb_kim`]: one probe summary against many candidate
/// summaries, evaluated as three lane passes (endpoints, maxima, minima)
/// over each chunk. Appends one bound per candidate to `out`, in order;
/// each is bit-identical to `lb_kim(x, y, metric)` (ragged tails fall
/// back to the scalar function, per [`LB_LANES`]). Runs in the
/// process-wide [`SimdMode::selected`]; [`lb_kim_batch_with`] pins it.
pub fn lb_kim_batch(
    x: &SeriesSummary,
    ys: &[SeriesSummary],
    metric: ElementMetric,
    out: &mut Vec<f64>,
) {
    lb_kim_batch_with(SimdMode::selected(), x, ys, metric, out);
}

/// [`lb_kim_batch`] with the SIMD mode pinned explicitly (the
/// differential harness's entry point).
pub fn lb_kim_batch_with(
    mode: SimdMode,
    x: &SeriesSummary,
    ys: &[SeriesSummary],
    metric: ElementMetric,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(ys.len());
    let mut chunks = ys.chunks_exact(LB_LANES);
    for chunk in &mut chunks {
        match mode {
            SimdMode::Scalar => {
                let mut ends = [0.0f64; LB_LANES];
                let mut top = [0.0f64; LB_LANES];
                let mut bottom = [0.0f64; LB_LANES];
                for (l, y) in chunk.iter().enumerate() {
                    ends[l] = if x.len == 1 && y.len == 1 {
                        metric.eval(x.first, y.first)
                    } else {
                        metric.eval(x.first, y.first) + metric.eval(x.last, y.last)
                    };
                }
                for (l, y) in chunk.iter().enumerate() {
                    top[l] = if x.max > y.max {
                        metric.eval(x.max, y.max)
                    } else if y.max > x.max {
                        metric.eval(y.max, x.max)
                    } else {
                        0.0
                    };
                }
                for (l, y) in chunk.iter().enumerate() {
                    bottom[l] = if x.min < y.min {
                        metric.eval(x.min, y.min)
                    } else if y.min < x.min {
                        metric.eval(y.min, x.min)
                    } else {
                        0.0
                    };
                }
                for l in 0..LB_LANES {
                    out.push(ends[l].max(top[l]).max(bottom[l]));
                }
            }
            SimdMode::Lanes => {
                // endpoints stay a per-lane gather: the 1×1-grid special
                // case branches on each candidate's length, which is not
                // worth a select over a usize compare
                let ends = F64Lanes::from_fn(|l| {
                    let y = &chunk[l];
                    if x.len == 1 && y.len == 1 {
                        metric.eval(x.first, y.first)
                    } else {
                        metric.eval(x.first, y.first) + metric.eval(x.last, y.last)
                    }
                });
                // the extreme terms mirror the scalar if/else-if chains,
                // including the argument order of each eval ((x−y)² and
                // (y−x)² agree bitwise under IEEE, but mirroring keeps
                // the lane body a literal transcription of the scalar)
                let x_max = F64Lanes::splat(x.max);
                let y_max = F64Lanes::from_fn(|l| chunk[l].max);
                let top = F64Lanes::select(
                    x_max.gt(y_max),
                    lanes_eval(metric, x_max, y_max),
                    F64Lanes::select(
                        y_max.gt(x_max),
                        lanes_eval(metric, y_max, x_max),
                        F64Lanes::splat(0.0),
                    ),
                );
                let x_min = F64Lanes::splat(x.min);
                let y_min = F64Lanes::from_fn(|l| chunk[l].min);
                let bottom = F64Lanes::select(
                    x_min.lt(y_min),
                    lanes_eval(metric, x_min, y_min),
                    F64Lanes::select(
                        y_min.lt(x_min),
                        lanes_eval(metric, y_min, x_min),
                        F64Lanes::splat(0.0),
                    ),
                );
                out.extend_from_slice(ends.max(top).max(bottom).as_array());
            }
        }
    }
    for y in chunks.remainder() {
        out.push(lb_kim(x, y, metric));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{dtw_full, dtw_run_options, DtwOptions, DtwScratch};
    use crate::sakoe::sakoe_chiba_band;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn envelope_of_constant_is_constant() {
        let e = Envelope::build(&ts(&[2.0; 9]), 3);
        assert!(e.upper.iter().all(|&v| v == 2.0));
        assert!(e.lower.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn envelope_radius_zero_is_identity() {
        let y = ts(&[1.0, 5.0, 3.0]);
        let e = Envelope::build(&y, 0);
        assert_eq!(e.upper, y.values());
        assert_eq!(e.lower, y.values());
    }

    #[test]
    fn envelope_brackets_series() {
        let y = ts(&[0.0, 3.0, -1.0, 2.0, 5.0, 1.0]);
        for r in [1, 2, 5] {
            let e = Envelope::build(&y, r);
            for i in 0..y.len() {
                assert!(e.lower[i] <= y.at(i) && y.at(i) <= e.upper[i]);
            }
        }
    }

    #[test]
    fn envelope_matches_naive_computation() {
        let y = ts(&[4.0, -2.0, 7.0, 7.0, 0.0, 3.0, -5.0, 1.0]);
        let r = 2;
        let e = Envelope::build(&y, r);
        for i in 0..y.len() {
            let lo = i.saturating_sub(r);
            let hi = (i + r).min(y.len() - 1);
            let mx = y.values()[lo..=hi].iter().cloned().fold(f64::MIN, f64::max);
            let mn = y.values()[lo..=hi].iter().cloned().fold(f64::MAX, f64::min);
            assert_eq!(e.upper[i], mx, "upper at {i}");
            assert_eq!(e.lower[i], mn, "lower at {i}");
        }
    }

    #[test]
    fn envelope_with_oversized_radius_is_the_global_range() {
        // radii at or beyond the series length (up to usize::MAX) must
        // saturate to the whole-series envelope, not overflow
        let y = ts(&[0.0, 3.0, -1.0, 2.0]);
        for r in [4usize, 1000, usize::MAX] {
            let e = Envelope::build(&y, r);
            assert!(e.upper.iter().all(|&v| v == 3.0), "radius {r}");
            assert!(e.lower.iter().all(|&v| v == -1.0), "radius {r}");
        }
    }

    #[test]
    fn lb_keogh_is_zero_inside_tube() {
        let y = ts(&[0.0, 1.0, 2.0, 1.0, 0.0]);
        let env = Envelope::build(&y, 2);
        assert_eq!(lb_keogh(&y, &env, ElementMetric::Squared), 0.0);
    }

    #[test]
    fn lb_keogh_lower_bounds_banded_dtw() {
        // Property over a handful of pseudo-random pairs: LB ≤ SC-DTW.
        let mut seed = 0x12345u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..10 {
            let n = 40;
            let x = ts(&(0..n).map(|_| rng()).collect::<Vec<_>>());
            let y = ts(&(0..n).map(|_| rng()).collect::<Vec<_>>());
            let radius = 4;
            let env = Envelope::build(&y, radius);
            let lb = lb_keogh(&x, &env, ElementMetric::Squared);
            // The SC band with half-width = radius dominates the envelope
            // window, so its DTW distance is lower-bounded by LB_Keogh.
            let band = sakoe_chiba_band(n, n, 2.0 * radius as f64 / n as f64);
            let d = dtw_run_options(
                &x,
                &y,
                &band,
                &DtwOptions::default(),
                None,
                &mut DtwScratch::new(),
            )
            .expect("no cutoff")
            .distance;
            assert!(lb <= d + 1e-9, "LB_Keogh {lb} exceeded banded DTW {d}");
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let env = Envelope::build(&ts(&[0.0, 1.0]), 1);
        let _ = lb_keogh(&ts(&[0.0, 1.0, 2.0]), &env, ElementMetric::Squared);
    }

    #[test]
    fn summary_captures_endpoints_and_extremes() {
        let s = SeriesSummary::of(&ts(&[2.0, -1.0, 5.0, 0.5]));
        assert_eq!(s.first, 2.0);
        assert_eq!(s.last, 0.5);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.len, 4);
    }

    #[test]
    fn lb_kim_is_zero_for_identical_series() {
        let s = SeriesSummary::of(&ts(&[0.0, 1.0, 2.0, 1.0]));
        assert_eq!(lb_kim(&s, &s, ElementMetric::Squared), 0.0);
    }

    #[test]
    fn lb_kim_known_values() {
        // endpoints dominate: (1-0)^2 + (3-5)^2 = 5
        let x = SeriesSummary::of(&ts(&[1.0, 2.0, 3.0]));
        let y = SeriesSummary::of(&ts(&[0.0, 2.0, 5.0]));
        assert_eq!(lb_kim(&x, &y, ElementMetric::Squared), 5.0);
        // extremes dominate: ranges [0,10] vs [4,6] → max term (10-6)^2 = 16
        let x = SeriesSummary::of(&ts(&[4.0, 10.0, 0.0, 6.0]));
        let y = SeriesSummary::of(&ts(&[4.0, 6.0, 5.0, 6.0]));
        assert_eq!(lb_kim(&x, &y, ElementMetric::Squared), 16.0);
        // symmetric in its arguments
        assert_eq!(
            lb_kim(&x, &y, ElementMetric::Squared),
            lb_kim(&y, &x, ElementMetric::Squared)
        );
    }

    #[test]
    fn lb_kim_lower_bounds_full_dtw_on_unequal_lengths() {
        let mut seed = 0xfeedu64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for metric in [ElementMetric::Squared, ElementMetric::Absolute] {
            for _ in 0..10 {
                let x = ts(&(0..37).map(|_| 2.0 * rng()).collect::<Vec<_>>());
                let y = ts(&(0..53).map(|_| 2.0 * rng()).collect::<Vec<_>>());
                let lb = lb_kim(&SeriesSummary::of(&x), &SeriesSummary::of(&y), metric);
                let opts = DtwOptions {
                    metric,
                    ..DtwOptions::default()
                };
                let d = dtw_full(&x, &y, &opts).distance;
                assert!(lb <= d + 1e-9, "lb_kim {lb} exceeded full DTW {d}");
            }
        }
    }

    #[test]
    fn lb_kim_single_sample_grid_counts_the_corner_once() {
        let x = SeriesSummary::of(&ts(&[2.0]));
        let y = SeriesSummary::of(&ts(&[5.0]));
        // one shared corner cell: (2-5)^2 = 9, not 18
        assert_eq!(lb_kim(&x, &y, ElementMetric::Squared), 9.0);
        let d = dtw_full(&ts(&[2.0]), &ts(&[5.0]), &DtwOptions::default()).distance;
        assert_eq!(d, 9.0);
    }

    #[test]
    fn cascade_ordering_kim_keogh_dtw_on_seeded_pairs() {
        // The cascade invariant the index relies on, on seeded random
        // pairs: lb_kim ≤ lb_keogh ≤ banded DTW. (Kim's two-term bound is
        // not *provably* below Keogh's n-term sum, but it is on any
        // reasonably sized random pair; the seeds below are fixed so this
        // stays deterministic.)
        let mut seed = 0x5eed5u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        // smooth series (random sinusoid mixtures): Keogh's n-term sum
        // accumulates real mass there, while Kim only sees the endpoints
        let mut smooth = |n: usize| {
            let (p1, p2, a) = (3.0 * rng(), 3.0 * rng(), 0.5 + 0.4 * rng());
            ts(&(0..n)
                .map(|i| {
                    let t = i as f64;
                    a * (t / 7.0 + p1).sin() + 0.5 * (t / 19.0 + p2).cos()
                })
                .collect::<Vec<_>>())
        };
        let mut keogh_strictly_above_kim = 0;
        for _ in 0..10 {
            let n = 48;
            let x = smooth(n);
            let y = smooth(n);
            let radius = 5;
            let kim = lb_kim(
                &SeriesSummary::of(&x),
                &SeriesSummary::of(&y),
                ElementMetric::Squared,
            );
            let env = Envelope::build(&y, radius);
            let keogh = lb_keogh(&x, &env, ElementMetric::Squared);
            let band = sakoe_chiba_band(n, n, 2.0 * radius as f64 / n as f64);
            let d = dtw_run_options(
                &x,
                &y,
                &band,
                &DtwOptions::default(),
                None,
                &mut DtwScratch::new(),
            )
            .expect("no cutoff")
            .distance;
            assert!(
                kim <= keogh + 1e-9,
                "lb_kim {kim} exceeded lb_keogh {keogh}"
            );
            assert!(
                keogh <= d + 1e-9,
                "lb_keogh {keogh} exceeded banded DTW {d}"
            );
            if keogh > kim {
                keogh_strictly_above_kim += 1;
            }
        }
        // the tighter bound must actually be tighter somewhere, or the
        // cascade ordering is pointless
        assert!(keogh_strictly_above_kim > 0);
    }

    fn seeded(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                4.0 * (((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0)
            })
            .collect()
    }

    #[test]
    fn batched_keogh_lanes_match_scalar_bitwise() {
        let x = seeded(0xabc, 32);
        for count in [0usize, 1, 7, 8, 9, 20, 64] {
            let series: Vec<Vec<f64>> = (0..count).map(|k| seeded(k as u64 + 1, 32)).collect();
            let envs: Vec<Envelope> = series
                .iter()
                .map(|v| Envelope::build_from_values(v, 3))
                .collect();
            let env_refs: Vec<&Envelope> = envs.iter().collect();
            for metric in [ElementMetric::Squared, ElementMetric::Absolute] {
                let mut out = Vec::new();
                lb_keogh_batch(&x, &env_refs, metric, &mut out);
                assert_eq!(out.len(), count);
                for (env, got) in envs.iter().zip(&out) {
                    let want = lb_keogh_values(&x, env, metric);
                    assert_eq!(want.to_bits(), got.to_bits(), "count {count}");
                }
            }
        }
    }

    #[test]
    fn batched_keogh_windows_match_scalar_bitwise() {
        let y = seeded(0xdef, 24);
        let env = Envelope::build_from_values(&y, 2);
        for count in [0usize, 1, 7, 8, 9, 64] {
            let windows: Vec<Vec<f64>> = (0..count).map(|k| seeded(k as u64 + 31, 24)).collect();
            let refs: Vec<&[f64]> = windows.iter().map(|w| w.as_slice()).collect();
            let mut out = Vec::new();
            lb_keogh_batch_windows(&refs, &env, ElementMetric::Squared, &mut out);
            assert_eq!(out.len(), count);
            for (w, got) in windows.iter().zip(&out) {
                let want = lb_keogh_values(w, &env, ElementMetric::Squared);
                assert_eq!(want.to_bits(), got.to_bits(), "count {count}");
            }
        }
    }

    #[test]
    fn batched_kim_lanes_match_scalar_bitwise() {
        let x = SeriesSummary::of_values(&seeded(0x777, 19));
        for count in [0usize, 1, 7, 8, 9, 64] {
            let ys: Vec<SeriesSummary> = (0..count)
                .map(|k| SeriesSummary::of_values(&seeded(k as u64 + 5, 11 + k % 7)))
                .collect();
            for metric in [ElementMetric::Squared, ElementMetric::Absolute] {
                let mut out = Vec::new();
                lb_kim_batch(&x, &ys, metric, &mut out);
                assert_eq!(out.len(), count);
                for (y, got) in ys.iter().zip(&out) {
                    let want = lb_kim(&x, y, metric);
                    assert_eq!(want.to_bits(), got.to_bits(), "count {count}");
                }
            }
        }
    }

    #[test]
    fn pinned_batch_modes_are_bit_identical() {
        // scalar-chunked vs explicit-lanes, pinned inside one process
        let x = seeded(0x91, 32);
        let series: Vec<Vec<f64>> = (0..21).map(|k| seeded(k as u64 + 40, 32)).collect();
        let envs: Vec<Envelope> = series
            .iter()
            .map(|v| Envelope::build_from_values(v, 3))
            .collect();
        let env_refs: Vec<&Envelope> = envs.iter().collect();
        let windows: Vec<&[f64]> = series.iter().map(|v| v.as_slice()).collect();
        let shared = Envelope::build_from_values(&x, 2);
        let xs = SeriesSummary::of_values(&x);
        let ys: Vec<SeriesSummary> = series.iter().map(|v| SeriesSummary::of_values(v)).collect();
        for metric in [ElementMetric::Squared, ElementMetric::Absolute] {
            let (mut a, mut b) = (Vec::new(), Vec::new());
            lb_keogh_batch_with(SimdMode::Scalar, &x, &env_refs, metric, &mut a);
            lb_keogh_batch_with(SimdMode::Lanes, &x, &env_refs, metric, &mut b);
            for (s, l) in a.iter().zip(&b) {
                assert_eq!(s.to_bits(), l.to_bits(), "keogh batch");
            }
            lb_keogh_batch_windows_with(SimdMode::Scalar, &windows, &shared, metric, &mut a);
            lb_keogh_batch_windows_with(SimdMode::Lanes, &windows, &shared, metric, &mut b);
            for (s, l) in a.iter().zip(&b) {
                assert_eq!(s.to_bits(), l.to_bits(), "keogh windows");
            }
            lb_kim_batch_with(SimdMode::Scalar, &xs, &ys, metric, &mut a);
            lb_kim_batch_with(SimdMode::Lanes, &xs, &ys, metric, &mut b);
            for (s, l) in a.iter().zip(&b) {
                assert_eq!(s.to_bits(), l.to_bits(), "kim batch");
            }
        }
    }

    #[test]
    fn summary_roundtrips_through_serde() {
        let s = SeriesSummary::of(&ts(&[1.0, -2.0, 3.0]));
        let json = serde_json::to_string(&s).unwrap();
        let back: SeriesSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        let e = Envelope::build(&ts(&[1.0, -2.0, 3.0]), 1);
        let json = serde_json::to_string(&e).unwrap();
        let back: Envelope = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
