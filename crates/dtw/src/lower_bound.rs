//! LB_Keogh lower bound (extension beyond the paper's core).
//!
//! Keogh's envelope lower bound (the paper's reference `[7]`) cheaply lower
//! bounds the *Sakoe-Chiba-constrained* DTW distance: build the upper/lower
//! envelope of `Y` under a window `r`, then sum, over each `x_i`, the
//! distance from `x_i` to the envelope tube. Retrieval loops can skip the
//! DP entirely when the running k-NN threshold is below the bound. The
//! experiment harness uses it for pruning ablations; it is not part of the
//! sDTW algorithm itself.

use sdtw_tseries::{ElementMetric, TimeSeries};

/// Upper/lower envelope of a series under a symmetric window of radius `r`.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// `upper[i] = max(y[i-r ..= i+r])`
    pub upper: Vec<f64>,
    /// `lower[i] = min(y[i-r ..= i+r])`
    pub lower: Vec<f64>,
    /// The window radius the envelope was built with.
    pub radius: usize,
}

impl Envelope {
    /// Builds the envelope with a monotonic-deque sliding min/max, `O(n)`.
    pub fn build(y: &TimeSeries, radius: usize) -> Self {
        let v = y.values();
        let n = v.len();
        let mut upper = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        // Deques hold indices; front is the current extremum.
        let mut maxq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut minq: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        // window for output i is [i-radius, i+radius]; sweep right edge
        let mut right = 0usize;
        for i in 0..n {
            let hi = (i + radius).min(n - 1);
            while right <= hi {
                while let Some(&b) = maxq.back() {
                    if v[b] <= v[right] {
                        maxq.pop_back();
                    } else {
                        break;
                    }
                }
                maxq.push_back(right);
                while let Some(&b) = minq.back() {
                    if v[b] >= v[right] {
                        minq.pop_back();
                    } else {
                        break;
                    }
                }
                minq.push_back(right);
                right += 1;
            }
            let lo_edge = i.saturating_sub(radius);
            while let Some(&f) = maxq.front() {
                if f < lo_edge {
                    maxq.pop_front();
                } else {
                    break;
                }
            }
            while let Some(&f) = minq.front() {
                if f < lo_edge {
                    minq.pop_front();
                } else {
                    break;
                }
            }
            upper.push(v[*maxq.front().expect("window non-empty")]);
            lower.push(v[*minq.front().expect("window non-empty")]);
        }
        Self {
            upper,
            lower,
            radius,
        }
    }
}

/// LB_Keogh: lower bound on the Sakoe-Chiba-constrained DTW distance
/// between `x` and the series whose envelope is given. Requires
/// `x.len() == envelope.len()` (the classic formulation assumes
/// equal-length series; resample first otherwise).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn lb_keogh(x: &TimeSeries, env: &Envelope, metric: ElementMetric) -> f64 {
    assert_eq!(
        x.len(),
        env.upper.len(),
        "LB_Keogh requires equal lengths (resample first)"
    );
    let mut acc = 0.0;
    for (i, &xi) in x.values().iter().enumerate() {
        if xi > env.upper[i] {
            acc += metric.eval(xi, env.upper[i]);
        } else if xi < env.lower[i] {
            acc += metric.eval(xi, env.lower[i]);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{dtw_banded, DtwOptions};
    use crate::sakoe::sakoe_chiba_band;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn envelope_of_constant_is_constant() {
        let e = Envelope::build(&ts(&[2.0; 9]), 3);
        assert!(e.upper.iter().all(|&v| v == 2.0));
        assert!(e.lower.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn envelope_radius_zero_is_identity() {
        let y = ts(&[1.0, 5.0, 3.0]);
        let e = Envelope::build(&y, 0);
        assert_eq!(e.upper, y.values());
        assert_eq!(e.lower, y.values());
    }

    #[test]
    fn envelope_brackets_series() {
        let y = ts(&[0.0, 3.0, -1.0, 2.0, 5.0, 1.0]);
        for r in [1, 2, 5] {
            let e = Envelope::build(&y, r);
            for i in 0..y.len() {
                assert!(e.lower[i] <= y.at(i) && y.at(i) <= e.upper[i]);
            }
        }
    }

    #[test]
    fn envelope_matches_naive_computation() {
        let y = ts(&[4.0, -2.0, 7.0, 7.0, 0.0, 3.0, -5.0, 1.0]);
        let r = 2;
        let e = Envelope::build(&y, r);
        for i in 0..y.len() {
            let lo = i.saturating_sub(r);
            let hi = (i + r).min(y.len() - 1);
            let mx = y.values()[lo..=hi].iter().cloned().fold(f64::MIN, f64::max);
            let mn = y.values()[lo..=hi].iter().cloned().fold(f64::MAX, f64::min);
            assert_eq!(e.upper[i], mx, "upper at {i}");
            assert_eq!(e.lower[i], mn, "lower at {i}");
        }
    }

    #[test]
    fn lb_keogh_is_zero_inside_tube() {
        let y = ts(&[0.0, 1.0, 2.0, 1.0, 0.0]);
        let env = Envelope::build(&y, 2);
        assert_eq!(lb_keogh(&y, &env, ElementMetric::Squared), 0.0);
    }

    #[test]
    fn lb_keogh_lower_bounds_banded_dtw() {
        // Property over a handful of pseudo-random pairs: LB ≤ SC-DTW.
        let mut seed = 0x12345u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..10 {
            let n = 40;
            let x = ts(&(0..n).map(|_| rng()).collect::<Vec<_>>());
            let y = ts(&(0..n).map(|_| rng()).collect::<Vec<_>>());
            let radius = 4;
            let env = Envelope::build(&y, radius);
            let lb = lb_keogh(&x, &env, ElementMetric::Squared);
            // The SC band with half-width = radius dominates the envelope
            // window, so its DTW distance is lower-bounded by LB_Keogh.
            let band = sakoe_chiba_band(n, n, 2.0 * radius as f64 / n as f64);
            let d = dtw_banded(&x, &y, &band, &DtwOptions::default()).distance;
            assert!(lb <= d + 1e-9, "LB_Keogh {lb} exceeded banded DTW {d}");
        }
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn length_mismatch_panics() {
        let env = Envelope::build(&ts(&[0.0, 1.0]), 1);
        let _ = lb_keogh(&ts(&[0.0, 1.0, 2.0]), &env, ElementMetric::Squared);
    }
}
