//! Sakoe-Chiba bands — the paper's *fixed core & fixed width* baseline.
//!
//! The band follows the (length-corrected) main diagonal with a fixed
//! half-width. The width parameter follows the paper's convention: "each
//! point in the first time series is compared only to `w%` of the points in
//! the second time series" — i.e. a `width_frac` of 0.10 allows each `x_i`
//! to see roughly `0.10 · M` candidate columns.

use crate::band::{Band, ColRange};

/// Column of the length-corrected diagonal for row `i` of an `n × m` grid.
#[inline]
pub fn diagonal_column(i: usize, n: usize, m: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    // round-to-nearest of i*(m-1)/(n-1)
    (i * (m - 1) + (n - 1) / 2) / (n - 1)
}

/// Builds a Sakoe-Chiba band of total width `width_frac · m` (clamped to at
/// least one column each side so the band is never degenerate, and to the
/// full grid when `width_frac ≥ 1`). The result is sanitised (feasible).
///
/// # Panics
///
/// Panics when `n == 0 || m == 0` or `width_frac` is not finite/positive.
pub fn sakoe_chiba_band(n: usize, m: usize, width_frac: f64) -> Band {
    assert!(n > 0 && m > 0, "grid dimensions must be positive");
    assert!(
        width_frac.is_finite() && width_frac > 0.0,
        "width_frac must be finite and > 0, got {width_frac}"
    );
    if width_frac >= 1.0 {
        return Band::full(n, m);
    }
    let half = ((width_frac * m as f64) / 2.0).round().max(1.0) as usize;
    let ranges = (0..n)
        .map(|i| {
            let c = diagonal_column(i, n, m);
            ColRange::new(c.saturating_sub(half), (c + half).min(m - 1))
        })
        .collect();
    Band::from_ranges(n, m, ranges).sanitize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_column_endpoints() {
        assert_eq!(diagonal_column(0, 10, 20), 0);
        assert_eq!(diagonal_column(9, 10, 20), 19);
        assert_eq!(diagonal_column(0, 1, 5), 0);
    }

    #[test]
    fn diagonal_column_is_monotone() {
        let mut prev = 0;
        for i in 0..50 {
            let c = diagonal_column(i, 50, 37);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn band_is_feasible_and_centred() {
        let b = sakoe_chiba_band(100, 100, 0.1);
        assert!(b.is_feasible());
        assert!(b.contains(50, 50));
        assert!(!b.contains(50, 90));
        assert!(b.contains(0, 0));
        assert!(b.contains(99, 99));
    }

    #[test]
    fn width_scales_area() {
        let narrow = sakoe_chiba_band(200, 200, 0.06);
        let wide = sakoe_chiba_band(200, 200, 0.20);
        assert!(narrow.area() < wide.area());
        // 20% band covers roughly 20% of the grid (within rounding + clamp)
        let cov = wide.coverage();
        assert!((0.15..=0.27).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn full_width_returns_full_band() {
        let b = sakoe_chiba_band(10, 12, 1.0);
        assert_eq!(b, Band::full(10, 12));
        let b = sakoe_chiba_band(10, 12, 7.0);
        assert_eq!(b, Band::full(10, 12));
    }

    #[test]
    fn tiny_fraction_still_leaves_connected_band() {
        let b = sakoe_chiba_band(64, 64, 0.001);
        assert!(b.is_feasible());
        // half-width clamps to 1, so each row has at least 2-3 columns
        for i in 0..64 {
            assert!(b.row(i).width() >= 2);
        }
    }

    #[test]
    fn unequal_lengths_follow_corrected_diagonal() {
        let b = sakoe_chiba_band(50, 100, 0.1);
        assert!(b.is_feasible());
        // middle row centred near column 50
        let mid = b.row(25);
        assert!(mid.lo <= 51 && 51 <= mid.hi, "row 25 = {mid:?}");
    }

    #[test]
    #[should_panic(expected = "width_frac")]
    fn rejects_zero_width() {
        let _ = sakoe_chiba_band(10, 10, 0.0);
    }

    #[test]
    fn one_by_one() {
        let b = sakoe_chiba_band(1, 1, 0.1);
        assert!(b.is_feasible());
        assert_eq!(b.area(), 1);
    }
}
