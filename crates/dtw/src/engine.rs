//! Banded dynamic-programming kernel and warp-path traceback.
//!
//! One kernel executes every pruning policy: the accumulation matrix `D` is
//! stored band-sparse (CSR-style row offsets into a flat buffer), so both
//! time and memory are `O(band area)` rather than `O(NM)` — the whole point
//! of constraining the grid. Out-of-band parents are treated as `+∞`; the
//! band sanitiser guarantees the corner cell stays reachable.

use crate::band::Band;
use crate::path::WarpPath;
use sdtw_tseries::{ElementMetric, TimeSeries};
use serde::{Deserialize, Serialize};

/// Local-transition weighting of the DTW recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StepPattern {
    /// `D(i,j) = min(D(i-1,j), D(i,j-1), D(i-1,j-1)) + d` — the paper's
    /// recurrence (§2.1.3) and the default.
    #[default]
    Symmetric1,
    /// Sakoe & Chiba's symmetric2: the diagonal transition pays `2d`
    /// (compensating its double time advance), making the distance
    /// comparable across alignments of different lengths and enabling the
    /// conventional `/(N+M)` normalisation.
    Symmetric2,
}

impl StepPattern {
    /// Cost multiplier of the diagonal transition.
    #[inline]
    pub fn diagonal_weight(self) -> f64 {
        match self {
            StepPattern::Symmetric1 => 1.0,
            StepPattern::Symmetric2 => 2.0,
        }
    }
}

/// Post-hoc normalisation of the accumulated distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Normalization {
    /// Report the raw accumulated cost (the paper's convention).
    #[default]
    None,
    /// Divide by `N + M` — the standard normalisation for
    /// [`StepPattern::Symmetric2`], yielding a per-step cost that is
    /// comparable across series lengths.
    LengthSum,
}

/// Options for a DTW computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DtwOptions {
    /// Pointwise metric inside the recurrence.
    pub metric: ElementMetric,
    /// Whether to keep the accumulation matrix and trace the optimal warp
    /// path back (costs one extra `O(N+M)` walk plus the band-sized matrix
    /// retained during the call either way).
    pub compute_path: bool,
    /// Transition weighting (default: the paper's symmetric1).
    pub step_pattern: StepPattern,
    /// Distance normalisation (default: none, as in the paper).
    pub normalization: Normalization,
}

impl DtwOptions {
    /// Options that also produce the warp path.
    pub fn with_path() -> Self {
        Self {
            compute_path: true,
            ..Self::default()
        }
    }

    /// The conventional normalised-symmetric2 configuration.
    pub fn normalized_symmetric2() -> Self {
        Self {
            step_pattern: StepPattern::Symmetric2,
            normalization: Normalization::LengthSum,
            ..Self::default()
        }
    }
}

/// Result of a DTW computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtwResult {
    /// The (possibly constrained) DTW distance. For a banded run this is an
    /// upper bound on the optimal full-grid distance.
    pub distance: f64,
    /// The optimal warp path within the band, when requested.
    pub path: Option<WarpPath>,
    /// Number of grid cells filled — the deterministic work proxy used by
    /// the experiment harness.
    pub cells_filled: usize,
}

/// Reusable DP buffers: the band-sparse accumulation matrix's row offsets
/// and cell storage.
///
/// A `dtw_banded` call allocates one of these internally; batch workloads
/// (distance matrices, nearest-neighbour loops) instead keep one
/// `DtwScratch` per worker thread and call
/// [`dtw_banded_with_scratch`], turning the per-pair allocation into a
/// cheap `resize` of already-hot buffers. Reuse never changes results:
/// the buffers are re-initialised per call, so scratch and non-scratch
/// paths are bit-identical.
#[derive(Debug, Default, Clone)]
pub struct DtwScratch {
    offsets: Vec<usize>,
    data: Vec<f64>,
}

impl DtwScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity currently held by the cell buffer (diagnostics/tests).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }
}

/// Band-sparse accumulation matrix over borrowed scratch buffers.
struct BandMatrix<'a> {
    band: &'a Band,
    /// Holds the row offsets (`data[offsets[i] + (j - lo_i)]` is cell
    /// `(i,j)`) and the cell buffer.
    scratch: &'a mut DtwScratch,
}

impl<'a> BandMatrix<'a> {
    fn new(band: &'a Band, scratch: &'a mut DtwScratch) -> Self {
        scratch.offsets.clear();
        scratch.offsets.reserve(band.n() + 1);
        let mut acc = 0usize;
        scratch.offsets.push(0);
        for i in 0..band.n() {
            acc += band.row(i).width();
            scratch.offsets.push(acc);
        }
        scratch.data.clear();
        scratch.data.resize(acc, f64::INFINITY);
        Self { band, scratch }
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        let r = self.band.row(i);
        if r.contains(j) {
            self.scratch.data[self.scratch.offsets[i] + (j - r.lo)]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, v: f64) {
        let r = self.band.row(i);
        debug_assert!(r.contains(j));
        self.scratch.data[self.scratch.offsets[i] + (j - r.lo)] = v;
    }
}

/// Computes the DTW distance restricted to a band.
///
/// The band must match the series dimensions (`band.n() == x.len()`,
/// `band.m() == y.len()`); it is sanitised internally when infeasible, so
/// callers may pass raw constraint-builder output. `cells_filled` counts
/// the sanitised band's area.
///
/// # Panics
///
/// Panics on dimension mismatch (programmer error).
pub fn dtw_banded(x: &TimeSeries, y: &TimeSeries, band: &Band, opts: &DtwOptions) -> DtwResult {
    let mut scratch = DtwScratch::new();
    dtw_banded_with_scratch(x, y, band, opts, &mut scratch)
}

/// [`dtw_banded`] with caller-provided scratch buffers.
///
/// Identical results to [`dtw_banded`] (bit-for-bit); the only difference
/// is that the accumulation matrix lives in `scratch`, so tight batch
/// loops amortise the allocation across calls. Keep one scratch per
/// thread — see `sdtw_eval::distmat` for the rayon `map_init` pattern.
///
/// # Panics
///
/// Panics on dimension mismatch (programmer error).
// Index loops are deliberate here: (i, j) are band coordinates addressing
// the matrix, the band rows and both sample buffers simultaneously.
#[allow(clippy::needless_range_loop)]
pub fn dtw_banded_with_scratch(
    x: &TimeSeries,
    y: &TimeSeries,
    band: &Band,
    opts: &DtwOptions,
    scratch: &mut DtwScratch,
) -> DtwResult {
    assert_eq!(band.n(), x.len(), "band rows must match |X|");
    assert_eq!(band.m(), y.len(), "band cols must match |Y|");
    let sanitized;
    let band = if band.is_feasible() {
        band
    } else {
        sanitized = band.sanitize();
        &sanitized
    };

    let xv = x.values();
    let yv = y.values();
    let metric = opts.metric;
    let dw = opts.step_pattern.diagonal_weight();
    let n = band.n();
    let mut d = BandMatrix::new(band, scratch);

    // Row 0: cumulative along the allowed prefix (row 0 always starts at
    // column 0 after sanitisation).
    {
        let r = band.row(0);
        let mut acc = 0.0;
        for j in r.lo..=r.hi {
            acc += metric.eval(xv[0], yv[j]);
            d.set(0, j, acc);
        }
    }
    for i in 1..n {
        let r = band.row(i);
        for j in r.lo..=r.hi {
            let local = metric.eval(xv[i], yv[j]);
            let up = d.get(i - 1, j);
            let (left, diag) = if j > 0 {
                (d.get(i, j - 1), d.get(i - 1, j - 1))
            } else {
                (f64::INFINITY, f64::INFINITY)
            };
            // symmetric2 charges the diagonal transition 2·d
            let best = (up + local).min(left + local).min(diag + dw * local);
            // Cells with no reachable parent stay +inf (they cannot be on
            // any path); feasibility guarantees the corner is reachable.
            d.set(i, j, best);
        }
    }

    let mut distance = d.get(n - 1, band.m() - 1);
    debug_assert!(
        distance.is_finite(),
        "sanitised band must reach the corner cell"
    );

    let path = if opts.compute_path {
        Some(traceback(&d, x, y, opts))
    } else {
        None
    };

    if let Normalization::LengthSum = opts.normalization {
        distance /= (x.len() + y.len()) as f64;
    }

    DtwResult {
        distance,
        path,
        cells_filled: band.area(),
    }
}

/// Computes the unconstrained (optimal) DTW distance.
pub fn dtw_full(x: &TimeSeries, y: &TimeSeries, opts: &DtwOptions) -> DtwResult {
    let band = Band::full(x.len(), y.len());
    dtw_banded(x, y, &band, opts)
}

/// Early-abandoning banded DTW: returns `None` as soon as a completed row's
/// minimum accumulated cost exceeds `threshold` — since local costs are
/// non-negative, no path through that row can come back under it. The
/// staple of nearest-neighbour search loops (threshold = best-so-far).
///
/// `threshold` is interpreted in the same units as the configured
/// [`Normalization`]: row minima are converted into those units before
/// comparing (never the threshold into raw units — float division is
/// monotone, so a candidate whose final normalised distance ties the
/// threshold can never be abandoned mid-run by a rounding artefact; k-NN
/// loops rely on this for tie-exactness). Paths are never computed on the
/// abandoning variant; use [`dtw_banded`] for the winner.
///
/// # Panics
///
/// Panics on dimension mismatch (programmer error).
pub fn dtw_banded_early_abandon(
    x: &TimeSeries,
    y: &TimeSeries,
    band: &Band,
    opts: &DtwOptions,
    threshold: f64,
) -> Option<DtwResult> {
    let mut scratch = DtwScratch::new();
    dtw_banded_early_abandon_with_scratch(x, y, band, opts, threshold, &mut scratch)
}

/// [`dtw_banded_early_abandon`] with caller-provided scratch buffers — the
/// nearest-neighbour hot path. A k-NN loop runs one abandoning DP per
/// surviving candidate; keeping one [`DtwScratch`] per query (or per
/// worker thread in batch mode) turns the per-candidate allocation into a
/// buffer reuse, exactly as [`dtw_banded_with_scratch`] does for the
/// non-abandoning kernel. Results are bit-identical to the allocating
/// variant.
///
/// # Panics
///
/// Panics on dimension mismatch (programmer error).
#[allow(clippy::needless_range_loop)] // same band-coordinate loops as dtw_banded
pub fn dtw_banded_early_abandon_with_scratch(
    x: &TimeSeries,
    y: &TimeSeries,
    band: &Band,
    opts: &DtwOptions,
    threshold: f64,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    assert_eq!(band.n(), x.len(), "band rows must match |X|");
    assert_eq!(band.m(), y.len(), "band cols must match |Y|");
    let sanitized;
    let band = if band.is_feasible() {
        band
    } else {
        sanitized = band.sanitize();
        &sanitized
    };
    // Convert raw accumulated costs into the threshold's units. Division
    // is monotone under rounding: row_min ≤ final raw cost implies
    // in_units(row_min) ≤ the reported distance, so the row check can
    // never abandon a candidate whose final distance would have passed
    // the `distance > threshold` check below — ties survive exactly.
    let in_units = |raw: f64| match opts.normalization {
        Normalization::None => raw,
        Normalization::LengthSum => raw / (x.len() + y.len()) as f64,
    };

    let xv = x.values();
    let yv = y.values();
    let metric = opts.metric;
    let dw = opts.step_pattern.diagonal_weight();
    let n = band.n();
    let mut d = BandMatrix::new(band, scratch);

    {
        let r = band.row(0);
        let mut acc = 0.0;
        let mut row_min = f64::INFINITY;
        for j in r.lo..=r.hi {
            acc += metric.eval(xv[0], yv[j]);
            d.set(0, j, acc);
            row_min = row_min.min(acc);
        }
        if in_units(row_min) > threshold {
            return None;
        }
    }
    for i in 1..n {
        let r = band.row(i);
        let mut row_min = f64::INFINITY;
        for j in r.lo..=r.hi {
            let local = metric.eval(xv[i], yv[j]);
            let up = d.get(i - 1, j);
            let (left, diag) = if j > 0 {
                (d.get(i, j - 1), d.get(i - 1, j - 1))
            } else {
                (f64::INFINITY, f64::INFINITY)
            };
            let best = (up + local).min(left + local).min(diag + dw * local);
            d.set(i, j, best);
            row_min = row_min.min(best);
        }
        if in_units(row_min) > threshold {
            return None;
        }
    }

    let mut distance = d.get(n - 1, band.m() - 1);
    if let Normalization::LengthSum = opts.normalization {
        distance /= (x.len() + y.len()) as f64;
    }
    if distance > threshold {
        return None;
    }
    Some(DtwResult {
        distance,
        path: None,
        cells_filled: band.area(),
    })
}

/// Walks the filled matrix from the top-right corner back to the origin,
/// preferring the diagonal parent on ties (the conventional choice; it
/// yields the shortest of the cost-equal paths). Parent selection accounts
/// for the step pattern: under symmetric2 the diagonal parent's effective
/// cost includes the doubled local term.
fn traceback(d: &BandMatrix<'_>, x: &TimeSeries, y: &TimeSeries, opts: &DtwOptions) -> WarpPath {
    let n = x.len();
    let m = y.len();
    let dw = opts.step_pattern.diagonal_weight();
    let mut steps = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n - 1, m - 1);
    steps.push((i, j));
    while i > 0 || j > 0 {
        let local = opts.metric.eval(x.at(i), y.at(j));
        // effective arrival costs through each parent
        let diag = if i > 0 && j > 0 {
            d.get(i - 1, j - 1) + dw * local
        } else {
            f64::INFINITY
        };
        let up = if i > 0 {
            d.get(i - 1, j) + local
        } else {
            f64::INFINITY
        };
        let left = if j > 0 {
            d.get(i, j - 1) + local
        } else {
            f64::INFINITY
        };
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
        steps.push((i, j));
    }
    steps.reverse();
    WarpPath::from_steps(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::ColRange;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let x = ts(&[0.0, 1.0, 2.0, 1.0]);
        let r = dtw_full(&x, &x, &DtwOptions::with_path());
        assert_eq!(r.distance, 0.0);
        let p = r.path.unwrap();
        p.validate(4, 4).unwrap();
        // zero-distance self-alignment is the diagonal
        assert_eq!(p.steps(), &[(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn known_small_example() {
        // X = [0, 1, 2], Y = [0, 2]; squared metric.
        // Optimal: (0,0)=0, (1,?) -> align 1 with 0 or 2 (cost 1), (2,1)=0.
        let x = ts(&[0.0, 1.0, 2.0]);
        let y = ts(&[0.0, 2.0]);
        let r = dtw_full(&x, &y, &DtwOptions::with_path());
        assert_eq!(r.distance, 1.0);
        assert_eq!(r.cells_filled, 6);
        let p = r.path.unwrap();
        p.validate(3, 2).unwrap();
        assert_eq!(p.cost(&x, &y, ElementMetric::Squared), r.distance);
    }

    #[test]
    fn shifted_pattern_has_small_dtw_but_large_euclidean() {
        // DTW's raison d'être: a temporal shift is almost free.
        let x = ts(&[0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0]);
        let y = ts(&[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let dtw = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let euclid: f64 = x
            .values()
            .iter()
            .zip(y.values())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert_eq!(dtw, 0.0);
        assert!(euclid > 5.0);
    }

    #[test]
    fn symmetry() {
        let x = ts(&[0.3, 1.8, 2.2, 0.1, -0.7]);
        let y = ts(&[1.0, 1.0, 0.0, 2.0]);
        let opts = DtwOptions::default();
        let xy = dtw_full(&x, &y, &opts).distance;
        let yx = dtw_full(&y, &x, &opts).distance;
        assert!((xy - yx).abs() < 1e-12);
    }

    #[test]
    fn banded_distance_upper_bounds_full() {
        let x = ts(&[0.0, 3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]);
        let y = ts(&[2.0, 7.0, 1.0, 8.0, 2.0, 8.0]);
        let full = dtw_full(&x, &y, &DtwOptions::default());
        // a very thin diagonal band
        let ranges = (0..8)
            .map(|i| {
                let c = i * 5 / 7;
                ColRange::new(c, c)
            })
            .collect();
        let band = Band::from_ranges(8, 6, ranges).sanitize();
        let banded = dtw_banded(&x, &y, &band, &DtwOptions::default());
        assert!(banded.distance >= full.distance - 1e-12);
        assert!(banded.cells_filled < full.cells_filled);
    }

    #[test]
    fn full_width_band_equals_full_dtw() {
        let x = ts(&[0.0, 1.0, 0.5, 2.0, 1.5]);
        let y = ts(&[0.2, 0.9, 2.2, 1.4]);
        let full = dtw_full(&x, &y, &DtwOptions::default());
        let band = Band::full(5, 4);
        let banded = dtw_banded(&x, &y, &band, &DtwOptions::default());
        assert_eq!(full.distance, banded.distance);
        assert_eq!(full.cells_filled, banded.cells_filled);
    }

    #[test]
    fn infeasible_band_is_sanitised_internally() {
        let x = ts(&[0.0, 1.0, 2.0, 3.0]);
        let y = ts(&[0.0, 1.0, 2.0, 3.0]);
        // gap between rows 1 and 2
        let band = Band::from_ranges(
            4,
            4,
            vec![
                ColRange::new(0, 0),
                ColRange::new(0, 0),
                ColRange::new(3, 3),
                ColRange::new(3, 3),
            ],
        );
        assert!(!band.is_feasible());
        let r = dtw_banded(&x, &y, &band, &DtwOptions::with_path());
        assert!(r.distance.is_finite());
        r.path.unwrap().validate(4, 4).unwrap();
    }

    #[test]
    fn path_cost_matches_reported_distance() {
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        for metric in [ElementMetric::Squared, ElementMetric::Absolute] {
            let opts = DtwOptions {
                metric,
                compute_path: true,
                ..DtwOptions::default()
            };
            let r = dtw_full(&x, &y, &opts);
            let p = r.path.unwrap();
            p.validate(6, 5).unwrap();
            assert!((p.cost(&x, &y, metric) - r.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn single_sample_series() {
        let x = ts(&[2.0]);
        let y = ts(&[5.0, 5.0, 5.0]);
        let r = dtw_full(&x, &y, &DtwOptions::with_path());
        assert_eq!(r.distance, 27.0); // 3 * (3^2)
        let p = r.path.unwrap();
        p.validate(1, 3).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn absolute_metric_known_value() {
        let x = ts(&[0.0, 5.0]);
        let y = ts(&[0.0, 5.0, 5.0]);
        let opts = DtwOptions {
            metric: ElementMetric::Absolute,
            ..DtwOptions::default()
        };
        assert_eq!(dtw_full(&x, &y, &opts).distance, 0.0);
    }

    #[test]
    fn symmetric2_weights_the_diagonal() {
        // X = Y = [0, 1]: the diagonal path costs 0 under both patterns,
        // so use a pair where the optimal path takes a diagonal step with
        // non-zero local cost.
        let x = ts(&[0.0, 1.0]);
        let y = ts(&[0.0, 2.0]);
        let s1 = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let s2 = dtw_full(
            &x,
            &y,
            &DtwOptions {
                step_pattern: StepPattern::Symmetric2,
                ..DtwOptions::default()
            },
        )
        .distance;
        // symmetric1: diagonal step pays (1-2)^2 = 1; symmetric2 pays 2
        assert_eq!(s1, 1.0);
        assert_eq!(s2, 2.0);
    }

    #[test]
    fn symmetric2_distance_dominates_symmetric1() {
        let x = ts(&[0.3, 1.8, 2.2, 0.1, -0.7, 0.4]);
        let y = ts(&[1.0, 1.0, 0.0, 2.0, 0.3]);
        let s1 = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let s2 = dtw_full(
            &x,
            &y,
            &DtwOptions {
                step_pattern: StepPattern::Symmetric2,
                ..DtwOptions::default()
            },
        )
        .distance;
        assert!(s2 >= s1 - 1e-12, "s2 {s2} must dominate s1 {s1}");
    }

    #[test]
    fn normalization_divides_by_length_sum() {
        let x = ts(&[0.0, 1.0, 2.0]);
        let y = ts(&[0.0, 2.0]);
        let raw = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let norm = dtw_full(
            &x,
            &y,
            &DtwOptions {
                normalization: Normalization::LengthSum,
                ..DtwOptions::default()
            },
        )
        .distance;
        assert!((norm - raw / 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_symmetric2_path_is_still_valid() {
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let opts = DtwOptions {
            compute_path: true,
            ..DtwOptions::normalized_symmetric2()
        };
        let r = dtw_full(&x, &y, &opts);
        r.path.unwrap().validate(6, 5).unwrap();
        assert!(r.distance.is_finite() && r.distance >= 0.0);
    }

    #[test]
    fn early_abandon_agrees_with_full_when_under_threshold() {
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let band = Band::full(6, 5);
        let opts = DtwOptions::default();
        let full = dtw_banded(&x, &y, &band, &opts);
        let ea = dtw_banded_early_abandon(&x, &y, &band, &opts, f64::INFINITY)
            .expect("infinite threshold never abandons");
        assert_eq!(ea.distance, full.distance);
    }

    #[test]
    fn early_abandon_fires_on_tight_threshold() {
        let x = ts(&[0.0; 20]);
        let y = ts(&[10.0; 20]);
        let band = Band::full(20, 20);
        let opts = DtwOptions::default();
        // every cell costs 100; first row min is 100 > 1
        assert!(dtw_banded_early_abandon(&x, &y, &band, &opts, 1.0).is_none());
        // threshold exactly at the distance keeps the result
        let d = dtw_banded(&x, &y, &band, &opts).distance;
        assert!(dtw_banded_early_abandon(&x, &y, &band, &opts, d).is_some());
    }

    #[test]
    fn early_abandon_respects_normalized_thresholds() {
        let x = ts(&[0.0, 1.0, 2.0, 1.0]);
        let y = ts(&[0.0, 2.0, 2.0, 0.0]);
        let band = Band::full(4, 4);
        let opts = DtwOptions {
            normalization: Normalization::LengthSum,
            ..DtwOptions::default()
        };
        let d = dtw_banded(&x, &y, &band, &opts).distance;
        assert!(dtw_banded_early_abandon(&x, &y, &band, &opts, d + 1e-9).is_some());
        assert!(dtw_banded_early_abandon(&x, &y, &band, &opts, d * 0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "band rows must match")]
    fn dimension_mismatch_panics() {
        let x = ts(&[0.0, 1.0]);
        let y = ts(&[0.0]);
        let band = Band::full(3, 1);
        let _ = dtw_banded(&x, &y, &band, &DtwOptions::default());
    }

    #[test]
    fn monotone_band_with_unequal_lengths_traces_back() {
        let x = ts(&(0..40).map(|i| (i as f64 / 5.0).sin()).collect::<Vec<_>>());
        let y = ts(&(0..25).map(|i| (i as f64 / 4.0).sin()).collect::<Vec<_>>());
        let ranges = (0..40usize)
            .map(|i| {
                let c = i * 24 / 39;
                ColRange::new(c.saturating_sub(2), (c + 2).min(24))
            })
            .collect();
        let band = Band::from_ranges(40, 25, ranges).sanitize();
        let r = dtw_banded(&x, &y, &band, &DtwOptions::with_path());
        let p = r.path.unwrap();
        p.validate(40, 25).unwrap();
        // every path step must lie inside the band
        for &(i, j) in p.steps() {
            assert!(band.contains(i, j));
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_mixed_shapes() {
        // one scratch reused across pairs of different sizes and bands
        // must reproduce the allocating path exactly
        let mut scratch = DtwScratch::new();
        let series: Vec<TimeSeries> = (0..6)
            .map(|k| {
                ts(&(0..(20 + 7 * k))
                    .map(|i| ((i + 3 * k) as f64 / (4 + k) as f64).sin())
                    .collect::<Vec<_>>())
            })
            .collect();
        for a in &series {
            for b in &series {
                for band in [
                    Band::full(a.len(), b.len()),
                    crate::sakoe::sakoe_chiba_band(a.len(), b.len(), 0.3),
                ] {
                    for opts in [DtwOptions::default(), DtwOptions::normalized_symmetric2()] {
                        let fresh = dtw_banded(a, b, &band, &opts);
                        let reused = dtw_banded_with_scratch(a, b, &band, &opts, &mut scratch);
                        assert_eq!(fresh.distance.to_bits(), reused.distance.to_bits());
                        assert_eq!(fresh.cells_filled, reused.cells_filled);
                    }
                }
            }
        }
    }

    #[test]
    fn early_abandon_scratch_reuse_is_bit_identical() {
        // one scratch reused across candidates of mixed shapes must agree
        // exactly with the allocating early-abandon path, both in outcome
        // (abandon vs complete) and in the returned distance bits
        let mut scratch = DtwScratch::new();
        let series: Vec<TimeSeries> = (0..5)
            .map(|k| {
                ts(&(0..(18 + 9 * k))
                    .map(|i| ((i + 2 * k) as f64 / (3 + k) as f64).sin())
                    .collect::<Vec<_>>())
            })
            .collect();
        for a in &series {
            for b in &series {
                let band = Band::full(a.len(), b.len());
                for threshold in [0.05, 1.0, f64::INFINITY] {
                    for opts in [DtwOptions::default(), DtwOptions::normalized_symmetric2()] {
                        let fresh = dtw_banded_early_abandon(a, b, &band, &opts, threshold);
                        let reused = dtw_banded_early_abandon_with_scratch(
                            a,
                            b,
                            &band,
                            &opts,
                            threshold,
                            &mut scratch,
                        );
                        match (fresh, reused) {
                            (None, None) => {}
                            (Some(f), Some(r)) => {
                                assert_eq!(f.distance.to_bits(), r.distance.to_bits());
                                assert_eq!(f.cells_filled, r.cells_filled);
                            }
                            (f, r) => panic!("abandon disagreement: {f:?} vs {r:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_produces_valid_paths_too() {
        let mut scratch = DtwScratch::new();
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let band = Band::full(6, 5);
        let r = dtw_banded_with_scratch(&x, &y, &band, &DtwOptions::with_path(), &mut scratch);
        let p = r.path.unwrap();
        p.validate(6, 5).unwrap();
        // buffers were retained for reuse
        assert!(scratch.capacity() >= 30);
    }
}
