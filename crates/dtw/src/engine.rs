//! Banded dynamic-programming engine and warp-path traceback.
//!
//! One kernel-generic recurrence executes every pruning policy **and**
//! every cost model, under either of two interchangeable fill orders:
//!
//! * the **wavefront engine** (default) sweeps anti-diagonals `d = i + j`
//!   of the banded lattice: every cell on a diagonal depends only on the
//!   two previous diagonals, so the inner loop carries no serial
//!   dependency and only three flat diagonal buffers stay alive;
//! * the **row engine** fills row-by-row into the band-sparse
//!   accumulation matrix `D` (CSR-style row offsets into a flat buffer)
//!   and is the executor for path mode, whose backward traceback walk
//!   needs the whole matrix.
//!
//! Both engines evaluate the identical per-cell kernel expression in
//! `O(band area)`, so their distances and abandon decisions are
//! bit-identical (`tests/differential_engine.rs` is the harness that
//! keeps this checkable); [`DtwEngine::selected`] picks the process-wide
//! engine from `SDTW_ENGINE`, and [`SimdMode::selected`] independently
//! picks whether the wavefront's diagonal sweep runs in explicit
//! [`F64Lanes`] vectors or one scalar cell at a time (`SDTW_SIMD`,
//! bit-identical either way). Out-of-band parents are treated as `+∞`;
//! the band sanitiser guarantees the corner cell stays reachable.
//!
//! The execution surface is **one** function pair:
//!
//! * [`dtw_run`] — generic over any [`DtwKernel`] (static dispatch, the
//!   fill loop monomorphises per kernel), with warp-path tracing and the
//!   early-abandon cutoff as orthogonal options;
//! * [`dtw_run_options`] — the same path driven by a serialisable
//!   [`DtwOptions`] (its [`KernelChoice`] is dispatched once per call).
//!
//! The historical `dtw_banded*` entry points survive as `#[deprecated]`
//! shims over [`dtw_run_options`] and are bit-identical to it.

use crate::band::Band;
use crate::kernel::{AmercedKernel, DtwKernel, KernelChoice, StandardKernel};
use crate::path::WarpPath;
use crate::simd::{F64Lanes, LaneMask, SimdMode, LANE_WIDTH};
use sdtw_tseries::{ElementMetric, TimeSeries, TsError};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Which fill order executes the banded DP recurrence.
///
/// Both engines compute the same per-cell expression over the same band,
/// so results are bit-identical; the choice is purely an execution-shape
/// decision (the wavefront layout is the one that admits data-parallel
/// sweeps). Path mode always executes on the row engine regardless of the
/// selection — the traceback walk needs the full accumulation matrix,
/// which the wavefront never materialises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DtwEngine {
    /// Anti-diagonal sweep over three rotating diagonal buffers (the
    /// default).
    #[default]
    Wavefront,
    /// Row-sequential fill of the band-sparse matrix; also the executor
    /// behind path reconstruction.
    Rows,
}

impl DtwEngine {
    /// Parses an engine name (`"wavefront"` / `"rows"`, case-insensitive;
    /// the empty string selects the default). Returns `None` for anything
    /// else.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "wavefront" => Some(Self::Wavefront),
            "rows" | "row" => Some(Self::Rows),
            _ => None,
        }
    }

    /// Resolves an optional `SDTW_ENGINE` value to an engine: `None`
    /// (unset) is the default; an unparsable value is a proper
    /// [`TsError::InvalidParameter`], never a panic. This is the pure core
    /// of [`DtwEngine::from_env`], split out so tests can exercise the
    /// error path without mutating the process environment.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] on an unrecognised value.
    pub fn from_env_value(value: Option<&str>) -> Result<Self, TsError> {
        match value {
            None => Ok(Self::default()),
            Some(v) => Self::parse(v).ok_or_else(|| TsError::InvalidParameter {
                name: "SDTW_ENGINE",
                reason: format!("must be 'wavefront' or 'rows', got '{v}'"),
            }),
        }
    }

    /// Reads and validates the `SDTW_ENGINE` environment variable.
    /// Front-ends (the CLI) call this once at startup so a misspelt forced
    /// engine surfaces as an error message instead of a panic or a
    /// silently benchmarked default.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] on an unrecognised value.
    pub fn from_env() -> Result<Self, TsError> {
        Self::from_env_value(std::env::var("SDTW_ENGINE").ok().as_deref())
    }

    /// The process-wide engine selection: the `SDTW_ENGINE` environment
    /// variable, read once and cached (the CI matrix forces each value in
    /// turn); unset defaults to [`DtwEngine::Wavefront`]. An invalid value
    /// falls back to the default here — validation lives in
    /// [`DtwEngine::from_env`], which front-ends invoke at startup to fail
    /// fast with a proper error.
    pub fn selected() -> Self {
        static SELECTED: OnceLock<DtwEngine> = OnceLock::new();
        *SELECTED.get_or_init(|| Self::from_env().unwrap_or_default())
    }
}

/// Local-transition weighting of the DTW recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StepPattern {
    /// `D(i,j) = min(D(i-1,j), D(i,j-1), D(i-1,j-1)) + d` — the paper's
    /// recurrence (§2.1.3) and the default.
    #[default]
    Symmetric1,
    /// Sakoe & Chiba's symmetric2: the diagonal transition pays `2d`
    /// (compensating its double time advance), making the distance
    /// comparable across alignments of different lengths and enabling the
    /// conventional `/(N+M)` normalisation.
    Symmetric2,
}

impl StepPattern {
    /// Cost multiplier of the diagonal transition.
    #[inline]
    pub fn diagonal_weight(self) -> f64 {
        match self {
            StepPattern::Symmetric1 => 1.0,
            StepPattern::Symmetric2 => 2.0,
        }
    }
}

/// Post-hoc normalisation of the accumulated distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Normalization {
    /// Report the raw accumulated cost (the paper's convention).
    #[default]
    None,
    /// Divide by `N + M` — the standard normalisation for
    /// [`StepPattern::Symmetric2`], yielding a per-step cost that is
    /// comparable across series lengths.
    LengthSum,
}

/// Options for a DTW computation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct DtwOptions {
    /// Pointwise metric inside the recurrence.
    pub metric: ElementMetric,
    /// Whether to keep the accumulation matrix and trace the optimal warp
    /// path back (costs one extra `O(N+M)` walk plus the band-sized matrix
    /// retained during the call either way).
    pub compute_path: bool,
    /// Transition weighting (default: the paper's symmetric1). Ignored by
    /// the amerced kernel, which defines its own weighting.
    pub step_pattern: StepPattern,
    /// Distance normalisation (default: none, as in the paper).
    pub normalization: Normalization,
    /// Which cost kernel runs the recurrence (default: the standard
    /// step-pattern kernel).
    pub kernel: KernelChoice,
}

// Hand-written (the shim derive has no `#[serde(default)]`): `kernel`
// falls back to `Standard` when absent, so JSON artifacts persisted
// before the field existed — index snapshots in particular — keep
// loading.
impl serde::Deserialize for DtwOptions {
    fn from_json(v: &serde::Value) -> Result<Self, serde::DeError> {
        if v.as_object().is_none() {
            return Err(serde::DeError::expected("object", v));
        }
        Ok(Self {
            metric: serde::Deserialize::from_json(serde::obj_get(v, "metric")?)?,
            compute_path: serde::Deserialize::from_json(serde::obj_get(v, "compute_path")?)?,
            step_pattern: serde::Deserialize::from_json(serde::obj_get(v, "step_pattern")?)?,
            normalization: serde::Deserialize::from_json(serde::obj_get(v, "normalization")?)?,
            kernel: match v.get("kernel") {
                Some(k) => serde::Deserialize::from_json(k)?,
                None => KernelChoice::default(),
            },
        })
    }
}

impl DtwOptions {
    /// Options that also produce the warp path.
    pub fn with_path() -> Self {
        Self {
            compute_path: true,
            ..Self::default()
        }
    }

    /// The conventional normalised-symmetric2 configuration.
    pub fn normalized_symmetric2() -> Self {
        Self {
            step_pattern: StepPattern::Symmetric2,
            normalization: Normalization::LengthSum,
            ..Self::default()
        }
    }

    /// ADTW options: the amerced kernel with the given warp penalty.
    pub fn amerced(penalty: f64) -> Self {
        Self {
            kernel: KernelChoice::Amerced { penalty },
            ..Self::default()
        }
    }

    /// Validates kernel parameters (the amerced penalty must be finite
    /// and non-negative — both early abandoning and the lower-bound
    /// admissibility argument rely on it).
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] on a bad penalty.
    pub fn validate(&self) -> Result<(), TsError> {
        if let KernelChoice::Amerced { penalty } = self.kernel {
            if !penalty.is_finite() || penalty < 0.0 {
                return Err(TsError::InvalidParameter {
                    name: "kernel.penalty",
                    reason: format!("amerced warp penalty must be finite and >= 0, got {penalty}"),
                });
            }
        }
        Ok(())
    }

    /// Whether `LB_Kim`/`LB_Keogh` remain admissible under the configured
    /// kernel (retrieval cascades consult this before enabling
    /// lower-bound pruning).
    pub fn lower_bounds_admissible(&self) -> bool {
        self.kernel.lower_bounds_admissible()
    }

    /// Short label of the configured kernel (experiment output, CLI).
    pub fn kernel_label(&self) -> String {
        self.kernel.label(self.step_pattern)
    }
}

/// Result of a DTW computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DtwResult {
    /// The (possibly constrained) DTW distance. For a banded run this is an
    /// upper bound on the optimal full-grid distance.
    pub distance: f64,
    /// The optimal warp path within the band, when requested.
    pub path: Option<WarpPath>,
    /// Number of grid cells filled — the deterministic work proxy used by
    /// the experiment harness.
    pub cells_filled: usize,
}

/// Reusable DP buffers: the band-sparse accumulation matrix's row offsets
/// and cell storage (row engine), plus the three rotating anti-diagonal
/// buffers of the wavefront engine (which the explicit-SIMD lane sweep
/// loads [`LANE_WIDTH`] cells at a time — plain contiguous `Vec<f64>`
/// storage is exactly the layout the lanes want).
///
/// A [`dtw_run`] call without caller scratch allocates one internally;
/// batch workloads (distance matrices, nearest-neighbour loops) instead
/// keep one `DtwScratch` per worker thread, turning the per-pair
/// allocation into a cheap `resize` of already-hot buffers. Reuse never
/// changes results: the buffers are re-initialised per call, so scratch
/// and non-scratch paths are bit-identical.
#[derive(Debug, Default, Clone)]
pub struct DtwScratch {
    offsets: Vec<usize>,
    data: Vec<f64>,
    // wavefront engine: diagonals d-2, d-1 and d of the sweep, rotated by
    // pointer swap; each holds at most min(n, m) cells
    diag_a: Vec<f64>,
    diag_b: Vec<f64>,
    diag_c: Vec<f64>,
    // wavefront engine, non-staircase bands: suffix minimum of the row
    // start diagonals `i + lo_i`, rebuilt per call
    start_min: Vec<usize>,
}

impl DtwScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Capacity currently held by the cell buffer (diagnostics/tests).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }
}

/// Band-sparse accumulation matrix over borrowed scratch buffers.
struct BandMatrix<'a> {
    band: &'a Band,
    /// Holds the row offsets (`data[offsets[i] + (j - lo_i)]` is cell
    /// `(i,j)`) and the cell buffer.
    scratch: &'a mut DtwScratch,
}

impl<'a> BandMatrix<'a> {
    fn new(band: &'a Band, scratch: &'a mut DtwScratch) -> Self {
        scratch.offsets.clear();
        scratch.offsets.reserve(band.n() + 1);
        let mut acc = 0usize;
        scratch.offsets.push(0);
        for i in 0..band.n() {
            acc += band.row(i).width();
            scratch.offsets.push(acc);
        }
        scratch.data.clear();
        scratch.data.resize(acc, f64::INFINITY);
        Self { band, scratch }
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        let r = self.band.row(i);
        if r.contains(j) {
            self.scratch.data[self.scratch.offsets[i] + (j - r.lo)]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, v: f64) {
        let r = self.band.row(i);
        debug_assert!(r.contains(j));
        self.scratch.data[self.scratch.offsets[i] + (j - r.lo)] = v;
    }
}

/// Fills the band-sparse matrix under a kernel. With `ABANDON`, returns
/// `None` as soon as a completed row's minimum (converted into reported
/// units, which is monotone) exceeds `cutoff` — kernels guarantee costs
/// never decrease along a path, so no path through that row can come back
/// under it. With `ABANDON = false` the cutoff comparisons compile out
/// and the fill always completes.
// Index loops are deliberate here: (i, j) are band coordinates addressing
// the matrix, the band rows and both sample buffers simultaneously.
#[allow(clippy::needless_range_loop)]
fn fill<'a, K: DtwKernel, const ABANDON: bool>(
    xv: &[f64],
    yv: &[f64],
    band: &'a Band,
    metric: ElementMetric,
    kernel: &K,
    cutoff: f64,
    scratch: &'a mut DtwScratch,
) -> Option<BandMatrix<'a>> {
    let n = band.n();
    let mut d = BandMatrix::new(band, scratch);

    // Row 0: cumulative along the allowed prefix (row 0 always starts at
    // column 0 after sanitisation).
    {
        let r = band.row(0);
        let mut acc = 0.0;
        let mut row_min = f64::INFINITY;
        for j in r.lo..=r.hi {
            let local = metric.eval(xv[0], yv[j]);
            acc = if j == r.lo {
                kernel.start(local)
            } else {
                kernel.left(acc, local)
            };
            d.set(0, j, acc);
            if ABANDON {
                row_min = row_min.min(acc);
            }
        }
        if ABANDON && kernel.normalize(row_min, xv.len(), yv.len()) > cutoff {
            return None;
        }
    }
    for i in 1..n {
        let r = band.row(i);
        let mut row_min = f64::INFINITY;
        for j in r.lo..=r.hi {
            let local = metric.eval(xv[i], yv[j]);
            let up = d.get(i - 1, j);
            let (left, diag) = if j > 0 {
                (d.get(i, j - 1), d.get(i - 1, j - 1))
            } else {
                (f64::INFINITY, f64::INFINITY)
            };
            let best = kernel
                .up(up, local)
                .min(kernel.left(left, local))
                .min(kernel.diagonal(diag, local));
            // Cells with no reachable parent stay +inf (they cannot be on
            // any path); feasibility guarantees the corner is reachable.
            d.set(i, j, best);
            if ABANDON {
                row_min = row_min.min(best);
            }
        }
        if ABANDON && kernel.normalize(row_min, xv.len(), yv.len()) > cutoff {
            return None;
        }
    }
    Some(d)
}

/// A parent read outside the recorded span of its diagonal buffer is out
/// of band, hence `+∞`.
#[inline(always)]
fn span_read(buf: &[f64], span: (usize, usize), i: usize) -> f64 {
    if span.0 <= i && i <= span.1 {
        buf[i - span.0]
    } else {
        f64::INFINITY
    }
}

/// One scalar pass over rows `lo..hi` of diagonal `d` (span origin `a`) —
/// the per-cell reference expression of the wavefront sweep. The lane
/// path delegates its head/ragged-tail cells (and any span narrower than
/// one vector) here, so scalar and lane fills share one cell definition.
#[allow(clippy::too_many_arguments)]
// private kernel of fill_wavefront
// the index loop addresses the band rows and both sample buffers at once
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn wavefront_cells_scalar<K: DtwKernel, const ABANDON: bool>(
    xv: &[f64],
    yv: &[f64],
    band: &Band,
    staircase: bool,
    metric: ElementMetric,
    kernel: &K,
    d: usize,
    a: usize,
    lo: usize,
    hi: usize,
    prev: &[f64],
    prev_span: (usize, usize),
    prev2: &[f64],
    prev2_span: (usize, usize),
    cur: &mut [f64],
    diag_min: &mut f64,
) {
    for i in lo..hi {
        let j = d - i;
        if !staircase && !band.row(i).contains(j) {
            cur[i - a] = f64::INFINITY;
            continue;
        }
        let local = metric.eval(xv[i], yv[j]);
        // the same three-way kernel expression as the row engine; arms
        // whose parent cannot exist (i == 0 or j == 0) drop out exactly
        // as min(x, +inf) would
        let v = if i == 0 {
            if j == band.row(0).lo {
                kernel.start(local)
            } else {
                kernel.left(span_read(prev, prev_span, 0), local)
            }
        } else if j == 0 {
            kernel.up(span_read(prev, prev_span, i - 1), local)
        } else {
            let up = span_read(prev, prev_span, i - 1);
            let left = span_read(prev, prev_span, i);
            let diag = span_read(prev2, prev2_span, i - 1);
            kernel
                .up(up, local)
                .min(kernel.left(left, local))
                .min(kernel.diagonal(diag, local))
        };
        cur[i - a] = v;
        if ABANDON {
            *diag_min = diag_min.min(v);
        }
    }
}

/// Wavefront fill: sweeps anti-diagonals `d = i + j` of the banded
/// lattice and returns the raw corner cost. Cell `(i, j)` reads its `up`
/// and `left` parents from diagonal `d - 1` and its `diagonal` parent
/// from `d - 2`, so only three flat buffers stay alive and the inner loop
/// over a diagonal carries no serial dependency (the shape the explicit
/// SIMD lanes map onto directly). The per-cell expression is the row
/// engine's verbatim, hence bit-identical values by induction over `d`.
///
/// With `LANES`, the interior of each diagonal span — the rows whose
/// three parent reads are proven inside the recorded spans of the two
/// live diagonals, so no per-cell span check is needed — is swept
/// [`LANE_WIDTH`] cells at a time on [`F64Lanes`] through the kernel's
/// `*_lanes` seam; the head before the interior, the ragged tail after
/// the last full vector, and any span narrower than one vector run the
/// scalar per-cell code above. Non-staircase membership is applied by
/// mask-select (`+∞` into excluded lanes — the value the scalar path
/// writes). Every lane executes the scalar op sequence bit-for-bit, so
/// `LANES` never changes a single stored cell.
///
/// With `ABANDON`, abandons when neither of the two live diagonals holds
/// a cell at or under `cutoff`: a warp path advances `i + j` by 1 or 2
/// per step, so every path from origin to corner visits diagonal `d - 1`
/// or `d`, and kernels never decrease cost along a path. The lane path
/// folds a vector minimum and reduces it with [`F64Lanes::horizontal_min`]
/// — `f64::min` over non-NaN values is order-independent, so the reduced
/// value (and hence every abandon decision) is identical to the scalar
/// left-to-right fold.
///
/// Band cells are enumerated per diagonal as one contiguous row interval.
/// For staircase bands (both edges non-decreasing — every classic policy)
/// the interval is exact; otherwise a conservative interval is scanned
/// with per-cell membership tests and out-of-band slots pinned to `+∞`.
fn fill_wavefront<K: DtwKernel, const ABANDON: bool, const LANES: bool>(
    xv: &[f64],
    yv: &[f64],
    band: &Band,
    metric: ElementMetric,
    kernel: &K,
    cutoff: f64,
    scratch: &mut DtwScratch,
) -> Option<f64> {
    let n = band.n();
    let m = band.m();
    let staircase = band.is_staircase();
    // a diagonal holds at most min(n, m) cells
    let cap = n.min(m);
    let mut prev2 = std::mem::take(&mut scratch.diag_a);
    let mut prev = std::mem::take(&mut scratch.diag_b);
    let mut cur = std::mem::take(&mut scratch.diag_c);
    let mut start_min = std::mem::take(&mut scratch.start_min);
    prev2.clear();
    prev2.resize(cap, f64::INFINITY);
    prev.clear();
    prev.resize(cap, f64::INFINITY);
    cur.clear();
    cur.resize(cap, f64::INFINITY);
    if !staircase {
        // suffix minimum of the row start diagonals: rows beyond the last
        // `i` with `start_min[i] <= d` cannot own a cell on diagonal `d`
        start_min.clear();
        start_min.resize(n, 0);
        let mut run = usize::MAX;
        for i in (0..n).rev() {
            run = run.min(i + band.row(i).lo);
            start_min[i] = run;
        }
    }

    let raw = 'sweep: {
        let total = n + m - 1;
        // two-pointer row-span state, advanced monotonically with d
        let mut first_row = 0usize; // staircase: first i with i + hi_i >= d
        let mut last_row = 0usize; // last i whose (suffix-min) start <= d
        let mut end_max = band.row(0).hi; // general: prefix max of i + hi_i
        let mut prev_span = (1usize, 0usize); // empty
        let mut prev2_span = (1usize, 0usize);
        let mut frontier_min = f64::INFINITY; // min of diagonal d - 1
        for d in 0..total {
            let (a, b) = if staircase {
                while first_row < n && first_row + band.row(first_row).hi < d {
                    first_row += 1;
                }
                while last_row + 1 < n && last_row + 1 + band.row(last_row + 1).lo <= d {
                    last_row += 1;
                }
                (first_row, last_row)
            } else {
                while first_row + 1 < n && end_max < d {
                    first_row += 1;
                    end_max = end_max.max(first_row + band.row(first_row).hi);
                }
                while last_row + 1 < n && start_min[last_row + 1] <= d {
                    last_row += 1;
                }
                (first_row, last_row)
            };
            // clamp to the geometric diagonal so j = d - i is a column
            let a = a.max(d.saturating_sub(m - 1));
            let b = b.min(d);
            let mut diag_min = f64::INFINITY;
            if a <= b {
                // lane-safe interior of the span: rows whose `up`/`left`
                // reads (prev[i-1], prev[i]) and `diag` read (prev2[i-1])
                // are all inside the recorded spans, and which are neither
                // in row 0 nor column 0 — within it, parents load straight
                // from the buffers with no span or edge checks. (When a
                // live span is the empty sentinel (1, 0), lo > hi and the
                // interior vanishes; +1 on the sentinel cannot overflow.)
                let lane_lo = a.max(1).max(prev_span.0 + 1).max(prev2_span.0 + 1);
                let lane_hi = b
                    .min(d.saturating_sub(1))
                    .min(prev_span.1)
                    .min(prev2_span.1 + 1);
                if LANES && lane_lo <= lane_hi && lane_hi - lane_lo + 1 >= LANE_WIDTH {
                    wavefront_cells_scalar::<K, ABANDON>(
                        xv,
                        yv,
                        band,
                        staircase,
                        metric,
                        kernel,
                        d,
                        a,
                        a,
                        lane_lo,
                        &prev,
                        prev_span,
                        &prev2,
                        prev2_span,
                        &mut cur,
                        &mut diag_min,
                    );
                    let mut lane_min = F64Lanes::splat(f64::INFINITY);
                    let mut i0 = lane_lo;
                    while i0 + LANE_WIDTH <= lane_hi + 1 {
                        let xs = F64Lanes::load(&xv[i0..]);
                        // ascending rows read descending columns j = d - i:
                        // a contiguous yv window, loaded reversed
                        let ys = F64Lanes::load_reversed(&yv[d - i0 + 1 - LANE_WIDTH..]);
                        let local = kernel.local_lanes(metric, xs, ys);
                        let up = F64Lanes::load(&prev[i0 - 1 - prev_span.0..]);
                        let left = F64Lanes::load(&prev[i0 - prev_span.0..]);
                        let diag = F64Lanes::load(&prev2[i0 - 1 - prev2_span.0..]);
                        let mut v = kernel
                            .up_lanes(up, local)
                            .min(kernel.left_lanes(left, local))
                            .min(kernel.diagonal_lanes(diag, local));
                        if !staircase {
                            // out-of-band lanes get the +inf the scalar
                            // path writes; their computed values (finite,
                            // never NaN) are discarded by the select
                            let member =
                                LaneMask::from_fn(|l| band.row(i0 + l).contains(d - i0 - l));
                            v = F64Lanes::select(member, v, F64Lanes::splat(f64::INFINITY));
                        }
                        v.store(&mut cur[i0 - a..]);
                        if ABANDON {
                            lane_min = lane_min.min(v);
                        }
                        i0 += LANE_WIDTH;
                    }
                    if ABANDON {
                        diag_min = diag_min.min(lane_min.horizontal_min());
                    }
                    wavefront_cells_scalar::<K, ABANDON>(
                        xv,
                        yv,
                        band,
                        staircase,
                        metric,
                        kernel,
                        d,
                        a,
                        i0,
                        b + 1,
                        &prev,
                        prev_span,
                        &prev2,
                        prev2_span,
                        &mut cur,
                        &mut diag_min,
                    );
                } else {
                    wavefront_cells_scalar::<K, ABANDON>(
                        xv,
                        yv,
                        band,
                        staircase,
                        metric,
                        kernel,
                        d,
                        a,
                        a,
                        b + 1,
                        &prev,
                        prev_span,
                        &prev2,
                        prev2_span,
                        &mut cur,
                        &mut diag_min,
                    );
                }
            }
            if ABANDON && kernel.normalize(frontier_min.min(diag_min), xv.len(), yv.len()) > cutoff
            {
                break 'sweep None;
            }
            if d + 1 == total {
                // the last diagonal is exactly the corner cell
                break 'sweep Some(cur[n - 1 - a]);
            }
            if ABANDON {
                frontier_min = diag_min;
            }
            std::mem::swap(&mut prev2, &mut prev);
            std::mem::swap(&mut prev, &mut cur);
            prev2_span = prev_span;
            prev_span = (a, b);
        }
        unreachable!("the corner diagonal terminates the sweep");
    };

    scratch.diag_a = prev2;
    scratch.diag_b = prev;
    scratch.diag_c = cur;
    scratch.start_min = start_min;
    raw
}

/// The unified banded DTW execution path, generic over the cost kernel.
///
/// Orthogonal options, all in one call:
///
/// * **kernel** — any [`DtwKernel`]; the fill loop monomorphises (no
///   per-cell dispatch). Config-driven callers use [`dtw_run_options`].
/// * **`compute_path`** — trace the optimal warp path back from the
///   corner (one extra `O(N+M)` walk).
/// * **`cutoff`** — early abandoning: `Some(t)` returns `None` as soon as
///   a completed row's minimum accumulated cost (in reported-distance
///   units — conversion is monotone, so ties survive exactly) exceeds
///   `t`, or when the final distance does. `None` never abandons.
/// * **`scratch`** — caller-owned DP buffers; keep one per worker thread
///   in batch loops. Results are bit-identical regardless of reuse.
///
/// The band must match the series dimensions; it is sanitised internally
/// when infeasible, so callers may pass raw constraint-builder output.
/// `cells_filled` counts the sanitised band's area.
///
/// # Panics
///
/// Panics on dimension mismatch (programmer error).
// The argument list IS the option set, each orthogonal by design; a config
// struct would just re-wrap DtwOptions (see dtw_run_options for that form).
#[allow(clippy::too_many_arguments)]
pub fn dtw_run<K: DtwKernel>(
    x: &TimeSeries,
    y: &TimeSeries,
    band: &Band,
    metric: ElementMetric,
    kernel: &K,
    compute_path: bool,
    cutoff: Option<f64>,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    dtw_run_values(
        x.values(),
        y.values(),
        band,
        metric,
        kernel,
        compute_path,
        cutoff,
        scratch,
    )
}

/// [`dtw_run`] over raw sample slices — the zero-copy entry point for
/// callers whose inputs are windows of a larger buffer (subsequence
/// search, streaming monitors). Semantics are identical to [`dtw_run`];
/// the slices must be non-empty and finite (a [`TimeSeries`] guarantees
/// this by construction — window-slicing callers inherit the guarantee
/// from the series they slice).
///
/// # Panics
///
/// Panics on dimension mismatch or an empty slice (programmer errors).
#[allow(clippy::too_many_arguments)] // mirror of dtw_run, see there
pub fn dtw_run_values<K: DtwKernel>(
    xv: &[f64],
    yv: &[f64],
    band: &Band,
    metric: ElementMetric,
    kernel: &K,
    compute_path: bool,
    cutoff: Option<f64>,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    dtw_run_values_with(
        DtwEngine::selected(),
        xv,
        yv,
        band,
        metric,
        kernel,
        compute_path,
        cutoff,
        scratch,
    )
}

/// [`dtw_run_values`] with the fill engine forced explicitly instead of
/// resolved from [`DtwEngine::selected`] (the SIMD mode still resolves
/// from [`SimdMode::selected`]; [`dtw_run_values_pinned`] forces both).
///
/// Requesting [`DtwEngine::Wavefront`] with `compute_path` set falls back
/// to the row engine — the traceback walk needs the full accumulation
/// matrix, which the wavefront sweep never materialises. The fallback is
/// part of the contract (and covered by tests), not an accident.
///
/// # Panics
///
/// Panics on dimension mismatch or an empty slice (programmer errors).
#[allow(clippy::too_many_arguments)] // mirror of dtw_run, see there
pub fn dtw_run_values_with<K: DtwKernel>(
    engine: DtwEngine,
    xv: &[f64],
    yv: &[f64],
    band: &Band,
    metric: ElementMetric,
    kernel: &K,
    compute_path: bool,
    cutoff: Option<f64>,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    dtw_run_values_pinned(
        engine,
        SimdMode::selected(),
        xv,
        yv,
        band,
        metric,
        kernel,
        compute_path,
        cutoff,
        scratch,
    )
}

/// [`dtw_run_values`] with **both** execution-shape knobs forced
/// explicitly: the fill engine and the SIMD mode. This is the dispatch
/// point the cross-engine/cross-mode differential harness drives — it
/// pins `scalar` and `lanes` inside one process to prove them
/// bit-identical; production callers go through [`dtw_run_values`] (env
/// selection) or the core `Query` builder (per-query override).
///
/// The SIMD mode only affects the wavefront fill; the row engine (and the
/// path-mode fallback onto it) has a serial inner loop and ignores it.
///
/// # Panics
///
/// Panics on dimension mismatch or an empty slice (programmer errors).
#[allow(clippy::too_many_arguments)] // mirror of dtw_run, see there
pub fn dtw_run_values_pinned<K: DtwKernel>(
    engine: DtwEngine,
    simd: SimdMode,
    xv: &[f64],
    yv: &[f64],
    band: &Band,
    metric: ElementMetric,
    kernel: &K,
    compute_path: bool,
    cutoff: Option<f64>,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    assert!(!xv.is_empty() && !yv.is_empty(), "series must be non-empty");
    assert_eq!(band.n(), xv.len(), "band rows must match |X|");
    assert_eq!(band.m(), yv.len(), "band cols must match |Y|");
    let sanitized;
    let band = if band.is_feasible() {
        band
    } else {
        sanitized = band.sanitize();
        &sanitized
    };

    if engine == DtwEngine::Wavefront && !compute_path {
        let raw = match (cutoff, simd) {
            (Some(t), SimdMode::Lanes) => {
                fill_wavefront::<K, true, true>(xv, yv, band, metric, kernel, t, scratch)?
            }
            (Some(t), SimdMode::Scalar) => {
                fill_wavefront::<K, true, false>(xv, yv, band, metric, kernel, t, scratch)?
            }
            (None, SimdMode::Lanes) => fill_wavefront::<K, false, true>(
                xv,
                yv,
                band,
                metric,
                kernel,
                f64::INFINITY,
                scratch,
            )
            .expect("a sweep without a cutoff never abandons"),
            (None, SimdMode::Scalar) => fill_wavefront::<K, false, false>(
                xv,
                yv,
                band,
                metric,
                kernel,
                f64::INFINITY,
                scratch,
            )
            .expect("a sweep without a cutoff never abandons"),
        };
        debug_assert!(raw.is_finite(), "sanitised band must reach the corner cell");
        let distance = kernel.normalize(raw, xv.len(), yv.len());
        // a completed sweep can still land over the cutoff
        if let Some(t) = cutoff {
            if distance > t {
                return None;
            }
        }
        return Some(DtwResult {
            distance,
            path: None,
            cells_filled: band.area(),
        });
    }

    let d = match cutoff {
        Some(t) => fill::<K, true>(xv, yv, band, metric, kernel, t, scratch)?,
        None => fill::<K, false>(xv, yv, band, metric, kernel, f64::INFINITY, scratch)
            .expect("a fill without a cutoff never abandons"),
    };

    let raw = d.get(band.n() - 1, band.m() - 1);
    debug_assert!(raw.is_finite(), "sanitised band must reach the corner cell");
    let distance = kernel.normalize(raw, xv.len(), yv.len());
    // reject against the cutoff before paying for the traceback walk
    if let Some(t) = cutoff {
        if distance > t {
            return None;
        }
    }
    let path = if compute_path {
        Some(traceback(&d, xv, yv, metric, kernel))
    } else {
        None
    };
    Some(DtwResult {
        distance,
        path,
        cells_filled: band.area(),
    })
}

/// [`dtw_run`] driven by serialisable [`DtwOptions`]: dispatches the
/// options' [`KernelChoice`] to a concrete kernel once, then runs the
/// monomorphic fill. This is the single execution path every legacy
/// `dtw_banded*` entry point (and the `SDtw` query builder above it)
/// resolves to.
///
/// Returns `None` only when `cutoff` is `Some` and the run abandoned.
///
/// # Panics
///
/// Panics on dimension mismatch, or on an invalid amerced penalty
/// (negative/non-finite — both programmer errors; config-driven callers
/// reject bad penalties earlier via [`DtwOptions::validate`]).
pub fn dtw_run_options(
    x: &TimeSeries,
    y: &TimeSeries,
    band: &Band,
    opts: &DtwOptions,
    cutoff: Option<f64>,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    dtw_run_options_values(x.values(), y.values(), band, opts, cutoff, scratch)
}

/// [`dtw_run_options`] over raw sample slices (see [`dtw_run_values`] for
/// the slice-input contract).
///
/// # Panics
///
/// Panics on dimension mismatch, an empty slice, or an invalid amerced
/// penalty (programmer errors).
pub fn dtw_run_options_values(
    xv: &[f64],
    yv: &[f64],
    band: &Band,
    opts: &DtwOptions,
    cutoff: Option<f64>,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    dtw_run_options_values_with(DtwEngine::selected(), xv, yv, band, opts, cutoff, scratch)
}

/// [`dtw_run_options_values`] with the fill engine forced explicitly (see
/// [`dtw_run_values_with`] for the engine contract and the path-mode
/// fallback). The SIMD mode still resolves from [`SimdMode::selected`];
/// [`dtw_run_options_values_pinned`] forces both.
///
/// # Panics
///
/// Panics on dimension mismatch, an empty slice, or an invalid amerced
/// penalty (programmer errors).
pub fn dtw_run_options_values_with(
    engine: DtwEngine,
    xv: &[f64],
    yv: &[f64],
    band: &Band,
    opts: &DtwOptions,
    cutoff: Option<f64>,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    dtw_run_options_values_pinned(
        engine,
        SimdMode::selected(),
        xv,
        yv,
        band,
        opts,
        cutoff,
        scratch,
    )
}

/// [`dtw_run_options_values`] with both the fill engine and the SIMD mode
/// forced explicitly (see [`dtw_run_values_pinned`] for the contract).
/// This is the options-driven leg of the differential harness and the
/// dispatch target of the core `Query::simd` builder knob.
///
/// # Panics
///
/// Panics on dimension mismatch, an empty slice, or an invalid amerced
/// penalty (programmer errors).
#[allow(clippy::too_many_arguments)] // mirror of dtw_run, see there
pub fn dtw_run_options_values_pinned(
    engine: DtwEngine,
    simd: SimdMode,
    xv: &[f64],
    yv: &[f64],
    band: &Band,
    opts: &DtwOptions,
    cutoff: Option<f64>,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    match opts.kernel {
        KernelChoice::Standard => dtw_run_values_pinned(
            engine,
            simd,
            xv,
            yv,
            band,
            opts.metric,
            &StandardKernel::new(opts.step_pattern, opts.normalization),
            opts.compute_path,
            cutoff,
            scratch,
        ),
        KernelChoice::Amerced { penalty } => dtw_run_values_pinned(
            engine,
            simd,
            xv,
            yv,
            band,
            opts.metric,
            &AmercedKernel::new(penalty, opts.normalization),
            opts.compute_path,
            cutoff,
            scratch,
        ),
    }
}

/// Computes the unconstrained (optimal-under-the-kernel) DTW distance.
pub fn dtw_full(x: &TimeSeries, y: &TimeSeries, opts: &DtwOptions) -> DtwResult {
    let band = Band::full(x.len(), y.len());
    let mut scratch = DtwScratch::new();
    dtw_run_options(x, y, &band, opts, None, &mut scratch)
        .expect("a run without a cutoff never abandons")
}

/// Computes the DTW distance restricted to a band.
///
/// # Panics
///
/// Panics on dimension mismatch (programmer error).
#[deprecated(
    since = "0.1.0",
    note = "use `dtw_run_options` (or the `SDtw::query` builder) — the one execution path"
)]
pub fn dtw_banded(x: &TimeSeries, y: &TimeSeries, band: &Band, opts: &DtwOptions) -> DtwResult {
    let mut scratch = DtwScratch::new();
    dtw_run_options(x, y, band, opts, None, &mut scratch)
        .expect("a run without a cutoff never abandons")
}

/// Banded DTW with caller-provided scratch buffers.
///
/// # Panics
///
/// Panics on dimension mismatch (programmer error).
#[deprecated(
    since = "0.1.0",
    note = "use `dtw_run_options` (or the `SDtw::query` builder) — the one execution path"
)]
pub fn dtw_banded_with_scratch(
    x: &TimeSeries,
    y: &TimeSeries,
    band: &Band,
    opts: &DtwOptions,
    scratch: &mut DtwScratch,
) -> DtwResult {
    dtw_run_options(x, y, band, opts, None, scratch).expect("a run without a cutoff never abandons")
}

/// Early-abandoning banded DTW: returns `None` as soon as no path can
/// come in at or under `threshold`. Never produces warp paths.
///
/// # Panics
///
/// Panics on dimension mismatch (programmer error).
#[deprecated(
    since = "0.1.0",
    note = "use `dtw_run_options` with a cutoff (or the `SDtw::query` builder)"
)]
pub fn dtw_banded_early_abandon(
    x: &TimeSeries,
    y: &TimeSeries,
    band: &Band,
    opts: &DtwOptions,
    threshold: f64,
) -> Option<DtwResult> {
    let mut scratch = DtwScratch::new();
    let opts = DtwOptions {
        compute_path: false,
        ..*opts
    };
    dtw_run_options(x, y, band, &opts, Some(threshold), &mut scratch)
}

/// Early-abandoning banded DTW with caller-provided scratch buffers.
/// Never produces warp paths.
///
/// # Panics
///
/// Panics on dimension mismatch (programmer error).
#[deprecated(
    since = "0.1.0",
    note = "use `dtw_run_options` with a cutoff (or the `SDtw::query` builder)"
)]
pub fn dtw_banded_early_abandon_with_scratch(
    x: &TimeSeries,
    y: &TimeSeries,
    band: &Band,
    opts: &DtwOptions,
    threshold: f64,
    scratch: &mut DtwScratch,
) -> Option<DtwResult> {
    let opts = DtwOptions {
        compute_path: false,
        ..*opts
    };
    dtw_run_options(x, y, band, &opts, Some(threshold), scratch)
}

/// Walks the filled matrix from the top-right corner back to the origin,
/// preferring the diagonal parent on ties (the conventional choice; it
/// yields the shortest of the cost-equal paths). Parent selection asks
/// the kernel for effective arrival costs, so step weighting and warp
/// penalties are accounted for.
fn traceback<K: DtwKernel>(
    d: &BandMatrix<'_>,
    x: &[f64],
    y: &[f64],
    metric: ElementMetric,
    kernel: &K,
) -> WarpPath {
    let n = x.len();
    let m = y.len();
    let mut steps = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n - 1, m - 1);
    steps.push((i, j));
    while i > 0 || j > 0 {
        let local = metric.eval(x[i], y[j]);
        // effective arrival costs through each parent
        let diag = if i > 0 && j > 0 {
            kernel.diagonal(d.get(i - 1, j - 1), local)
        } else {
            f64::INFINITY
        };
        let up = if i > 0 {
            kernel.up(d.get(i - 1, j), local)
        } else {
            f64::INFINITY
        };
        let left = if j > 0 {
            kernel.left(d.get(i, j - 1), local)
        } else {
            f64::INFINITY
        };
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
        steps.push((i, j));
    }
    steps.reverse();
    WarpPath::from_steps(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::ColRange;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    /// The unified path with a fresh scratch (test shorthand).
    fn run(x: &TimeSeries, y: &TimeSeries, band: &Band, opts: &DtwOptions) -> DtwResult {
        dtw_run_options(x, y, band, opts, None, &mut DtwScratch::new()).unwrap()
    }

    /// The unified path with a cutoff and a fresh scratch (test shorthand).
    fn run_cutoff(
        x: &TimeSeries,
        y: &TimeSeries,
        band: &Band,
        opts: &DtwOptions,
        cutoff: f64,
    ) -> Option<DtwResult> {
        dtw_run_options(x, y, band, opts, Some(cutoff), &mut DtwScratch::new())
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let x = ts(&[0.0, 1.0, 2.0, 1.0]);
        let r = dtw_full(&x, &x, &DtwOptions::with_path());
        assert_eq!(r.distance, 0.0);
        let p = r.path.unwrap();
        p.validate(4, 4).unwrap();
        // zero-distance self-alignment is the diagonal
        assert_eq!(p.steps(), &[(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn known_small_example() {
        // X = [0, 1, 2], Y = [0, 2]; squared metric.
        // Optimal: (0,0)=0, (1,?) -> align 1 with 0 or 2 (cost 1), (2,1)=0.
        let x = ts(&[0.0, 1.0, 2.0]);
        let y = ts(&[0.0, 2.0]);
        let r = dtw_full(&x, &y, &DtwOptions::with_path());
        assert_eq!(r.distance, 1.0);
        assert_eq!(r.cells_filled, 6);
        let p = r.path.unwrap();
        p.validate(3, 2).unwrap();
        assert_eq!(p.cost(&x, &y, ElementMetric::Squared), r.distance);
    }

    #[test]
    fn shifted_pattern_has_small_dtw_but_large_euclidean() {
        // DTW's raison d'être: a temporal shift is almost free.
        let x = ts(&[0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0]);
        let y = ts(&[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let dtw = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let euclid: f64 = x
            .values()
            .iter()
            .zip(y.values())
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert_eq!(dtw, 0.0);
        assert!(euclid > 5.0);
    }

    #[test]
    fn symmetry() {
        let x = ts(&[0.3, 1.8, 2.2, 0.1, -0.7]);
        let y = ts(&[1.0, 1.0, 0.0, 2.0]);
        let opts = DtwOptions::default();
        let xy = dtw_full(&x, &y, &opts).distance;
        let yx = dtw_full(&y, &x, &opts).distance;
        assert!((xy - yx).abs() < 1e-12);
    }

    #[test]
    fn banded_distance_upper_bounds_full() {
        let x = ts(&[0.0, 3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]);
        let y = ts(&[2.0, 7.0, 1.0, 8.0, 2.0, 8.0]);
        let full = dtw_full(&x, &y, &DtwOptions::default());
        // a very thin diagonal band
        let ranges = (0..8)
            .map(|i| {
                let c = i * 5 / 7;
                ColRange::new(c, c)
            })
            .collect();
        let band = Band::from_ranges(8, 6, ranges).sanitize();
        let banded = run(&x, &y, &band, &DtwOptions::default());
        assert!(banded.distance >= full.distance - 1e-12);
        assert!(banded.cells_filled < full.cells_filled);
    }

    #[test]
    fn full_width_band_equals_full_dtw() {
        let x = ts(&[0.0, 1.0, 0.5, 2.0, 1.5]);
        let y = ts(&[0.2, 0.9, 2.2, 1.4]);
        let full = dtw_full(&x, &y, &DtwOptions::default());
        let band = Band::full(5, 4);
        let banded = run(&x, &y, &band, &DtwOptions::default());
        assert_eq!(full.distance, banded.distance);
        assert_eq!(full.cells_filled, banded.cells_filled);
    }

    #[test]
    fn infeasible_band_is_sanitised_internally() {
        let x = ts(&[0.0, 1.0, 2.0, 3.0]);
        let y = ts(&[0.0, 1.0, 2.0, 3.0]);
        // gap between rows 1 and 2
        let band = Band::from_ranges(
            4,
            4,
            vec![
                ColRange::new(0, 0),
                ColRange::new(0, 0),
                ColRange::new(3, 3),
                ColRange::new(3, 3),
            ],
        );
        assert!(!band.is_feasible());
        let r = run(&x, &y, &band, &DtwOptions::with_path());
        assert!(r.distance.is_finite());
        r.path.unwrap().validate(4, 4).unwrap();
    }

    #[test]
    fn path_cost_matches_reported_distance() {
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        for metric in [ElementMetric::Squared, ElementMetric::Absolute] {
            let opts = DtwOptions {
                metric,
                compute_path: true,
                ..DtwOptions::default()
            };
            let r = dtw_full(&x, &y, &opts);
            let p = r.path.unwrap();
            p.validate(6, 5).unwrap();
            assert!((p.cost(&x, &y, metric) - r.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn single_sample_series() {
        let x = ts(&[2.0]);
        let y = ts(&[5.0, 5.0, 5.0]);
        let r = dtw_full(&x, &y, &DtwOptions::with_path());
        assert_eq!(r.distance, 27.0); // 3 * (3^2)
        let p = r.path.unwrap();
        p.validate(1, 3).unwrap();
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn absolute_metric_known_value() {
        let x = ts(&[0.0, 5.0]);
        let y = ts(&[0.0, 5.0, 5.0]);
        let opts = DtwOptions {
            metric: ElementMetric::Absolute,
            ..DtwOptions::default()
        };
        assert_eq!(dtw_full(&x, &y, &opts).distance, 0.0);
    }

    #[test]
    fn symmetric2_weights_the_diagonal() {
        // X = Y = [0, 1]: the diagonal path costs 0 under both patterns,
        // so use a pair where the optimal path takes a diagonal step with
        // non-zero local cost.
        let x = ts(&[0.0, 1.0]);
        let y = ts(&[0.0, 2.0]);
        let s1 = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let s2 = dtw_full(
            &x,
            &y,
            &DtwOptions {
                step_pattern: StepPattern::Symmetric2,
                ..DtwOptions::default()
            },
        )
        .distance;
        // symmetric1: diagonal step pays (1-2)^2 = 1; symmetric2 pays 2
        assert_eq!(s1, 1.0);
        assert_eq!(s2, 2.0);
    }

    #[test]
    fn symmetric2_distance_dominates_symmetric1() {
        let x = ts(&[0.3, 1.8, 2.2, 0.1, -0.7, 0.4]);
        let y = ts(&[1.0, 1.0, 0.0, 2.0, 0.3]);
        let s1 = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let s2 = dtw_full(
            &x,
            &y,
            &DtwOptions {
                step_pattern: StepPattern::Symmetric2,
                ..DtwOptions::default()
            },
        )
        .distance;
        assert!(s2 >= s1 - 1e-12, "s2 {s2} must dominate s1 {s1}");
    }

    #[test]
    fn normalization_divides_by_length_sum() {
        let x = ts(&[0.0, 1.0, 2.0]);
        let y = ts(&[0.0, 2.0]);
        let raw = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let norm = dtw_full(
            &x,
            &y,
            &DtwOptions {
                normalization: Normalization::LengthSum,
                ..DtwOptions::default()
            },
        )
        .distance;
        assert!((norm - raw / 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_symmetric2_path_is_still_valid() {
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let opts = DtwOptions {
            compute_path: true,
            ..DtwOptions::normalized_symmetric2()
        };
        let r = dtw_full(&x, &y, &opts);
        r.path.unwrap().validate(6, 5).unwrap();
        assert!(r.distance.is_finite() && r.distance >= 0.0);
    }

    #[test]
    fn early_abandon_agrees_with_full_when_under_threshold() {
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let band = Band::full(6, 5);
        let opts = DtwOptions::default();
        let full = run(&x, &y, &band, &opts);
        let ea = run_cutoff(&x, &y, &band, &opts, f64::INFINITY)
            .expect("infinite threshold never abandons");
        assert_eq!(ea.distance, full.distance);
    }

    #[test]
    fn early_abandon_fires_on_tight_threshold() {
        let x = ts(&[0.0; 20]);
        let y = ts(&[10.0; 20]);
        let band = Band::full(20, 20);
        let opts = DtwOptions::default();
        // every cell costs 100; first row min is 100 > 1
        assert!(run_cutoff(&x, &y, &band, &opts, 1.0).is_none());
        // threshold exactly at the distance keeps the result
        let d = run(&x, &y, &band, &opts).distance;
        assert!(run_cutoff(&x, &y, &band, &opts, d).is_some());
    }

    #[test]
    fn early_abandon_respects_normalized_thresholds() {
        let x = ts(&[0.0, 1.0, 2.0, 1.0]);
        let y = ts(&[0.0, 2.0, 2.0, 0.0]);
        let band = Band::full(4, 4);
        let opts = DtwOptions {
            normalization: Normalization::LengthSum,
            ..DtwOptions::default()
        };
        let d = run(&x, &y, &band, &opts).distance;
        assert!(run_cutoff(&x, &y, &band, &opts, d + 1e-9).is_some());
        assert!(run_cutoff(&x, &y, &band, &opts, d * 0.5).is_none());
    }

    #[test]
    fn cutoff_and_path_compose() {
        // the unified path may trace the warp path of a run that survived
        // its cutoff — an ability no legacy entry point had
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let band = Band::full(6, 5);
        let opts = DtwOptions::with_path();
        let r = dtw_run_options(&x, &y, &band, &opts, None, &mut DtwScratch::new());
        let d = r.as_ref().unwrap().distance;
        let kept = dtw_run_options(&x, &y, &band, &opts, Some(d), &mut DtwScratch::new())
            .expect("threshold == distance must not abandon");
        kept.path.expect("path requested").validate(6, 5).unwrap();
        assert!(
            dtw_run_options(&x, &y, &band, &opts, Some(d * 0.5), &mut DtwScratch::new()).is_none()
        );
    }

    #[test]
    #[should_panic(expected = "band rows must match")]
    fn dimension_mismatch_panics() {
        let x = ts(&[0.0, 1.0]);
        let y = ts(&[0.0]);
        let band = Band::full(3, 1);
        let _ = run(&x, &y, &band, &DtwOptions::default());
    }

    #[test]
    fn monotone_band_with_unequal_lengths_traces_back() {
        let x = ts(&(0..40).map(|i| (i as f64 / 5.0).sin()).collect::<Vec<_>>());
        let y = ts(&(0..25).map(|i| (i as f64 / 4.0).sin()).collect::<Vec<_>>());
        let ranges = (0..40usize)
            .map(|i| {
                let c = i * 24 / 39;
                ColRange::new(c.saturating_sub(2), (c + 2).min(24))
            })
            .collect();
        let band = Band::from_ranges(40, 25, ranges).sanitize();
        let r = run(&x, &y, &band, &DtwOptions::with_path());
        let p = r.path.unwrap();
        p.validate(40, 25).unwrap();
        // every path step must lie inside the band
        for &(i, j) in p.steps() {
            assert!(band.contains(i, j));
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_mixed_shapes() {
        // one scratch reused across pairs of different sizes and bands
        // must reproduce the fresh-scratch path exactly
        let mut scratch = DtwScratch::new();
        let series: Vec<TimeSeries> = (0..6)
            .map(|k| {
                ts(&(0..(20 + 7 * k))
                    .map(|i| ((i + 3 * k) as f64 / (4 + k) as f64).sin())
                    .collect::<Vec<_>>())
            })
            .collect();
        for a in &series {
            for b in &series {
                for band in [
                    Band::full(a.len(), b.len()),
                    crate::sakoe::sakoe_chiba_band(a.len(), b.len(), 0.3),
                ] {
                    for opts in [
                        DtwOptions::default(),
                        DtwOptions::normalized_symmetric2(),
                        DtwOptions::amerced(0.2),
                    ] {
                        let fresh = run(a, b, &band, &opts);
                        let reused = dtw_run_options(a, b, &band, &opts, None, &mut scratch)
                            .expect("no cutoff");
                        assert_eq!(fresh.distance.to_bits(), reused.distance.to_bits());
                        assert_eq!(fresh.cells_filled, reused.cells_filled);
                    }
                }
            }
        }
    }

    #[test]
    fn early_abandon_scratch_reuse_is_bit_identical() {
        // one scratch reused across candidates of mixed shapes must agree
        // exactly with the fresh-scratch abandoning path, both in outcome
        // (abandon vs complete) and in the returned distance bits
        let mut scratch = DtwScratch::new();
        let series: Vec<TimeSeries> = (0..5)
            .map(|k| {
                ts(&(0..(18 + 9 * k))
                    .map(|i| ((i + 2 * k) as f64 / (3 + k) as f64).sin())
                    .collect::<Vec<_>>())
            })
            .collect();
        for a in &series {
            for b in &series {
                let band = Band::full(a.len(), b.len());
                for threshold in [0.05, 1.0, f64::INFINITY] {
                    for opts in [
                        DtwOptions::default(),
                        DtwOptions::normalized_symmetric2(),
                        DtwOptions::amerced(0.1),
                    ] {
                        let fresh = run_cutoff(a, b, &band, &opts, threshold);
                        let reused =
                            dtw_run_options(a, b, &band, &opts, Some(threshold), &mut scratch);
                        match (fresh, reused) {
                            (None, None) => {}
                            (Some(f), Some(r)) => {
                                assert_eq!(f.distance.to_bits(), r.distance.to_bits());
                                assert_eq!(f.cells_filled, r.cells_filled);
                            }
                            (f, r) => panic!("abandon disagreement: {f:?} vs {r:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scratch_produces_valid_paths_too() {
        let mut scratch = DtwScratch::new();
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let band = Band::full(6, 5);
        let r = dtw_run_options(&x, &y, &band, &DtwOptions::with_path(), None, &mut scratch)
            .expect("no cutoff");
        let p = r.path.unwrap();
        p.validate(6, 5).unwrap();
        // buffers were retained for reuse
        assert!(scratch.capacity() >= 30);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_shims_are_bit_identical_to_the_unified_path() {
        let series: Vec<TimeSeries> = (0..4)
            .map(|k| {
                ts(&(0..(24 + 11 * k))
                    .map(|i| ((i + 5 * k) as f64 / (6 + k) as f64).sin())
                    .collect::<Vec<_>>())
            })
            .collect();
        let mut scratch = DtwScratch::new();
        for a in &series {
            for b in &series {
                let band = crate::sakoe::sakoe_chiba_band(a.len(), b.len(), 0.4);
                for opts in [DtwOptions::with_path(), DtwOptions::normalized_symmetric2()] {
                    let new = run(a, b, &band, &opts);
                    let old = dtw_banded(a, b, &band, &opts);
                    assert_eq!(old.distance.to_bits(), new.distance.to_bits());
                    assert_eq!(old.path, new.path);
                    assert_eq!(old.cells_filled, new.cells_filled);
                    let old_s = dtw_banded_with_scratch(a, b, &band, &opts, &mut scratch);
                    assert_eq!(old_s.distance.to_bits(), new.distance.to_bits());
                    for threshold in [0.2, f64::INFINITY] {
                        // legacy abandoning variants never produce paths
                        let plain = DtwOptions {
                            compute_path: false,
                            ..opts
                        };
                        let new_ea = run_cutoff(a, b, &band, &plain, threshold);
                        let old_ea = dtw_banded_early_abandon(a, b, &band, &opts, threshold);
                        let old_eas = dtw_banded_early_abandon_with_scratch(
                            a,
                            b,
                            &band,
                            &opts,
                            threshold,
                            &mut scratch,
                        );
                        assert_eq!(
                            old_ea.as_ref().map(|r| r.distance.to_bits()),
                            new_ea.as_ref().map(|r| r.distance.to_bits())
                        );
                        assert_eq!(
                            old_eas.as_ref().map(|r| r.distance.to_bits()),
                            new_ea.as_ref().map(|r| r.distance.to_bits())
                        );
                        assert!(old_ea.as_ref().is_none_or(|r| r.path.is_none()));
                    }
                }
            }
        }
    }

    #[test]
    fn amerced_zero_penalty_is_bit_identical_to_symmetric1() {
        let x = ts(&(0..50).map(|i| (i as f64 / 6.0).sin()).collect::<Vec<_>>());
        let y = ts(&(0..40).map(|i| (i as f64 / 5.0).cos()).collect::<Vec<_>>());
        for band in [
            Band::full(50, 40),
            crate::sakoe::sakoe_chiba_band(50, 40, 0.3),
        ] {
            let std = run(&x, &y, &band, &DtwOptions::default());
            let am = run(&x, &y, &band, &DtwOptions::amerced(0.0));
            assert_eq!(std.distance.to_bits(), am.distance.to_bits());
        }
    }

    #[test]
    fn amerced_distance_is_monotone_in_penalty() {
        let x = ts(&(0..60).map(|i| (i as f64 / 7.0).sin()).collect::<Vec<_>>());
        let y = ts(&(0..60)
            .map(|i| ((i + 9) as f64 / 7.0).sin())
            .collect::<Vec<_>>());
        let mut prev = run(&x, &y, &Band::full(60, 60), &DtwOptions::amerced(0.0)).distance;
        for penalty in [0.01, 0.1, 1.0, 10.0] {
            let d = run(&x, &y, &Band::full(60, 60), &DtwOptions::amerced(penalty)).distance;
            assert!(
                d >= prev - 1e-12,
                "penalty {penalty}: {d} < previous {prev}"
            );
            prev = d;
        }
    }

    #[test]
    fn amerced_huge_penalty_equals_the_euclidean_diagonal() {
        // with a penalty no warp step can amortise, the optimal amerced
        // path is the plain diagonal, i.e. the pointwise distance
        let xv: Vec<f64> = (0..32).map(|i| (i as f64 / 4.0).sin()).collect();
        let yv: Vec<f64> = (0..32).map(|i| (i as f64 / 3.0).cos()).collect();
        let x = ts(&xv);
        let y = ts(&yv);
        let euclid = xv
            .iter()
            .zip(&yv)
            .fold(0.0, |acc, (a, b)| acc + ElementMetric::Squared.eval(*a, *b));
        let d = run(&x, &y, &Band::full(32, 32), &DtwOptions::amerced(1e9));
        assert_eq!(d.distance.to_bits(), euclid.to_bits());
    }

    #[test]
    fn amerced_interpolates_between_dtw_and_euclidean() {
        let x = ts(&[0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0]);
        let y = ts(&[0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let band = Band::full(8, 8);
        let dtw = run(&x, &y, &band, &DtwOptions::default()).distance;
        let mid = run(&x, &y, &band, &DtwOptions::amerced(0.05)).distance;
        let stiff = run(&x, &y, &band, &DtwOptions::amerced(1e6)).distance;
        assert_eq!(dtw, 0.0);
        assert!(mid > dtw && mid < stiff, "dtw {dtw} < mid {mid} < {stiff}");
    }

    #[test]
    fn amerced_path_is_valid_and_pays_the_reported_distance() {
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let penalty = 0.3;
        let opts = DtwOptions {
            compute_path: true,
            ..DtwOptions::amerced(penalty)
        };
        let r = dtw_full(&x, &y, &opts);
        let p = r.path.unwrap();
        p.validate(6, 5).unwrap();
        // path cost = pointwise cost + penalty per off-diagonal step
        let mut cost = 0.0;
        for (k, &(i, j)) in p.steps().iter().enumerate() {
            cost += ElementMetric::Squared.eval(x.at(i), y.at(j));
            if k > 0 {
                let (pi, pj) = p.steps()[k - 1];
                if i == pi || j == pj {
                    cost += penalty;
                }
            }
        }
        assert!(
            (cost - r.distance).abs() < 1e-9,
            "path pays {cost}, reported {}",
            r.distance
        );
    }

    #[test]
    fn amerced_early_abandon_is_sound() {
        let x = ts(&(0..40).map(|i| (i as f64 / 5.0).sin()).collect::<Vec<_>>());
        let y = ts(&(0..40)
            .map(|i| ((i + 7) as f64 / 5.0).sin())
            .collect::<Vec<_>>());
        let band = Band::full(40, 40);
        let opts = DtwOptions::amerced(0.25);
        let d = run(&x, &y, &band, &opts).distance;
        let kept = run_cutoff(&x, &y, &band, &opts, d).expect("threshold == distance survives");
        assert_eq!(kept.distance.to_bits(), d.to_bits());
        assert!(run_cutoff(&x, &y, &band, &opts, d * 0.5).is_none());
    }

    #[test]
    fn options_validate_rejects_bad_penalties() {
        assert!(DtwOptions::default().validate().is_ok());
        assert!(DtwOptions::amerced(0.0).validate().is_ok());
        assert!(DtwOptions::amerced(-0.5).validate().is_err());
        assert!(DtwOptions::amerced(f64::NAN).validate().is_err());
        assert!(DtwOptions::amerced(f64::INFINITY).validate().is_err());
    }

    #[test]
    fn options_json_without_kernel_field_defaults_to_standard() {
        // index snapshots persisted before the kernel field existed must
        // keep loading: strip the field from a current serialisation and
        // deserialise the pre-redesign shape
        let current = serde_json::to_string(&DtwOptions::default()).unwrap();
        let legacy = current.replace(",\"kernel\":\"Standard\"", "");
        assert_ne!(current, legacy, "the kernel field was present to strip");
        let opts: DtwOptions = serde_json::from_str(&legacy).unwrap();
        assert_eq!(opts, DtwOptions::default());
        // and the current shape (including amerced) round-trips
        let amerced = DtwOptions::amerced(0.5);
        let back: DtwOptions =
            serde_json::from_str(&serde_json::to_string(&amerced).unwrap()).unwrap();
        assert_eq!(back, amerced);
    }

    #[test]
    fn cutoff_rejection_skips_the_traceback() {
        // a run whose final distance exceeds the cutoff must return None
        // even with paths requested (and not pay for the walk first)
        let x = ts(&[0.0, 1.0, 2.0, 1.0]);
        let y = ts(&[0.5, 1.5, 2.5, 1.5]);
        let band = Band::full(4, 4);
        let opts = DtwOptions::with_path();
        let d = run(&x, &y, &band, &opts).distance;
        assert!(d > 0.0);
        let rejected = run_cutoff(&x, &y, &band, &opts, d * 0.99);
        assert!(rejected.is_none());
    }

    #[test]
    fn options_report_kernel_labels_and_admissibility() {
        assert_eq!(DtwOptions::default().kernel_label(), "sym1");
        assert_eq!(DtwOptions::normalized_symmetric2().kernel_label(), "sym2");
        assert_eq!(DtwOptions::amerced(0.5).kernel_label(), "amerced(w=0.5)");
        assert!(DtwOptions::default().lower_bounds_admissible());
        assert!(DtwOptions::amerced(2.0).lower_bounds_admissible());
    }

    #[test]
    fn custom_kernels_plug_into_the_generic_path() {
        // a third-party kernel: absolute-difference costs with a squared
        // warp deterrent — nothing in the engine knows about it
        struct Stiff;
        impl DtwKernel for Stiff {
            fn up(&self, parent: f64, local: f64) -> f64 {
                parent + 2.0 * local + 0.1
            }
            fn left(&self, parent: f64, local: f64) -> f64 {
                parent + 2.0 * local + 0.1
            }
            fn diagonal(&self, parent: f64, local: f64) -> f64 {
                parent + local
            }
            fn normalize(&self, raw: f64, _n: usize, _m: usize) -> f64 {
                raw
            }
            fn lower_bounds_admissible(&self) -> bool {
                false
            }
            fn label(&self) -> String {
                "stiff".into()
            }
        }
        let x = ts(&[0.0, 1.0, 2.0, 1.0]);
        let y = ts(&[0.0, 2.0, 1.0]);
        let band = Band::full(4, 3);
        let mut scratch = DtwScratch::new();
        let r = dtw_run(
            &x,
            &y,
            &band,
            ElementMetric::Squared,
            &Stiff,
            true,
            None,
            &mut scratch,
        )
        .unwrap();
        assert!(r.distance.is_finite() && r.distance >= 0.0);
        r.path.unwrap().validate(4, 3).unwrap();
    }

    /// Engine-forced run with a fresh scratch (test shorthand).
    fn run_with(
        engine: DtwEngine,
        x: &TimeSeries,
        y: &TimeSeries,
        band: &Band,
        opts: &DtwOptions,
        cutoff: Option<f64>,
    ) -> Option<DtwResult> {
        dtw_run_options_values_with(
            engine,
            x.values(),
            y.values(),
            band,
            opts,
            cutoff,
            &mut DtwScratch::new(),
        )
    }

    #[test]
    fn engine_names_parse_and_default_to_wavefront() {
        assert_eq!(DtwEngine::parse("wavefront"), Some(DtwEngine::Wavefront));
        assert_eq!(DtwEngine::parse(" Rows "), Some(DtwEngine::Rows));
        assert_eq!(DtwEngine::parse(""), Some(DtwEngine::Wavefront));
        assert_eq!(DtwEngine::parse("simd"), None);
        assert_eq!(DtwEngine::default(), DtwEngine::Wavefront);
    }

    #[test]
    fn wavefront_is_bit_identical_to_rows_across_mixed_shapes() {
        let series: Vec<TimeSeries> = (0..6)
            .map(|k| {
                ts(&(0..(15 + 8 * k))
                    .map(|i| ((i + 2 * k) as f64 / (3 + k) as f64).sin())
                    .collect::<Vec<_>>())
            })
            .collect();
        let mut wave_scratch = DtwScratch::new();
        let mut rows_scratch = DtwScratch::new();
        for a in &series {
            for b in &series {
                for band in [
                    Band::full(a.len(), b.len()),
                    crate::sakoe::sakoe_chiba_band(a.len(), b.len(), 0.25),
                    crate::itakura::itakura_band(a.len(), b.len(), 2.0),
                ] {
                    for opts in [
                        DtwOptions::default(),
                        DtwOptions::normalized_symmetric2(),
                        DtwOptions::amerced(0.15),
                    ] {
                        for cutoff in [None, Some(0.5), Some(f64::INFINITY)] {
                            let w = dtw_run_options_values_with(
                                DtwEngine::Wavefront,
                                a.values(),
                                b.values(),
                                &band,
                                &opts,
                                cutoff,
                                &mut wave_scratch,
                            );
                            let r = dtw_run_options_values_with(
                                DtwEngine::Rows,
                                a.values(),
                                b.values(),
                                &band,
                                &opts,
                                cutoff,
                                &mut rows_scratch,
                            );
                            match (w, r) {
                                (None, None) => {}
                                (Some(w), Some(r)) => {
                                    assert_eq!(w.distance.to_bits(), r.distance.to_bits());
                                    assert_eq!(w.cells_filled, r.cells_filled);
                                }
                                (w, r) => panic!("engines disagree on abandon: {w:?} vs {r:?}"),
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn wavefront_handles_non_staircase_bands() {
        // lo dips back down between rows: feasible yet not a staircase, so
        // the wavefront takes its membership-checked general path
        let band = Band::from_ranges(
            4,
            5,
            vec![
                ColRange::new(0, 4),
                ColRange::new(3, 4),
                ColRange::new(1, 4),
                ColRange::new(2, 4),
            ],
        );
        assert!(band.is_feasible() && !band.is_staircase());
        let x = ts(&[0.1, 0.9, 0.4, 1.7]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let opts = DtwOptions::default();
        let w = run_with(DtwEngine::Wavefront, &x, &y, &band, &opts, None).unwrap();
        let r = run_with(DtwEngine::Rows, &x, &y, &band, &opts, None).unwrap();
        assert_eq!(w.distance.to_bits(), r.distance.to_bits());
    }

    #[test]
    fn wavefront_path_mode_falls_back_to_the_row_engine() {
        // the fallback is part of the engine contract: a path request on
        // the wavefront engine must produce the row engine's exact result
        let x = ts(&[0.1, 0.9, 0.4, 1.7, 1.1, 0.2]);
        let y = ts(&[0.0, 1.0, 0.5, 1.5, 0.0]);
        let band = crate::sakoe::sakoe_chiba_band(6, 5, 0.5);
        let opts = DtwOptions::with_path();
        let w = run_with(DtwEngine::Wavefront, &x, &y, &band, &opts, None).unwrap();
        let r = run_with(DtwEngine::Rows, &x, &y, &band, &opts, None).unwrap();
        assert_eq!(w.distance.to_bits(), r.distance.to_bits());
        assert_eq!(w.path, r.path);
        w.path.unwrap().validate(6, 5).unwrap();
    }

    #[test]
    fn wavefront_scratch_reuse_is_bit_identical() {
        // the rotating diagonal buffers are re-initialised per call, so
        // one scratch reused across mixed shapes changes nothing
        let mut scratch = DtwScratch::new();
        let series: Vec<TimeSeries> = (0..5)
            .map(|k| {
                ts(&(0..(12 + 9 * k))
                    .map(|i| ((i + 4 * k) as f64 / (5 + k) as f64).cos())
                    .collect::<Vec<_>>())
            })
            .collect();
        for a in &series {
            for b in &series {
                let band = crate::sakoe::sakoe_chiba_band(a.len(), b.len(), 0.3);
                for cutoff in [None, Some(0.8)] {
                    let fresh = run_with(
                        DtwEngine::Wavefront,
                        a,
                        b,
                        &band,
                        &DtwOptions::default(),
                        cutoff,
                    );
                    let reused = dtw_run_options_values_with(
                        DtwEngine::Wavefront,
                        a.values(),
                        b.values(),
                        &band,
                        &DtwOptions::default(),
                        cutoff,
                        &mut scratch,
                    );
                    assert_eq!(
                        fresh.as_ref().map(|r| r.distance.to_bits()),
                        reused.as_ref().map(|r| r.distance.to_bits())
                    );
                }
            }
        }
    }
}
