//! # sdtw-stream — subsequence search over long series and live streams
//!
//! The highest-traffic DTW workload in practice is not whole-series kNN
//! but *subsequence* matching: finding where a short query pattern occurs
//! inside a long recording or a continuously arriving stream. This crate
//! is the UCR-suite-style engine for that workload, built from the
//! ingredients the rest of the workspace already provides — envelopes and
//! LB_Kim summaries (`sdtw_dtw::lower_bound`), the shared pruning
//! pipeline and its accounting (`sdtw_dtw::cascade`), the zero-copy
//! `SDtw::query_window` builder path, and the O(1) incremental window
//! statistics (`sdtw_tseries::stats::WindowedStats`).
//!
//! A [`SubseqMatcher`] prepares a query once (z-normalisation, envelope,
//! LB_Kim summary, cached salient descriptors, shared band) and then
//! searches either way:
//!
//! * **batch** — [`SubseqMatcher::find`] slides over a whole series,
//!   running up to `k` pruned greedy sweeps with a completed-distance
//!   cache (exact top-k non-overlapping matches, ties included, against
//!   the brute-force every-window oracle in `sdtw_eval`);
//! * **batch, sharded** — [`SubseqMatcher::find_k_parallel`] splits one
//!   long haystack into per-worker window shards (each reading its
//!   sample range plus an `m − 1` halo) and merges per-pass winners and
//!   [`StreamStats`] across the rayon pool, bit-identical to the serial
//!   scan for every shard count;
//! * **streaming** — a [`StreamMonitor`] accepts samples pushed one at a
//!   time into a query-sized ring buffer, maintaining windowed
//!   mean/variance and extrema incrementally in O(1) per step and running
//!   the same cascade on each completed window;
//! * **streaming, multi-query** — a [`MonitorBank`] pays that ring
//!   buffer and those rolling statistics once per stream and fans every
//!   completed window across N per-query runtimes, each bit-identical
//!   to a standalone monitor.
//!
//! The per-window cascade (the shared `sdtw_dtw::cascade` pipeline) is:
//! rolling **LB_Kim** (O(1), conservatively guarded under per-window
//! z-normalisation) → **coarse PAA pre-filter** (segment means against
//! the PAA-compressed query envelope) → **LB_Keogh** against the query
//! envelope (on exactly-normalised samples) → **early-abandoned banded
//! DP** through the query builder. See `DESIGN.md` §9 for the
//! admissibility argument of the rolling bounds and §10 for the PAA
//! stage, the halo-window sharding proof, and the bank's exactness
//! regimes.
//!
//! # Example
//!
//! ```
//! use sdtw_stream::{StreamConfig, SubseqMatcher};
//! use sdtw_tseries::TimeSeries;
//!
//! // a bump-shaped query, planted twice in a longer series
//! let query = TimeSeries::new(
//!     (0..32).map(|i| (-((i as f64 / 31.0 - 0.5) / 0.15).powi(2)).exp()).collect(),
//! )
//! .unwrap();
//! let mut hay = vec![0.0; 240];
//! for start in [40usize, 150] {
//!     for i in 0..32 {
//!         hay[start + i] += 2.0 * query.at(i) + 1.0; // scaled and offset
//!     }
//! }
//! for (i, v) in hay.iter_mut().enumerate() {
//!     *v += 0.01 * (i as f64 / 5.0).sin();
//! }
//! let hay = TimeSeries::new(hay).unwrap();
//!
//! let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
//! let found = matcher.find(&hay, 2).unwrap();
//! assert_eq!(found.matches.len(), 2); // z-normalisation cancels gain/offset
//! assert!(found.stats.is_consistent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod config;
pub mod matcher;
pub mod monitor;
pub mod rolling;
pub mod stats;

pub use bank::{BankEvent, BankQuery, MonitorBank};
pub use config::StreamConfig;
pub use matcher::{SubseqMatch, SubseqMatcher, SubseqResult};
pub use monitor::StreamMonitor;
pub use rolling::RollingExtrema;
pub use stats::StreamStats;
