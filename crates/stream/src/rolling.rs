//! Sliding-window extrema in O(1) amortised time per push.
//!
//! The companion of [`sdtw_tseries::stats::WindowedStats`]: where that
//! accumulator maintains the window's mean/variance, this one maintains
//! its minimum and maximum with the classic monotonic-deque technique —
//! together they provide every ingredient of a rolling LB_Kim
//! [`sdtw_dtw::SeriesSummary`] without touching the window contents.
//! Unlike the moments, the extrema are *exact*: the deques store sample
//! values verbatim and only ever compare them.

use std::collections::VecDeque;

/// Sliding minimum and maximum over the last `capacity` pushed samples.
#[derive(Debug, Clone)]
pub struct RollingExtrema {
    capacity: usize,
    /// `(stream index, value)`, values decreasing from the front.
    maxq: VecDeque<(u64, f64)>,
    /// `(stream index, value)`, values increasing from the front.
    minq: VecDeque<(u64, f64)>,
    pushed: u64,
}

impl RollingExtrema {
    /// Creates a tracker over a window of `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` (programmer error).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            capacity,
            maxq: VecDeque::new(),
            minq: VecDeque::new(),
            pushed: 0,
        }
    }

    /// Pushes a sample, retiring entries that left the window.
    pub fn push(&mut self, v: f64) {
        let idx = self.pushed;
        self.pushed += 1;
        while matches!(self.maxq.back(), Some(&(_, back)) if back <= v) {
            self.maxq.pop_back();
        }
        self.maxq.push_back((idx, v));
        while matches!(self.minq.back(), Some(&(_, back)) if back >= v) {
            self.minq.pop_back();
        }
        self.minq.push_back((idx, v));
        // retire fronts older than the window start
        let start = self.pushed.saturating_sub(self.capacity as u64);
        while matches!(self.maxq.front(), Some(&(i, _)) if i < start) {
            self.maxq.pop_front();
        }
        while matches!(self.minq.front(), Some(&(i, _)) if i < start) {
            self.minq.pop_front();
        }
    }

    /// Maximum of the current window.
    ///
    /// # Panics
    ///
    /// Panics before the first push.
    pub fn max(&self) -> f64 {
        self.maxq.front().expect("no samples pushed yet").1
    }

    /// Minimum of the current window.
    ///
    /// # Panics
    ///
    /// Panics before the first push.
    pub fn min(&self) -> f64 {
        self.minq.front().expect("no samples pushed yet").1
    }

    /// Total samples ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Empties the tracker (capacity is retained).
    pub fn clear(&mut self) {
        self.maxq.clear();
        self.minq.clear();
        self.pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_extrema_over_a_seeded_stream() {
        let mut seed = 0x777u64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let stream: Vec<f64> = (0..800).map(|_| 5.0 * rng()).collect();
        let m = 23;
        let mut r = RollingExtrema::new(m);
        for (t, &v) in stream.iter().enumerate() {
            r.push(v);
            let lo = (t + 1).saturating_sub(m);
            let window = &stream[lo..=t];
            let mx = window.iter().cloned().fold(f64::MIN, f64::max);
            let mn = window.iter().cloned().fold(f64::MAX, f64::min);
            assert_eq!(r.max(), mx, "max at {t}");
            assert_eq!(r.min(), mn, "min at {t}");
        }
    }

    #[test]
    fn duplicates_survive_eviction() {
        // two equal maxima: evicting the first must keep the second
        let mut r = RollingExtrema::new(2);
        r.push(5.0);
        r.push(5.0);
        r.push(1.0);
        assert_eq!(r.max(), 5.0, "the newer duplicate is still in-window");
        r.push(0.0);
        assert_eq!(r.max(), 1.0);
        assert_eq!(r.min(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut r = RollingExtrema::new(3);
        r.push(1.0);
        r.clear();
        assert_eq!(r.pushed(), 0);
        r.push(-2.0);
        assert_eq!(r.max(), -2.0);
        assert_eq!(r.min(), -2.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RollingExtrema::new(0);
    }
}
