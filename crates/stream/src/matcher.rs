//! The batch subsequence matcher and the shared per-window cascade.

use crate::config::StreamConfig;
use crate::rolling::RollingExtrema;
use crate::stats::StreamStats;
use rayon::prelude::*;
use sdtw::{DtwScratch, SDtw};
use sdtw_dtw::cascade::{
    Cascade, CascadeScratch, CascadeStats, CoarseEnvelope, PruneStage, SampleInput, StageKind,
};
use sdtw_dtw::engine::{DtwEngine, Normalization};
use sdtw_dtw::lower_bound::{lb_keogh_batch_windows, lb_kim, Envelope, SeriesSummary, LB_LANES};
use sdtw_dtw::Band;
use sdtw_obs::{InputShape, QueryTrace, Recorder, SpanRecord, TracePhase, WorkloadKind};
use sdtw_salient::{extract_features, SalientFeature};
use sdtw_tseries::stats::WindowedStats;
use sdtw_tseries::transform::{z_normalize, z_normalize_values};
use sdtw_tseries::{TimeSeries, TsError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Relative slack applied to the rolling LB_Kim before it may prune.
///
/// The rolling window moments ([`WindowedStats`]) track the exact batch
/// statistics to within ~`100·m·ε` relative (≲ 1e-9 for any realistic
/// window) *whenever they report themselves well-conditioned* — the
/// only regime [`SubseqMatcher::kim_bound`] uses them in — so a bound
/// computed from them can sit at most that far above its exact value;
/// pruning only when the bound clears the threshold by this much keeps
/// the stage admissible while letting borderline windows fall through
/// to the *exact* LB_Keogh and DP stages (which re-derive the window
/// statistics batch-style). See DESIGN.md §9 for the admissibility
/// argument.
const KIM_GUARD: f64 = 1e-7;

/// A serial scan's payload: the result, the spans its recorder kept,
/// and the summed (band, full-grid) areas of the DP-entering windows.
type CoreScan = (SubseqResult, Vec<SpanRecord>, (u64, u64));

/// Below this (scale-relative) deviation the rolling σ cannot be
/// distinguished from the exact σ = 0 of a constant window, where
/// z-normalisation switches to the all-zeros convention — the rolling
/// LB_Kim abstains rather than normalise by a garbage σ.
const SIGMA_FLOOR: f64 = 1e-9;

/// One reported occurrence of the query inside the searched series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubseqMatch {
    /// Window start: the match spans `offset .. offset + query_len`.
    pub offset: usize,
    /// Its (possibly normalised) constrained DTW distance to the query.
    pub distance: f64,
}

/// Answer to one batch search: matches ascending by `(distance, offset)`,
/// plus the accounting of what the cascade disposed of.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubseqResult {
    /// Up to `k` non-overlapping matches, greedily selected ascending by
    /// `(distance, offset)` (fewer when the series has fewer eligible
    /// windows).
    pub matches: Vec<SubseqMatch>,
    /// Per-stage pruning/DP accounting.
    pub stats: StreamStats,
}

/// The per-worker buffers one window evaluation needs: the window
/// normalisation target, the DP scratch, and the cascade's stage
/// scratch. Keep one per worker/monitor, like a [`DtwScratch`].
#[derive(Debug, Clone, Default)]
pub(crate) struct EvalScratch {
    /// Normalised-window buffer.
    pub(crate) window: Vec<f64>,
    /// DP buffers.
    pub(crate) dtw: DtwScratch,
    /// Cascade stage buffers (PAA segment means).
    pub(crate) cascade: CascadeScratch,
    /// Deferred-queue window buffers: one normalised window per LB lane.
    /// Only the batch sweeps fill these — the monitor path never defers.
    pub(crate) lanes: Vec<Vec<f64>>,
}

/// What one shard's sweep produced: its pass winner, or the first error.
type SweepOutcome = Result<Option<(f64, usize)>, TsError>;

/// How the cascade disposed of one window visit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum WindowVerdict {
    /// Dropped by the named lower-bound stage.
    Pruned(StageKind),
    /// The DP abandoned early against the threshold.
    Abandoned,
    /// The DP completed with this distance.
    Completed(f64),
}

/// A prepared subsequence query: the UCR-style search engine.
///
/// Construction pays the per-query costs exactly once — z-normalising
/// the query, extracting its salient descriptors (adaptive policies),
/// building its LB_Keogh [`Envelope`] and LB_Kim [`SeriesSummary`], and
/// planning the band (alignment-free policies, where every `m × m`
/// window shares it). [`SubseqMatcher::find`] then slides over a long
/// series running the cascade per window:
///
/// 1. **rolling LB_Kim** — O(1) from the incremental window statistics
///    ([`WindowedStats`] + [`RollingExtrema`]), conservatively guarded
///    under z-normalisation (see `KIM_GUARD` in the source);
/// 2. **coarse PAA pre-filter** — the exactly-normalised window's
///    segment means against the PAA-compressed query envelope
///    ([`CoarseEnvelope`]; `O(m/w)` metric evaluations, admissible under
///    the same conditions as LB_Keogh — see DESIGN.md §10);
/// 3. **LB_Keogh** — the exactly-normalised window against the query
///    envelope (when the band sits inside the envelope window);
/// 4. **early-abandoned banded DP** — the zero-copy
///    [`SDtw::query_window`] builder path, cut off at the best-so-far.
///
/// All stages execute through the workspace-shared
/// [`sdtw_dtw::cascade::Cascade`] pipeline — the same runner
/// `sdtw_index` queries use. The batch sweeps additionally park Kim
/// survivors in a deferred queue of up to [`LB_LANES`] windows so their
/// forward LB_Keogh bounds compute as one [`lb_keogh_batch_windows`]
/// lane pass; every pruning *decision* still happens sequentially in
/// sweep order against a fresh best-so-far threshold, which keeps
/// matches bit-identical to the fully serial sweep (the streaming
/// monitor path never defers).
///
/// Results are **exact**: offsets and bit-identical distances to
/// brute-forcing the same engine over every window and greedily picking
/// the `k` best non-overlapping ones ascending by `(distance, offset)`
/// (the `sdtw_eval` subsequence oracle; ties break toward the lower
/// offset). Top-k selection runs as up to `k` sweeps with a completed-
/// distance cache, so each sweep prunes against a sound best-so-far.
#[derive(Debug, Clone)]
pub struct SubseqMatcher {
    config: StreamConfig,
    engine: SDtw,
    /// The (possibly z-normalised) query samples.
    query: Vec<f64>,
    /// Cached salient descriptors (empty for alignment-free policies).
    query_features: Vec<SalientFeature>,
    query_envelope: Envelope,
    query_summary: SeriesSummary,
    /// Coarse (PAA) compression of the query envelope, feeding the
    /// pre-filter stage (`None` when `paa_width < 2` disabled it).
    query_coarse: Option<CoarseEnvelope>,
    /// The shared band of every window under alignment-free policies
    /// (`None` means adaptive: plan per window against the cached query
    /// descriptors).
    fixed_band: Option<Band>,
    /// The configured pruning pipeline every window runs (shared with
    /// `sdtw_index` via `sdtw_dtw::cascade`).
    cascade: Cascade,
    m: usize,
    radius: usize,
    exclusion: usize,
    bounds_ok: bool,
}

impl SubseqMatcher {
    /// Prepares a query for subsequence search.
    ///
    /// # Errors
    ///
    /// Configuration validation and feature-extraction errors.
    pub fn new(query: &TimeSeries, config: StreamConfig) -> Result<Self, TsError> {
        config.validate()?;
        let engine = SDtw::new(config.sdtw.clone())?;
        let prepared = if config.z_normalize {
            z_normalize(query)
        } else {
            query.clone()
        };
        let needs_features = config.sdtw.policy.needs_alignment();
        let query_features = if needs_features {
            extract_features(&prepared, &config.sdtw.salient)?
        } else {
            Vec::new()
        };
        let m = prepared.len();
        let radius = config.radius_for(m);
        let exclusion = config.exclusion_for(m);
        let query = prepared.into_values();
        let query_envelope = Envelope::build_from_values(&query, radius);
        let query_summary = SeriesSummary::of_values(&query);
        let fixed_band = if needs_features {
            None
        } else {
            let (band, _) = engine.plan_band(&[], &[], m, m);
            Some(if band.is_feasible() {
                band
            } else {
                band.sanitize()
            })
        };
        let bounds_ok = config.sdtw.dtw.lower_bounds_admissible();
        let query_coarse = (config.paa_width >= 2)
            .then(|| CoarseEnvelope::build(&query_envelope, config.paa_width));
        let mut stages = vec![PruneStage::Kim {
            // rolling moments carry bounded numerical error under
            // per-window z-normalisation; the guard keeps the stage
            // admissible (raw windows have exact inputs — strict compare)
            guard: if config.z_normalize { KIM_GUARD } else { 0.0 },
        }];
        if query_coarse.is_some() {
            stages.push(PruneStage::Paa);
        }
        stages.push(PruneStage::Keogh);
        let cascade = Cascade::new(
            stages,
            config.sdtw.dtw.metric,
            config.sdtw.dtw.normalization,
            bounds_ok,
        );
        Ok(Self {
            config,
            engine,
            query,
            query_features,
            query_envelope,
            query_summary,
            query_coarse,
            fixed_band,
            cascade,
            m,
            radius,
            exclusion,
            bounds_ok,
        })
    }

    /// The matcher configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Length of the (prepared) query — the window size.
    pub fn query_len(&self) -> usize {
        self.m
    }

    /// The prepared (possibly z-normalised) query samples.
    pub fn query_values(&self) -> &[f64] {
        &self.query
    }

    /// Minimum offset distance between two reported matches.
    pub fn exclusion(&self) -> usize {
        self.exclusion
    }

    /// The envelope radius the LB_Keogh stage was built with.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Finds the `k` best non-overlapping matches in `series`.
    ///
    /// # Errors
    ///
    /// `k == 0`, or feature-extraction failures (adaptive policies).
    pub fn find(&self, series: &TimeSeries, k: usize) -> Result<SubseqResult, TsError> {
        self.find_under_with_scratch(series, k, f64::INFINITY, &mut DtwScratch::new())
    }

    /// [`SubseqMatcher::find`] restricted to matches with distance `<=
    /// tau` — the monitoring workload ("report occurrences under a
    /// threshold"), and the form whose streaming counterpart
    /// ([`crate::StreamMonitor`]) is exact for every `k`.
    ///
    /// # Errors
    ///
    /// `k == 0`, a negative/NaN `tau`, or feature-extraction failures.
    pub fn find_under(
        &self,
        series: &TimeSeries,
        k: usize,
        tau: f64,
    ) -> Result<SubseqResult, TsError> {
        self.find_under_with_scratch(series, k, tau, &mut DtwScratch::new())
    }

    /// [`SubseqMatcher::find_under`] with caller-owned DP buffers (the
    /// batch hot path: keep one [`DtwScratch`] per worker).
    ///
    /// # Errors
    ///
    /// `k == 0`, a negative/NaN `tau`, or feature-extraction failures.
    pub fn find_under_with_scratch(
        &self,
        series: &TimeSeries,
        k: usize,
        tau: f64,
        scratch: &mut DtwScratch,
    ) -> Result<SubseqResult, TsError> {
        Ok(self.find_core(series, k, tau, scratch, false)?.0)
    }

    /// [`SubseqMatcher::find`] with full telemetry: the result plus a
    /// canonical [`QueryTrace`] carrying phase spans (per-window LB_Kim
    /// screening, band planning, batched and scalar LB_Keogh, DP fill,
    /// whole-sweep wall), the [`StreamStats`] as the trace's counter
    /// block, and the band/grid denominators of the DP-entering windows.
    ///
    /// Matches are bit-identical to [`SubseqMatcher::find`] — recording
    /// never changes what the cascade sees.
    ///
    /// # Errors
    ///
    /// `k == 0`, or feature-extraction failures (adaptive policies).
    pub fn find_traced(
        &self,
        series: &TimeSeries,
        k: usize,
        query_id: &str,
    ) -> Result<(SubseqResult, QueryTrace), TsError> {
        self.find_under_traced(series, k, f64::INFINITY, query_id)
    }

    /// [`SubseqMatcher::find_under`] with full telemetry — the traced
    /// twin of the thresholded scan, so a `--tau` search can still emit
    /// its [`QueryTrace`].
    ///
    /// # Errors
    ///
    /// `k == 0`, a negative/NaN `tau`, or feature-extraction failures.
    pub fn find_under_traced(
        &self,
        series: &TimeSeries,
        k: usize,
        tau: f64,
        query_id: &str,
    ) -> Result<(SubseqResult, QueryTrace), TsError> {
        let t0 = std::time::Instant::now();
        let (result, spans, areas) =
            self.find_core(series, k, tau, &mut DtwScratch::new(), true)?;
        let mut trace = QueryTrace::new(query_id, WorkloadKind::SubseqFind);
        trace.shape = self.trace_shape(series.len() as u64, k as u64);
        trace.counters = result.stats;
        trace.band_area = areas.0;
        trace.full_grid = areas.1;
        trace.spans = spans;
        trace.wall = t0.elapsed();
        Ok((result, trace))
    }

    /// The serial scan everybody funnels through: the one-shard
    /// degenerate of the sharded machinery, with an enabled recorder on
    /// the traced entry point and a disabled (≈free) one otherwise.
    /// Returns the result plus the recorded spans and the summed
    /// (band, full-grid) areas of the DP-entering windows.
    fn find_core(
        &self,
        series: &TimeSeries,
        k: usize,
        tau: f64,
        scratch: &mut DtwScratch,
        traced: bool,
    ) -> Result<CoreScan, TsError> {
        if k == 0 {
            return Err(TsError::InvalidParameter {
                name: "k",
                reason: "subsequence search needs k >= 1".to_string(),
            });
        }
        if tau.is_nan() || tau < 0.0 {
            return Err(TsError::InvalidParameter {
                name: "tau",
                reason: format!("distance threshold must be >= 0, got {tau}"),
            });
        }
        let xv = series.values();
        if xv.len() < self.m {
            return Ok((
                SubseqResult {
                    matches: Vec::new(),
                    stats: StreamStats::default(),
                },
                Vec::new(),
                (0, 0),
            ));
        }
        let w_count = xv.len() - self.m + 1;

        let mut shard = ShardScan::new(self, xv, 0, w_count, traced);
        shard.eval.dtw = std::mem::take(scratch);
        let mut selected: Vec<SubseqMatch> = Vec::new();
        let mut passes = 0u32;
        for _ in 0..k {
            passes += 1;
            match shard.sweep(self, xv, tau, &selected)? {
                None => break,
                Some((distance, offset)) => selected.push(SubseqMatch { offset, distance }),
            }
        }
        *scratch = std::mem::take(&mut shard.eval.dtw);
        let mut stats = shard.stats;
        stats.passes = passes;
        debug_assert!(stats.is_consistent(), "every cascade entry accounted once");
        Ok((
            SubseqResult {
                matches: selected,
                stats,
            },
            shard.rec.finish(),
            shard.areas,
        ))
    }

    /// [`SubseqMatcher::find_under`] executed across the rayon pool: the
    /// haystack is split into `shards` contiguous window ranges (each
    /// worker reading its sample range plus an `m − 1` halo, so every
    /// window is evaluated whole by exactly one shard), each pass sweeps
    /// all shards concurrently, and the per-pass shard winners merge
    /// through the same greedy non-overlap selection the serial scan
    /// uses. `shards == 0` picks one shard per rayon worker.
    ///
    /// **Results are bit-identical to the serial scan** — offsets,
    /// distance bits, and tie order — for every shard count: a shard
    /// prunes only against thresholds at or above its own running pass
    /// best, which is itself at or above the global pass winner, so no
    /// window that could win (or tie) a pass is ever disposed of early.
    /// With one shard the execution *is* the serial scan, stats
    /// included. With several, per-stage disposal counts may shift
    /// between categories (each shard's threshold tightens from its
    /// local best rather than the whole series' history — a window the
    /// serial sweep pruned may complete its DP in a shard, and vice
    /// versa), but the merged [`StreamStats`] still accounts for every
    /// window visit exactly once and `windows`/`skipped_excluded` totals
    /// match the serial scan.
    ///
    /// # Errors
    ///
    /// `k == 0`, a negative/NaN `tau`, or feature-extraction failures
    /// (adaptive policies).
    pub fn find_k_parallel(
        &self,
        series: &TimeSeries,
        k: usize,
        tau: f64,
        shards: usize,
    ) -> Result<SubseqResult, TsError> {
        Ok(self.find_k_parallel_core(series, k, tau, shards, false)?.0)
    }

    /// [`SubseqMatcher::find_k_parallel`] with full telemetry: each shard
    /// records its own spans on the rayon worker that runs it (honest
    /// thread ids), and the shard-local traces fold through
    /// [`QueryTrace::merge`] — counters and areas sum, spans concatenate,
    /// the merged counter block is exactly the result's [`StreamStats`].
    ///
    /// Matches stay bit-identical to the serial scan for every shard
    /// count, recording or not.
    ///
    /// # Errors
    ///
    /// `k == 0`, a negative/NaN `tau`, or feature-extraction failures
    /// (adaptive policies).
    pub fn find_k_parallel_traced(
        &self,
        series: &TimeSeries,
        k: usize,
        tau: f64,
        shards: usize,
        query_id: &str,
    ) -> Result<(SubseqResult, QueryTrace), TsError> {
        let t0 = std::time::Instant::now();
        let (result, shard_traces) = self.find_k_parallel_core(series, k, tau, shards, true)?;
        let mut trace = QueryTrace::new(query_id, WorkloadKind::SubseqFind);
        trace.shape = self.trace_shape(series.len() as u64, k as u64);
        for st in &shard_traces {
            trace.merge(st);
        }
        // shard-local counter blocks carry passes = 0 (passes are a
        // whole-query notion); the canonical merged counters are the
        // result's, passes included
        trace.counters = result.stats;
        trace.wall = t0.elapsed();
        Ok((result, trace))
    }

    /// The sharded scan both parallel entry points funnel through.
    /// Returns the per-shard traces (spans + shard counters + areas;
    /// identity fields left default) when `traced`, an empty vec
    /// otherwise.
    fn find_k_parallel_core(
        &self,
        series: &TimeSeries,
        k: usize,
        tau: f64,
        shards: usize,
        traced: bool,
    ) -> Result<(SubseqResult, Vec<QueryTrace>), TsError> {
        if k == 0 {
            return Err(TsError::InvalidParameter {
                name: "k",
                reason: "subsequence search needs k >= 1".to_string(),
            });
        }
        if tau.is_nan() || tau < 0.0 {
            return Err(TsError::InvalidParameter {
                name: "tau",
                reason: format!("distance threshold must be >= 0, got {tau}"),
            });
        }
        let xv = series.values();
        if xv.len() < self.m {
            return Ok((
                SubseqResult {
                    matches: Vec::new(),
                    stats: StreamStats::default(),
                },
                Vec::new(),
            ));
        }
        let w_count = xv.len() - self.m + 1;
        let shard_count = if shards == 0 {
            rayon::current_num_threads()
        } else {
            shards
        }
        .clamp(1, w_count);

        // Shard construction (the rolling LB_Kim precompute is O(samples)
        // per shard) runs on the pool too.
        let mut scans: Vec<ShardScan> = (0..shard_count)
            .into_par_iter()
            .map(|s| {
                let ws = s * w_count / shard_count;
                let we = (s + 1) * w_count / shard_count;
                // traced shards get their recorder here, on the worker
                // thread that will run them — honest thread ordinals
                ShardScan::new(self, xv, ws, we, traced)
            })
            .collect();

        let mut selected: Vec<SubseqMatch> = Vec::new();
        let mut passes = 0u32;
        for _ in 0..k {
            passes += 1;
            let outcomes: Vec<(ShardScan, SweepOutcome)> = scans
                .into_par_iter()
                .map(|mut scan| {
                    let won = scan.sweep(self, xv, tau, &selected);
                    (scan, won)
                })
                .collect();
            scans = Vec::with_capacity(shard_count);
            let mut best: Option<(f64, usize)> = None;
            for (scan, won) in outcomes {
                scans.push(scan);
                if let Some((d, w)) = won? {
                    if Self::better(d, w, &best) {
                        best = Some((d, w));
                    }
                }
            }
            match best {
                None => break,
                Some((distance, offset)) => selected.push(SubseqMatch { offset, distance }),
            }
        }

        let mut stats = StreamStats::default();
        for scan in &scans {
            stats.merge(&scan.stats);
        }
        stats.passes = passes;
        debug_assert!(stats.is_consistent(), "every cascade entry accounted once");
        let shard_traces = if traced {
            scans
                .into_iter()
                .map(|scan| QueryTrace {
                    counters: scan.stats,
                    band_area: scan.areas.0,
                    full_grid: scan.areas.1,
                    spans: scan.rec.finish(),
                    ..QueryTrace::default()
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok((
            SubseqResult {
                matches: selected,
                stats,
            },
            shard_traces,
        ))
    }

    /// An admissible lower bound on the distance of the *best* window of
    /// `series` — the minimum of the rolling LB_Kim bounds over every
    /// window, in reported-distance units. O(samples), no DP work.
    ///
    /// This is the per-entry floor the serve daemon's two-level cascade
    /// prunes whole recordings with: no subsequence hit inside `series`
    /// can score below the returned value, so an entry whose floor
    /// strictly exceeds the running k-th best hit can be skipped without
    /// sweeping it (ties must still be swept — the global tie-break may
    /// prefer them). Conservative by construction:
    ///
    /// * a window whose rolling bound abstains (ill-conditioned σ, or
    ///   bounds disabled by the kernel) contributes `0.0`, collapsing
    ///   the floor to the trivial bound — the entry is always swept;
    /// * under z-normalisation each rolling bound is deflated by the
    ///   same `KIM_GUARD` relative slack the in-sweep Kim stage applies
    ///   (`kim > t + g·(1 + |t| + kim)` solved for `t`), so "floor
    ///   strictly above the threshold" is *exactly* the per-window
    ///   guarded prune decision DESIGN §9 proves admissible;
    /// * a series shorter than the query has no windows and returns
    ///   `f64::INFINITY` — nothing to find, always prunable.
    pub fn window_bound_floor(&self, series: &TimeSeries) -> f64 {
        let xv = series.values();
        if xv.len() < self.m {
            return f64::INFINITY;
        }
        let guard = if self.config.z_normalize {
            KIM_GUARD
        } else {
            0.0
        };
        let w_count = xv.len() - self.m + 1;
        self.rolling_kims(xv, 0, w_count)
            .into_iter()
            .map(|kim| match kim {
                // thresholds are >= 0, so for t >= 0 the guarded prune
                // `kim > t + g·(1 + |t| + kim)` is `t < deflated(kim)`
                Some(kim) => ((kim * (1.0 - guard) - guard) / (1.0 + guard)).max(0.0),
                None => 0.0,
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The [`InputShape`] block of this matcher's traces: query length,
    /// haystack/stream length, and the configured policy/kernel/engine.
    pub(crate) fn trace_shape(&self, y_len: u64, k: u64) -> InputShape {
        InputShape {
            x_len: self.m as u64,
            y_len,
            k,
            policy: self.config.sdtw.policy.label(),
            kernel: self.config.sdtw.dtw.kernel_label(),
            engine: format!("{:?}", DtwEngine::selected()).to_lowercase(),
        }
    }

    /// Greedy order: ascending distance, ties toward the lower offset.
    fn better(d: f64, w: usize, best: &Option<(f64, usize)>) -> bool {
        match best {
            None => true,
            Some((bd, bw)) => d < *bd || (d == *bd && w < *bw),
        }
    }

    /// Runs the shared cascade on one raw window against `threshold`,
    /// updating the caller's per-stage accounting. `kim` is the
    /// precomputed rolling bound (`None` = stage abstained). Shared by
    /// the batch sweeps, the sharded parallel scan, and the streaming
    /// monitors.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn evaluate_window(
        &self,
        raw: &[f64],
        kim: Option<f64>,
        threshold: f64,
        eval: &mut EvalScratch,
        stats: &mut CascadeStats,
        rec: &mut Recorder,
        areas: &mut (u64, u64),
    ) -> Result<WindowVerdict, TsError> {
        debug_assert_eq!(raw.len(), self.m, "window must match the query length");
        if let Some(kind) = rec.time(TracePhase::LbKim, || {
            self.cascade.screen_summary(stats, kim, threshold)
        }) {
            return Ok(WindowVerdict::Pruned(kind));
        }
        // From here on the window statistics are exact: the batch-style
        // normalisation reproduces `z_normalize` bit for bit, so the
        // sample-phase bounds and the DP decide on the very values the
        // oracle sees.
        let EvalScratch {
            window,
            dtw,
            cascade,
            ..
        } = eval;
        let wv = self.normalize_window(raw, window);
        let planned = rec.time(TracePhase::BandPlan, || self.plan_window_band(wv))?;
        let band = planned
            .as_ref()
            .or(self.fixed_band.as_ref())
            .expect("alignment-free policies carry a fixed band");
        self.finish_window(wv, band, None, threshold, dtw, cascade, stats, rec, areas)
    }

    /// Plans the adaptive band for one prepared (normalised) window —
    /// extract its descriptors, plan against the cached query
    /// descriptors, sanitise. `None` under an alignment-free policy,
    /// where every window shares the matcher's `fixed_band`.
    fn plan_window_band(&self, wv: &[f64]) -> Result<Option<Band>, TsError> {
        if self.fixed_band.is_some() {
            return Ok(None);
        }
        let wts = TimeSeries::new(wv.to_vec())?;
        let wf = extract_features(&wts, &self.config.sdtw.salient)?;
        let (b, _) = self
            .engine
            .plan_band(&self.query_features, &wf, self.m, self.m);
        Ok(Some(if b.is_feasible() { b } else { b.sanitize() }))
    }

    /// The sample-phase stages and the early-abandoned DP for one
    /// prepared (normalised, band-planned) window. `y_keogh_raw`
    /// optionally carries the batched forward LB_Keogh bound — by
    /// construction bit-identical to the scalar value the cascade would
    /// otherwise compute itself, so passing it changes cost, never
    /// decisions.
    #[allow(clippy::too_many_arguments)]
    fn finish_window(
        &self,
        wv: &[f64],
        band: &Band,
        y_keogh_raw: Option<f64>,
        threshold: f64,
        dtw: &mut DtwScratch,
        cascade_scratch: &mut CascadeScratch,
        stats: &mut CascadeStats,
        rec: &mut Recorder,
        areas: &mut (u64, u64),
    ) -> Result<WindowVerdict, TsError> {
        let input = SampleInput {
            x: wv,
            y: &self.query,
            y_envelope: Some(&self.query_envelope),
            y_keogh_raw,
            x_envelope: None,
            y_coarse: self.query_coarse.as_ref(),
        };
        // the sample-phase screen covers the coarse PAA pre-filter and
        // both LB_Keogh directions; all attributed to the LbKeogh span
        if let Some(kind) = rec.time(TracePhase::LbKeogh, || {
            self.cascade
                .screen_samples(stats, &input, band, threshold, cascade_scratch)
        }) {
            return Ok(WindowVerdict::Pruned(kind));
        }
        areas.0 += band.area() as u64;
        areas.1 += (self.m * self.m) as u64;
        match rec.time(TracePhase::DpFill, || {
            self.engine
                .query_window(&self.query, wv)
                .band(band)
                .cutoff(threshold)
                .path(false)
                .scratch(dtw)
                .run()
        })? {
            None => {
                // the abandoning run still paid for part of the grid;
                // charge the full band conservatively (as the index does)
                stats.record_abandoned(band.area());
                Ok(WindowVerdict::Abandoned)
            }
            Some(r) => {
                stats.record_completed(r.cells_filled);
                Ok(WindowVerdict::Completed(r.distance))
            }
        }
    }

    /// The rolling LB_Kim bound of a window, in reported-distance units,
    /// from the O(1) accumulators. `None` when the stage abstains: σ too
    /// close to the constant-window convention switch, or the sliding
    /// moments numerically ill-conditioned (stale centring offset after
    /// a level shift in the stream — see
    /// [`WindowedStats::moments_well_conditioned`]); abstaining windows
    /// fall through to the exact LB_Keogh/DP stages, so results never
    /// depend on an untrustworthy σ.
    pub(crate) fn kim_bound(
        &self,
        first: f64,
        last: f64,
        min: f64,
        max: f64,
        moments: &WindowedStats,
    ) -> Option<f64> {
        let metric = self.config.sdtw.dtw.metric;
        let summary = if self.config.z_normalize {
            if !moments.moments_well_conditioned() {
                return None;
            }
            let sd = moments.std_dev();
            let mean = moments.mean();
            if sd <= SIGMA_FLOOR * (1.0 + mean.abs()) {
                return None;
            }
            SeriesSummary {
                first: (first - mean) / sd,
                last: (last - mean) / sd,
                min: (min - mean) / sd,
                max: (max - mean) / sd,
                len: self.m,
            }
        } else {
            SeriesSummary {
                first,
                last,
                min,
                max,
                len: self.m,
            }
        };
        Some(self.normalize_bound(lb_kim(&self.query_summary, &summary, metric)))
    }

    /// Z-normalises a raw window into `buf` via the one shared
    /// implementation ([`z_normalize_values`] — bit-identical to the
    /// [`z_normalize`] series path by construction), or passes it
    /// through untouched in raw mode.
    pub(crate) fn normalize_window<'a>(&self, raw: &'a [f64], buf: &'a mut Vec<f64>) -> &'a [f64] {
        if !self.config.z_normalize {
            return raw;
        }
        z_normalize_values(raw, buf);
        buf
    }

    /// Converts a raw accumulated-cost bound into the units of the
    /// configured normalisation, so it compares against final distances.
    fn normalize_bound(&self, raw: f64) -> f64 {
        match self.config.sdtw.dtw.normalization {
            Normalization::None => raw,
            Normalization::LengthSum => raw / (2 * self.m) as f64,
        }
    }

    /// Precomputes the rolling LB_Kim bound of every window in
    /// `[ws, we)` from one incremental sweep over the sample range the
    /// shard owns (`[ws, we − 1 + m)` — its windows plus the `m − 1`
    /// halo). The accumulators are the very ones the streaming monitor
    /// feeds push by push; a shard starting at `ws == 0` reproduces the
    /// serial sweep bit for bit. Later shards seed their moments at
    /// their own first sample, which can flip borderline guarded prunes
    /// — admissible either way, so matches never change.
    fn rolling_kims(&self, xv: &[f64], ws: usize, we: usize) -> Vec<Option<f64>> {
        let mut out = Vec::with_capacity(we - ws);
        if !self.bounds_ok {
            out.resize(we - ws, None);
            return out;
        }
        let mut moments = WindowedStats::new(self.m);
        let mut extrema = RollingExtrema::new(self.m);
        for (t, &v) in xv[ws..we - 1 + self.m].iter().enumerate() {
            moments.push(v);
            extrema.push(v);
            if t + 1 >= self.m {
                let w = ws + t + 1 - self.m;
                out.push(self.kim_bound(xv[w], v, extrema.min(), extrema.max(), &moments));
            }
        }
        out
    }

    /// Greedy non-overlapping selection over scored candidates: ascending
    /// `(distance, offset)`, each pick excluding offsets closer than the
    /// matcher's exclusion distance. Used by the streaming monitor.
    pub(crate) fn select_greedy(&self, candidates: &[SubseqMatch], k: usize) -> Vec<SubseqMatch> {
        let mut order: Vec<&SubseqMatch> = candidates.iter().collect();
        order.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("distances are finite")
                .then(a.offset.cmp(&b.offset))
        });
        let mut picked: Vec<SubseqMatch> = Vec::new();
        for c in order {
            if picked.len() == k {
                break;
            }
            if picked
                .iter()
                .all(|p| c.offset.abs_diff(p.offset) >= self.exclusion)
            {
                picked.push(*c);
            }
        }
        picked
    }
}

/// A Kim-surviving window parked in the deferred queue until enough
/// accumulate to batch their forward LB_Keogh bounds (one
/// [`lb_keogh_batch_windows`] lane pass over up to [`LB_LANES`] windows —
/// the queue capacity and the normalised-window staging buffers are both
/// sized from that one const, which the `sdtw_dtw::simd` lane layer
/// defines, so no chunk-width assumption lives in this crate).
/// Normalisation and band planning happen at enqueue time — in serial
/// sweep order — so deferral changes *when* the sample-phase stages run,
/// never what they see.
#[derive(Debug)]
struct PendingWindow {
    /// Global window offset.
    w: usize,
    /// Lane buffer holding the z-normalised samples (`None` in raw mode,
    /// where the haystack is re-sliced at flush time).
    lane: Option<usize>,
    /// The planned adaptive band (`None` under alignment-free policies —
    /// every window shares the matcher's `fixed_band`).
    band: Option<Band>,
}

/// One worker's share of a (possibly sharded) scan: the window range
/// `[ws, we)`, its precomputed rolling bounds, and every piece of
/// per-worker state the sweep mutates — the completed-distance cache,
/// the DP/cascade scratch buffers, and the shard's own [`StreamStats`].
///
/// The serial scan runs exactly one of these over the whole window
/// range; [`SubseqMatcher::find_k_parallel`] runs one per shard and
/// merges.
#[derive(Debug)]
struct ShardScan {
    /// First window this shard owns.
    ws: usize,
    /// One past the last window this shard owns.
    we: usize,
    /// Rolling LB_Kim per owned window (`kims[w - ws]`).
    kims: Vec<Option<f64>>,
    /// Completed DP distances, keyed by global window offset.
    computed: BTreeMap<usize, f64>,
    eval: EvalScratch,
    stats: StreamStats,
    /// Shard-local phase spans — disabled (≈free) outside the traced
    /// entry points.
    rec: Recorder,
    /// (band area, full grid area) summed over DP-entering windows —
    /// the pruning-power denominators of a trace.
    areas: (u64, u64),
}

impl ShardScan {
    /// Prepares a shard over windows `[ws, we)` of `xv` (`ws < we`).
    fn new(matcher: &SubseqMatcher, xv: &[f64], ws: usize, we: usize, traced: bool) -> Self {
        debug_assert!(ws < we && we <= xv.len() - matcher.m + 1);
        Self {
            ws,
            we,
            kims: matcher.rolling_kims(xv, ws, we),
            computed: BTreeMap::new(),
            eval: EvalScratch::default(),
            stats: StreamStats {
                windows: (we - ws) as u64,
                ..StreamStats::default()
            },
            rec: if traced {
                Recorder::enabled()
            } else {
                Recorder::disabled()
            },
            areas: (0, 0),
        }
    }

    /// One greedy best-match pass over the shard's windows: finds the
    /// minimal `(distance, offset)` among non-excluded windows at or
    /// under `tau`, pruning against the pass's running best (seeded from
    /// the completed-distance cache) — the serial sweep restricted to
    /// `[ws, we)`.
    fn sweep(
        &mut self,
        matcher: &SubseqMatcher,
        xv: &[f64],
        tau: f64,
        selected: &[SubseqMatch],
    ) -> SweepOutcome {
        let excluded = |w: usize| {
            selected
                .iter()
                .any(|s| w.abs_diff(s.offset) < matcher.exclusion)
        };
        let (ws, we) = (self.ws, self.we);
        self.eval.lanes.resize(LB_LANES, Vec::new());
        let Self {
            kims,
            computed,
            eval,
            stats,
            rec,
            areas,
            ..
        } = self;
        // WindowSweep is the enclosing span: its duration covers the
        // whole pass, the per-stage spans nest inside it
        let sweep_t0 = rec.is_enabled().then(std::time::Instant::now);
        let EvalScratch {
            dtw,
            cascade: cascade_scratch,
            lanes,
            ..
        } = eval;
        let mut best: Option<(f64, usize)> = None;
        for (&w, &d) in computed.iter() {
            if d <= tau && !excluded(w) && SubseqMatcher::better(d, w, &best) {
                best = Some((d, w));
            }
        }
        let mut pending: Vec<PendingWindow> = Vec::with_capacity(LB_LANES);
        for w in ws..we {
            if excluded(w) {
                stats.skipped_excluded += 1;
                continue;
            }
            if computed.contains_key(&w) {
                stats.cache_hits += 1;
                continue;
            }
            // The threshold this Kim screen reads can be stale by the (at
            // most LB_LANES - 1) queued survivors ahead of this window;
            // staleness only ever *loosens* it, so deferral may admit an
            // extra window into the queue but never drops one the serial
            // sweep would keep. The flush re-reads a fresh threshold
            // before every decision that can complete, so the pass winner
            // and the completed-distance cache stay bit-identical to the
            // serial sweep — an admitted-by-staleness window necessarily
            // exceeds its fresh flush threshold and falls to a later
            // stage (shifting pruning *credit* between stages only).
            let threshold = best.map_or(tau, |(d, _)| d.min(tau));
            if rec
                .time(TracePhase::LbKim, || {
                    matcher
                        .cascade
                        .screen_summary(&mut stats.cascade, kims[w - ws], threshold)
                })
                .is_some()
            {
                continue;
            }
            let raw = &xv[w..w + matcher.m];
            let lane = matcher.config.z_normalize.then(|| {
                let l = pending.len();
                z_normalize_values(raw, &mut lanes[l]);
                l
            });
            let wv: &[f64] = match lane {
                Some(l) => &lanes[l],
                None => raw,
            };
            let band = rec.time(TracePhase::BandPlan, || matcher.plan_window_band(wv))?;
            pending.push(PendingWindow { w, lane, band });
            if pending.len() == LB_LANES {
                Self::flush_pending(
                    matcher,
                    xv,
                    &mut pending,
                    lanes,
                    dtw,
                    cascade_scratch,
                    &mut stats.cascade,
                    computed,
                    tau,
                    &mut best,
                    rec,
                    areas,
                )?;
            }
        }
        Self::flush_pending(
            matcher,
            xv,
            &mut pending,
            lanes,
            dtw,
            cascade_scratch,
            &mut stats.cascade,
            computed,
            tau,
            &mut best,
            rec,
            areas,
        )?;
        if let Some(t0) = sweep_t0 {
            rec.add(TracePhase::WindowSweep, t0.elapsed());
        }
        Ok(best)
    }

    /// Drains the deferred window queue: one batched forward LB_Keogh
    /// pass over the lanes whose stage applies (same predicate the
    /// cascade uses — the band inside the query-envelope window), then
    /// each window is decided strictly in FIFO (= serial sweep) order
    /// against a fresh pass-best threshold. The cascade re-derives
    /// applicability itself and falls back to the scalar bound when no
    /// precomputed value is present, so the predicate here is a
    /// performance filter, not a correctness gate.
    #[allow(clippy::too_many_arguments)]
    fn flush_pending(
        matcher: &SubseqMatcher,
        xv: &[f64],
        pending: &mut Vec<PendingWindow>,
        lanes: &[Vec<f64>],
        dtw: &mut DtwScratch,
        cascade_scratch: &mut CascadeScratch,
        stats: &mut CascadeStats,
        computed: &mut BTreeMap<usize, f64>,
        tau: f64,
        best: &mut Option<(f64, usize)>,
        rec: &mut Recorder,
        areas: &mut (u64, u64),
    ) -> Result<(), TsError> {
        if pending.is_empty() {
            return Ok(());
        }
        debug_assert!(pending.len() <= LB_LANES, "queue flushes at the lane width");
        let window_of = |cand: &PendingWindow| -> &[f64] {
            match cand.lane {
                Some(l) => &lanes[l],
                None => &xv[cand.w..cand.w + matcher.m],
            }
        };
        let mut pre: [Option<f64>; LB_LANES] = [None; LB_LANES];
        if matcher.bounds_ok {
            rec.time(TracePhase::LbKeogh, || {
                let mut slots: Vec<usize> = Vec::with_capacity(pending.len());
                let mut views: Vec<&[f64]> = Vec::with_capacity(pending.len());
                for (p, cand) in pending.iter().enumerate() {
                    let band = cand.band.as_ref().or(matcher.fixed_band.as_ref());
                    if band.is_some_and(|b| b.within_window(matcher.radius)) {
                        slots.push(p);
                        views.push(window_of(cand));
                    }
                }
                let mut bounds = Vec::with_capacity(slots.len());
                lb_keogh_batch_windows(
                    &views,
                    &matcher.query_envelope,
                    matcher.config.sdtw.dtw.metric,
                    &mut bounds,
                );
                for (&p, &raw) in slots.iter().zip(&bounds) {
                    pre[p] = Some(raw);
                }
            });
        }
        for (p, cand) in pending.drain(..).enumerate() {
            let wv: &[f64] = match cand.lane {
                Some(l) => &lanes[l],
                None => &xv[cand.w..cand.w + matcher.m],
            };
            let band = cand
                .band
                .as_ref()
                .or(matcher.fixed_band.as_ref())
                .expect("adaptive windows carry a planned band");
            let threshold = best.map_or(tau, |(d, _)| d.min(tau));
            let verdict = matcher.finish_window(
                wv,
                band,
                pre[p],
                threshold,
                dtw,
                cascade_scratch,
                stats,
                rec,
                areas,
            )?;
            if let WindowVerdict::Completed(d) = verdict {
                computed.insert(cand.w, d);
                if d <= tau && SubseqMatcher::better(d, cand.w, best) {
                    *best = Some((d, cand.w));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::StreamMonitor;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    /// A haystack with the query planted (shifted/scaled) at known spots.
    fn planted() -> (TimeSeries, TimeSeries) {
        let query = ts((0..48)
            .map(|i| {
                let t = i as f64 / 47.0;
                (-((t - 0.5) / 0.12).powi(2)).exp()
            })
            .collect());
        let mut hay = vec![0.0; 400];
        for (start, gain, offset) in [(60usize, 1.0, 0.0), (220, 3.0, 5.0)] {
            for i in 0..48 {
                hay[start + i] += gain * query.at(i) + offset;
            }
        }
        // mild deterministic ripple so windows are never exactly constant
        for (i, v) in hay.iter_mut().enumerate() {
            *v += 0.01 * (i as f64 / 9.0).sin();
        }
        (query, ts(hay))
    }

    #[test]
    fn window_bound_floor_is_admissible_and_conservative() {
        let (query, hay) = planted();
        for z in [true, false] {
            let mut cfg = StreamConfig::exact_banded(0.2);
            cfg.z_normalize = z;
            let matcher = SubseqMatcher::new(&query, cfg).unwrap();
            let floor = matcher.window_bound_floor(&hay);
            assert!(floor >= 0.0 && floor.is_finite());
            // admissible: no window's exact distance lies below the floor
            let best = matcher.find(&hay, 1).unwrap().matches[0].distance;
            assert!(
                floor <= best,
                "z={z}: floor {floor} above best window {best}"
            );
        }
        // a haystack shorter than the query has no windows at all
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let short = ts(vec![0.0; 8]);
        assert_eq!(matcher.window_bound_floor(&short), f64::INFINITY);
    }

    #[test]
    fn finds_planted_occurrences_under_z_normalization() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let result = matcher.find(&hay, 2).unwrap();
        assert_eq!(result.matches.len(), 2);
        // both planted sites found (z-normalisation cancels gain/offset),
        // within a couple of samples of the planting position
        let mut offsets: Vec<usize> = result.matches.iter().map(|m| m.offset).collect();
        offsets.sort_unstable();
        assert!((offsets[0] as i64 - 60).abs() <= 6, "got {offsets:?}");
        assert!((offsets[1] as i64 - 220).abs() <= 6, "got {offsets:?}");
        assert!(result.stats.is_consistent());
        assert_eq!(result.stats.windows, 400 - 48 + 1);
    }

    #[test]
    fn raw_mode_is_offset_sensitive() {
        let (query, hay) = planted();
        let config = StreamConfig {
            z_normalize: false,
            ..StreamConfig::exact_banded(0.2)
        };
        let matcher = SubseqMatcher::new(&query, config).unwrap();
        let best = matcher.find(&hay, 1).unwrap().matches[0];
        // raw comparison must prefer the unscaled planting
        assert!((best.offset as i64 - 60).abs() <= 6, "got {}", best.offset);
    }

    #[test]
    fn matches_respect_the_exclusion_zone() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let result = matcher.find(&hay, 5).unwrap();
        let excl = matcher.exclusion();
        for (i, a) in result.matches.iter().enumerate() {
            for b in &result.matches[i + 1..] {
                assert!(
                    a.offset.abs_diff(b.offset) >= excl,
                    "matches {a:?} and {b:?} overlap (exclusion {excl})"
                );
            }
        }
        // matches come out ascending by (distance, offset)
        for pair in result.matches.windows(2) {
            assert!(pair[0].distance <= pair[1].distance);
        }
    }

    #[test]
    fn tau_restricts_and_short_series_yield_nothing() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let all = matcher.find(&hay, 3).unwrap();
        let tau = all.matches[0].distance; // only the best qualifies
        let under = matcher.find_under(&hay, 3, tau).unwrap();
        assert_eq!(under.matches.len(), 1);
        assert_eq!(under.matches[0], all.matches[0]);
        // inclusive: tau exactly at the distance keeps the match
        let short = ts(vec![0.0; 10]);
        assert!(matcher.find(&short, 1).unwrap().matches.is_empty());
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let fresh = matcher.find(&hay, 3).unwrap();
        let mut scratch = DtwScratch::new();
        let reused = matcher
            .find_under_with_scratch(&hay, 3, f64::INFINITY, &mut scratch)
            .unwrap();
        assert_eq!(fresh.matches.len(), reused.matches.len());
        for (a, b) in fresh.matches.iter().zip(&reused.matches) {
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        assert_eq!(fresh.stats, reused.stats);
    }

    #[test]
    fn bad_parameters_are_rejected() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        assert!(matcher.find(&hay, 0).is_err());
        assert!(matcher.find_under(&hay, 1, -1.0).is_err());
        assert!(matcher.find_under(&hay, 1, f64::NAN).is_err());
        let bad = StreamConfig {
            exclusion_frac: -1.0,
            ..StreamConfig::default()
        };
        assert!(SubseqMatcher::new(&query, bad).is_err());
    }

    #[test]
    fn constant_windows_are_handled_by_the_sigma_convention() {
        // a flat haystack: every window z-normalises to all-zeros; the
        // search must complete without pruning anything unsoundly
        let query = ts((0..32).map(|i| (i as f64 / 5.0).sin()).collect());
        let hay = ts(vec![3.25; 200]);
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let result = matcher.find(&hay, 1).unwrap();
        assert_eq!(result.matches.len(), 1);
        // distance to the zero window = sum of squared query samples
        // under the banded DP; just sanity-check finiteness + stats
        assert!(result.matches[0].distance.is_finite());
        assert!(result.stats.is_consistent());
    }

    #[test]
    fn level_shift_streams_stay_exact() {
        // the ill-conditioning regression: a huge DC level shift makes
        // the rolling sigma garbage for the stale-offset windows; the
        // Kim stage must abstain there rather than unsoundly prune the
        // planting hidden inside the new level
        let query = ts((0..32)
            .map(|i| (-((i as f64 / 31.0 - 0.5) / 0.15).powi(2)).exp())
            .collect());
        let mut hay = vec![0.0; 400];
        for (i, v) in hay.iter_mut().enumerate() {
            *v = 0.01 * (i as f64 / 3.0).sin();
            if i >= 200 {
                *v += 1e6; // the level shift
            }
        }
        // plant the query once before the shift and once inside the
        // stale-offset regime right after it (window fully at the new
        // level, before the next scheduled re-centring refresh): a
        // garbage rolling sigma there would corrupt the rolling LB_Kim
        // and silently drop this second match
        for (start, gain) in [(80usize, 1.0), (210, 1.0)] {
            for i in 0..32 {
                hay[start + i] += gain * query.at(i);
            }
        }
        let hay = ts(hay);
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        // brute-force oracle inline: every window, batch-normalised
        let engine = SDtw::new(matcher.config().sdtw.clone()).unwrap();
        let qts = ts(matcher.query_values().to_vec());
        let mut profile: Vec<(usize, f64)> = Vec::new();
        for w in 0..=(hay.len() - 32) {
            let window = z_normalize(&ts(hay.values()[w..w + 32].to_vec()));
            let d = engine.query(&qts, &window).run().unwrap().unwrap().distance;
            profile.push((w, d));
        }
        for k in [1usize, 3] {
            // greedy reference selection
            let mut picked: Vec<(usize, f64)> = Vec::new();
            while picked.len() < k {
                let mut best: Option<(usize, f64)> = None;
                for &(w, d) in &profile {
                    if picked
                        .iter()
                        .any(|&(p, _)| w.abs_diff(p) < matcher.exclusion())
                    {
                        continue;
                    }
                    best = match best {
                        None => Some((w, d)),
                        Some((bw, bd)) if d < bd || (d == bd && w < bw) => Some((w, d)),
                        keep => keep,
                    };
                }
                match best {
                    None => break,
                    Some(p) => picked.push(p),
                }
            }
            let got = matcher.find(&hay, k).unwrap();
            assert_eq!(got.matches.len(), picked.len(), "k={k}");
            for (m, (w, d)) in got.matches.iter().zip(&picked) {
                assert_eq!(m.offset, *w, "k={k}: the level shift broke exactness");
                assert_eq!(m.distance.to_bits(), d.to_bits(), "k={k}");
            }
        }
        // streaming mode sees the same shift sample by sample
        let batch = matcher.find(&hay, 1).unwrap();
        let mut monitor = StreamMonitor::new(matcher, 1, f64::INFINITY).unwrap();
        monitor.process(hay.values()).unwrap();
        let live = monitor.matches();
        assert_eq!(live[0].offset, batch.matches[0].offset);
        assert_eq!(
            live[0].distance.to_bits(),
            batch.matches[0].distance.to_bits()
        );
    }

    #[test]
    fn cascade_actually_prunes_on_an_easy_stream() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let result = matcher.find(&hay, 1).unwrap();
        assert!(
            result.stats.cascade.pruned_before_dp() > 0,
            "lower bounds never fired: {:?}",
            result.stats
        );
        assert!(result.stats.prune_rate() > 0.2, "{:?}", result.stats);
    }
}
