//! Subsequence-search configuration.

use sdtw::{ConstraintPolicy, SDtwConfig};
use sdtw_tseries::TsError;
use serde::{Deserialize, Serialize};

/// Configuration of a [`crate::SubseqMatcher`].
///
/// The nested [`SDtwConfig`] decides the *distance windows are scored in*
/// — a `FixedCoreFixedWidth` (Sakoe-Chiba) policy gives the classic
/// UCR-suite subsequence search, an adaptive policy plans a per-window
/// sDTW band from salient descriptors (the query's descriptors are cached
/// once at matcher construction). Whatever the mode, results are
/// identical — offsets and bit-identical distances — to brute-forcing the
/// same engine over every window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamConfig {
    /// The engine configuration windows are scored under.
    pub sdtw: SDtwConfig,
    /// Z-normalise the query once and every window with its own
    /// mean/deviation (the UCR convention; makes matches invariant to the
    /// local offset and scale of the stream). Without it windows are
    /// compared raw.
    pub z_normalize: bool,
    /// Envelope window radius as a fraction of the query length
    /// (`radius = ceil(frac · len)`). The LB_Keogh stage only fires when
    /// the (sanitised) band stays inside this window — larger values keep
    /// the bound applicable to wider bands but loosen it.
    pub lb_radius_frac: f64,
    /// Minimum offset distance between two reported matches, as a
    /// fraction of the query length (`exclusion = max(1, ceil(frac ·
    /// len))`); matches closer than that are considered the same
    /// occurrence and only the best survives. The matrix-profile
    /// convention is 0.5.
    pub exclusion_frac: f64,
    /// Segment width of the coarse PAA pre-filter stage (the
    /// `sdtw_dtw::cascade` `Paa` stage: window segment means against the
    /// PAA-compressed query envelope, admissible under the same
    /// conditions as LB_Keogh but `width`× fewer metric evaluations).
    /// Values below 2 disable the stage — width 1 *is* the fine
    /// LB_Keogh.
    pub paa_width: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            sdtw: SDtwConfig::default(),
            z_normalize: true,
            lb_radius_frac: 0.1,
            exclusion_frac: 0.5,
            paa_width: DEFAULT_PAA_WIDTH,
        }
    }
}

/// Default segment width of the coarse PAA pre-filter.
const DEFAULT_PAA_WIDTH: usize = 8;

impl StreamConfig {
    /// Classic UCR-style search: a Sakoe-Chiba band of the given total
    /// width fraction, z-normalised windows, and the envelope radius
    /// sized to dominate the band so every cascade stage applies.
    pub fn exact_banded(width_frac: f64) -> Self {
        Self {
            sdtw: SDtwConfig {
                policy: ConstraintPolicy::FixedCoreFixedWidth { width_frac },
                ..SDtwConfig::default()
            },
            z_normalize: true,
            // the band's half-width is width_frac/2 of the query length
            // (+1 for the sanitiser's corner bridging); leave headroom
            lb_radius_frac: width_frac,
            exclusion_frac: 0.5,
            paa_width: DEFAULT_PAA_WIDTH,
        }
    }

    /// sDTW-band mode: the paper's `ac2,aw` adaptive constraints, planned
    /// per window against the query's cached salient descriptors.
    pub fn sdtw_bands() -> Self {
        Self::default()
    }

    /// Validates the nested engine configuration and the matcher's own
    /// parameters.
    ///
    /// # Errors
    ///
    /// The first [`TsError::InvalidParameter`] found.
    pub fn validate(&self) -> Result<(), TsError> {
        self.sdtw.validate()?;
        if !self.lb_radius_frac.is_finite() || self.lb_radius_frac < 0.0 {
            return Err(TsError::InvalidParameter {
                name: "lb_radius_frac",
                reason: format!(
                    "envelope radius fraction must be finite and >= 0, got {}",
                    self.lb_radius_frac
                ),
            });
        }
        if !self.exclusion_frac.is_finite() || self.exclusion_frac < 0.0 {
            return Err(TsError::InvalidParameter {
                name: "exclusion_frac",
                reason: format!(
                    "exclusion fraction must be finite and >= 0, got {}",
                    self.exclusion_frac
                ),
            });
        }
        Ok(())
    }

    /// Envelope radius for a query of the given length, clamped to `len`
    /// (a radius covering the whole series is already the loosest
    /// envelope; larger values would only risk index overflow).
    pub fn radius_for(&self, len: usize) -> usize {
        ((self.lb_radius_frac * len as f64).ceil() as usize).min(len)
    }

    /// Exclusion distance for a query of the given length (at least 1, so
    /// two matches never share an offset).
    pub fn exclusion_for(&self, len: usize) -> usize {
        ((self.exclusion_frac * len as f64).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates_and_derives_sizes() {
        let c = StreamConfig::default();
        c.validate().unwrap();
        assert_eq!(c.radius_for(100), 10);
        assert_eq!(c.exclusion_for(100), 50);
        assert_eq!(c.exclusion_for(1), 1, "exclusion is never zero");
        // absurd fractions clamp to the series length, never overflow
        let wide = StreamConfig {
            lb_radius_frac: 1e18,
            ..StreamConfig::default()
        };
        wide.validate().unwrap();
        assert_eq!(wide.radius_for(32), 32);
    }

    #[test]
    fn exact_banded_mode_uses_a_sakoe_policy_with_headroom() {
        let c = StreamConfig::exact_banded(0.2);
        c.validate().unwrap();
        assert!(matches!(
            c.sdtw.policy,
            ConstraintPolicy::FixedCoreFixedWidth { .. }
        ));
        assert!(!c.sdtw.policy.needs_alignment());
        assert!(StreamConfig::sdtw_bands().sdtw.policy.needs_alignment());
        assert_eq!(c.radius_for(64), 13);
    }

    #[test]
    fn invalid_fractions_rejected() {
        let mut c = StreamConfig {
            lb_radius_frac: -0.1,
            ..StreamConfig::default()
        };
        assert!(c.validate().is_err());
        c.lb_radius_frac = 0.1;
        c.exclusion_frac = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let c = StreamConfig {
            z_normalize: false,
            lb_radius_frac: 0.25,
            exclusion_frac: 1.0,
            ..StreamConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: StreamConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
