//! Shared-ingest multi-query monitoring: one stream, N queries.
//!
//! Running N independent [`StreamMonitor`](crate::StreamMonitor)s over
//! the same stream pays the ring buffer, the incremental
//! [`WindowedStats`](sdtw_tseries::stats::WindowedStats) moments and the
//! [`RollingExtrema`](crate::RollingExtrema) deques N times — all state
//! that depends only on the *stream*. A [`MonitorBank`] pays them once
//! (one `StreamIngest`) and fans every completed window across the
//! per-query runtimes, which keep their own matchers, thresholds,
//! scratch buffers, candidates and stats.
//!
//! Per-query semantics are **identical to a standalone monitor** — same
//! candidates, same matches (bit-for-bit), same stats — because the
//! runtime half is literally the same code (`monitor::QueryRuntime`) fed
//! the same rolling statistics; the equivalence is pinned by
//! `tests/integration_stream.rs`. The exactness regimes therefore carry
//! over per query: exact for `k == 1` under any `tau`, and for any `k`
//! under a finite `tau` (see DESIGN.md §9/§10).
//!
//! The one structural requirement is a shared window length: every query
//! of a bank must have the same (prepared) length, since the ingest
//! maintains exactly one window of history. Monitor streams with
//! mixed-length queries by grouping them into one bank per length.

use crate::matcher::{SubseqMatch, SubseqMatcher};
use crate::monitor::{QueryRuntime, StreamIngest};
use crate::stats::StreamStats;
use sdtw_obs::{QueryTrace, WorkloadKind};
use sdtw_tseries::TsError;

/// One query's slot specification for [`MonitorBank::new`].
#[derive(Debug, Clone)]
pub struct BankQuery {
    /// The prepared subsequence matcher.
    pub matcher: SubseqMatcher,
    /// Matches to retain for this query.
    pub k: usize,
    /// Acceptance threshold for this query (`f64::INFINITY` = none;
    /// exact only for `k == 1` there, like a standalone monitor).
    pub tau: f64,
}

impl BankQuery {
    /// Convenience constructor.
    pub fn new(matcher: SubseqMatcher, k: usize, tau: f64) -> Self {
        Self { matcher, k, tau }
    }
}

/// A match event reported by [`MonitorBank::push`]: which query fired
/// and what it saw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BankEvent {
    /// Index of the query (the position its [`BankQuery`] was passed in).
    pub query: usize,
    /// The candidate the query's window completed at or under its
    /// acceptance threshold.
    pub matched: SubseqMatch,
}

/// Shared-ingest monitor over N queries of one stream.
#[derive(Debug, Clone)]
pub struct MonitorBank {
    ingest: StreamIngest,
    slots: Vec<QueryRuntime>,
}

impl MonitorBank {
    /// Starts monitoring one stream for every given query.
    ///
    /// # Errors
    ///
    /// An empty query list, per-query validation failures (`k == 0`,
    /// negative/NaN `tau`), or mismatched query lengths (the bank keeps
    /// exactly one window of history).
    pub fn new<I: IntoIterator<Item = BankQuery>>(queries: I) -> Result<Self, TsError> {
        let mut slots = Vec::new();
        let mut m: Option<usize> = None;
        for q in queries {
            let qm = q.matcher.query_len();
            match m {
                None => m = Some(qm),
                Some(m) if m != qm => {
                    return Err(TsError::InvalidParameter {
                        name: "queries",
                        reason: format!(
                            "a MonitorBank shares one window of history, so every \
                             query must have the same prepared length (got {m} and \
                             {qm}); group mixed lengths into one bank per length"
                        ),
                    });
                }
                Some(_) => {}
            }
            slots.push(QueryRuntime::new(q.matcher, q.k, q.tau)?);
        }
        let Some(m) = m else {
            return Err(TsError::InvalidParameter {
                name: "queries",
                reason: "a MonitorBank needs at least one query".to_string(),
            });
        };
        Ok(Self {
            ingest: StreamIngest::new(m),
            slots,
        })
    }

    /// [`MonitorBank::new`] with one shared `k`/`tau` for every matcher.
    ///
    /// # Errors
    ///
    /// As [`MonitorBank::new`].
    pub fn uniform<I: IntoIterator<Item = SubseqMatcher>>(
        matchers: I,
        k: usize,
        tau: f64,
    ) -> Result<Self, TsError> {
        Self::new(
            matchers
                .into_iter()
                .map(|matcher| BankQuery::new(matcher, k, tau)),
        )
    }

    /// Number of monitored queries.
    pub fn query_count(&self) -> usize {
        self.slots.len()
    }

    /// Samples pushed so far (the stream position).
    pub fn position(&self) -> u64 {
        self.ingest.position()
    }

    /// Pushes one sample into the shared ingest; once at least one full
    /// window is buffered, every query's cascade runs on the window this
    /// sample completes. Returns the match events the window produced
    /// (ascending by query index).
    ///
    /// # Errors
    ///
    /// A non-finite sample (rejected before touching any stream state),
    /// or feature-extraction failures (adaptive policies only).
    pub fn push(&mut self, v: f64) -> Result<Vec<BankEvent>, TsError> {
        let mut events = Vec::new();
        if let Some(offset) = self.ingest.push(v)? {
            for (query, slot) in self.slots.iter_mut().enumerate() {
                if let Some(matched) = slot.on_window(&self.ingest, offset)? {
                    events.push(BankEvent { query, matched });
                }
            }
        }
        Ok(events)
    }

    /// Pushes a batch of samples (convenience wrapper over
    /// [`MonitorBank::push`]), returning every event produced.
    ///
    /// # Errors
    ///
    /// The first per-push error.
    pub fn process(&mut self, samples: &[f64]) -> Result<Vec<BankEvent>, TsError> {
        let mut out = Vec::new();
        for &v in samples {
            out.extend(self.push(v)?);
        }
        Ok(out)
    }

    /// Query `q`'s current best non-overlapping matches, ascending by
    /// `(distance, offset)`.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn matches(&self, q: usize) -> Vec<SubseqMatch> {
        self.slots[q].matches()
    }

    /// Query `q`'s matcher.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn matcher(&self, q: usize) -> &SubseqMatcher {
        self.slots[q].matcher()
    }

    /// Query `q`'s accounting so far.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn stats(&self, q: usize) -> &StreamStats {
        self.slots[q].stats()
    }

    /// Query `q`'s retained candidate count (diagnostics).
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn candidate_count(&self, q: usize) -> usize {
        self.slots[q].candidate_count()
    }

    /// The bank's aggregate accounting: every query's [`StreamStats`]
    /// folded through [`StreamStats::merge`] (window visits and cascade
    /// counts sum across queries; each query is its own single endless
    /// pass, so `passes` stays 1).
    pub fn merged_stats(&self) -> StreamStats {
        let mut total = StreamStats::default();
        for slot in &self.slots {
            total.merge(slot.stats());
        }
        total
    }

    /// Switches span recording on or off for every query (off by
    /// default — a disabled recorder costs one branch per phase).
    pub fn set_tracing(&mut self, on: bool) {
        for slot in &mut self.slots {
            slot.set_tracing(on);
        }
    }

    /// Query `q`'s telemetry so far as one canonical [`QueryTrace`]
    /// (`workload = monitor-batch`): counters are a snapshot, spans
    /// drain — a later call carries only spans recorded since this one.
    ///
    /// # Panics
    ///
    /// Panics when `q` is out of range.
    pub fn trace(&mut self, q: usize, query_id: &str) -> QueryTrace {
        let pos = self.ingest.position();
        self.slots[q].trace(query_id, pos)
    }

    /// The bank's aggregate telemetry: every query's trace folded
    /// through [`QueryTrace::merge`] — counters and areas sum across
    /// queries (`passes` stays 1, the max), spans concatenate. Spans
    /// drain from every slot, like [`MonitorBank::trace`].
    pub fn merged_trace(&mut self, query_id: &str) -> QueryTrace {
        let pos = self.ingest.position();
        let mut merged = QueryTrace::new(query_id, WorkloadKind::MonitorBatch);
        for (i, slot) in self.slots.iter_mut().enumerate() {
            let t = slot.trace(&format!("{query_id}/q{i}"), pos);
            if i == 0 {
                merged.shape = t.shape.clone();
            }
            merged.merge(&t);
        }
        merged
    }

    /// Forgets all stream state for every query (query preparation is
    /// retained).
    pub fn reset(&mut self) {
        self.ingest.clear();
        for slot in &mut self.slots {
            slot.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use crate::monitor::StreamMonitor;
    use sdtw_tseries::TimeSeries;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    fn bump(len: usize, centre: f64, width: f64) -> TimeSeries {
        ts((0..len)
            .map(|i| {
                let t = i as f64 / (len - 1) as f64;
                (-((t - centre) / width).powi(2)).exp()
            })
            .collect())
    }

    fn stream() -> Vec<f64> {
        let q1 = bump(40, 0.5, 0.12);
        let q2 = bump(40, 0.3, 0.2);
        let mut hay = vec![0.0; 360];
        for (start, src, gain) in [(40usize, &q1, 1.0), (150, &q2, 2.0), (260, &q1, 0.8)] {
            for i in 0..40 {
                hay[start + i] += gain * src.at(i);
            }
        }
        for (i, v) in hay.iter_mut().enumerate() {
            *v += 0.02 * (i as f64 / 11.0).sin();
        }
        hay
    }

    fn matcher(query: &TimeSeries) -> SubseqMatcher {
        SubseqMatcher::new(query, StreamConfig::exact_banded(0.2)).unwrap()
    }

    #[test]
    fn bank_equals_independent_monitors_bitwise() {
        let q1 = bump(40, 0.5, 0.12);
        let q2 = bump(40, 0.3, 0.2);
        let hay = stream();
        let specs = [(q1, 1usize, f64::INFINITY), (q2, 3, 2.5)];

        let mut bank = MonitorBank::new(
            specs
                .iter()
                .map(|(q, k, tau)| BankQuery::new(matcher(q), *k, *tau)),
        )
        .unwrap();
        bank.process(&hay).unwrap();

        for (qi, (q, k, tau)) in specs.iter().enumerate() {
            let mut solo = StreamMonitor::new(matcher(q), *k, *tau).unwrap();
            solo.process(&hay).unwrap();
            let bank_matches = bank.matches(qi);
            let solo_matches = solo.matches();
            assert_eq!(bank_matches.len(), solo_matches.len(), "query {qi}");
            for (a, b) in bank_matches.iter().zip(&solo_matches) {
                assert_eq!(a.offset, b.offset, "query {qi}");
                assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "query {qi}");
            }
            assert_eq!(bank.stats(qi), solo.stats(), "query {qi} stats");
        }
    }

    #[test]
    fn merged_stats_aggregate_across_queries() {
        let hay = stream();
        let mut bank = MonitorBank::uniform(
            [matcher(&bump(40, 0.5, 0.12)), matcher(&bump(40, 0.3, 0.2))],
            1,
            f64::INFINITY,
        )
        .unwrap();
        bank.process(&hay).unwrap();
        let merged = bank.merged_stats();
        assert_eq!(
            merged.windows,
            bank.stats(0).windows + bank.stats(1).windows
        );
        assert_eq!(merged.passes, 1);
        assert!(merged.is_consistent());
        assert!(merged.cascade.candidates > 0);
    }

    #[test]
    fn events_tag_their_query_and_reset_forgets() {
        let hay = stream();
        let mut bank = MonitorBank::uniform(
            [matcher(&bump(40, 0.5, 0.12)), matcher(&bump(40, 0.3, 0.2))],
            1,
            f64::INFINITY,
        )
        .unwrap();
        let events = bank.process(&hay).unwrap();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.query < bank.query_count()));
        assert_eq!(bank.position(), hay.len() as u64);
        bank.reset();
        assert_eq!(bank.position(), 0);
        assert!(bank.matches(0).is_empty() && bank.matches(1).is_empty());
    }

    #[test]
    fn bad_banks_are_rejected() {
        assert!(MonitorBank::new(std::iter::empty()).is_err());
        let a = matcher(&bump(40, 0.5, 0.12));
        let b = matcher(&bump(48, 0.5, 0.12));
        let err = MonitorBank::uniform([a.clone(), b], 1, f64::INFINITY).unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("same prepared length"), "{msg}");
        assert!(MonitorBank::uniform([a.clone()], 0, 1.0).is_err());
        assert!(MonitorBank::uniform([a], 1, -1.0).is_err());
    }

    #[test]
    fn mixed_normalisation_banks_are_allowed() {
        // the ingest is normalisation-agnostic (raw ring + raw rolling
        // stats); each runtime normalises its own windows, so raw and
        // z-normalised queries can share a stream
        let hay = stream();
        let q = bump(40, 0.5, 0.12);
        let raw_config = StreamConfig {
            z_normalize: false,
            ..StreamConfig::exact_banded(0.2)
        };
        let raw = SubseqMatcher::new(&q, raw_config).unwrap();
        let mut bank = MonitorBank::new([
            BankQuery::new(matcher(&q), 1, f64::INFINITY),
            BankQuery::new(raw, 1, f64::INFINITY),
        ])
        .unwrap();
        bank.process(&hay).unwrap();
        assert_eq!(bank.matches(0).len(), 1);
        assert_eq!(bank.matches(1).len(), 1);
        assert!(bank.stats(0).is_consistent() && bank.stats(1).is_consistent());
    }
}
