//! Per-search accounting, wrapping the shared cascade stats.

use sdtw_dtw::cascade::CascadeStats;
use serde::{Deserialize, Serialize};

/// What one subsequence search (or one monitor session) did: the shared
/// per-stage [`CascadeStats`] plus the window-level counters the
/// subsequence workload adds on top (multi-pass sweeps, exclusion-zone
/// skips, distance-cache hits).
///
/// `cascade.candidates` counts *cascade entries* — window visits that ran
/// the LB_Kim → LB_Keogh → DP pipeline — so the [`CascadeStats`]
/// consistency invariant (`candidates == pruned + abandoned +
/// dp_completed`) carries over verbatim. Visits resolved without entering
/// the cascade are counted here instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Distinct windows of the searched series (offsets `0 ..= n - m`),
    /// or windows completed by the monitor so far.
    pub windows: u64,
    /// Sweep passes over the windows (the batch matcher runs up to `k`;
    /// a monitor is a single endless pass).
    pub passes: u32,
    /// Window visits skipped because the offset lies inside the exclusion
    /// zone of an already-selected match.
    pub skipped_excluded: u64,
    /// Window visits answered from the completed-distance cache (later
    /// passes revisit windows the earlier passes already scored).
    pub cache_hits: u64,
    /// The shared cascade accounting (LB_Kim / LB_Keogh prunes, early
    /// abandons, completed DPs, cells filled).
    pub cascade: CascadeStats,
}

impl StreamStats {
    /// Folds another search's accounting into this one — how parallel
    /// shards and monitor banks aggregate instead of dropping counts.
    /// Window-level counters and the nested [`CascadeStats`] sum;
    /// `passes` takes the maximum, because merged participants sweep
    /// *concurrently* (every shard of one parallel scan runs the same
    /// pass, and every monitor of a bank is its own single endless
    /// pass), so summing would overstate the pass count.
    pub fn merge(&mut self, other: &StreamStats) {
        self.windows += other.windows;
        self.passes = self.passes.max(other.passes);
        self.skipped_excluded += other.skipped_excluded;
        self.cache_hits += other.cache_hits;
        self.cascade.merge(&other.cascade);
    }

    /// Fraction of cascade entries disposed of before the DP completed
    /// (lower-bound prunes + early abandons), in `[0, 1]`.
    pub fn prune_rate(&self) -> f64 {
        self.cascade.prune_rate()
    }

    /// Fraction of cascade entries disposed of by the lower bounds alone
    /// (before any DP work), in `[0, 1]`.
    pub fn lb_prune_rate(&self) -> f64 {
        if self.cascade.candidates == 0 {
            return 0.0;
        }
        self.cascade.pruned_before_dp() as f64 / self.cascade.candidates as f64
    }

    /// Whether every cascade entry is accounted for by exactly one
    /// disposal (delegates to the shared invariant).
    pub fn is_consistent(&self) -> bool {
        self.cascade.is_consistent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_delegate_to_the_shared_cascade() {
        let s = StreamStats {
            windows: 10,
            passes: 2,
            skipped_excluded: 3,
            cache_hits: 2,
            cascade: CascadeStats {
                candidates: 10,
                pruned_kim: 4,
                pruned_keogh: 2,
                abandoned: 1,
                dp_completed: 3,
                ..CascadeStats::default()
            },
        };
        assert!(s.is_consistent());
        assert!((s.prune_rate() - 0.7).abs() < 1e-12);
        assert!((s.lb_prune_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters_and_maxes_passes() {
        let a = StreamStats {
            windows: 10,
            passes: 3,
            skipped_excluded: 2,
            cache_hits: 1,
            cascade: CascadeStats {
                candidates: 7,
                pruned_kim: 3,
                pruned_paa: 1,
                abandoned: 1,
                dp_completed: 2,
                cells_filled: 40,
                ..CascadeStats::default()
            },
        };
        let b = StreamStats {
            windows: 5,
            passes: 2,
            skipped_excluded: 4,
            cache_hits: 0,
            cascade: CascadeStats {
                candidates: 5,
                pruned_keogh: 2,
                dp_completed: 3,
                cells_filled: 60,
                ..CascadeStats::default()
            },
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.windows, 15);
        assert_eq!(m.passes, 3, "concurrent sweeps take the max");
        assert_eq!(m.skipped_excluded, 6);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.cascade.candidates, 12);
        assert_eq!(m.cascade.cells_filled, 100);
        assert!(m.is_consistent());
    }

    #[test]
    fn empty_stats_are_consistent() {
        let s = StreamStats::default();
        assert!(s.is_consistent());
        assert_eq!(s.prune_rate(), 0.0);
        assert_eq!(s.lb_prune_rate(), 0.0);
    }

    #[test]
    fn stats_roundtrip_through_serde() {
        let s = StreamStats {
            windows: 7,
            passes: 1,
            ..StreamStats::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: StreamStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
