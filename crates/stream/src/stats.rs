//! Per-search accounting, re-exported from the telemetry spine.
//!
//! `StreamStats` is defined in `sdtw_obs` — it is the counter block every
//! `QueryTrace` embeds — and re-exported from its historical home here so
//! every PR 2–6 call site keeps compiling unchanged.

pub use sdtw_obs::StreamStats;
