//! Streaming mode: samples pushed one at a time into a ring buffer.
//!
//! The per-stream machinery is split so multi-query monitoring pays it
//! once: a `StreamIngest` owns everything that depends only on the
//! *stream* (the ring buffer, the incremental [`WindowedStats`] moments
//! and the [`RollingExtrema`] deques), a `QueryRuntime` owns everything
//! per *query* (the prepared matcher, the DP/cascade scratch, retained
//! candidates, stats). A [`StreamMonitor`] is one ingest feeding one
//! runtime; a [`crate::MonitorBank`] is one ingest fanning every
//! completed window across N runtimes.

use crate::matcher::{EvalScratch, SubseqMatch, SubseqMatcher, WindowVerdict};
use crate::rolling::RollingExtrema;
use crate::stats::StreamStats;
use sdtw_obs::{QueryTrace, Recorder, WorkloadKind};
use sdtw_tseries::stats::WindowedStats;
use sdtw_tseries::TsError;

/// The per-stream half of a monitor: the query-length ring buffer and
/// the O(1) incremental window statistics, paid once per stream no
/// matter how many queries watch it.
#[derive(Debug, Clone)]
pub(crate) struct StreamIngest {
    moments: WindowedStats,
    extrema: RollingExtrema,
    raw_buf: Vec<f64>,
}

impl StreamIngest {
    /// Creates an ingest over windows of `m` samples.
    pub(crate) fn new(m: usize) -> Self {
        Self {
            moments: WindowedStats::new(m),
            extrema: RollingExtrema::new(m),
            raw_buf: Vec::with_capacity(m),
        }
    }

    /// Pushes one sample. Returns the completed window's offset once at
    /// least one full window is buffered (the window itself is readable
    /// via [`StreamIngest::raw_window`]).
    ///
    /// # Errors
    ///
    /// A non-finite sample, rejected before touching any stream state —
    /// a NaN admitted here would silently poison the rolling statistics
    /// and every window containing it.
    pub(crate) fn push(&mut self, v: f64) -> Result<Option<usize>, TsError> {
        if !v.is_finite() {
            return Err(TsError::NonFinite {
                index: self.moments.pushed() as usize,
                value: v,
            });
        }
        self.moments.push(v);
        self.extrema.push(v);
        if !self.moments.is_full() {
            return Ok(None);
        }
        let offset = (self.moments.pushed() - self.moments.capacity() as u64) as usize;
        self.moments.copy_window_into(&mut self.raw_buf);
        Ok(Some(offset))
    }

    /// Samples pushed so far (the stream position).
    pub(crate) fn position(&self) -> u64 {
        self.moments.pushed()
    }

    /// The latest completed window, oldest sample first. Valid only
    /// after [`StreamIngest::push`] returned an offset.
    pub(crate) fn raw_window(&self) -> &[f64] {
        &self.raw_buf
    }

    /// The sliding moments (for the rolling LB_Kim).
    pub(crate) fn moments(&self) -> &WindowedStats {
        &self.moments
    }

    /// The sliding extrema (for the rolling LB_Kim).
    pub(crate) fn extrema(&self) -> &RollingExtrema {
        &self.extrema
    }

    /// Forgets all stream state (capacity retained).
    pub(crate) fn clear(&mut self) {
        self.moments.clear();
        self.extrema.clear();
        self.raw_buf.clear();
    }
}

/// The per-query half of a monitor: the prepared matcher plus every
/// buffer and counter one query mutates as windows arrive. Fed completed
/// windows by a [`StreamIngest`] (its own in a [`StreamMonitor`], a
/// shared one in a [`crate::MonitorBank`]).
#[derive(Debug, Clone)]
pub(crate) struct QueryRuntime {
    matcher: SubseqMatcher,
    k: usize,
    tau: f64,
    eval: EvalScratch,
    /// Completed windows with distance ≤ the acceptance threshold.
    candidates: Vec<SubseqMatch>,
    stats: StreamStats,
    /// Phase spans — disabled (≈free) until tracing is switched on.
    rec: Recorder,
    /// (band area, full grid area) summed over DP-entering windows.
    areas: (u64, u64),
}

impl QueryRuntime {
    /// Validates and wraps one query's monitoring state.
    pub(crate) fn new(matcher: SubseqMatcher, k: usize, tau: f64) -> Result<Self, TsError> {
        if k == 0 {
            return Err(TsError::InvalidParameter {
                name: "k",
                reason: "stream monitoring needs k >= 1".to_string(),
            });
        }
        if tau.is_nan() || tau < 0.0 {
            return Err(TsError::InvalidParameter {
                name: "tau",
                reason: format!("distance threshold must be >= 0, got {tau}"),
            });
        }
        Ok(Self {
            matcher,
            k,
            tau,
            eval: EvalScratch::default(),
            candidates: Vec::new(),
            stats: StreamStats {
                passes: 1,
                ..StreamStats::default()
            },
            rec: Recorder::disabled(),
            areas: (0, 0),
        })
    }

    /// The wrapped matcher.
    pub(crate) fn matcher(&self) -> &SubseqMatcher {
        &self.matcher
    }

    /// Switches span recording on or off. Turning it off discards any
    /// spans recorded so far; counters are unaffected either way.
    pub(crate) fn set_tracing(&mut self, on: bool) {
        self.rec = if on {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        };
    }

    /// This query's telemetry so far as one canonical [`QueryTrace`]:
    /// the counter block is a snapshot (counters keep accumulating), the
    /// spans drain — a later call carries only spans recorded since this
    /// one. `wall` stays zero: a live stream has no meaningful
    /// per-query wall clock.
    pub(crate) fn trace(&mut self, query_id: &str, stream_len: u64) -> QueryTrace {
        let mut trace = QueryTrace::new(query_id, WorkloadKind::MonitorBatch);
        trace.shape = self.matcher.trace_shape(stream_len, self.k as u64);
        trace.counters = self.stats;
        trace.band_area = self.areas.0;
        trace.full_grid = self.areas.1;
        trace.spans = self.rec.take_spans();
        trace
    }

    /// Runs this query's cascade on the window the ingest just
    /// completed. Returns the window's match when its DP completed at or
    /// under the acceptance threshold (a *candidate* — it may later be
    /// displaced by a better overlapping one).
    pub(crate) fn on_window(
        &mut self,
        ingest: &StreamIngest,
        offset: usize,
    ) -> Result<Option<SubseqMatch>, TsError> {
        self.stats.windows += 1;
        // Sound pruning threshold: best-so-far for k = 1, tau otherwise.
        let threshold = if self.k == 1 {
            self.candidates.first().map_or(self.tau, |b| b.distance)
        } else {
            self.tau
        };
        let moments = ingest.moments();
        let kim = self.matcher.kim_bound(
            moments.front(),
            moments.back(),
            ingest.extrema().min(),
            ingest.extrema().max(),
            moments,
        );
        let verdict = self.matcher.evaluate_window(
            ingest.raw_window(),
            kim,
            threshold,
            &mut self.eval,
            &mut self.stats.cascade,
            &mut self.rec,
            &mut self.areas,
        )?;
        if let WindowVerdict::Completed(distance) = verdict {
            if distance <= threshold {
                let m = SubseqMatch { offset, distance };
                if self.k == 1 {
                    // only the running best is ever needed; windows
                    // arrive in offset order, so a strict improvement is
                    // exactly the greedy (distance, offset) order
                    if self
                        .candidates
                        .first()
                        .is_none_or(|b| distance < b.distance)
                    {
                        self.candidates.clear();
                        self.candidates.push(m);
                        return Ok(Some(m));
                    }
                    return Ok(None);
                }
                self.candidates.push(m);
                return Ok(Some(m));
            }
        }
        Ok(None)
    }

    /// The current best non-overlapping matches, ascending by
    /// `(distance, offset)`.
    pub(crate) fn matches(&self) -> Vec<SubseqMatch> {
        self.matcher.select_greedy(&self.candidates, self.k)
    }

    /// Candidates retained so far.
    pub(crate) fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Accounting so far.
    pub(crate) fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Forgets everything seen (query preparation retained; tracing
    /// stays in its current on/off state, recorded spans are dropped).
    pub(crate) fn reset(&mut self) {
        self.candidates.clear();
        self.stats = StreamStats {
            passes: 1,
            ..StreamStats::default()
        };
        self.areas = (0, 0);
        let on = self.rec.is_enabled();
        self.set_tracing(on);
    }
}

/// Online subsequence monitor: push samples as they arrive, read the
/// best non-overlapping matches seen so far at any point.
///
/// Memory is O(query length + retained candidates): the ring buffer
/// ([`WindowedStats`]) holds exactly one window of history, the rolling
/// extrema hold at most one window of deque entries, and only windows
/// whose DP completed under the acceptance threshold are retained as
/// candidates — for `k == 1` that is just the single running best, for
/// `k > 1` every window at or under `tau` (choose a `tau` tight enough
/// that qualifying windows are genuinely interesting; each is one
/// `(offset, distance)` pair). Every push costs O(1) amortised for the
/// statistics plus the cascade work of at most one window.
///
/// ## Exactness contract
///
/// The monitor reports exactly what [`SubseqMatcher::find_under`] would
/// report on the concatenation of everything pushed, in two regimes:
///
/// * **`k == 1`** (any `tau`, including ∞): classic UCR best-match
///   tracking — the cascade prunes against the best distance so far,
///   which is sound for a single match;
/// * **`k > 1` with a finite `tau`**: the cascade prunes against `tau`
///   alone, every window at or under `tau` is scored exactly, and
///   [`StreamMonitor::matches`] greedily selects among them — identical
///   to the batch greedy selection restricted to `tau`.
///
/// For `k > 1` with `tau = ∞` no sound streaming threshold exists (a
/// later window may displace *two* provisional matches at once, reviving
/// windows a tighter threshold would have pruned — see DESIGN.md §9), so
/// the monitor simply never prunes in that regime: still exact, just
/// paying the DP for most windows. Give monitors a finite `tau`.
#[derive(Debug, Clone)]
pub struct StreamMonitor {
    ingest: StreamIngest,
    runtime: QueryRuntime,
}

impl StreamMonitor {
    /// Starts monitoring for the matcher's query.
    ///
    /// # Errors
    ///
    /// `k == 0` or a negative/NaN `tau`.
    pub fn new(matcher: SubseqMatcher, k: usize, tau: f64) -> Result<Self, TsError> {
        let m = matcher.query_len();
        Ok(Self {
            ingest: StreamIngest::new(m),
            runtime: QueryRuntime::new(matcher, k, tau)?,
        })
    }

    /// The wrapped matcher.
    pub fn matcher(&self) -> &SubseqMatcher {
        self.runtime.matcher()
    }

    /// Samples pushed so far (the stream position; the window completed
    /// by the latest push starts at `position() - query_len`).
    pub fn position(&self) -> u64 {
        self.ingest.position()
    }

    /// Pushes one sample; once at least one full window is buffered the
    /// cascade runs on the window this sample completes. Returns the
    /// window's match when its DP completed at or under the acceptance
    /// threshold (a *candidate* — it may later be displaced by a better
    /// overlapping one; read [`StreamMonitor::matches`] for the current
    /// selection).
    ///
    /// # Errors
    ///
    /// A non-finite sample (rejected before touching any stream state —
    /// the batch path inherits finiteness from
    /// [`TimeSeries`](sdtw_tseries::TimeSeries) validation, and a NaN
    /// admitted here would silently poison the rolling statistics and
    /// every window containing it), or feature-extraction failures
    /// (adaptive policies only).
    pub fn push(&mut self, v: f64) -> Result<Option<SubseqMatch>, TsError> {
        match self.ingest.push(v)? {
            None => Ok(None),
            Some(offset) => self.runtime.on_window(&self.ingest, offset),
        }
    }

    /// Pushes a batch of samples (convenience wrapper over
    /// [`StreamMonitor::push`]), returning the candidates it produced.
    ///
    /// # Errors
    ///
    /// The first per-push error.
    pub fn process(&mut self, samples: &[f64]) -> Result<Vec<SubseqMatch>, TsError> {
        let mut out = Vec::new();
        for &v in samples {
            if let Some(m) = self.push(v)? {
                out.push(m);
            }
        }
        Ok(out)
    }

    /// The current best non-overlapping matches, ascending by
    /// `(distance, offset)` — the greedy selection over every candidate
    /// scored so far.
    pub fn matches(&self) -> Vec<SubseqMatch> {
        self.runtime.matches()
    }

    /// Candidates retained so far (diagnostics; superset of
    /// [`StreamMonitor::matches`]).
    pub fn candidate_count(&self) -> usize {
        self.runtime.candidate_count()
    }

    /// Accounting so far.
    pub fn stats(&self) -> &StreamStats {
        self.runtime.stats()
    }

    /// Switches span recording on or off (off by default — a disabled
    /// recorder costs one branch per phase). Turning it off discards any
    /// spans recorded so far; counters are unaffected either way.
    pub fn set_tracing(&mut self, on: bool) {
        self.runtime.set_tracing(on);
    }

    /// The monitor's telemetry so far as one canonical
    /// [`QueryTrace`] (`workload = monitor-batch`): counters are a
    /// snapshot (they keep accumulating), spans drain — a later call
    /// carries only spans recorded since this one (and none at all
    /// unless [`StreamMonitor::set_tracing`] switched recording on).
    pub fn trace(&mut self, query_id: &str) -> QueryTrace {
        let pos = self.ingest.position();
        self.runtime.trace(query_id, pos)
    }

    /// Forgets all stream state (query preparation is retained).
    pub fn reset(&mut self) {
        self.ingest.clear();
        self.runtime.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamConfig;
    use sdtw_tseries::TimeSeries;

    fn ts(v: Vec<f64>) -> TimeSeries {
        TimeSeries::new(v).unwrap()
    }

    fn planted() -> (TimeSeries, TimeSeries) {
        let query = ts((0..40)
            .map(|i| {
                let t = i as f64 / 39.0;
                (-((t - 0.5) / 0.15).powi(2)).exp()
            })
            .collect());
        let mut hay = vec![0.0; 320];
        for (start, gain) in [(50usize, 1.0), (180, 2.0)] {
            for i in 0..40 {
                hay[start + i] += gain * query.at(i);
            }
        }
        for (i, v) in hay.iter_mut().enumerate() {
            *v += 0.02 * (i as f64 / 7.0).cos();
        }
        (query, ts(hay))
    }

    #[test]
    fn monitor_top1_equals_batch_top1() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let batch = matcher.find(&hay, 1).unwrap();
        let mut monitor = StreamMonitor::new(matcher, 1, f64::INFINITY).unwrap();
        monitor.process(hay.values()).unwrap();
        let live = monitor.matches();
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].offset, batch.matches[0].offset);
        assert_eq!(
            live[0].distance.to_bits(),
            batch.matches[0].distance.to_bits()
        );
        assert_eq!(
            monitor.stats().windows,
            batch.stats.windows,
            "both saw every window"
        );
    }

    #[test]
    fn monitor_topk_under_tau_equals_batch() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        // a tau loose enough to admit both plantings
        let probe = matcher.find(&hay, 2).unwrap();
        let tau = probe.matches.last().unwrap().distance * 1.5;
        let batch = matcher.find_under(&hay, 3, tau).unwrap();
        let mut monitor = StreamMonitor::new(matcher, 3, tau).unwrap();
        monitor.process(hay.values()).unwrap();
        let live = monitor.matches();
        assert_eq!(live.len(), batch.matches.len());
        for (a, b) in live.iter().zip(&batch.matches) {
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
    }

    #[test]
    fn push_reports_candidates_and_reset_forgets_them() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let mut monitor = StreamMonitor::new(matcher, 1, f64::INFINITY).unwrap();
        let events = monitor.process(hay.values()).unwrap();
        assert!(!events.is_empty(), "at least the first window is reported");
        assert!(monitor.candidate_count() >= monitor.matches().len());
        assert!(monitor.stats().is_consistent());
        let pos = monitor.position();
        assert_eq!(pos, hay.len() as u64);
        monitor.reset();
        assert_eq!(monitor.position(), 0);
        assert!(monitor.matches().is_empty());
    }

    #[test]
    fn no_window_no_match() {
        let (query, _) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let mut monitor = StreamMonitor::new(matcher, 1, f64::INFINITY).unwrap();
        for i in 0..10 {
            assert_eq!(monitor.push(i as f64).unwrap(), None);
        }
        assert!(monitor.matches().is_empty());
        assert_eq!(monitor.stats().windows, 0);
    }

    #[test]
    fn bad_parameters_are_rejected() {
        let (query, _) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        assert!(StreamMonitor::new(matcher.clone(), 0, 1.0).is_err());
        assert!(StreamMonitor::new(matcher.clone(), 1, -2.0).is_err());
        assert!(StreamMonitor::new(matcher, 1, f64::NAN).is_err());
    }

    #[test]
    fn non_finite_samples_are_rejected_without_corrupting_state() {
        let (query, hay) = planted();
        let matcher = SubseqMatcher::new(&query, StreamConfig::exact_banded(0.2)).unwrap();
        let batch = matcher.find(&hay, 1).unwrap();
        let mut monitor = StreamMonitor::new(matcher, 1, f64::INFINITY).unwrap();
        let mid = hay.len() / 2;
        monitor.process(&hay.values()[..mid]).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = monitor.push(bad).unwrap_err();
            assert!(matches!(err, sdtw_tseries::TsError::NonFinite { .. }));
        }
        // the rejected samples left no trace: finishing the clean stream
        // still reproduces the batch result exactly
        assert_eq!(monitor.position(), mid as u64);
        monitor.process(&hay.values()[mid..]).unwrap();
        let live = monitor.matches();
        assert_eq!(live[0].offset, batch.matches[0].offset);
        assert_eq!(
            live[0].distance.to_bits(),
            batch.matches[0].distance.to_bits()
        );
    }
}
