//! The one execution path: [`SDtw::query`] returns a [`Query`] builder
//! whose orthogonal options replace the former `distance*` method family.
//!
//! Every capability that used to need its own entry point is an
//! independent builder option:
//!
//! | option | method | default |
//! |---|---|---|
//! | feature source | [`Query::features`] / [`Query::store`] | extract on the fly |
//! | band override | [`Query::band`] | plan from the policy |
//! | warp path | [`Query::path`] | the engine's `dtw.compute_path` |
//! | early-abandon cutoff | [`Query::cutoff`] | none |
//! | scratch reuse | [`Query::scratch`] | allocate internally |
//! | cost kernel | [`Query::kernel`] | the engine's `dtw.kernel` |
//!
//! All combinations resolve through one internal `run()`; the deprecated
//! `SDtw::distance*` methods are thin shims over it and bit-identical to
//! their historical outputs (the equivalence suite in
//! `tests/equivalence_api.rs` asserts this).

use crate::engine::{PhaseTiming, SDtw, SDtwOutcome};
use crate::store::FeatureStore;
use sdtw_dtw::engine::{dtw_run_options, DtwScratch};
use sdtw_dtw::{Band, KernelChoice};
use sdtw_salient::{extract_features, SalientFeature};
use sdtw_tseries::{TimeSeries, TsError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where the salient features of the pair come from.
enum FeatureSource<'a> {
    /// Extract per call (timed and reported in
    /// [`PhaseTiming::extraction`]).
    Extract,
    /// Caller-supplied slices (pre-extracted; extraction reported as
    /// absent).
    Supplied {
        fx: &'a [SalientFeature],
        fy: &'a [SalientFeature],
    },
    /// A [`FeatureStore`]: cache hits report extraction as absent, cache
    /// misses attribute the one-time extraction cost to this call — so
    /// per-phase accounting sees each series' extraction exactly once.
    Store(&'a FeatureStore),
}

/// A configured sDTW distance computation — build with [`SDtw::query`],
/// chain options, then [`Query::run`].
///
/// ```
/// use sdtw::{ConstraintPolicy, SDtw, SDtwConfig};
/// use sdtw_tseries::TimeSeries;
///
/// let engine = SDtw::new(SDtwConfig::default()).unwrap();
/// let x = TimeSeries::new((0..160).map(|i| (i as f64 / 9.0).sin()).collect()).unwrap();
/// let y = TimeSeries::new((0..150).map(|i| (i as f64 / 8.0).sin()).collect()).unwrap();
/// let out = engine.query(&x, &y).run().unwrap().expect("no cutoff configured");
/// assert!(out.distance.is_finite());
/// ```
#[must_use = "a Query does nothing until `run()` is called"]
pub struct Query<'a> {
    engine: &'a SDtw,
    x: &'a TimeSeries,
    y: &'a TimeSeries,
    features: FeatureSource<'a>,
    band_override: Option<&'a Band>,
    path: Option<bool>,
    cutoff: Option<f64>,
    scratch: Option<&'a mut DtwScratch>,
    kernel: Option<KernelChoice>,
}

impl SDtw {
    /// Starts a distance computation between `x` and `y`. See [`Query`]
    /// for the options; with none set, `run()` behaves like the historic
    /// `distance()` (extract features, plan the band, run the configured
    /// DP to completion).
    pub fn query<'a>(&'a self, x: &'a TimeSeries, y: &'a TimeSeries) -> Query<'a> {
        Query {
            engine: self,
            x,
            y,
            features: FeatureSource::Extract,
            band_override: None,
            path: None,
            cutoff: None,
            scratch: None,
            kernel: None,
        }
    }
}

impl<'a> Query<'a> {
    /// Uses pre-extracted salient features for both series (the cached
    /// path: extraction is reported as absent).
    pub fn features(mut self, fx: &'a [SalientFeature], fy: &'a [SalientFeature]) -> Self {
        self.features = FeatureSource::Supplied { fx, fy };
        self
    }

    /// Pulls features from a [`FeatureStore`] (extracting and caching on
    /// miss). Misses attribute their extraction time to this call;
    /// hits report extraction as absent.
    pub fn store(mut self, store: &'a FeatureStore) -> Self {
        self.features = FeatureSource::Store(store);
        self
    }

    /// Runs the DP inside this pre-planned band instead of planning one
    /// from the policy (the retrieval-cascade path: plan once via
    /// [`SDtw::plan_band`], screen with lower bounds, then execute).
    /// Feature options are ignored — no planning happens.
    pub fn band(mut self, band: &'a Band) -> Self {
        self.band_override = Some(band);
        self
    }

    /// Overrides warp-path tracing for this call (default: the engine's
    /// `dtw.compute_path`). Paths compose with [`Query::cutoff`]: a run
    /// that survives its cutoff can still trace its path.
    pub fn path(mut self, compute_path: bool) -> Self {
        self.path = Some(compute_path);
        self
    }

    /// Early-abandon cutoff in reported-distance units (directly
    /// comparable to [`SDtwOutcome::distance`]): `run()` returns
    /// `Ok(None)` as soon as no path through the band can come in at or
    /// under the cutoff. Ties survive exactly — k-NN loops rely on it.
    pub fn cutoff(mut self, threshold: f64) -> Self {
        self.cutoff = Some(threshold);
        self
    }

    /// Reuses caller-owned DP buffers (the batch hot path: keep one
    /// [`DtwScratch`] per worker thread). Results are bit-identical with
    /// or without reuse.
    pub fn scratch(mut self, scratch: &'a mut DtwScratch) -> Self {
        self.scratch = Some(scratch);
        self
    }

    /// Overrides the cost kernel for this call (default: the engine's
    /// `dtw.kernel`). The amerced kernel must carry a valid penalty —
    /// invalid overrides surface as an error from `run()`.
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Executes the query: resolve features, plan (or adopt) the band,
    /// run the banded DP under the configured kernel.
    ///
    /// Returns `Ok(None)` **only** when a [`Query::cutoff`] was set and
    /// the run abandoned; without a cutoff the result is always
    /// `Ok(Some(..))` (or an error).
    ///
    /// # Errors
    ///
    /// Feature-extraction failures (only possible on the extract/store
    /// paths) and invalid kernel overrides.
    pub fn run(self) -> Result<Option<SDtwOutcome>, TsError> {
        let Query {
            engine,
            x,
            y,
            features,
            band_override,
            path,
            cutoff,
            scratch,
            kernel,
        } = self;
        let config = engine.config();
        let (n, m) = (x.len(), y.len());
        let needs_features = band_override.is_none() && config.policy.needs_alignment();

        // Phase 1: resolve the feature source (timed only when extraction
        // actually happens in this call).
        let mut extraction: Option<Duration> = None;
        let empty: &[SalientFeature] = &[];
        let extracted: (Vec<SalientFeature>, Vec<SalientFeature>);
        let cached: (Arc<Vec<SalientFeature>>, Arc<Vec<SalientFeature>>);
        let (fx, fy): (&[SalientFeature], &[SalientFeature]) = if !needs_features {
            (empty, empty)
        } else {
            match features {
                FeatureSource::Supplied { fx, fy } => (fx, fy),
                FeatureSource::Extract => {
                    let t0 = Instant::now();
                    extracted = (
                        extract_features(x, &config.salient)?,
                        extract_features(y, &config.salient)?,
                    );
                    extraction = Some(t0.elapsed());
                    (&extracted.0, &extracted.1)
                }
                FeatureSource::Store(store) => {
                    let (fx, dx) = store.features_for_timed(x)?;
                    let (fy, dy) = store.features_for_timed(y)?;
                    if dx.is_some() || dy.is_some() {
                        extraction = Some(dx.unwrap_or_default() + dy.unwrap_or_default());
                    }
                    cached = (fx, fy);
                    (&cached.0, &cached.1)
                }
            }
        };

        // Phase 2: the band — planned from the policy, or adopted as-is.
        let t_match = Instant::now();
        let planned;
        let (band, match_stats) = match band_override {
            Some(b) => (b, None),
            None => {
                let (b, stats) = engine.plan_band(fx, fy, n, m);
                planned = b;
                (&planned, stats)
            }
        };
        let matching = t_match.elapsed();

        // Phase 3: the DP, under the (possibly overridden) options.
        let mut opts = config.dtw;
        if let Some(p) = path {
            opts.compute_path = p;
        }
        if let Some(k) = kernel {
            opts.kernel = k;
            opts.validate()?;
        }
        let mut local_scratch;
        let scratch = match scratch {
            Some(s) => s,
            None => {
                local_scratch = DtwScratch::new();
                &mut local_scratch
            }
        };
        let t_dp = Instant::now();
        let result = dtw_run_options(x, y, band, &opts, cutoff, scratch);
        let dynamic_programming = t_dp.elapsed();
        let Some(result) = result else {
            return Ok(None);
        };

        let (raw_pairs, consistent_pairs, descriptor_comparisons) = match &match_stats {
            Some(mr) => (
                mr.raw_pairs.len(),
                mr.consistent_pairs.len(),
                mr.descriptor_comparisons,
            ),
            None => (0, 0, 0),
        };

        Ok(Some(SDtwOutcome {
            distance: result.distance,
            path: result.path,
            cells_filled: result.cells_filled,
            band_area: band.area(),
            band_coverage: band.coverage(),
            raw_pairs,
            consistent_pairs,
            descriptor_comparisons,
            timing: PhaseTiming {
                extraction,
                matching,
                dynamic_programming,
            },
        }))
    }
}
