//! The one execution path: [`SDtw::query`] returns a [`Query`] builder
//! whose orthogonal options replace the former `distance*` method family.
//!
//! Every capability that used to need its own entry point is an
//! independent builder option:
//!
//! | option | method | default |
//! |---|---|---|
//! | feature source | [`Query::features`] / [`Query::store`] | extract on the fly |
//! | band override | [`Query::band`] | plan from the policy |
//! | warp path | [`Query::path`] | the engine's `dtw.compute_path` |
//! | early-abandon cutoff | [`Query::cutoff`] | none |
//! | scratch reuse | [`Query::scratch`] | allocate internally |
//! | cost kernel | [`Query::kernel`] | the engine's `dtw.kernel` |
//! | DP engine | [`Query::dp_engine`] | `SDTW_ENGINE` / wavefront |
//! | SIMD mode | [`Query::simd`] | `SDTW_SIMD` / lanes |
//!
//! All combinations resolve through one internal `run()`; the deprecated
//! `SDtw::distance*` methods are thin shims over it and bit-identical to
//! their historical outputs (the equivalence suite in
//! `tests/equivalence_api.rs` asserts this).

use crate::engine::{PhaseTiming, SDtw, SDtwOutcome};
use crate::store::FeatureStore;
use sdtw_dtw::engine::{dtw_run_options_values_pinned, DtwEngine, DtwScratch};
use sdtw_dtw::{Band, KernelChoice, SimdMode};
use sdtw_obs::{Recorder, SpanRecord, TracePhase};
use sdtw_salient::{extract_features, SalientFeature};
use sdtw_tseries::{TimeSeries, TsError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The pair under comparison: validated series, or borrowed sample
/// windows of some larger buffer (the subsequence-search hot path, which
/// must not copy per window).
enum PairInput<'a> {
    /// Two whole [`TimeSeries`].
    Series {
        x: &'a TimeSeries,
        y: &'a TimeSeries,
    },
    /// Two raw windows. Finiteness is inherited from the buffers they
    /// were sliced from (every `TimeSeries` is finite by construction).
    Values { x: &'a [f64], y: &'a [f64] },
}

impl<'a> PairInput<'a> {
    fn x_values(&self) -> &'a [f64] {
        match self {
            PairInput::Series { x, .. } => x.values(),
            PairInput::Values { x, .. } => x,
        }
    }

    fn y_values(&self) -> &'a [f64] {
        match self {
            PairInput::Series { y, .. } => y.values(),
            PairInput::Values { y, .. } => y,
        }
    }
}

/// Where the salient features of the pair come from.
enum FeatureSource<'a> {
    /// Extract per call (timed and reported in
    /// [`PhaseTiming::extraction`]).
    Extract,
    /// Caller-supplied slices (pre-extracted; extraction reported as
    /// absent).
    Supplied {
        fx: &'a [SalientFeature],
        fy: &'a [SalientFeature],
    },
    /// A [`FeatureStore`]: cache hits report extraction as absent, cache
    /// misses attribute the one-time extraction cost to this call — so
    /// per-phase accounting sees each series' extraction exactly once.
    Store(&'a FeatureStore),
}

/// A configured sDTW distance computation — build with [`SDtw::query`],
/// chain options, then [`Query::run`].
///
/// ```
/// use sdtw::{ConstraintPolicy, SDtw, SDtwConfig};
/// use sdtw_tseries::TimeSeries;
///
/// let engine = SDtw::new(SDtwConfig::default()).unwrap();
/// let x = TimeSeries::new((0..160).map(|i| (i as f64 / 9.0).sin()).collect()).unwrap();
/// let y = TimeSeries::new((0..150).map(|i| (i as f64 / 8.0).sin()).collect()).unwrap();
/// let out = engine.query(&x, &y).run().unwrap().expect("no cutoff configured");
/// assert!(out.distance.is_finite());
/// ```
#[must_use = "a Query does nothing until `run()` is called"]
pub struct Query<'a> {
    engine: &'a SDtw,
    input: PairInput<'a>,
    features: FeatureSource<'a>,
    band_override: Option<&'a Band>,
    path: Option<bool>,
    cutoff: Option<f64>,
    scratch: Option<&'a mut DtwScratch>,
    kernel: Option<KernelChoice>,
    dp_engine: Option<DtwEngine>,
    simd: Option<SimdMode>,
    recorder: Option<&'a mut Recorder>,
}

impl SDtw {
    /// Starts a distance computation between `x` and `y`. See [`Query`]
    /// for the options; with none set, `run()` behaves like the historic
    /// `distance()` (extract features, plan the band, run the configured
    /// DP to completion).
    pub fn query<'a>(&'a self, x: &'a TimeSeries, y: &'a TimeSeries) -> Query<'a> {
        self.query_input(PairInput::Series { x, y })
    }

    /// Starts a distance computation between two borrowed sample windows
    /// — the zero-copy path for subsequence search and stream monitors,
    /// which compare thousands of overlapping windows of one buffer and
    /// must not materialise a [`TimeSeries`] per window.
    ///
    /// The windows must be non-empty (checked by `run()`) and finite
    /// (inherited from whatever validated buffer they were sliced from).
    /// All builder options compose as usual, with two caveats:
    ///
    /// * [`Query::store`] is rejected by `run()` — a [`FeatureStore`]
    ///   caches by series identity, which a transient window does not
    ///   have;
    /// * letting an *adaptive* policy extract features on the fly
    ///   (no [`Query::band`] / [`Query::features`]) materialises a
    ///   temporary series for the extractor — correct, but it pays the
    ///   copy the window path exists to avoid. Plan bands (or extract
    ///   features) once per window explicitly in hot loops.
    pub fn query_window<'a>(&'a self, x: &'a [f64], y: &'a [f64]) -> Query<'a> {
        self.query_input(PairInput::Values { x, y })
    }

    fn query_input<'a>(&'a self, input: PairInput<'a>) -> Query<'a> {
        Query {
            engine: self,
            input,
            features: FeatureSource::Extract,
            band_override: None,
            path: None,
            cutoff: None,
            scratch: None,
            kernel: None,
            dp_engine: None,
            simd: None,
            recorder: None,
        }
    }
}

impl<'a> Query<'a> {
    /// Uses pre-extracted salient features for both series (the cached
    /// path: extraction is reported as absent).
    pub fn features(mut self, fx: &'a [SalientFeature], fy: &'a [SalientFeature]) -> Self {
        self.features = FeatureSource::Supplied { fx, fy };
        self
    }

    /// Pulls features from a [`FeatureStore`] (extracting and caching on
    /// miss). Misses attribute their extraction time to this call;
    /// hits report extraction as absent.
    pub fn store(mut self, store: &'a FeatureStore) -> Self {
        self.features = FeatureSource::Store(store);
        self
    }

    /// Runs the DP inside this pre-planned band instead of planning one
    /// from the policy (the retrieval-cascade path: plan once via
    /// [`SDtw::plan_band`], screen with lower bounds, then execute).
    /// Feature options are ignored — no planning happens.
    pub fn band(mut self, band: &'a Band) -> Self {
        self.band_override = Some(band);
        self
    }

    /// Overrides warp-path tracing for this call (default: the engine's
    /// `dtw.compute_path`). Paths compose with [`Query::cutoff`]: a run
    /// that survives its cutoff can still trace its path.
    pub fn path(mut self, compute_path: bool) -> Self {
        self.path = Some(compute_path);
        self
    }

    /// Early-abandon cutoff in reported-distance units (directly
    /// comparable to [`SDtwOutcome::distance`]): `run()` returns
    /// `Ok(None)` as soon as no path through the band can come in at or
    /// under the cutoff. Ties survive exactly — k-NN loops rely on it.
    pub fn cutoff(mut self, threshold: f64) -> Self {
        self.cutoff = Some(threshold);
        self
    }

    /// Reuses caller-owned DP buffers (the batch hot path: keep one
    /// [`DtwScratch`] per worker thread). Results are bit-identical with
    /// or without reuse.
    pub fn scratch(mut self, scratch: &'a mut DtwScratch) -> Self {
        self.scratch = Some(scratch);
        self
    }

    /// Overrides the cost kernel for this call (default: the engine's
    /// `dtw.kernel`). The amerced kernel must carry a valid penalty —
    /// invalid overrides surface as an error from `run()`.
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Attaches a telemetry [`Recorder`]: the call's extraction, band
    /// planning, and DP phases are added to the recorder's aggregated
    /// spans (`Extraction` / `BandPlan` / `DpFill`). The default is no
    /// recorder, which costs nothing; a [`Recorder::disabled()`] handle
    /// costs one branch per phase. Batch drivers keep one recorder per
    /// logical query and attach it to every per-pair call.
    pub fn recorder(mut self, rec: &'a mut Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Pins the DP fill order for this call — [`DtwEngine::Wavefront`]
    /// or [`DtwEngine::Rows`] — instead of the process-wide
    /// [`DtwEngine::selected`] default (the `SDTW_ENGINE` environment
    /// variable, wavefront when unset). The two engines are
    /// bit-identical in distances, paths, and abandon decisions; this
    /// override exists for differential tests and benchmarks.
    pub fn dp_engine(mut self, engine: DtwEngine) -> Self {
        self.dp_engine = Some(engine);
        self
    }

    /// Pins the SIMD mode of the wavefront fill for this call —
    /// [`SimdMode::Lanes`] (explicit `F64Lanes` diagonal sweeps) or
    /// [`SimdMode::Scalar`] (one cell at a time) — instead of the
    /// process-wide [`SimdMode::selected`] default (the `SDTW_SIMD`
    /// environment variable, lanes when unset). The two modes are
    /// bit-identical in distances and abandon decisions; this override
    /// exists for differential tests and benchmarks. The row engine
    /// ignores it.
    pub fn simd(mut self, simd: SimdMode) -> Self {
        self.simd = Some(simd);
        self
    }

    /// Executes the query: resolve features, plan (or adopt) the band,
    /// run the banded DP under the configured kernel.
    ///
    /// Returns `Ok(None)` **only** when a [`Query::cutoff`] was set and
    /// the run abandoned; without a cutoff the result is always
    /// `Ok(Some(..))` (or an error).
    ///
    /// # Errors
    ///
    /// Feature-extraction failures (only possible on the extract/store
    /// paths) and invalid kernel overrides.
    pub fn run(self) -> Result<Option<SDtwOutcome>, TsError> {
        let Query {
            engine,
            input,
            features,
            band_override,
            path,
            cutoff,
            scratch,
            kernel,
            dp_engine,
            simd,
            recorder,
        } = self;
        let config = engine.config();
        let (xv, yv) = (input.x_values(), input.y_values());
        if xv.is_empty() || yv.is_empty() {
            return Err(TsError::Empty);
        }
        let (n, m) = (xv.len(), yv.len());
        // A store on borrowed windows is always a caller error — reject
        // it up front (not only when the policy would read features, or
        // the mistake would surface just on a policy change).
        if let (FeatureSource::Store(_), PairInput::Values { .. }) = (&features, &input) {
            return Err(TsError::InvalidParameter {
                name: "store",
                reason: "a FeatureStore caches by series identity; borrowed windows \
                         have none — pass pre-extracted features or a planned band"
                    .to_string(),
            });
        }
        let needs_features = band_override.is_none() && config.policy.needs_alignment();

        // Phase 1: resolve the feature source (timed only when extraction
        // actually happens in this call).
        let mut extraction: Option<Duration> = None;
        let empty: &[SalientFeature] = &[];
        let extracted: (Vec<SalientFeature>, Vec<SalientFeature>);
        let cached: (Arc<Vec<SalientFeature>>, Arc<Vec<SalientFeature>>);
        let (fx, fy): (&[SalientFeature], &[SalientFeature]) = if !needs_features {
            (empty, empty)
        } else {
            match (features, &input) {
                (FeatureSource::Supplied { fx, fy }, _) => (fx, fy),
                (FeatureSource::Extract, PairInput::Series { x, y }) => {
                    let t0 = Instant::now();
                    extracted = (
                        extract_features(x, &config.salient)?,
                        extract_features(y, &config.salient)?,
                    );
                    extraction = Some(t0.elapsed());
                    (&extracted.0, &extracted.1)
                }
                (FeatureSource::Extract, PairInput::Values { .. }) => {
                    // the extractor needs whole series: materialise the
                    // windows (the documented cold path of query_window)
                    let t0 = Instant::now();
                    let xs = TimeSeries::new(xv.to_vec())?;
                    let ys = TimeSeries::new(yv.to_vec())?;
                    extracted = (
                        extract_features(&xs, &config.salient)?,
                        extract_features(&ys, &config.salient)?,
                    );
                    extraction = Some(t0.elapsed());
                    (&extracted.0, &extracted.1)
                }
                (FeatureSource::Store(store), PairInput::Series { x, y }) => {
                    let (fx, dx) = store.features_for_timed(x)?;
                    let (fy, dy) = store.features_for_timed(y)?;
                    if dx.is_some() || dy.is_some() {
                        extraction = Some(dx.unwrap_or_default() + dy.unwrap_or_default());
                    }
                    cached = (fx, fy);
                    (&cached.0, &cached.1)
                }
                (FeatureSource::Store(_), PairInput::Values { .. }) => {
                    unreachable!("store-on-windows is rejected before feature resolution")
                }
            }
        };

        // Phase 2: the band — planned from the policy, or adopted as-is.
        let t_match = Instant::now();
        let planned;
        let (band, match_stats) = match band_override {
            Some(b) => (b, None),
            None => {
                let (b, stats) = engine.plan_band(fx, fy, n, m);
                planned = b;
                (&planned, stats)
            }
        };
        let matching = t_match.elapsed();

        // Phase 3: the DP, under the (possibly overridden) options.
        let mut opts = config.dtw;
        if let Some(p) = path {
            opts.compute_path = p;
        }
        if let Some(k) = kernel {
            opts.kernel = k;
            opts.validate()?;
        }
        let mut local_scratch;
        let scratch = match scratch {
            Some(s) => s,
            None => {
                local_scratch = DtwScratch::new();
                &mut local_scratch
            }
        };
        let t_dp = Instant::now();
        let result = dtw_run_options_values_pinned(
            dp_engine.unwrap_or_else(DtwEngine::selected),
            simd.unwrap_or_else(SimdMode::selected),
            xv,
            yv,
            band,
            &opts,
            cutoff,
            scratch,
        );
        let dynamic_programming = t_dp.elapsed();

        // Route the measured phases through trace spans: the attached
        // recorder aggregates them across the whole logical query, and
        // the outcome's `PhaseTiming` is a projection of the same spans
        // (`PhaseTiming::from_spans`) rather than a hand-assembled
        // struct. Abandoned runs record their work too — the time was
        // spent whether or not a distance came back.
        let ext = extraction.unwrap_or_default();
        let spans = [
            extraction.map(|d| phase_span(TracePhase::Extraction, Duration::ZERO, d)),
            Some(phase_span(TracePhase::BandPlan, ext, matching)),
            Some(phase_span(
                TracePhase::DpFill,
                ext + matching,
                dynamic_programming,
            )),
        ];
        if let Some(rec) = recorder {
            for s in spans.iter().flatten() {
                rec.add(s.phase, s.duration);
            }
        }

        let Some(result) = result else {
            return Ok(None);
        };

        let (raw_pairs, consistent_pairs, descriptor_comparisons) = match &match_stats {
            Some(mr) => (
                mr.raw_pairs.len(),
                mr.consistent_pairs.len(),
                mr.descriptor_comparisons,
            ),
            None => (0, 0, 0),
        };

        Ok(Some(SDtwOutcome {
            distance: result.distance,
            path: result.path,
            cells_filled: result.cells_filled,
            band_area: band.area(),
            band_coverage: band.coverage(),
            raw_pairs,
            consistent_pairs,
            descriptor_comparisons,
            timing: PhaseTiming::from_spans(spans.iter().flatten()),
        }))
    }
}

/// A run-local span for the three-phase view: offsets model the strictly
/// sequential execution of one call (extraction → matching → DP); the
/// thread slot is unused because these spans are projected into
/// [`PhaseTiming`] and recorder aggregates, not exported verbatim.
fn phase_span(phase: TracePhase, start: Duration, duration: Duration) -> SpanRecord {
    SpanRecord {
        phase,
        start,
        duration,
        count: 1,
        thread: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SDtwConfig;

    fn series(n: usize, phase: f64) -> TimeSeries {
        TimeSeries::new((0..n).map(|i| (i as f64 / 7.0 + phase).sin()).collect()).unwrap()
    }

    #[test]
    fn recorder_aggregates_phase_spans_across_calls() {
        let engine = SDtw::new(SDtwConfig::default()).unwrap();
        let (x, y) = (series(96, 0.0), series(96, 0.4));
        let mut rec = Recorder::enabled();
        for _ in 0..3 {
            engine.query(&x, &y).recorder(&mut rec).run().unwrap();
        }
        let spans = rec.finish();
        let dp = spans
            .iter()
            .find(|s| s.phase == TracePhase::DpFill)
            .expect("DP span recorded");
        assert_eq!(dp.count, 3, "one DP execution per call, aggregated");
        assert!(spans.iter().any(|s| s.phase == TracePhase::BandPlan));
        assert!(
            spans.iter().any(|s| s.phase == TracePhase::Extraction),
            "on-the-fly extraction is attributed"
        );
    }

    #[test]
    fn timing_view_is_derived_from_the_same_spans() {
        let engine = SDtw::new(SDtwConfig::default()).unwrap();
        let (x, y) = (series(64, 0.0), series(64, 0.9));
        let out = engine.query(&x, &y).run().unwrap().unwrap();
        // supplied-features path reports extraction as absent
        assert!(out.timing.extraction.is_some());
        let fx: Vec<_> = Vec::new();
        let out2 = engine
            .query(&x, &y)
            .features(&fx, &fx)
            .run()
            .unwrap()
            .unwrap();
        assert_eq!(out2.timing.extraction, None, "absent, not zero");
    }

    #[test]
    fn simd_override_is_bit_identical_across_modes() {
        let engine = SDtw::new(SDtwConfig::default()).unwrap();
        let (x, y) = (series(130, 0.0), series(117, 0.6));
        for dp in [DtwEngine::Wavefront, DtwEngine::Rows] {
            let scalar = engine
                .query(&x, &y)
                .dp_engine(dp)
                .simd(SimdMode::Scalar)
                .run()
                .unwrap()
                .unwrap();
            let lanes = engine
                .query(&x, &y)
                .dp_engine(dp)
                .simd(SimdMode::Lanes)
                .run()
                .unwrap()
                .unwrap();
            assert_eq!(
                scalar.distance.to_bits(),
                lanes.distance.to_bits(),
                "engine {dp:?}"
            );
            assert_eq!(scalar.cells_filled, lanes.cells_filled);
        }
    }

    #[test]
    fn disabled_recorder_changes_nothing() {
        let engine = SDtw::new(SDtwConfig::default()).unwrap();
        let (x, y) = (series(80, 0.0), series(80, 0.2));
        let baseline = engine.query(&x, &y).run().unwrap().unwrap();
        let mut rec = Recorder::disabled();
        let traced = engine
            .query(&x, &y)
            .recorder(&mut rec)
            .run()
            .unwrap()
            .unwrap();
        assert_eq!(baseline.distance.to_bits(), traced.distance.to_bits());
        assert!(rec.finish().is_empty());
    }
}
