//! The `SDtw` front-end: configuration, the [`SDtw::query`] execution
//! path, outcome introspection.
//!
//! All distance computation flows through the [`crate::query::Query`]
//! builder (`SDtw::query(&x, &y).….run()`); the historical `distance*`
//! method family survives as `#[deprecated]` shims over it, bit-identical
//! to their original outputs.

use crate::constraint::build_band;
use crate::policy::{BandSymmetry, ConstraintPolicy};
use sdtw_align::{match_features, IntervalPartition, MatchConfig, MatchResult};
use sdtw_dtw::engine::{DtwOptions, DtwScratch};
use sdtw_dtw::{Band, WarpPath};
use sdtw_salient::{SalientConfig, SalientFeature};
use sdtw_tseries::{TimeSeries, TsError};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Full configuration of an [`SDtw`] engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SDtwConfig {
    /// Salient feature extraction parameters (step 1).
    pub salient: SalientConfig,
    /// Feature matching thresholds (step 2).
    pub matching: MatchConfig,
    /// Which constraint family shapes the band (step 3).
    pub policy: ConstraintPolicy,
    /// Asymmetric (paper default) or symmetric-by-union band construction.
    pub symmetry: BandSymmetry,
    /// DP options: element metric, warp-path computation, cost kernel.
    pub dtw: DtwOptions,
}

impl Default for SDtwConfig {
    fn default() -> Self {
        Self {
            salient: SalientConfig::default(),
            matching: MatchConfig::default(),
            policy: ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
            symmetry: BandSymmetry::Asymmetric,
            dtw: DtwOptions::default(),
        }
    }
}

impl SDtwConfig {
    /// Validates all nested configuration.
    ///
    /// # Errors
    ///
    /// The first [`TsError::InvalidParameter`] found.
    pub fn validate(&self) -> Result<(), TsError> {
        self.salient.validate()?;
        self.matching.validate()?;
        self.policy.validate()?;
        self.dtw.validate()?;
        Ok(())
    }
}

/// Wall-clock decomposition of one distance computation — the quantities
/// behind the paper's Figure 17 (matching vs dynamic programming time) and
/// the `time*` terms of §4.2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Salient feature extraction when it happened **in this call**:
    /// `None` on the cached/supplied-features paths (the paper treats
    /// extraction as a one-time indexable cost, so a cache hit has no
    /// extraction phase at all — it is absent, not zero), `Some` when the
    /// call extracted (including a `FeatureStore` miss, which attributes
    /// the one-time cost to exactly one call).
    pub extraction: Option<Duration>,
    /// Matching + inconsistency pruning + band construction.
    pub matching: Duration,
    /// Banded dynamic programming + traceback.
    pub dynamic_programming: Duration,
}

impl PhaseTiming {
    /// Total per-pair cost under the paper's accounting: matching + DP
    /// (extraction is amortised across all comparisons of a series).
    pub fn per_pair(&self) -> Duration {
        self.matching + self.dynamic_programming
    }

    /// Total including any extraction attributed to this call.
    pub fn total(&self) -> Duration {
        self.extraction.unwrap_or_default() + self.per_pair()
    }

    /// Derives the three-phase view from trace spans — the canonical
    /// attribution now lives in [`sdtw_obs::SpanRecord`]s and this struct
    /// is a projection of them: `Extraction` spans sum into
    /// [`PhaseTiming::extraction`] (absent when none ran, preserving the
    /// cache-hit semantics above), `BandPlan` into
    /// [`PhaseTiming::matching`], `DpFill` into
    /// [`PhaseTiming::dynamic_programming`]. Other phases (lower-bound
    /// screens, merges) have no slot here and are ignored.
    pub fn from_spans<'s>(spans: impl IntoIterator<Item = &'s sdtw_obs::SpanRecord>) -> Self {
        let mut timing = PhaseTiming::default();
        for span in spans {
            match span.phase {
                sdtw_obs::TracePhase::Extraction => {
                    timing.extraction = Some(timing.extraction.unwrap_or_default() + span.duration);
                }
                sdtw_obs::TracePhase::BandPlan => timing.matching += span.duration,
                sdtw_obs::TracePhase::DpFill => timing.dynamic_programming += span.duration,
                _ => {}
            }
        }
        timing
    }
}

/// Outcome of one sDTW distance computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SDtwOutcome {
    /// The constrained DTW distance (≥ the optimal full-grid distance
    /// under the same kernel).
    pub distance: f64,
    /// Optimal warp path within the band, when requested via
    /// [`DtwOptions::compute_path`] or [`crate::query::Query::path`].
    pub path: Option<WarpPath>,
    /// DP cells filled (= sanitised band area) — deterministic work proxy.
    pub cells_filled: usize,
    /// Band area before accounting (same as `cells_filled`; kept for
    /// symmetry with `band_coverage`).
    pub band_area: usize,
    /// Fraction of the full `N × M` grid the band covers.
    pub band_coverage: f64,
    /// Matched pairs before inconsistency pruning.
    pub raw_pairs: usize,
    /// Matched pairs after inconsistency pruning.
    pub consistent_pairs: usize,
    /// Descriptor comparisons performed during matching.
    pub descriptor_comparisons: usize,
    /// Per-phase wall-clock timing.
    pub timing: PhaseTiming,
}

/// The sDTW engine (paper §3 end to end).
///
/// Construct once with a validated config, then call [`SDtw::query`] per
/// pair — features (extract vs cached), band override, warp path,
/// early-abandon cutoff, scratch reuse and kernel choice are orthogonal
/// builder options (see [`crate::query::Query`]).
#[derive(Debug, Clone)]
pub struct SDtw {
    config: SDtwConfig,
}

impl SDtw {
    /// Creates an engine after validating the configuration.
    ///
    /// # Errors
    ///
    /// Any nested configuration validation error.
    pub fn new(config: SDtwConfig) -> Result<Self, TsError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SDtwConfig {
        &self.config
    }

    /// Computes the constrained distance between two series, extracting
    /// salient features on the fly (only when the policy needs them).
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction errors.
    #[deprecated(
        since = "0.1.0",
        note = "use the query builder: `engine.query(&x, &y).run()`"
    )]
    pub fn distance(&self, x: &TimeSeries, y: &TimeSeries) -> Result<SDtwOutcome, TsError> {
        Ok(self
            .query(x, y)
            .run()?
            .expect("no cutoff configured, the run cannot abandon"))
    }

    /// Computes the constrained distance with pre-extracted features (the
    /// cached path: extraction is reported as absent).
    #[deprecated(
        since = "0.1.0",
        note = "use the query builder: `engine.query(&x, &y).features(fx, fy).run()`"
    )]
    pub fn distance_with_features(
        &self,
        x: &TimeSeries,
        fx: &[SalientFeature],
        y: &TimeSeries,
        fy: &[SalientFeature],
    ) -> SDtwOutcome {
        self.query(x, y)
            .features(fx, fy)
            .run()
            .expect("supplied features cannot fail extraction")
            .expect("no cutoff configured, the run cannot abandon")
    }

    /// Cached-features distance with caller-provided DP scratch buffers.
    #[deprecated(
        since = "0.1.0",
        note = "use the query builder: \
                `engine.query(&x, &y).features(fx, fy).scratch(&mut s).run()`"
    )]
    pub fn distance_with_features_scratch(
        &self,
        x: &TimeSeries,
        fx: &[SalientFeature],
        y: &TimeSeries,
        fy: &[SalientFeature],
        scratch: &mut DtwScratch,
    ) -> SDtwOutcome {
        self.query(x, y)
            .features(fx, fy)
            .scratch(scratch)
            .run()
            .expect("supplied features cannot fail extraction")
            .expect("no cutoff configured, the run cannot abandon")
    }

    /// Early-abandoning cached-features distance (the retrieval hot
    /// path). Returns `None` as soon as no path through the band can come
    /// in at or under `threshold` (reported-distance units). Warp paths
    /// are never produced on this variant.
    #[deprecated(
        since = "0.1.0",
        note = "use the query builder: \
                `engine.query(&x, &y).features(fx, fy).cutoff(t).scratch(&mut s).run()`"
    )]
    pub fn distance_early_abandon_with_features_scratch(
        &self,
        x: &TimeSeries,
        fx: &[SalientFeature],
        y: &TimeSeries,
        fy: &[SalientFeature],
        threshold: f64,
        scratch: &mut DtwScratch,
    ) -> Option<SDtwOutcome> {
        self.query(x, y)
            .features(fx, fy)
            .cutoff(threshold)
            .path(false)
            .scratch(scratch)
            .run()
            .expect("supplied features cannot fail extraction")
    }

    /// Runs the early-abandoning DP kernel on a *pre-planned* band under
    /// this engine's DP options. Warp paths are never produced.
    #[deprecated(
        since = "0.1.0",
        note = "use the query builder: \
                `engine.query(&x, &y).band(&band).cutoff(t).scratch(&mut s).run()`"
    )]
    pub fn banded_distance_early_abandon_scratch(
        &self,
        x: &TimeSeries,
        y: &TimeSeries,
        band: &Band,
        threshold: f64,
        scratch: &mut DtwScratch,
    ) -> Option<sdtw_dtw::DtwResult> {
        self.query(x, y)
            .band(band)
            .cutoff(threshold)
            .path(false)
            .scratch(scratch)
            .run()
            .expect("band override cannot fail extraction")
            .map(|o| sdtw_dtw::DtwResult {
                distance: o.distance,
                path: None,
                cells_filled: o.cells_filled,
            })
    }

    /// Builds the band this engine would use for a pair (exposed for
    /// introspection, visualisation, the experiment harness and retrieval
    /// cascades that screen the band with lower bounds before paying for
    /// the DP — pass the result back via [`crate::query::Query::band`]).
    /// Returns the matching result when the policy required alignment.
    pub fn plan_band(
        &self,
        fx: &[SalientFeature],
        fy: &[SalientFeature],
        n: usize,
        m: usize,
    ) -> (Band, Option<MatchResult>) {
        if !self.config.policy.needs_alignment() {
            let trivial = IntervalPartition::from_cuts(vec![], vec![], n, m);
            return (build_band(&self.config.policy, &trivial, n, m), None);
        }
        let forward = match_features(fx, fy, n, m, &self.config.matching);
        let band = build_band(&self.config.policy, &forward.partition, n, m);
        let band = match self.config.symmetry {
            BandSymmetry::Asymmetric => band,
            BandSymmetry::Union => {
                let backward = match_features(fy, fx, m, n, &self.config.matching);
                let back_band = build_band(&self.config.policy, &backward.partition, m, n);
                band.union(&back_band.transpose()).sanitize()
            }
        };
        (band, Some(forward))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdtw_dtw::engine::dtw_full;
    use sdtw_dtw::KernelChoice;
    use sdtw_salient::extract_features;
    use sdtw_tseries::WarpMap;

    /// Deterministic pair: two warped instances of a multi-feature proto.
    fn warped_pair(n: usize, m: usize) -> (TimeSeries, TimeSeries) {
        let proto = TimeSeries::new(
            (0..n)
                .map(|i| {
                    let t = i as f64;
                    let a = (t - n as f64 * 0.25) / (n as f64 * 0.04);
                    let b = (t - n as f64 * 0.7) / (n as f64 * 0.07);
                    (-a * a / 2.0).exp() + 0.7 * (-b * b / 2.0).exp() + 0.05 * (t / 11.0).sin()
                })
                .collect(),
        )
        .unwrap();
        let warp = WarpMap::from_anchors(&[(0.5, 0.40)]).unwrap();
        let y = warp.apply(&proto, m).unwrap();
        (proto, y)
    }

    fn engine(policy: ConstraintPolicy) -> SDtw {
        SDtw::new(SDtwConfig {
            policy,
            ..SDtwConfig::default()
        })
        .unwrap()
    }

    /// Builder shorthand: run to completion with on-the-fly extraction.
    fn dist(eng: &SDtw, x: &TimeSeries, y: &TimeSeries) -> SDtwOutcome {
        eng.query(x, y)
            .run()
            .unwrap()
            .expect("no cutoff configured")
    }

    #[test]
    fn full_grid_policy_equals_optimal_dtw() {
        let (x, y) = warped_pair(160, 160);
        let out = dist(&engine(ConstraintPolicy::FullGrid), &x, &y);
        let full = dtw_full(&x, &y, &DtwOptions::default());
        assert_eq!(out.distance, full.distance);
        assert_eq!(out.cells_filled, 160 * 160);
        assert_eq!(out.raw_pairs, 0, "no matching for the full grid");
    }

    #[test]
    fn all_policies_upper_bound_the_optimum() {
        let (x, y) = warped_pair(150, 170);
        let optimal = dtw_full(&x, &y, &DtwOptions::default()).distance;
        for policy in [
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.1 },
            ConstraintPolicy::Itakura { slope: 2.0 },
            ConstraintPolicy::fixed_core_adaptive_width(),
            ConstraintPolicy::adaptive_core_fixed_width(0.1),
            ConstraintPolicy::adaptive_core_adaptive_width(),
            ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
        ] {
            let out = dist(&engine(policy), &x, &y);
            assert!(
                out.distance >= optimal - 1e-9,
                "{}: {} < optimal {optimal}",
                policy.label(),
                out.distance
            );
            assert!(out.band_coverage <= 1.0);
        }
    }

    #[test]
    fn adaptive_core_tracks_shift_better_than_fixed_core() {
        // A strong time shift: the diagonal band misses the true alignment,
        // the adaptive core follows it. Same fixed width for both.
        let (x, y) = warped_pair(200, 200);
        let optimal = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let fc = dist(
            &engine(ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.06 }),
            &x,
            &y,
        );
        let ac = dist(
            &engine(ConstraintPolicy::adaptive_core_fixed_width(0.06)),
            &x,
            &y,
        );
        let fc_err = (fc.distance - optimal) / optimal.max(1e-12);
        let ac_err = (ac.distance - optimal) / optimal.max(1e-12);
        assert!(
            ac_err <= fc_err,
            "adaptive-core error {ac_err} should not exceed fixed-core error {fc_err}"
        );
        assert!(ac.consistent_pairs > 0, "alignment evidence was found");
    }

    #[test]
    fn banded_policies_fill_fewer_cells_than_full() {
        let (x, y) = warped_pair(180, 180);
        let full_cells = 180 * 180;
        for policy in [
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.1 },
            ConstraintPolicy::adaptive_core_fixed_width(0.1),
            ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
        ] {
            let out = dist(&engine(policy), &x, &y);
            assert!(
                out.cells_filled < full_cells,
                "{} filled {} of {}",
                policy.label(),
                out.cells_filled,
                full_cells
            );
        }
    }

    #[test]
    fn identical_series_have_zero_distance_under_all_policies() {
        let (x, _) = warped_pair(150, 150);
        for policy in [
            ConstraintPolicy::FullGrid,
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.06 },
            ConstraintPolicy::fixed_core_adaptive_width(),
            ConstraintPolicy::adaptive_core_fixed_width(0.06),
            ConstraintPolicy::adaptive_core_adaptive_width(),
        ] {
            let out = dist(&engine(policy), &x, &x);
            assert!(
                out.distance.abs() < 1e-9,
                "{}: self-distance {}",
                policy.label(),
                out.distance
            );
        }
    }

    #[test]
    fn symmetric_union_band_contains_asymmetric_band() {
        let (x, y) = warped_pair(140, 160);
        let base = SDtwConfig {
            policy: ConstraintPolicy::adaptive_core_adaptive_width(),
            ..SDtwConfig::default()
        };
        let asym = SDtw::new(base.clone()).unwrap();
        let sym = SDtw::new(SDtwConfig {
            symmetry: BandSymmetry::Union,
            ..base
        })
        .unwrap();
        let fx = extract_features(&x, &asym.config().salient).unwrap();
        let fy = extract_features(&y, &asym.config().salient).unwrap();
        let (band_a, _) = asym.plan_band(&fx, &fy, x.len(), y.len());
        let (band_s, _) = sym.plan_band(&fx, &fy, x.len(), y.len());
        assert!(band_a.is_subset_of(&band_s));
        // and the symmetric distance can only improve (band is larger)
        let da = dist(&asym, &x, &y).distance;
        let ds = dist(&sym, &x, &y).distance;
        assert!(ds <= da + 1e-9);
    }

    #[test]
    fn symmetric_union_makes_distance_direction_independent() {
        let (x, y) = warped_pair(130, 150);
        let sym = SDtw::new(SDtwConfig {
            policy: ConstraintPolicy::adaptive_core_adaptive_width(),
            symmetry: BandSymmetry::Union,
            ..SDtwConfig::default()
        })
        .unwrap();
        let xy = dist(&sym, &x, &y).distance;
        let yx = dist(&sym, &y, &x).distance;
        assert!(
            (xy - yx).abs() < 1e-9,
            "union-band distance must be symmetric: {xy} vs {yx}"
        );
    }

    #[test]
    fn timing_phases_are_populated() {
        let (x, y) = warped_pair(150, 150);
        let out = dist(
            &engine(ConstraintPolicy::adaptive_core_adaptive_width()),
            &x,
            &y,
        );
        let extraction = out.timing.extraction.expect("extracted in this call");
        assert!(extraction > Duration::ZERO);
        assert!(out.timing.dynamic_programming > Duration::ZERO);
        assert_eq!(
            out.timing.per_pair(),
            out.timing.matching + out.timing.dynamic_programming
        );
        assert_eq!(out.timing.total(), extraction + out.timing.per_pair());
    }

    #[test]
    fn cached_features_report_extraction_as_absent() {
        let (x, y) = warped_pair(150, 150);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let fx = extract_features(&x, &eng.config().salient).unwrap();
        let fy = extract_features(&y, &eng.config().salient).unwrap();
        let out = eng.query(&x, &y).features(&fx, &fy).run().unwrap().unwrap();
        assert_eq!(out.timing.extraction, None, "no extraction in this call");
        assert_eq!(out.timing.total(), out.timing.per_pair());
        // identical result to the uncached path
        let out2 = dist(&eng, &x, &y);
        assert_eq!(out.distance, out2.distance);
        assert_eq!(out.cells_filled, out2.cells_filled);
    }

    #[test]
    fn alignment_free_policies_never_extract() {
        let (x, y) = warped_pair(120, 120);
        let out = dist(
            &engine(ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.1 }),
            &x,
            &y,
        );
        assert_eq!(out.timing.extraction, None);
    }

    #[test]
    fn store_misses_attribute_extraction_once_then_report_absent() {
        let (x, y) = warped_pair(150, 150);
        let x = x.identified(1);
        let y = y.identified(2);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let store = crate::store::FeatureStore::new(eng.config().salient.clone()).unwrap();
        let first = eng.query(&x, &y).store(&store).run().unwrap().unwrap();
        assert!(
            first.timing.extraction.expect("cold store extracts") > Duration::ZERO,
            "the miss pays the one-time extraction"
        );
        let second = eng.query(&x, &y).store(&store).run().unwrap().unwrap();
        assert_eq!(second.timing.extraction, None, "hits have no extraction");
        assert_eq!(first.distance.to_bits(), second.distance.to_bits());
    }

    #[test]
    fn scratch_path_is_bit_identical_to_allocating_path() {
        let (x, y) = warped_pair(150, 170);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let fx = extract_features(&x, &eng.config().salient).unwrap();
        let fy = extract_features(&y, &eng.config().salient).unwrap();
        let mut scratch = sdtw_dtw::DtwScratch::new();
        // reuse the same scratch across both directions and repeats
        for _ in 0..2 {
            let plain = eng.query(&x, &y).features(&fx, &fy).run().unwrap().unwrap();
            let reused = eng
                .query(&x, &y)
                .features(&fx, &fy)
                .scratch(&mut scratch)
                .run()
                .unwrap()
                .unwrap();
            assert_eq!(plain.distance.to_bits(), reused.distance.to_bits());
            assert_eq!(plain.cells_filled, reused.cells_filled);
            let back = eng
                .query(&y, &x)
                .features(&fy, &fx)
                .scratch(&mut scratch)
                .run()
                .unwrap()
                .unwrap();
            assert!(back.distance.is_finite());
        }
    }

    #[test]
    fn cutoff_path_is_bit_identical_when_under_threshold() {
        let (x, y) = warped_pair(150, 170);
        for policy in [
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.2 },
            ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
        ] {
            let eng = engine(policy);
            let fx = extract_features(&x, &eng.config().salient).unwrap();
            let fy = extract_features(&y, &eng.config().salient).unwrap();
            let mut scratch = DtwScratch::new();
            let full = eng.query(&x, &y).features(&fx, &fy).run().unwrap().unwrap();
            let ea = eng
                .query(&x, &y)
                .features(&fx, &fy)
                .cutoff(f64::INFINITY)
                .scratch(&mut scratch)
                .run()
                .unwrap()
                .expect("infinite threshold never abandons");
            assert_eq!(full.distance.to_bits(), ea.distance.to_bits());
            assert_eq!(full.cells_filled, ea.cells_filled);
            // threshold exactly at the distance keeps the candidate
            let at = eng
                .query(&x, &y)
                .features(&fx, &fy)
                .cutoff(full.distance)
                .scratch(&mut scratch)
                .run()
                .unwrap();
            assert!(at.is_some(), "threshold == distance must not abandon");
        }
    }

    #[test]
    fn cutoff_fires_below_the_distance() {
        let (x, y) = warped_pair(150, 170);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let fx = extract_features(&x, &eng.config().salient).unwrap();
        let fy = extract_features(&y, &eng.config().salient).unwrap();
        let mut scratch = DtwScratch::new();
        let d = eng
            .query(&x, &y)
            .features(&fx, &fy)
            .run()
            .unwrap()
            .unwrap()
            .distance;
        assert!(d > 0.0);
        let out = eng
            .query(&x, &y)
            .features(&fx, &fy)
            .cutoff(d * 0.5)
            .scratch(&mut scratch)
            .run()
            .unwrap();
        assert!(out.is_none(), "threshold below the distance must abandon");
    }

    #[test]
    fn band_override_skips_planning_and_runs_that_band() {
        let (x, y) = warped_pair(140, 140);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let fx = extract_features(&x, &eng.config().salient).unwrap();
        let fy = extract_features(&y, &eng.config().salient).unwrap();
        let (band, _) = eng.plan_band(&fx, &fy, x.len(), y.len());
        let via_override = eng.query(&x, &y).band(&band).run().unwrap().unwrap();
        let via_planning = eng.query(&x, &y).features(&fx, &fy).run().unwrap().unwrap();
        assert_eq!(
            via_override.distance.to_bits(),
            via_planning.distance.to_bits()
        );
        assert_eq!(via_override.cells_filled, via_planning.cells_filled);
        // no matching happened on the override path
        assert_eq!(via_override.raw_pairs, 0);
        assert_eq!(via_override.timing.extraction, None);
    }

    #[test]
    fn kernel_override_changes_the_distance_per_call() {
        let (x, y) = warped_pair(150, 150);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let standard = dist(&eng, &x, &y);
        let amerced = eng
            .query(&x, &y)
            .kernel(KernelChoice::Amerced { penalty: 0.1 })
            .run()
            .unwrap()
            .unwrap();
        assert!(
            amerced.distance >= standard.distance - 1e-12,
            "amercing can only add cost: {} vs {}",
            amerced.distance,
            standard.distance
        );
        // the engine's configuration is untouched
        assert_eq!(eng.config().dtw.kernel, KernelChoice::Standard);
        let again = dist(&eng, &x, &y);
        assert_eq!(standard.distance.to_bits(), again.distance.to_bits());
    }

    #[test]
    fn invalid_kernel_override_is_an_error_not_a_panic() {
        let (x, y) = warped_pair(120, 120);
        let eng = engine(ConstraintPolicy::FullGrid);
        let res = eng
            .query(&x, &y)
            .kernel(KernelChoice::Amerced { penalty: -1.0 })
            .run();
        assert!(res.is_err(), "negative penalty must be rejected");
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let cfg = SDtwConfig {
            policy: ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.0 },
            ..SDtwConfig::default()
        };
        assert!(SDtw::new(cfg).is_err());
        let mut cfg = SDtwConfig::default();
        cfg.matching.tau_d = 0.5;
        assert!(SDtw::new(cfg).is_err());
        let mut cfg = SDtwConfig::default();
        cfg.dtw.kernel = KernelChoice::Amerced { penalty: -2.0 };
        assert!(SDtw::new(cfg).is_err(), "bad kernel penalty must fail");
    }

    #[test]
    fn featureless_series_fall_back_to_feasible_bands() {
        // constant series produce no salient features; adaptive policies
        // must still return a valid (sanitised) band and finite distance
        let x = TimeSeries::new(vec![1.0; 120]).unwrap();
        let y = TimeSeries::new(vec![1.5; 140]).unwrap();
        let out = dist(
            &engine(ConstraintPolicy::adaptive_core_adaptive_width()),
            &x,
            &y,
        );
        assert!(out.distance.is_finite());
        assert_eq!(out.consistent_pairs, 0);
    }

    #[test]
    fn path_is_produced_on_request_and_valid() {
        let (x, y) = warped_pair(120, 140);
        let eng = SDtw::new(SDtwConfig {
            policy: ConstraintPolicy::adaptive_core_adaptive_width(),
            dtw: DtwOptions::with_path(),
            ..SDtwConfig::default()
        })
        .unwrap();
        let out = dist(&eng, &x, &y);
        let p = out.path.expect("path requested");
        p.validate(120, 140).unwrap();
        // the per-call override wins over the config in both directions
        let no_path = eng.query(&x, &y).path(false).run().unwrap().unwrap();
        assert!(no_path.path.is_none());
        let plain = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let with_path = plain.query(&x, &y).path(true).run().unwrap().unwrap();
        with_path
            .path
            .expect("path override")
            .validate(120, 140)
            .unwrap();
    }

    #[test]
    fn window_queries_match_series_queries_bitwise() {
        // the zero-copy window path must agree with the owned-series path
        // on every option combination the subsequence engine uses
        let (x, y) = warped_pair(150, 150);
        let eng = engine(ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.2 });
        let (band, _) = eng.plan_band(&[], &[], x.len(), y.len());
        let mut scratch = DtwScratch::new();
        let owned = eng.query(&x, &y).band(&band).run().unwrap().unwrap();
        let windowed = eng
            .query_window(x.values(), y.values())
            .band(&band)
            .scratch(&mut scratch)
            .run()
            .unwrap()
            .unwrap();
        assert_eq!(owned.distance.to_bits(), windowed.distance.to_bits());
        assert_eq!(owned.cells_filled, windowed.cells_filled);
        // cutoff composes: at the distance it survives, below it abandons
        let kept = eng
            .query_window(x.values(), y.values())
            .band(&band)
            .cutoff(owned.distance)
            .scratch(&mut scratch)
            .run()
            .unwrap();
        assert!(kept.is_some());
        let abandoned = eng
            .query_window(x.values(), y.values())
            .band(&band)
            .cutoff(owned.distance * 0.5)
            .scratch(&mut scratch)
            .run()
            .unwrap();
        assert!(abandoned.is_none());
        // true subslices (not whole series) run fine too
        let sub = eng
            .query_window(&x.values()[10..90], &y.values()[20..100])
            .path(false)
            .run()
            .unwrap()
            .unwrap();
        assert!(sub.distance.is_finite());
    }

    #[test]
    fn window_queries_with_adaptive_policies_extract_via_materialisation() {
        let (x, y) = warped_pair(150, 170);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let owned = dist(&eng, &x, &y);
        let windowed = eng
            .query_window(x.values(), y.values())
            .run()
            .unwrap()
            .unwrap();
        assert_eq!(owned.distance.to_bits(), windowed.distance.to_bits());
        assert!(windowed.timing.extraction.is_some(), "extraction happened");
    }

    #[test]
    fn window_queries_reject_stores_and_empty_windows() {
        let (x, y) = warped_pair(120, 120);
        // rejected whatever the policy — even when an alignment-free
        // policy (or a band override) would never read the store
        for policy in [
            ConstraintPolicy::adaptive_core_adaptive_width(),
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.2 },
        ] {
            let eng = engine(policy);
            let store = crate::store::FeatureStore::new(eng.config().salient.clone()).unwrap();
            let err = eng
                .query_window(x.values(), y.values())
                .store(&store)
                .run()
                .unwrap_err();
            assert!(
                format!("{err}").contains("series identity"),
                "store on windows is rejected under {}: {err}",
                eng.config().policy.label()
            );
            let (band, _) = eng.plan_band(&[], &[], x.len(), y.len());
            assert!(eng
                .query_window(x.values(), y.values())
                .band(&band)
                .store(&store)
                .run()
                .is_err());
        }
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        assert!(eng.query_window(&[], y.values()).run().is_err());
        assert!(eng.query_window(x.values(), &[]).run().is_err());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_builder_bitwise() {
        let (x, y) = warped_pair(150, 170);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width_averaged());
        let fx = extract_features(&x, &eng.config().salient).unwrap();
        let fy = extract_features(&y, &eng.config().salient).unwrap();
        let mut scratch = DtwScratch::new();

        let new = eng.query(&x, &y).features(&fx, &fy).run().unwrap().unwrap();
        let old = eng.distance_with_features(&x, &fx, &y, &fy);
        assert_eq!(old.distance.to_bits(), new.distance.to_bits());
        assert_eq!(old.cells_filled, new.cells_filled);
        let old_s = eng.distance_with_features_scratch(&x, &fx, &y, &fy, &mut scratch);
        assert_eq!(old_s.distance.to_bits(), new.distance.to_bits());
        let old_d = eng.distance(&x, &y).unwrap();
        assert_eq!(old_d.distance.to_bits(), new.distance.to_bits());
        let old_ea = eng
            .distance_early_abandon_with_features_scratch(
                &x,
                &fx,
                &y,
                &fy,
                f64::INFINITY,
                &mut scratch,
            )
            .unwrap();
        assert_eq!(old_ea.distance.to_bits(), new.distance.to_bits());
        let (band, _) = eng.plan_band(&fx, &fy, x.len(), y.len());
        let old_band = eng
            .banded_distance_early_abandon_scratch(&x, &y, &band, f64::INFINITY, &mut scratch)
            .unwrap();
        assert_eq!(old_band.distance.to_bits(), new.distance.to_bits());
    }
}
