//! The `SDtw` front-end: configuration, per-pair execution, outcome
//! introspection.

use crate::constraint::build_band;
use crate::policy::{BandSymmetry, ConstraintPolicy};
use sdtw_align::{match_features, IntervalPartition, MatchConfig, MatchResult};
use sdtw_dtw::engine::{
    dtw_banded_early_abandon_with_scratch, dtw_banded_with_scratch, DtwOptions, DtwScratch,
};
use sdtw_dtw::{Band, WarpPath};
use sdtw_salient::{extract_features, SalientConfig, SalientFeature};
use sdtw_tseries::{TimeSeries, TsError};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Full configuration of an [`SDtw`] engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SDtwConfig {
    /// Salient feature extraction parameters (step 1).
    pub salient: SalientConfig,
    /// Feature matching thresholds (step 2).
    pub matching: MatchConfig,
    /// Which constraint family shapes the band (step 3).
    pub policy: ConstraintPolicy,
    /// Asymmetric (paper default) or symmetric-by-union band construction.
    pub symmetry: BandSymmetry,
    /// DP options: element metric, warp-path computation.
    pub dtw: DtwOptions,
}

impl Default for SDtwConfig {
    fn default() -> Self {
        Self {
            salient: SalientConfig::default(),
            matching: MatchConfig::default(),
            policy: ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
            symmetry: BandSymmetry::Asymmetric,
            dtw: DtwOptions::default(),
        }
    }
}

impl SDtwConfig {
    /// Validates all nested configuration.
    ///
    /// # Errors
    ///
    /// The first [`TsError::InvalidParameter`] found.
    pub fn validate(&self) -> Result<(), TsError> {
        self.salient.validate()?;
        self.matching.validate()?;
        self.policy.validate()?;
        Ok(())
    }
}

/// Wall-clock decomposition of one distance computation — the quantities
/// behind the paper's Figure 17 (matching vs dynamic programming time) and
/// the `time*` terms of §4.2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Salient feature extraction (zero when features were supplied from a
    /// cache — the paper treats extraction as a one-time indexable cost).
    pub extraction: Duration,
    /// Matching + inconsistency pruning + band construction.
    pub matching: Duration,
    /// Banded dynamic programming + traceback.
    pub dynamic_programming: Duration,
}

impl PhaseTiming {
    /// Total per-pair cost under the paper's accounting: matching + DP
    /// (extraction is amortised across all comparisons of a series).
    pub fn per_pair(&self) -> Duration {
        self.matching + self.dynamic_programming
    }
}

/// Outcome of one sDTW distance computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SDtwOutcome {
    /// The constrained DTW distance (≥ the optimal full-grid distance).
    pub distance: f64,
    /// Optimal warp path within the band, when requested via
    /// [`DtwOptions::compute_path`].
    pub path: Option<WarpPath>,
    /// DP cells filled (= sanitised band area) — deterministic work proxy.
    pub cells_filled: usize,
    /// Band area before accounting (same as `cells_filled`; kept for
    /// symmetry with `band_coverage`).
    pub band_area: usize,
    /// Fraction of the full `N × M` grid the band covers.
    pub band_coverage: f64,
    /// Matched pairs before inconsistency pruning.
    pub raw_pairs: usize,
    /// Matched pairs after inconsistency pruning.
    pub consistent_pairs: usize,
    /// Descriptor comparisons performed during matching.
    pub descriptor_comparisons: usize,
    /// Per-phase wall-clock timing.
    pub timing: PhaseTiming,
}

/// The sDTW engine (paper §3 end to end).
///
/// Construct once with a validated config, then call
/// [`SDtw::distance`] per pair, or [`SDtw::distance_with_features`] when
/// salient features are cached (see [`crate::store::FeatureStore`]).
#[derive(Debug, Clone)]
pub struct SDtw {
    config: SDtwConfig,
}

impl SDtw {
    /// Creates an engine after validating the configuration.
    ///
    /// # Errors
    ///
    /// Any nested configuration validation error.
    pub fn new(config: SDtwConfig) -> Result<Self, TsError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SDtwConfig {
        &self.config
    }

    /// Computes the constrained distance between two series, extracting
    /// salient features on the fly (only when the policy needs them).
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction errors.
    pub fn distance(&self, x: &TimeSeries, y: &TimeSeries) -> Result<SDtwOutcome, TsError> {
        if !self.config.policy.needs_alignment() {
            return Ok(self.distance_with_features(x, &[], y, &[]));
        }
        let t0 = Instant::now();
        let fx = extract_features(x, &self.config.salient)?;
        let fy = extract_features(y, &self.config.salient)?;
        let extraction = t0.elapsed();
        let mut outcome = self.distance_with_features(x, &fx, y, &fy);
        outcome.timing.extraction = extraction;
        Ok(outcome)
    }

    /// Computes the constrained distance with pre-extracted features (the
    /// cached path: extraction cost is reported as zero).
    pub fn distance_with_features(
        &self,
        x: &TimeSeries,
        fx: &[SalientFeature],
        y: &TimeSeries,
        fy: &[SalientFeature],
    ) -> SDtwOutcome {
        let mut scratch = DtwScratch::new();
        self.distance_with_features_scratch(x, fx, y, fy, &mut scratch)
    }

    /// [`SDtw::distance_with_features`] with caller-provided DP scratch
    /// buffers — the batch hot path. Results are bit-identical to the
    /// allocating variant; batch drivers keep one [`DtwScratch`] per
    /// worker thread (see `sdtw_eval::distmat`).
    pub fn distance_with_features_scratch(
        &self,
        x: &TimeSeries,
        fx: &[SalientFeature],
        y: &TimeSeries,
        fy: &[SalientFeature],
        scratch: &mut DtwScratch,
    ) -> SDtwOutcome {
        let n = x.len();
        let m = y.len();

        let t_match = Instant::now();
        let (band, match_stats) = self.plan_band(fx, fy, n, m);
        let matching = t_match.elapsed();

        let t_dp = Instant::now();
        let result = dtw_banded_with_scratch(x, y, &band, &self.config.dtw, scratch);
        let dynamic_programming = t_dp.elapsed();

        let (raw_pairs, consistent_pairs, descriptor_comparisons) = match &match_stats {
            Some(mr) => (
                mr.raw_pairs.len(),
                mr.consistent_pairs.len(),
                mr.descriptor_comparisons,
            ),
            None => (0, 0, 0),
        };

        SDtwOutcome {
            distance: result.distance,
            path: result.path,
            cells_filled: result.cells_filled,
            band_area: band.area(),
            band_coverage: band.coverage(),
            raw_pairs,
            consistent_pairs,
            descriptor_comparisons,
            timing: PhaseTiming {
                extraction: Duration::ZERO,
                matching,
                dynamic_programming,
            },
        }
    }

    /// Early-abandoning variant of
    /// [`SDtw::distance_with_features_scratch`] — the retrieval hot path.
    ///
    /// Plans the band from the supplied (typically cached) features
    /// exactly as the non-abandoning path does, then runs the abandoning
    /// DP kernel against `threshold` (interpreted in the units of the
    /// configured normalisation, i.e. directly comparable to
    /// [`SDtwOutcome::distance`]). Returns `None` as soon as no path
    /// through the band can come in at or under the threshold; when `Some`
    /// is returned the distance is bit-identical to the one
    /// [`SDtw::distance_with_features_scratch`] computes for the pair.
    /// Warp paths are never produced on this variant.
    pub fn distance_early_abandon_with_features_scratch(
        &self,
        x: &TimeSeries,
        fx: &[SalientFeature],
        y: &TimeSeries,
        fy: &[SalientFeature],
        threshold: f64,
        scratch: &mut DtwScratch,
    ) -> Option<SDtwOutcome> {
        let n = x.len();
        let m = y.len();

        let t_match = Instant::now();
        let (band, match_stats) = self.plan_band(fx, fy, n, m);
        let matching = t_match.elapsed();

        let t_dp = Instant::now();
        let result = self.banded_distance_early_abandon_scratch(x, y, &band, threshold, scratch)?;
        let dynamic_programming = t_dp.elapsed();

        let (raw_pairs, consistent_pairs, descriptor_comparisons) = match &match_stats {
            Some(mr) => (
                mr.raw_pairs.len(),
                mr.consistent_pairs.len(),
                mr.descriptor_comparisons,
            ),
            None => (0, 0, 0),
        };

        Some(SDtwOutcome {
            distance: result.distance,
            path: None,
            cells_filled: result.cells_filled,
            band_area: band.area(),
            band_coverage: band.coverage(),
            raw_pairs,
            consistent_pairs,
            descriptor_comparisons,
            timing: PhaseTiming {
                extraction: Duration::ZERO,
                matching,
                dynamic_programming,
            },
        })
    }

    /// Runs the early-abandoning DP kernel on a *pre-planned* band under
    /// this engine's DP options. The building block for retrieval
    /// cascades (e.g. `sdtw-index`) that plan the band once via
    /// [`SDtw::plan_band`], screen it with lower bounds, and only then
    /// pay for the DP — without re-planning. `threshold` is in the units
    /// of the configured normalisation; completed runs are bit-identical
    /// to the non-abandoning kernel on the same band. Warp paths are
    /// never produced.
    pub fn banded_distance_early_abandon_scratch(
        &self,
        x: &TimeSeries,
        y: &TimeSeries,
        band: &Band,
        threshold: f64,
        scratch: &mut DtwScratch,
    ) -> Option<sdtw_dtw::DtwResult> {
        dtw_banded_early_abandon_with_scratch(x, y, band, &self.config.dtw, threshold, scratch)
    }

    /// Builds the band this engine would use for a pair (exposed for
    /// introspection, visualisation and the experiment harness). Returns
    /// the matching result when the policy required alignment.
    pub fn plan_band(
        &self,
        fx: &[SalientFeature],
        fy: &[SalientFeature],
        n: usize,
        m: usize,
    ) -> (Band, Option<MatchResult>) {
        if !self.config.policy.needs_alignment() {
            let trivial = IntervalPartition::from_cuts(vec![], vec![], n, m);
            return (build_band(&self.config.policy, &trivial, n, m), None);
        }
        let forward = match_features(fx, fy, n, m, &self.config.matching);
        let band = build_band(&self.config.policy, &forward.partition, n, m);
        let band = match self.config.symmetry {
            BandSymmetry::Asymmetric => band,
            BandSymmetry::Union => {
                let backward = match_features(fy, fx, m, n, &self.config.matching);
                let back_band = build_band(&self.config.policy, &backward.partition, m, n);
                band.union(&back_band.transpose()).sanitize()
            }
        };
        (band, Some(forward))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdtw_dtw::engine::dtw_full;
    use sdtw_tseries::WarpMap;

    /// Deterministic pair: two warped instances of a multi-feature proto.
    fn warped_pair(n: usize, m: usize) -> (TimeSeries, TimeSeries) {
        let proto = TimeSeries::new(
            (0..n)
                .map(|i| {
                    let t = i as f64;
                    let a = (t - n as f64 * 0.25) / (n as f64 * 0.04);
                    let b = (t - n as f64 * 0.7) / (n as f64 * 0.07);
                    (-a * a / 2.0).exp() + 0.7 * (-b * b / 2.0).exp() + 0.05 * (t / 11.0).sin()
                })
                .collect(),
        )
        .unwrap();
        let warp = WarpMap::from_anchors(&[(0.5, 0.40)]).unwrap();
        let y = warp.apply(&proto, m).unwrap();
        (proto, y)
    }

    fn engine(policy: ConstraintPolicy) -> SDtw {
        SDtw::new(SDtwConfig {
            policy,
            ..SDtwConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn full_grid_policy_equals_optimal_dtw() {
        let (x, y) = warped_pair(160, 160);
        let out = engine(ConstraintPolicy::FullGrid).distance(&x, &y).unwrap();
        let full = dtw_full(&x, &y, &DtwOptions::default());
        assert_eq!(out.distance, full.distance);
        assert_eq!(out.cells_filled, 160 * 160);
        assert_eq!(out.raw_pairs, 0, "no matching for the full grid");
    }

    #[test]
    fn all_policies_upper_bound_the_optimum() {
        let (x, y) = warped_pair(150, 170);
        let optimal = dtw_full(&x, &y, &DtwOptions::default()).distance;
        for policy in [
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.1 },
            ConstraintPolicy::Itakura { slope: 2.0 },
            ConstraintPolicy::fixed_core_adaptive_width(),
            ConstraintPolicy::adaptive_core_fixed_width(0.1),
            ConstraintPolicy::adaptive_core_adaptive_width(),
            ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
        ] {
            let out = engine(policy).distance(&x, &y).unwrap();
            assert!(
                out.distance >= optimal - 1e-9,
                "{}: {} < optimal {optimal}",
                policy.label(),
                out.distance
            );
            assert!(out.band_coverage <= 1.0);
        }
    }

    #[test]
    fn adaptive_core_tracks_shift_better_than_fixed_core() {
        // A strong time shift: the diagonal band misses the true alignment,
        // the adaptive core follows it. Same fixed width for both.
        let (x, y) = warped_pair(200, 200);
        let optimal = dtw_full(&x, &y, &DtwOptions::default()).distance;
        let fc = engine(ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.06 })
            .distance(&x, &y)
            .unwrap();
        let ac = engine(ConstraintPolicy::adaptive_core_fixed_width(0.06))
            .distance(&x, &y)
            .unwrap();
        let fc_err = (fc.distance - optimal) / optimal.max(1e-12);
        let ac_err = (ac.distance - optimal) / optimal.max(1e-12);
        assert!(
            ac_err <= fc_err,
            "adaptive-core error {ac_err} should not exceed fixed-core error {fc_err}"
        );
        assert!(ac.consistent_pairs > 0, "alignment evidence was found");
    }

    #[test]
    fn banded_policies_fill_fewer_cells_than_full() {
        let (x, y) = warped_pair(180, 180);
        let full_cells = 180 * 180;
        for policy in [
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.1 },
            ConstraintPolicy::adaptive_core_fixed_width(0.1),
            ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
        ] {
            let out = engine(policy).distance(&x, &y).unwrap();
            assert!(
                out.cells_filled < full_cells,
                "{} filled {} of {}",
                policy.label(),
                out.cells_filled,
                full_cells
            );
        }
    }

    #[test]
    fn identical_series_have_zero_distance_under_all_policies() {
        let (x, _) = warped_pair(150, 150);
        for policy in [
            ConstraintPolicy::FullGrid,
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.06 },
            ConstraintPolicy::fixed_core_adaptive_width(),
            ConstraintPolicy::adaptive_core_fixed_width(0.06),
            ConstraintPolicy::adaptive_core_adaptive_width(),
        ] {
            let out = engine(policy).distance(&x, &x).unwrap();
            assert!(
                out.distance.abs() < 1e-9,
                "{}: self-distance {}",
                policy.label(),
                out.distance
            );
        }
    }

    #[test]
    fn symmetric_union_band_contains_asymmetric_band() {
        let (x, y) = warped_pair(140, 160);
        let base = SDtwConfig {
            policy: ConstraintPolicy::adaptive_core_adaptive_width(),
            ..SDtwConfig::default()
        };
        let asym = SDtw::new(base.clone()).unwrap();
        let sym = SDtw::new(SDtwConfig {
            symmetry: BandSymmetry::Union,
            ..base
        })
        .unwrap();
        let fx = extract_features(&x, &asym.config().salient).unwrap();
        let fy = extract_features(&y, &asym.config().salient).unwrap();
        let (band_a, _) = asym.plan_band(&fx, &fy, x.len(), y.len());
        let (band_s, _) = sym.plan_band(&fx, &fy, x.len(), y.len());
        assert!(band_a.is_subset_of(&band_s));
        // and the symmetric distance can only improve (band is larger)
        let da = asym.distance(&x, &y).unwrap().distance;
        let ds = sym.distance(&x, &y).unwrap().distance;
        assert!(ds <= da + 1e-9);
    }

    #[test]
    fn symmetric_union_makes_distance_direction_independent() {
        let (x, y) = warped_pair(130, 150);
        let sym = SDtw::new(SDtwConfig {
            policy: ConstraintPolicy::adaptive_core_adaptive_width(),
            symmetry: BandSymmetry::Union,
            ..SDtwConfig::default()
        })
        .unwrap();
        let xy = sym.distance(&x, &y).unwrap().distance;
        let yx = sym.distance(&y, &x).unwrap().distance;
        assert!(
            (xy - yx).abs() < 1e-9,
            "union-band distance must be symmetric: {xy} vs {yx}"
        );
    }

    #[test]
    fn timing_phases_are_populated() {
        let (x, y) = warped_pair(150, 150);
        let out = engine(ConstraintPolicy::adaptive_core_adaptive_width())
            .distance(&x, &y)
            .unwrap();
        assert!(out.timing.extraction > Duration::ZERO);
        assert!(out.timing.dynamic_programming > Duration::ZERO);
        assert_eq!(
            out.timing.per_pair(),
            out.timing.matching + out.timing.dynamic_programming
        );
    }

    #[test]
    fn cached_features_skip_extraction_time() {
        let (x, y) = warped_pair(150, 150);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let fx = extract_features(&x, &eng.config().salient).unwrap();
        let fy = extract_features(&y, &eng.config().salient).unwrap();
        let out = eng.distance_with_features(&x, &fx, &y, &fy);
        assert_eq!(out.timing.extraction, Duration::ZERO);
        // identical result to the uncached path
        let out2 = eng.distance(&x, &y).unwrap();
        assert_eq!(out.distance, out2.distance);
        assert_eq!(out.cells_filled, out2.cells_filled);
    }

    #[test]
    fn scratch_path_is_bit_identical_to_allocating_path() {
        let (x, y) = warped_pair(150, 170);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let fx = extract_features(&x, &eng.config().salient).unwrap();
        let fy = extract_features(&y, &eng.config().salient).unwrap();
        let mut scratch = sdtw_dtw::DtwScratch::new();
        // reuse the same scratch across both directions and repeats
        for _ in 0..2 {
            let plain = eng.distance_with_features(&x, &fx, &y, &fy);
            let reused = eng.distance_with_features_scratch(&x, &fx, &y, &fy, &mut scratch);
            assert_eq!(plain.distance.to_bits(), reused.distance.to_bits());
            assert_eq!(plain.cells_filled, reused.cells_filled);
            let back = eng.distance_with_features_scratch(&y, &fy, &x, &fx, &mut scratch);
            assert!(back.distance.is_finite());
        }
    }

    #[test]
    fn early_abandon_path_is_bit_identical_when_under_threshold() {
        let (x, y) = warped_pair(150, 170);
        for policy in [
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.2 },
            ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
        ] {
            let eng = engine(policy);
            let fx = extract_features(&x, &eng.config().salient).unwrap();
            let fy = extract_features(&y, &eng.config().salient).unwrap();
            let mut scratch = DtwScratch::new();
            let full = eng.distance_with_features(&x, &fx, &y, &fy);
            let ea = eng
                .distance_early_abandon_with_features_scratch(
                    &x,
                    &fx,
                    &y,
                    &fy,
                    f64::INFINITY,
                    &mut scratch,
                )
                .expect("infinite threshold never abandons");
            assert_eq!(full.distance.to_bits(), ea.distance.to_bits());
            assert_eq!(full.cells_filled, ea.cells_filled);
            // threshold exactly at the distance keeps the candidate
            let at = eng.distance_early_abandon_with_features_scratch(
                &x,
                &fx,
                &y,
                &fy,
                full.distance,
                &mut scratch,
            );
            assert!(at.is_some(), "threshold == distance must not abandon");
        }
    }

    #[test]
    fn early_abandon_fires_below_the_distance() {
        let (x, y) = warped_pair(150, 170);
        let eng = engine(ConstraintPolicy::adaptive_core_adaptive_width());
        let fx = extract_features(&x, &eng.config().salient).unwrap();
        let fy = extract_features(&y, &eng.config().salient).unwrap();
        let mut scratch = DtwScratch::new();
        let d = eng.distance_with_features(&x, &fx, &y, &fy).distance;
        assert!(d > 0.0);
        let out = eng.distance_early_abandon_with_features_scratch(
            &x,
            &fx,
            &y,
            &fy,
            d * 0.5,
            &mut scratch,
        );
        assert!(out.is_none(), "threshold below the distance must abandon");
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        let cfg = SDtwConfig {
            policy: ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.0 },
            ..SDtwConfig::default()
        };
        assert!(SDtw::new(cfg).is_err());
        let mut cfg = SDtwConfig::default();
        cfg.matching.tau_d = 0.5;
        assert!(SDtw::new(cfg).is_err());
    }

    #[test]
    fn featureless_series_fall_back_to_feasible_bands() {
        // constant series produce no salient features; adaptive policies
        // must still return a valid (sanitised) band and finite distance
        let x = TimeSeries::new(vec![1.0; 120]).unwrap();
        let y = TimeSeries::new(vec![1.5; 140]).unwrap();
        let out = engine(ConstraintPolicy::adaptive_core_adaptive_width())
            .distance(&x, &y)
            .unwrap();
        assert!(out.distance.is_finite());
        assert_eq!(out.consistent_pairs, 0);
    }

    #[test]
    fn path_is_produced_on_request_and_valid() {
        let (x, y) = warped_pair(120, 140);
        let eng = SDtw::new(SDtwConfig {
            policy: ConstraintPolicy::adaptive_core_adaptive_width(),
            dtw: DtwOptions::with_path(),
            ..SDtwConfig::default()
        })
        .unwrap();
        let out = eng.distance(&x, &y).unwrap();
        let p = out.path.expect("path requested");
        p.validate(120, 140).unwrap();
    }
}
