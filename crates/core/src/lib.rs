//! # sdtw — salient-feature-constrained dynamic time warping
//!
//! Reproduction of the core contribution of *"sDTW: Computing DTW Distances
//! using Locally Relevant Constraints based on Salient Feature Alignments"*
//! (Candan, Rossini, Sapino, Wang; PVLDB 5(11), 2012).
//!
//! The idea: the two series being compared usually carry enough structural
//! evidence — salient temporal features — to *locally* shape the DTW search
//! band, instead of using one global band (Sakoe-Chiba) or slope rule
//! (Itakura). The pipeline is
//!
//! 1. extract salient features per series (`sdtw-salient`; cacheable, see
//!    [`store::FeatureStore`]),
//! 2. match features across the pair and prune temporally inconsistent
//!    matches (`sdtw-align`), yielding an aligned interval partition,
//! 3. compile a [`sdtw_dtw::Band`] from the partition under one of the
//!    paper's constraint families ([`policy::ConstraintPolicy`]):
//!    *fixed core & adaptive width*, *adaptive core & fixed width*,
//!    *adaptive core & adaptive width* (with optional neighbour-averaged
//!    widths), next to the classic baselines (full grid, Sakoe-Chiba,
//!    Itakura),
//! 4. run the shared banded DP kernel (`sdtw-dtw`) inside that band.
//!
//! The front-end type is [`SDtw`]; per-call outcomes ([`SDtwOutcome`])
//! expose distance, optional warp path, band geometry, matching statistics
//! and per-phase timings — everything the paper's evaluation (and this
//! repository's experiment harness) reports.
//!
//! # Quickstart
//!
//! ```
//! use sdtw_tseries::{TimeSeries, WarpMap};
//! use sdtw::{SDtw, SDtwConfig, ConstraintPolicy};
//!
//! // two warped instances of a shared pattern
//! let proto = TimeSeries::new((0..240).map(|i| {
//!     let a = (i as f64 - 60.0) / 9.0;
//!     let b = (i as f64 - 170.0) / 15.0;
//!     (-a * a / 2.0).exp() + 0.6 * (-b * b / 2.0).exp()
//! }).collect()).unwrap();
//! let x = proto.clone();
//! let y = WarpMap::from_anchors(&[(0.5, 0.38)]).unwrap().apply(&proto, 240).unwrap();
//!
//! let engine = SDtw::new(SDtwConfig {
//!     policy: ConstraintPolicy::adaptive_core_adaptive_width(),
//!     ..SDtwConfig::default()
//! }).unwrap();
//! let out = engine.query(&x, &y).run().unwrap().expect("no cutoff configured");
//! assert!(out.distance.is_finite());
//! assert!(out.band_coverage < 1.0); // pruned a real fraction of the grid
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constraint;
pub mod engine;
pub mod policy;
pub mod query;
pub mod store;

pub use engine::{PhaseTiming, SDtw, SDtwConfig, SDtwOutcome};
pub use policy::{BandSymmetry, ConstraintPolicy};
pub use query::Query;
pub use store::FeatureStore;

// Re-export the commonly needed config types so `sdtw` is usable alone.
pub use sdtw_align::MatchConfig;
pub use sdtw_dtw::{
    AmercedKernel, Band, DtwEngine, DtwKernel, DtwOptions, DtwScratch, F64Lanes, KernelChoice,
    SimdMode, StandardKernel, WarpPath,
};
pub use sdtw_salient::SalientConfig;
