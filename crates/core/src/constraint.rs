//! Band builders: compile a constraint policy + interval partition into a
//! concrete [`Band`] (paper §3.3).

use crate::policy::ConstraintPolicy;
use sdtw_align::IntervalPartition;
use sdtw_dtw::band::{Band, ColRange};
use sdtw_dtw::itakura::itakura_band;
use sdtw_dtw::sakoe::{diagonal_column, sakoe_chiba_band};

/// Candidate point of `x_i` on `Y` under the **adaptive core** rule
/// (paper §3.3.2): linear interpolation inside the corresponding interval,
/// `(j − st(Y,E)) / (end(Y,E) − st(Y,E)) = (i − st(X,E)) / (end(X,E) − st(X,E))`.
///
/// Degenerate cases:
/// * empty `Y` interval (`end = st`): every `x_i` of the interval maps to
///   `st(Y,E)`;
/// * empty `X` interval (`end = st`): the single `x_i` maps to the start of
///   the `Y` interval; the resulting vertical gap in the band is bridged by
///   the sanitiser (the paper: "we need to bridge the gap by filling in the
///   missing grid positions").
pub fn adaptive_candidate(i: usize, partition: &IntervalPartition) -> usize {
    let e = partition.interval_of_x(i);
    let (stx, endx) = partition.bounds_x(e);
    let (sty, endy) = partition.bounds_y(e);
    if endy == sty {
        return sty;
    }
    if endx == stx {
        return sty;
    }
    let frac = (i - stx) as f64 / (endx - stx) as f64;
    (sty as f64 + frac * (endy - sty) as f64).round() as usize
}

/// Width (in columns of `Y`) around a candidate point under the **adaptive
/// width** rule: the width of the `Y` interval containing the candidate,
/// optionally averaged over `±neighbor_radius` intervals, bounded below by
/// `min_width_frac · M`.
pub fn adaptive_width(
    candidate_j: usize,
    partition: &IntervalPartition,
    neighbor_radius: usize,
    min_width_frac: f64,
) -> f64 {
    let e = partition.interval_of_y(candidate_j);
    let w = if neighbor_radius == 0 {
        partition.width_y(e) as f64
    } else {
        partition.avg_width_y(e, neighbor_radius)
    };
    w.max(min_width_frac * partition.m() as f64)
}

/// Builds the band for a policy. Adaptive policies require the interval
/// `partition` of the pair; the baselines ignore it (pass the trivial
/// partition or anything else with matching dimensions).
///
/// The returned band is sanitised — feasible for the DP kernel.
///
/// # Panics
///
/// Panics when the partition dimensions do not match `n`/`m` for an
/// adaptive policy (programmer error: the partition must come from the
/// same pair).
pub fn build_band(
    policy: &ConstraintPolicy,
    partition: &IntervalPartition,
    n: usize,
    m: usize,
) -> Band {
    if policy.needs_alignment() {
        assert_eq!(partition.n(), n, "partition built for a different |X|");
        assert_eq!(partition.m(), m, "partition built for a different |Y|");
    }
    match *policy {
        ConstraintPolicy::FullGrid => Band::full(n, m),
        ConstraintPolicy::FixedCoreFixedWidth { width_frac } => sakoe_chiba_band(n, m, width_frac),
        ConstraintPolicy::Itakura { slope } => itakura_band(n, m, slope),
        ConstraintPolicy::FixedCoreAdaptiveWidth {
            min_width_frac,
            neighbor_radius,
        } => {
            let ranges = (0..n)
                .map(|i| {
                    let c = diagonal_column(i, n, m);
                    let w = adaptive_width(c, partition, neighbor_radius, min_width_frac);
                    range_around(c, w, m)
                })
                .collect();
            Band::from_ranges(n, m, ranges).sanitize()
        }
        ConstraintPolicy::AdaptiveCoreFixedWidth { width_frac } => {
            let half = ((width_frac * m as f64) / 2.0).round().max(1.0) as usize;
            let ranges = (0..n)
                .map(|i| {
                    let c = adaptive_candidate(i, partition).min(m - 1);
                    ColRange::new(c.saturating_sub(half), (c + half).min(m - 1))
                })
                .collect();
            Band::from_ranges(n, m, ranges).sanitize()
        }
        ConstraintPolicy::AdaptiveCoreAdaptiveWidth {
            min_width_frac,
            neighbor_radius,
        } => {
            let ranges = (0..n)
                .map(|i| {
                    let c = adaptive_candidate(i, partition).min(m - 1);
                    let w = adaptive_width(c, partition, neighbor_radius, min_width_frac);
                    range_around(c, w, m)
                })
                .collect();
            Band::from_ranges(n, m, ranges).sanitize()
        }
    }
}

/// The `±⌈w/2⌉` column range around a candidate, clamped to the grid.
fn range_around(candidate: usize, width: f64, m: usize) -> ColRange {
    let half = (width / 2.0).ceil().max(1.0) as usize;
    ColRange::new(
        candidate.saturating_sub(half),
        (candidate + half).min(m - 1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A partition with one matched pair of intervals at 40%..60% of each
    /// series, the Y side shifted right.
    fn shifted_partition(n: usize, m: usize) -> IntervalPartition {
        IntervalPartition::from_cuts(vec![n * 2 / 5, n * 3 / 5], vec![m * 3 / 5, m * 4 / 5], n, m)
    }

    #[test]
    fn adaptive_candidate_interpolates_linearly() {
        // X interval [4, 8] maps to Y interval [10, 18]
        let p = IntervalPartition::from_cuts(vec![4, 8], vec![10, 18], 12, 24);
        assert_eq!(adaptive_candidate(4, &p), 10);
        assert_eq!(adaptive_candidate(6, &p), 14);
        assert_eq!(adaptive_candidate(8, &p), 18);
        // before the first cut: interval 0 = [0,4] -> [0,10]
        assert_eq!(adaptive_candidate(0, &p), 0);
        assert_eq!(adaptive_candidate(2, &p), 5);
        // after the last cut: interval 2 = [8,11] -> [18,23]
        assert_eq!(adaptive_candidate(11, &p), 23);
    }

    #[test]
    fn adaptive_candidate_empty_y_interval_collapses() {
        // Y interval [10,10] is empty: all of X's [4,8] maps to 10
        let p = IntervalPartition::from_cuts(vec![4, 8], vec![10, 10], 12, 24);
        for i in 4..=8 {
            assert_eq!(adaptive_candidate(i, &p), 10);
        }
    }

    #[test]
    fn adaptive_candidate_empty_x_interval_maps_to_interval_start() {
        // X interval [4,4] is empty against Y [10,18]
        let p = IntervalPartition::from_cuts(vec![4, 4], vec![10, 18], 12, 24);
        assert_eq!(adaptive_candidate(4, &p), 18); // i=4 opens interval 2 ([4,4] is interval 1? check semantics below)
    }

    #[test]
    fn adaptive_width_uses_local_interval() {
        let p = IntervalPartition::from_cuts(vec![4, 8], vec![10, 18], 12, 24);
        // candidate inside Y interval 1 ([10,18], width 8)
        assert_eq!(adaptive_width(14, &p, 0, 0.0), 8.0);
        // interval 0 = [0,10] width 10
        assert_eq!(adaptive_width(3, &p, 0, 0.0), 10.0);
        // lower bound engages: 0.5 * 24 = 12 > 8
        assert_eq!(adaptive_width(14, &p, 0, 0.5), 12.0);
        // neighbour averaging: intervals widths are 10, 8, 5 -> mean 23/3
        let avg = adaptive_width(14, &p, 1, 0.0);
        assert!((avg - 23.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn full_grid_policy_builds_full_band() {
        let p = shifted_partition(50, 60);
        let b = build_band(&ConstraintPolicy::FullGrid, &p, 50, 60);
        assert_eq!(b, Band::full(50, 60));
    }

    #[test]
    fn adaptive_core_band_follows_the_shifted_alignment() {
        let n = 100;
        let m = 100;
        let p = shifted_partition(n, m);
        let b = build_band(&ConstraintPolicy::adaptive_core_fixed_width(0.06), &p, n, m);
        assert!(b.is_feasible());
        // In the middle of X's matched interval (i = 50), the adaptive core
        // sits inside Y's matched interval (60..80), well right of the
        // diagonal.
        let r = b.row(50);
        assert!(
            r.lo > 55,
            "band row 50 = {r:?} should sit right of the diagonal"
        );
        // The Sakoe band at the same width stays centred on the diagonal.
        let sc = build_band(
            &ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.06 },
            &p,
            n,
            m,
        );
        assert!(sc.row(50).contains(50));
    }

    #[test]
    fn adaptive_width_band_widens_in_wide_intervals() {
        let n = 100;
        let m = 100;
        // one huge Y interval in the middle, narrow elsewhere
        let p = IntervalPartition::from_cuts(vec![45, 55], vec![20, 80], n, m);
        let b = build_band(
            &ConstraintPolicy::AdaptiveCoreAdaptiveWidth {
                min_width_frac: 0.0,
                neighbor_radius: 0,
            },
            &p,
            n,
            m,
        );
        assert!(b.is_feasible());
        // row 50 sits in the wide interval: band is wide
        let wide = b.row(50).width();
        // row 10 sits in the narrow leading interval (Y width 20)
        let narrow = b.row(10).width();
        assert!(
            wide > narrow,
            "wide-interval row {wide} vs narrow-interval row {narrow}"
        );
    }

    #[test]
    fn min_width_floor_applies() {
        let n = 60;
        let m = 60;
        // all-empty partition: many duplicate cuts → tiny widths
        let p = IntervalPartition::from_cuts(vec![30, 30], vec![30, 30], n, m);
        let b = build_band(
            &ConstraintPolicy::AdaptiveCoreAdaptiveWidth {
                min_width_frac: 0.2,
                neighbor_radius: 0,
            },
            &p,
            n,
            m,
        );
        assert!(b.is_feasible());
        // every row at least ~0.2*60/2 = 6 columns each side (12 total),
        // modulo clamping at the edges
        assert!(b.row(30).width() >= 7, "row 30 width {}", b.row(30).width());
    }

    #[test]
    fn trivial_partition_reduces_adaptive_core_to_near_diagonal() {
        let n = 80;
        let m = 80;
        let p = IntervalPartition::from_cuts(vec![], vec![], n, m);
        let b = build_band(&ConstraintPolicy::adaptive_core_fixed_width(0.1), &p, n, m);
        for i in (0..n).step_by(7) {
            assert!(
                b.contains(i, i),
                "diagonal cell ({i},{i}) missing from trivial-partition band"
            );
        }
    }

    #[test]
    fn fc_aw_band_is_feasible_and_diagonal_centred() {
        let n = 90;
        let m = 70;
        let p = shifted_partition(n, m);
        let b = build_band(&ConstraintPolicy::fixed_core_adaptive_width(), &p, n, m);
        assert!(b.is_feasible());
        for i in (0..n).step_by(11) {
            let c = diagonal_column(i, n, m);
            assert!(b.contains(i, c), "diagonal cell ({i},{c}) missing");
        }
    }

    #[test]
    fn unequal_lengths_all_policies_feasible() {
        let n = 75;
        let m = 130;
        let p = shifted_partition(n, m);
        for policy in [
            ConstraintPolicy::FullGrid,
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.1 },
            ConstraintPolicy::Itakura { slope: 2.0 },
            ConstraintPolicy::fixed_core_adaptive_width(),
            ConstraintPolicy::adaptive_core_fixed_width(0.1),
            ConstraintPolicy::adaptive_core_adaptive_width(),
            ConstraintPolicy::adaptive_core_adaptive_width_averaged(),
        ] {
            let b = build_band(&policy, &p, n, m);
            assert!(b.is_feasible(), "{} infeasible", policy.label());
            assert_eq!(b.n(), n);
            assert_eq!(b.m(), m);
        }
    }

    #[test]
    #[should_panic(expected = "partition built for a different")]
    fn dimension_mismatch_panics_for_adaptive() {
        let p = shifted_partition(50, 50);
        let _ = build_band(
            &ConstraintPolicy::adaptive_core_adaptive_width(),
            &p,
            60,
            50,
        );
    }
}
