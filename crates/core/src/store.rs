//! Feature store: one-time extraction, many reuses.
//!
//! Paper §3.4: "extraction of salient features is a one-time process. Once
//! these features are extracted, they can be stored and indexed along with
//! the time series and can be re-used repeatedly during various retrieval
//! and classification tasks." The store caches extracted features keyed by
//! series identifier; retrieval/classification loops then pay only the
//! matching + DP cost per pair.

use parking_lot::RwLock;
use sdtw_salient::{extract_features, SalientConfig, SalientFeature};
use sdtw_tseries::{TimeSeries, TsError};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Thread-safe cache of salient features keyed by [`TimeSeries::id`].
///
/// Series without an id are extracted on every call (no key to cache
/// under); attach ids with [`TimeSeries::identified`] when building a
/// corpus.
#[derive(Debug)]
pub struct FeatureStore {
    config: SalientConfig,
    cache: RwLock<HashMap<u64, Arc<Vec<SalientFeature>>>>,
}

impl FeatureStore {
    /// Creates a store extracting with the given configuration.
    ///
    /// # Errors
    ///
    /// Configuration validation errors.
    pub fn new(config: SalientConfig) -> Result<Self, TsError> {
        config.validate()?;
        Ok(Self {
            config,
            cache: RwLock::new(HashMap::new()),
        })
    }

    /// The extraction configuration.
    pub fn config(&self) -> &SalientConfig {
        &self.config
    }

    /// Features of a series, from cache when possible.
    ///
    /// # Errors
    ///
    /// Extraction errors (invalid config is caught at construction, so in
    /// practice never fires).
    pub fn features_for(&self, ts: &TimeSeries) -> Result<Arc<Vec<SalientFeature>>, TsError> {
        self.features_for_timed(ts).map(|(features, _)| features)
    }

    /// [`FeatureStore::features_for`] plus the extraction cost when the
    /// call actually extracted: `Some(duration)` on a cache miss (or for
    /// an id-less series, which can never be cached), `None` on a hit.
    /// Per-phase accounting uses this to attribute the one-time
    /// extraction cost to exactly one call instead of reporting it as
    /// zero-but-present on every cached call.
    ///
    /// # Errors
    ///
    /// Extraction errors.
    pub fn features_for_timed(
        &self,
        ts: &TimeSeries,
    ) -> Result<(Arc<Vec<SalientFeature>>, Option<Duration>), TsError> {
        if let Some(id) = ts.id() {
            if let Some(cached) = self.cache.read().get(&id) {
                return Ok((Arc::clone(cached), None));
            }
            let t0 = Instant::now();
            let features = Arc::new(extract_features(ts, &self.config)?);
            let elapsed = t0.elapsed();
            self.cache.write().insert(id, Arc::clone(&features));
            Ok((features, Some(elapsed)))
        } else {
            let t0 = Instant::now();
            let features = Arc::new(extract_features(ts, &self.config)?);
            Ok((features, Some(t0.elapsed())))
        }
    }

    /// Pre-extracts features for a whole corpus (e.g. before a retrieval
    /// experiment, so per-pair timings exclude extraction).
    ///
    /// # Errors
    ///
    /// The first extraction error.
    pub fn warm(&self, corpus: &[TimeSeries]) -> Result<(), TsError> {
        for ts in corpus {
            self.features_for(ts)?;
        }
        Ok(())
    }

    /// Number of cached feature sets.
    pub fn cached_count(&self) -> usize {
        self.cache.read().len()
    }

    /// Drops all cached entries (e.g. when switching descriptor lengths in
    /// the Figure 18 sweep).
    pub fn clear(&self) {
        self.cache.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(id: u64) -> TimeSeries {
        TimeSeries::new(
            (0..128)
                .map(|i| {
                    let d = (i as f64 - 64.0) / 8.0;
                    (-d * d / 2.0).exp()
                })
                .collect(),
        )
        .unwrap()
        .identified(id)
    }

    #[test]
    fn caches_by_id() {
        let store = FeatureStore::new(SalientConfig::default()).unwrap();
        let ts = series(7);
        let a = store.features_for(&ts).unwrap();
        let b = store.features_for(&ts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert_eq!(store.cached_count(), 1);
    }

    #[test]
    fn series_without_id_are_not_cached() {
        let store = FeatureStore::new(SalientConfig::default()).unwrap();
        let ts = TimeSeries::new((0..64).map(|i| (i as f64 / 5.0).sin()).collect()).unwrap();
        let a = store.features_for(&ts).unwrap();
        let b = store.features_for(&ts).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(store.cached_count(), 0);
        // same features nonetheless
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn warm_fills_the_cache() {
        let store = FeatureStore::new(SalientConfig::default()).unwrap();
        let corpus: Vec<TimeSeries> = (0..5).map(series).collect();
        store.warm(&corpus).unwrap();
        assert_eq!(store.cached_count(), 5);
        store.clear();
        assert_eq!(store.cached_count(), 0);
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = SalientConfig {
            epsilon: 7.0,
            ..Default::default()
        };
        assert!(FeatureStore::new(cfg).is_err());
    }

    #[test]
    fn distinct_ids_cached_separately() {
        let store = FeatureStore::new(SalientConfig::default()).unwrap();
        let a = store.features_for(&series(1)).unwrap();
        let b = store.features_for(&series(2)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(store.cached_count(), 2);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let store = Arc::new(FeatureStore::new(SalientConfig::default()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..8 {
                    let ts = series((t * 8 + i) % 6);
                    let f = store.features_for(&ts).unwrap();
                    assert!(!f.is_empty());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(store.cached_count() <= 6);
    }
}
