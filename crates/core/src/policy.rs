//! Constraint policies — the four families of Figure 10 plus the classic
//! baselines.

use sdtw_tseries::TsError;
use serde::{Deserialize, Serialize};

/// How to constrain the DTW grid for a pair of series.
///
/// The names follow the paper's taxonomy (§3.3, Figure 10): the *core* is
/// the path the band is centred on (fixed = the main diagonal, adaptive =
/// interpolated through the matched interval pairs), the *width* is how far
/// the band extends around the core (fixed = a constant fraction of `M`,
/// adaptive = the local interval width).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConstraintPolicy {
    /// No pruning: the optimal DTW over the full `N × M` grid.
    FullGrid,
    /// Sakoe-Chiba band — the paper's fixed core & fixed width baseline
    /// (`fc,fw`). `width_frac` is the fraction of `M` each `x_i` may see.
    FixedCoreFixedWidth {
        /// Total band width as a fraction of `M` (e.g. 0.06, 0.10, 0.20).
        width_frac: f64,
    },
    /// Itakura parallelogram (slope-constrained) baseline.
    Itakura {
        /// Maximum local slope (> 1), conventionally 2.0.
        slope: f64,
    },
    /// Fixed (diagonal) core, width adapted per point from the width of
    /// the `Y` interval containing the diagonal candidate (`fc,aw`).
    FixedCoreAdaptiveWidth {
        /// Lower bound on the adaptive width, as a fraction of `M`. The
        /// paper evaluates `fc,aw` "with a lower-bound of 20%".
        min_width_frac: f64,
        /// Average the widths of `±neighbor_radius` intervals around the
        /// local one (0 = use the local interval width alone).
        neighbor_radius: usize,
    },
    /// Core interpolated through matched intervals, fixed width
    /// (`ac,fw`).
    AdaptiveCoreFixedWidth {
        /// Total band width as a fraction of `M`.
        width_frac: f64,
    },
    /// Both core and width adapted (`ac,aw`; with `neighbor_radius = 1`
    /// this is the paper's `ac2,aw` variant).
    AdaptiveCoreAdaptiveWidth {
        /// Lower bound on the adaptive width, as a fraction of `M`.
        min_width_frac: f64,
        /// Neighbour radius for width averaging (0 = local width; 1 =
        /// previous/current/next — the paper's second version).
        neighbor_radius: usize,
    },
}

impl ConstraintPolicy {
    /// The paper's `fc,aw` configuration (20% width lower bound).
    pub fn fixed_core_adaptive_width() -> Self {
        ConstraintPolicy::FixedCoreAdaptiveWidth {
            min_width_frac: 0.20,
            neighbor_radius: 0,
        }
    }

    /// The paper's `ac,fw` configuration at a given width.
    pub fn adaptive_core_fixed_width(width_frac: f64) -> Self {
        ConstraintPolicy::AdaptiveCoreFixedWidth { width_frac }
    }

    /// The paper's `ac,aw` (version 1: local interval width). The width
    /// lower bound (the paper's "combined with fixed width constraints by
    /// imposing lower- … bounds on w") is 10%: our matcher keeps denser
    /// boundary sets than the paper's figures show, so raw interval widths
    /// alone would starve the band.
    pub fn adaptive_core_adaptive_width() -> Self {
        ConstraintPolicy::AdaptiveCoreAdaptiveWidth {
            min_width_frac: 0.10,
            neighbor_radius: 0,
        }
    }

    /// The paper's `ac2,aw` (version 2: previous/current/next widths
    /// averaged).
    pub fn adaptive_core_adaptive_width_averaged() -> Self {
        ConstraintPolicy::AdaptiveCoreAdaptiveWidth {
            min_width_frac: 0.10,
            neighbor_radius: 1,
        }
    }

    /// Whether this policy needs salient-feature matching (the adaptive
    /// families) or can be built from grid geometry alone.
    pub fn needs_alignment(&self) -> bool {
        matches!(
            self,
            ConstraintPolicy::FixedCoreAdaptiveWidth { .. }
                | ConstraintPolicy::AdaptiveCoreFixedWidth { .. }
                | ConstraintPolicy::AdaptiveCoreAdaptiveWidth { .. }
        )
    }

    /// Short identifier used in experiment tables (`dtw`, `fc,fw 10%`,
    /// `ac2,aw`, …) matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            ConstraintPolicy::FullGrid => "dtw".to_string(),
            ConstraintPolicy::FixedCoreFixedWidth { width_frac } => {
                format!("fc,fw {:.0}%", width_frac * 100.0)
            }
            ConstraintPolicy::Itakura { slope } => format!("itakura s={slope}"),
            ConstraintPolicy::FixedCoreAdaptiveWidth { .. } => "fc,aw".to_string(),
            ConstraintPolicy::AdaptiveCoreFixedWidth { width_frac } => {
                format!("ac,fw {:.0}%", width_frac * 100.0)
            }
            ConstraintPolicy::AdaptiveCoreAdaptiveWidth {
                neighbor_radius, ..
            } => {
                if *neighbor_radius == 0 {
                    "ac,aw".to_string()
                } else {
                    format!("ac{},aw", neighbor_radius + 1)
                }
            }
        }
    }

    /// Validates the numeric parameters.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] for out-of-domain fractions/slopes.
    pub fn validate(&self) -> Result<(), TsError> {
        let check_frac = |name: &'static str, v: f64, allow_zero: bool| {
            let ok = v.is_finite() && v <= 1.0 && (v > 0.0 || (allow_zero && v == 0.0));
            if ok {
                Ok(())
            } else {
                Err(TsError::InvalidParameter {
                    name,
                    reason: format!("must be a fraction in (0, 1], got {v}"),
                })
            }
        };
        match *self {
            ConstraintPolicy::FullGrid => Ok(()),
            ConstraintPolicy::FixedCoreFixedWidth { width_frac } => {
                check_frac("width_frac", width_frac, false)
            }
            ConstraintPolicy::Itakura { slope } => {
                if slope.is_finite() && slope > 1.0 {
                    Ok(())
                } else {
                    Err(TsError::InvalidParameter {
                        name: "slope",
                        reason: format!("must be finite and > 1, got {slope}"),
                    })
                }
            }
            ConstraintPolicy::FixedCoreAdaptiveWidth { min_width_frac, .. }
            | ConstraintPolicy::AdaptiveCoreAdaptiveWidth { min_width_frac, .. } => {
                check_frac("min_width_frac", min_width_frac, true)
            }
            ConstraintPolicy::AdaptiveCoreFixedWidth { width_frac } => {
                check_frac("width_frac", width_frac, false)
            }
        }
    }
}

/// Symmetry handling for the asymmetric adaptive constraints (paper
/// §3.3.3: `X` drives the candidate search on `Y`, so the measure is not
/// symmetric unless the bands of both directions are combined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BandSymmetry {
    /// Use the `X → Y` band as-is (the paper's evaluated mode).
    #[default]
    Asymmetric,
    /// Union the `X → Y` band with the transposed `Y → X` band, making the
    /// distance symmetric at the cost of a wider band.
    Union,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(ConstraintPolicy::FullGrid.label(), "dtw");
        assert_eq!(
            ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.06 }.label(),
            "fc,fw 6%"
        );
        assert_eq!(
            ConstraintPolicy::fixed_core_adaptive_width().label(),
            "fc,aw"
        );
        assert_eq!(
            ConstraintPolicy::adaptive_core_fixed_width(0.10).label(),
            "ac,fw 10%"
        );
        assert_eq!(
            ConstraintPolicy::adaptive_core_adaptive_width().label(),
            "ac,aw"
        );
        assert_eq!(
            ConstraintPolicy::adaptive_core_adaptive_width_averaged().label(),
            "ac2,aw"
        );
    }

    #[test]
    fn needs_alignment_only_for_adaptive_families() {
        assert!(!ConstraintPolicy::FullGrid.needs_alignment());
        assert!(!ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.1 }.needs_alignment());
        assert!(!ConstraintPolicy::Itakura { slope: 2.0 }.needs_alignment());
        assert!(ConstraintPolicy::fixed_core_adaptive_width().needs_alignment());
        assert!(ConstraintPolicy::adaptive_core_fixed_width(0.1).needs_alignment());
        assert!(ConstraintPolicy::adaptive_core_adaptive_width().needs_alignment());
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(ConstraintPolicy::FixedCoreFixedWidth { width_frac: 0.0 }
            .validate()
            .is_err());
        assert!(ConstraintPolicy::FixedCoreFixedWidth { width_frac: 1.5 }
            .validate()
            .is_err());
        assert!(ConstraintPolicy::Itakura { slope: 1.0 }.validate().is_err());
        assert!(ConstraintPolicy::AdaptiveCoreFixedWidth {
            width_frac: f64::NAN
        }
        .validate()
        .is_err());
        // zero lower bound is legal for adaptive widths
        ConstraintPolicy::AdaptiveCoreAdaptiveWidth {
            min_width_frac: 0.0,
            neighbor_radius: 0,
        }
        .validate()
        .unwrap();
        ConstraintPolicy::FullGrid.validate().unwrap();
    }

    #[test]
    fn serde_round_trip() {
        let p = ConstraintPolicy::adaptive_core_adaptive_width_averaged();
        let json = serde_json::to_string(&p).unwrap();
        let back: ConstraintPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
