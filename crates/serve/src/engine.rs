//! The resident query engine: one immutable snapshot, many concurrent
//! requests, each answered by the two-level cascade.

use crate::protocol::{RequestOp, ServeHit, ServeRequest, ServeResponse};
use parking_lot::Mutex;
use rayon::prelude::*;
use sdtw_dtw::engine::{DtwEngine, DtwScratch};
use sdtw_index::{SdtwIndex, SnapshotCodec};
use sdtw_obs::{InputShape, QueryTrace, Recorder, TracePhase, WorkloadKind};
use sdtw_stream::{StreamConfig, SubseqMatcher};
use sdtw_tseries::{TimeSeries, TsError};
use std::collections::HashMap;
use std::sync::Arc;

/// How many prepared matchers the per-pattern cache may hold before it
/// is cleared whole (a simple bound; the cache exists to amortise
/// preparation across *repeated* patterns, not to be an LRU).
const MATCHER_CACHE_CAP: usize = 256;

/// Daemon-side configuration of a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Default `k` for requests that leave theirs at `0`.
    pub default_k: usize,
    /// Level-2 sharding: `1` sweeps each entry serially with the
    /// worker's reused scratch (concurrency comes from the request
    /// batch); any other value hands each surviving entry to
    /// [`SubseqMatcher::find_k_parallel`] with that shard count
    /// (`0` = one shard per rayon worker). Results are bit-identical
    /// either way.
    pub shards: usize,
    /// Record a [`QueryTrace`] for every request (individual requests
    /// can also opt in via [`ServeRequest::trace`]).
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            default_k: 5,
            shards: 1,
            trace: false,
        }
    }
}

/// One corpus entry's level-1 screening record, in visit order (the
/// audit trail [`ServeEngine::answer_detailed`] exposes for the
/// admissibility tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryScreenRecord {
    /// Corpus entry index.
    pub entry: usize,
    /// The index's whole-recording coarse bound (visit order only —
    /// *not* admissible for subsequence hits).
    pub coarse_bound: f64,
    /// The admissible window floor
    /// ([`SubseqMatcher::window_bound_floor`]): no hit inside the entry
    /// can score below this.
    pub floor: f64,
    /// The threshold the floor was compared against when this entry was
    /// visited (`f64::INFINITY` until k hits have accumulated).
    pub threshold: f64,
    /// Whether the entry was swept (`false` = pruned whole, justified
    /// by `floor > threshold`).
    pub swept: bool,
}

/// A fully detailed answer: the response payload plus the per-entry
/// screening audit trail and the optional trace.
#[derive(Debug, Clone)]
pub struct ServeAnswer {
    /// The k best hits, ascending `(distance, entry, offset)`.
    pub hits: Vec<ServeHit>,
    /// Level-1 verdict for every corpus entry, in visit order.
    pub screens: Vec<EntryScreenRecord>,
    /// The request's trace when tracing was on.
    pub trace: Option<QueryTrace>,
}

/// The resident two-level pattern engine.
///
/// Shared-immutable by design: the snapshot (index + derived stream
/// configuration) never changes after construction, so any number of
/// threads may call [`ServeEngine::answer_with_scratch`] concurrently —
/// the only interior mutability is the prepared-matcher cache behind a
/// `parking_lot::Mutex`. Per-request scratch lives with the caller (one
/// [`DtwScratch`] per worker), so a long-lived worker re-uses its DP
/// buffers across requests.
#[derive(Debug)]
pub struct ServeEngine {
    index: Arc<SdtwIndex>,
    stream_cfg: StreamConfig,
    cfg: ServeConfig,
    /// Prepared matchers keyed by the query's sample bits — repeated
    /// patterns skip envelope/descriptor preparation entirely.
    matchers: Mutex<HashMap<Vec<u64>, Arc<SubseqMatcher>>>,
    /// Total corpus samples (the trace's `y_len`).
    corpus_samples: u64,
}

impl ServeEngine {
    /// Wraps a built (or snapshot-loaded) index as a resident engine.
    /// The level-2 stream configuration is derived from the index
    /// configuration: same engine (policy/kernel/metric), same
    /// z-normalisation convention, same envelope radius fraction.
    ///
    /// # Errors
    ///
    /// Stream-configuration validation (inherited from the index
    /// configuration).
    pub fn new(index: SdtwIndex, cfg: ServeConfig) -> Result<ServeEngine, TsError> {
        let icfg = index.config();
        let stream_cfg = StreamConfig {
            sdtw: icfg.sdtw.clone(),
            z_normalize: icfg.z_normalize,
            lb_radius_frac: icfg.lb_radius_frac,
            ..StreamConfig::default()
        };
        stream_cfg.validate()?;
        let corpus_samples = index.entries().iter().map(|e| e.series.len() as u64).sum();
        Ok(ServeEngine {
            index: Arc::new(index),
            stream_cfg,
            cfg,
            matchers: Mutex::new(HashMap::new()),
            corpus_samples,
        })
    }

    /// Loads an index snapshot from disk — JSON or binary columnar v2,
    /// auto-detected by [`SnapshotCodec`] — and wraps it as a resident
    /// engine. The daemon path: binary snapshots stream column-by-column
    /// straight into the engine without an intermediate JSON tree.
    ///
    /// # Errors
    ///
    /// Snapshot I/O/decode failures, then as [`ServeEngine::new`].
    pub fn load<P: AsRef<std::path::Path>>(
        path: P,
        cfg: ServeConfig,
    ) -> Result<ServeEngine, TsError> {
        ServeEngine::new(SnapshotCodec::read_file(path)?, cfg)
    }

    /// The shared snapshot.
    pub fn index(&self) -> &SdtwIndex {
        &self.index
    }

    /// The level-2 stream configuration requests are swept under.
    pub fn stream_config(&self) -> &StreamConfig {
        &self.stream_cfg
    }

    /// The daemon configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The prepared matcher for a pattern, from cache when the same
    /// sample bits were served before.
    fn matcher_for(&self, values: &[f64]) -> Result<Arc<SubseqMatcher>, TsError> {
        let key: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        if let Some(m) = self.matchers.lock().get(&key) {
            return Ok(Arc::clone(m));
        }
        let query = TimeSeries::new(values.to_vec())?;
        let matcher = Arc::new(SubseqMatcher::new(&query, self.stream_cfg.clone())?);
        let mut cache = self.matchers.lock();
        if cache.len() >= MATCHER_CACHE_CAP {
            cache.clear();
        }
        cache.insert(key, Arc::clone(&matcher));
        Ok(matcher)
    }

    /// Answers one request (allocates a fresh scratch; long-lived
    /// workers should hold one and call
    /// [`ServeEngine::answer_with_scratch`]).
    pub fn answer(&self, req: &ServeRequest) -> (ServeResponse, Option<QueryTrace>) {
        self.answer_with_scratch(req, &mut DtwScratch::new())
    }

    /// Answers one request with a caller-owned DP scratch (the worker
    /// hot path). Never panics on bad input — validation errors come
    /// back as an `ok = false` response.
    pub fn answer_with_scratch(
        &self,
        req: &ServeRequest,
        scratch: &mut DtwScratch,
    ) -> (ServeResponse, Option<QueryTrace>) {
        match self.answer_detailed(req, scratch) {
            Ok(answer) => {
                let (pruned, swept) = answer.screens.iter().fold((0u64, 0u64), |(p, s), r| match r
                    .swept
                {
                    true => (p, s + 1),
                    false => (p + 1, s),
                });
                (
                    ServeResponse {
                        id: req.id.clone(),
                        ok: true,
                        error: String::new(),
                        hits: answer.hits,
                        entries_pruned: pruned,
                        entries_swept: swept,
                    },
                    answer.trace,
                )
            }
            Err(e) => (ServeResponse::error(&req.id, e.to_string()), None),
        }
    }

    /// The full two-level cascade with its audit trail (what the
    /// exactness/admissibility tests drive).
    ///
    /// # Errors
    ///
    /// Request validation (`k == 0` after defaulting, NaN/negative
    /// `tau`, invalid pattern samples, a `Shutdown` op) and engine
    /// errors (feature extraction under adaptive policies).
    pub fn answer_detailed(
        &self,
        req: &ServeRequest,
        scratch: &mut DtwScratch,
    ) -> Result<ServeAnswer, TsError> {
        if req.op != RequestOp::Query {
            return Err(TsError::InvalidParameter {
                name: "op",
                reason: "only Query requests reach the engine (Shutdown is a daemon operation)"
                    .to_string(),
            });
        }
        let k = if req.k == 0 {
            self.cfg.default_k
        } else {
            req.k
        };
        if k == 0 {
            return Err(TsError::InvalidParameter {
                name: "k",
                reason: "pattern search needs k >= 1".to_string(),
            });
        }
        let tau = req.tau.unwrap_or(f64::INFINITY);
        if tau.is_nan() || tau < 0.0 {
            return Err(TsError::InvalidParameter {
                name: "tau",
                reason: format!("distance threshold must be >= 0, got {tau}"),
            });
        }
        let traced = self.cfg.trace || req.trace;
        let t0 = std::time::Instant::now();
        let mut rec = if traced {
            Recorder::enabled()
        } else {
            Recorder::disabled()
        };
        let mut trace = traced.then(|| {
            let mut t = QueryTrace::new(&req.id, WorkloadKind::ServePattern);
            t.shape = InputShape {
                x_len: req.values.len() as u64,
                y_len: self.corpus_samples,
                k: k as u64,
                policy: self.stream_cfg.sdtw.policy.label(),
                kernel: self.stream_cfg.sdtw.dtw.kernel_label(),
                engine: format!("{:?}", DtwEngine::selected()).to_lowercase(),
            };
            t
        });

        let matcher = self.matcher_for(&req.values)?;
        let query = TimeSeries::new(req.values.to_vec())?;
        // Level 1a: coarse visit order from the index's stage-1 screen
        // (whole-recording bounds — ranking only, never pruning).
        let screen = rec.time(TracePhase::EntryScreen, || self.index.coarse_screen(&query));

        // The candidate pool: per-entry greedy hit lists, every hit at
        // or under the threshold that was current when its entry was
        // swept. `dists` mirrors the pool's distances in sorted order so
        // the running k-th best is O(log n) to maintain.
        let mut hits: Vec<ServeHit> = Vec::new();
        let mut dists: Vec<f64> = Vec::new();
        let mut screens: Vec<EntryScreenRecord> = Vec::with_capacity(screen.order.len());

        for eb in &screen.order {
            let series = self.index.entry_series(eb.index);
            // the running threshold: the pool's k-th best distance once
            // k hits exist, capped by the request's tau. It only ever
            // tightens, and the final k-th distance can only be lower —
            // which is what makes pruning against it sound.
            let threshold = if dists.len() >= k {
                dists[k - 1].min(tau)
            } else {
                tau
            };
            // Level 1b: the admissible per-entry floor. Strict
            // comparison — an entry whose floor *ties* the threshold
            // could still win the (distance, entry, offset) tie-break
            // and must be swept.
            let floor = rec.time(TracePhase::EntryScreen, || {
                matcher.window_bound_floor(series)
            });
            if floor > threshold {
                screens.push(EntryScreenRecord {
                    entry: eb.index,
                    coarse_bound: eb.bound,
                    floor,
                    threshold,
                    swept: false,
                });
                if let Some(t) = trace.as_mut() {
                    // fold the level-1 prune into the canonical cascade
                    // counters: one candidate disposed by the Kim-family
                    // floor (entry-granular, vs the window-granular
                    // counters the sweeps contribute — see DESIGN §13)
                    t.counters.cascade.candidates += 1;
                    t.counters.cascade.pruned_kim += 1;
                }
                continue;
            }
            // Level 2: sweep the survivor, seeded with the threshold.
            let result = rec.time(TracePhase::EntrySweep, || {
                if traced {
                    let sweep_id = format!("{}#{}", req.id, eb.index);
                    let (result, sub) = if self.cfg.shards == 1 {
                        matcher.find_under_traced(series, k, threshold, &sweep_id)?
                    } else {
                        matcher.find_k_parallel_traced(
                            series,
                            k,
                            threshold,
                            self.cfg.shards,
                            &sweep_id,
                        )?
                    };
                    if let Some(t) = trace.as_mut() {
                        t.merge(&sub);
                    }
                    Ok::<_, TsError>(result)
                } else if self.cfg.shards == 1 {
                    matcher.find_under_with_scratch(series, k, threshold, scratch)
                } else {
                    matcher.find_k_parallel(series, k, threshold, self.cfg.shards)
                }
            })?;
            for m in &result.matches {
                let at = dists.partition_point(|&d| d < m.distance);
                dists.insert(at, m.distance);
                hits.push(ServeHit {
                    entry: eb.index,
                    offset: m.offset,
                    distance: m.distance,
                });
            }
            screens.push(EntryScreenRecord {
                entry: eb.index,
                coarse_bound: eb.bound,
                floor,
                threshold,
                swept: true,
            });
        }

        // Global merge: the pool's per-entry lists are each internally
        // non-overlapping and in global-compatible order, so the k best
        // by (distance, entry, offset) are exactly the corpus oracle's
        // greedy picks (DESIGN §13).
        rec.time(TracePhase::TopKMerge, || {
            hits.sort_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .expect("distances are finite")
                    .then(a.entry.cmp(&b.entry))
                    .then(a.offset.cmp(&b.offset))
            });
            hits.truncate(k);
        });

        if let Some(t) = trace.as_mut() {
            t.spans.extend(rec.finish());
            t.wall = t0.elapsed();
        }
        Ok(ServeAnswer {
            hits,
            screens,
            trace,
        })
    }

    /// Answers a batch of requests across the rayon pool — the daemon's
    /// job queue. One worker processes many requests with one reused
    /// scratch ([`rayon`'s `map_init`]); responses come back in request
    /// order, bit-identical to answering serially (requests are
    /// independent).
    pub fn answer_batch(&self, reqs: &[ServeRequest]) -> Vec<(ServeResponse, Option<QueryTrace>)> {
        reqs.to_vec()
            .into_par_iter()
            .map_init(DtwScratch::new, |scratch, req| {
                self.answer_with_scratch(&req, scratch)
            })
            .collect()
    }
}
