//! The serve wire protocol: line-delimited JSON, one request or response
//! per line, over a Unix socket or a stdin/stdout pipe.
//!
//! Framing matches the trace NDJSON discipline: every value on one line,
//! `f64` payloads round-tripping bit-exactly (the `serde_json` layer
//! guarantees shortest-round-trip float encoding), so a response carries
//! the very distance bits the engine computed.

use serde::{Deserialize, Serialize};

/// What a request asks the daemon to do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOp {
    /// Run the two-level pattern search for `values`.
    #[default]
    Query,
    /// Stop the daemon after this request is acknowledged (socket mode;
    /// pipe mode also stops at EOF).
    Shutdown,
}

/// One client request line.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-assigned request id, echoed in the response and stamped on
    /// the request's trace.
    pub id: String,
    /// Query vs shutdown.
    pub op: RequestOp,
    /// How many hits to return (`0` = the daemon's configured default).
    pub k: usize,
    /// Optional inclusive distance ceiling (`None` = unbounded).
    pub tau: Option<f64>,
    /// Ask for a [`QueryTrace`](sdtw_obs::QueryTrace) even when the
    /// daemon does not trace by default.
    pub trace: bool,
    /// The query pattern samples (empty for `Shutdown`).
    pub values: Vec<f64>,
}

impl ServeRequest {
    /// A plain query request with defaults for everything else.
    pub fn query(id: impl Into<String>, values: Vec<f64>, k: usize) -> ServeRequest {
        ServeRequest {
            id: id.into(),
            op: RequestOp::Query,
            k,
            tau: None,
            trace: false,
            values,
        }
    }

    /// The shutdown sentinel.
    pub fn shutdown(id: impl Into<String>) -> ServeRequest {
        ServeRequest {
            id: id.into(),
            op: RequestOp::Shutdown,
            ..ServeRequest::default()
        }
    }

    /// Encodes as one NDJSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("request serialisation is total")
    }

    /// Parses one NDJSON line.
    ///
    /// # Errors
    ///
    /// A human-readable parse/shape error.
    pub fn from_json_line(line: &str) -> Result<ServeRequest, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

/// One subsequence hit of a pattern search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeHit {
    /// Corpus entry the window lives in.
    pub entry: usize,
    /// Window start offset inside that entry.
    pub offset: usize,
    /// Exact engine distance (bit-identical to the oracle's).
    pub distance: f64,
}

/// One daemon response line, paired to a request by `id`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// The request's id, echoed.
    pub id: String,
    /// Whether the request was answered (`false` → see `error`).
    pub ok: bool,
    /// Error description when `ok` is `false`, empty otherwise.
    pub error: String,
    /// The k best hits, ascending `(distance, entry, offset)`.
    pub hits: Vec<ServeHit>,
    /// Corpus entries skipped whole by the admissible level-1 floor.
    pub entries_pruned: u64,
    /// Corpus entries the level-2 matcher actually swept.
    pub entries_swept: u64,
}

impl ServeResponse {
    /// An error response for a request id.
    pub fn error(id: impl Into<String>, error: impl Into<String>) -> ServeResponse {
        ServeResponse {
            id: id.into(),
            ok: false,
            error: error.into(),
            ..ServeResponse::default()
        }
    }

    /// Encodes as one NDJSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("response serialisation is total")
    }

    /// Parses one NDJSON line.
    ///
    /// # Errors
    ///
    /// A human-readable parse/shape error.
    pub fn from_json_line(line: &str) -> Result<ServeResponse, String> {
        serde_json::from_str(line).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_with_float_bits_intact() {
        let mut req = ServeRequest::query("q1", vec![0.1, -2.5e-300, f64::MIN_POSITIVE], 5);
        req.tau = Some(1.25);
        req.trace = true;
        let back = ServeRequest::from_json_line(&req.to_json_line()).unwrap();
        assert_eq!(back, req);
        for (a, b) in back.values.iter().zip(&req.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn shutdown_op_roundtrips() {
        let req = ServeRequest::shutdown("bye");
        let back = ServeRequest::from_json_line(&req.to_json_line()).unwrap();
        assert_eq!(back.op, RequestOp::Shutdown);
        assert!(back.values.is_empty());
    }

    #[test]
    fn response_roundtrips_and_reports_errors() {
        let resp = ServeResponse {
            id: "q1".into(),
            ok: true,
            error: String::new(),
            hits: vec![ServeHit {
                entry: 3,
                offset: 17,
                distance: 0.062_499_999_999_999_99,
            }],
            entries_pruned: 7,
            entries_swept: 2,
        };
        let back = ServeResponse::from_json_line(&resp.to_json_line()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(
            back.hits[0].distance.to_bits(),
            resp.hits[0].distance.to_bits()
        );
        let err = ServeResponse::error("q2", "boom");
        assert!(!err.ok);
        assert_eq!(err.error, "boom");
        assert!(ServeRequest::from_json_line("not json").is_err());
    }
}
