//! # sdtw-serve — the resident archive-scale pattern service
//!
//! The paper's salient-feature cascade is built for repeated queries
//! against large archives; this crate is the long-running process that
//! shape implies. A [`ServeEngine`] loads **one immutable corpus
//! snapshot** (a built [`SdtwIndex`](sdtw_index::SdtwIndex)) at startup,
//! shares it behind an `Arc`, and answers many concurrent pattern
//! requests, each through a **two-level cascade**:
//!
//! 1. **Level 1 — coarse entry screen.** The index's stage-1 kNN pass
//!    ([`SdtwIndex::coarse_screen`](sdtw_index::SdtwIndex::coarse_screen))
//!    ranks every corpus entry by its whole-recording LB_Kim bound
//!    (bucketed ascending, O(1) per entry), deciding the *visit order*.
//!    Pruning is decided by an admissible per-entry *floor*: the minimum
//!    rolling LB_Kim bound over the entry's windows
//!    ([`SubseqMatcher::window_bound_floor`](sdtw_stream::SubseqMatcher::window_bound_floor)).
//!    An entry whose floor strictly exceeds the running k-th best hit
//!    cannot contain a reportable match and is skipped whole.
//! 2. **Level 2 — subsequence localisation.** Each surviving entry is
//!    swept by the `sdtw_stream` matcher (serial with a per-worker
//!    reused scratch, or `find_k_parallel` when sharding is configured),
//!    seeded with the running threshold; per-entry hits merge into the
//!    global top-k by ascending `(distance, entry, offset)`.
//!
//! Results are **exact**: identical ids and bit-identical distances
//! (ties included) to the brute-force every-entry / every-window oracle
//! (`sdtw_eval::corpus_brute_force`) — the per-entry floors are
//! admissible, the sweeps are exact, and the threshold only ever
//! tightens (see DESIGN.md §13 for the argument).
//!
//! The wire protocol is line-delimited JSON ([`protocol`]) over a Unix
//! socket or a stdin/stdout pipe ([`daemon`]); per-request telemetry is
//! one canonical [`QueryTrace`](sdtw_obs::QueryTrace) per request
//! (`WorkloadKind::ServePattern`), folding both levels through the
//! existing merge algebra — no parallel trace structs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod daemon;
pub mod engine;
pub mod protocol;

pub use daemon::{client_roundtrip, run_pipe, SocketServer};
pub use engine::{EntryScreenRecord, ServeAnswer, ServeConfig, ServeEngine};
pub use protocol::{RequestOp, ServeHit, ServeRequest, ServeResponse};
