//! Transport for the resident engine: a stdin/stdout pipe mode (CI,
//! scripting) and a Unix-socket daemon, both speaking the NDJSON
//! [`protocol`](crate::protocol).
//!
//! The engine snapshot is immutable, so every transport shares one
//! [`ServeEngine`] behind an `Arc`. Pipe mode drains requests in batches
//! through [`ServeEngine::answer_batch`] (the rayon job queue); socket
//! mode dedicates an OS thread per connection, each with its own reused
//! DP scratch, so interleaved clients never contend on anything but the
//! matcher cache lock.

use crate::engine::ServeEngine;
use crate::protocol::{RequestOp, ServeRequest, ServeResponse};
use parking_lot::Mutex;
use sdtw_dtw::engine::DtwScratch;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One parsed pipe-mode input line.
enum Item {
    Req(ServeRequest),
    Bad(String),
    Stop(String),
}

/// Runs the daemon over an in-process reader/writer pair (the `--pipe`
/// mode CI drives): reads NDJSON requests until EOF or a `Shutdown`
/// request, answers them in batches of `batch` across the rayon pool,
/// and writes one NDJSON response per request **in input order**.
/// Returns the NDJSON trace lines of every traced request, in the same
/// order.
///
/// # Errors
///
/// Propagates I/O errors from the reader/writer; malformed request
/// lines are *answered* (with an `ok = false` response), not fatal.
pub fn run_pipe<R: BufRead, W: Write>(
    engine: &ServeEngine,
    reader: R,
    writer: &mut W,
    batch: usize,
) -> io::Result<Vec<String>> {
    let batch = batch.max(1);
    let mut traces = Vec::new();
    let mut lines = reader.lines();
    let mut done = false;
    while !done {
        let mut items: Vec<Item> = Vec::with_capacity(batch);
        while items.len() < batch {
            let Some(line) = lines.next() else {
                done = true;
                break;
            };
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            match ServeRequest::from_json_line(&line) {
                Err(e) => items.push(Item::Bad(e)),
                Ok(req) if req.op == RequestOp::Shutdown => {
                    items.push(Item::Stop(req.id));
                    done = true;
                    break;
                }
                Ok(req) => items.push(Item::Req(req)),
            }
        }
        let queries: Vec<ServeRequest> = items
            .iter()
            .filter_map(|it| match it {
                Item::Req(r) => Some(r.clone()),
                _ => None,
            })
            .collect();
        let mut answers = engine.answer_batch(&queries).into_iter();
        for item in items {
            let resp = match item {
                Item::Req(_) => {
                    let (resp, trace) = answers.next().expect("one answer per request");
                    if let Some(t) = trace {
                        traces.push(t.to_json_line());
                    }
                    resp
                }
                Item::Bad(e) => ServeResponse::error("", format!("bad request line: {e}")),
                Item::Stop(id) => ServeResponse {
                    id,
                    ok: true,
                    ..ServeResponse::default()
                },
            };
            writer.write_all(resp.to_json_line().as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
    }
    Ok(traces)
}

/// The Unix-socket daemon: binds a path, then accepts connections until
/// a client sends `Shutdown`.
#[derive(Debug)]
pub struct SocketServer {
    listener: UnixListener,
    path: PathBuf,
}

impl SocketServer {
    /// Binds the daemon socket, replacing a stale socket file at `path`
    /// if one is left over.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(path: impl AsRef<Path>) -> io::Result<SocketServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Ok(SocketServer { listener, path })
    }

    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accepts connections until shutdown, one OS thread per connection,
    /// each thread answering that client's requests serially with a
    /// reused scratch (concurrency comes from concurrent clients — the
    /// snapshot is shared immutable). A `Shutdown` request from any
    /// client is acknowledged, stops the accept loop, and drains all
    /// live connections. Returns every traced request's NDJSON trace
    /// line.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O failures; per-connection I/O errors end that
    /// connection only.
    pub fn serve(self, engine: Arc<ServeEngine>) -> io::Result<Vec<String>> {
        let stop = Arc::new(AtomicBool::new(false));
        let traces: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for stream in self.listener.incoming() {
            let stream = stream?;
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            let traces = Arc::clone(&traces);
            let wake_path = self.path.clone();
            handles.push(std::thread::spawn(move || {
                let _ = serve_connection(&engine, stream, &stop, &wake_path, &traces);
            }));
        }
        for h in handles {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
        let out = std::mem::take(&mut *traces.lock());
        Ok(out)
    }
}

/// One connection's request loop (socket mode).
fn serve_connection(
    engine: &ServeEngine,
    stream: UnixStream,
    stop: &AtomicBool,
    wake_path: &Path,
    traces: &Mutex<Vec<String>>,
) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut scratch = DtwScratch::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let resp = match ServeRequest::from_json_line(&line) {
            Err(e) => ServeResponse::error("", format!("bad request line: {e}")),
            Ok(req) if req.op == RequestOp::Shutdown => {
                let ack = ServeResponse {
                    id: req.id,
                    ok: true,
                    ..ServeResponse::default()
                };
                writer.write_all(ack.to_json_line().as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                stop.store(true, Ordering::SeqCst);
                // self-wake: the accept loop is blocked in `accept`; a
                // throwaway connection gets it to observe the stop flag.
                let _ = UnixStream::connect(wake_path);
                return Ok(());
            }
            Ok(req) => {
                let (resp, trace) = engine.answer_with_scratch(&req, &mut scratch);
                if let Some(t) = trace {
                    traces.lock().push(t.to_json_line());
                }
                resp
            }
        };
        writer.write_all(resp.to_json_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// A minimal synchronous client: connects to a daemon socket, sends each
/// request as one NDJSON line, and reads the matching response line.
/// Responses come back in request order (the protocol is
/// request/response over one connection).
///
/// # Errors
///
/// Connection/write/read failures; a response line that fails to parse
/// surfaces as [`io::ErrorKind::InvalidData`].
pub fn client_roundtrip(
    path: impl AsRef<Path>,
    requests: &[ServeRequest],
) -> io::Result<Vec<ServeResponse>> {
    let stream = UnixStream::connect(path.as_ref())?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut out = Vec::with_capacity(requests.len());
    for req in requests {
        writer.write_all(req.to_json_line().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-request",
            ));
        }
        let resp = ServeResponse::from_json_line(line.trim_end()).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            )
        })?;
        out.push(resp);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use sdtw_index::{IndexConfig, SdtwIndex};
    use sdtw_tseries::TimeSeries;

    fn demo_engine(trace: bool) -> ServeEngine {
        let mut entries = Vec::new();
        for e in 0..6 {
            let n = 80 + 7 * e;
            let vals: Vec<f64> = (0..n)
                .map(|i| ((i as f64) * 0.21 + e as f64).sin() + 0.05 * (e as f64))
                .collect();
            entries.push(TimeSeries::new(vals).unwrap());
        }
        let index = SdtwIndex::build(&entries, IndexConfig::default()).unwrap();
        ServeEngine::new(
            index,
            ServeConfig {
                trace,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    }

    fn demo_query() -> Vec<f64> {
        (0..24).map(|i| ((i as f64) * 0.21 + 2.0).sin()).collect()
    }

    #[test]
    fn pipe_mode_answers_in_order_and_stops_at_shutdown() {
        let engine = demo_engine(true);
        let mut input = String::new();
        for i in 0..5 {
            input.push_str(&ServeRequest::query(format!("q{i}"), demo_query(), 3).to_json_line());
            input.push('\n');
        }
        input.push_str("this is not json\n");
        input.push_str(&ServeRequest::shutdown("bye").to_json_line());
        input.push('\n');
        // anything after shutdown must be ignored
        input.push_str(&ServeRequest::query("after", demo_query(), 3).to_json_line());
        input.push('\n');

        let mut out = Vec::new();
        let traces = run_pipe(&engine, input.as_bytes(), &mut out, 2).unwrap();
        let text = String::from_utf8(out).unwrap();
        let resps: Vec<ServeResponse> = text
            .lines()
            .map(|l| ServeResponse::from_json_line(l).unwrap())
            .collect();
        assert_eq!(resps.len(), 7, "5 queries + 1 parse error + shutdown ack");
        for (i, r) in resps[..5].iter().enumerate() {
            assert_eq!(r.id, format!("q{i}"));
            assert!(r.ok, "query failed: {}", r.error);
            assert!(!r.hits.is_empty());
        }
        assert!(!resps[5].ok);
        assert!(resps[5].error.contains("bad request line"));
        assert_eq!(resps[6].id, "bye");
        assert!(resps[6].ok);
        assert_eq!(traces.len(), 5, "one trace per answered query");
        assert!(traces[0].contains("ServePattern"));
    }

    #[test]
    fn pipe_batching_is_answer_invariant() {
        let engine = demo_engine(false);
        let mut input = String::new();
        for i in 0..6 {
            input.push_str(&ServeRequest::query(format!("q{i}"), demo_query(), 2).to_json_line());
            input.push('\n');
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        run_pipe(&engine, input.as_bytes(), &mut a, 1).unwrap();
        run_pipe(&engine, input.as_bytes(), &mut b, 64).unwrap();
        assert_eq!(a, b, "batch size must not change any response byte");
    }

    #[test]
    fn socket_daemon_roundtrips_and_shuts_down() {
        let dir = std::env::temp_dir().join(format!("sdtw-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("daemon.sock");
        let server = SocketServer::bind(&sock).unwrap();
        let engine = Arc::new(demo_engine(false));
        let path = sock.clone();
        let handle = {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || server.serve(engine))
        };
        let reqs = vec![
            ServeRequest::query("a", demo_query(), 2),
            ServeRequest::query("b", demo_query(), 4),
        ];
        let resps = client_roundtrip(&path, &reqs).unwrap();
        assert_eq!(resps.len(), 2);
        assert!(resps.iter().all(|r| r.ok));
        assert_eq!(resps[0].id, "a");
        assert_eq!(resps[1].id, "b");
        let ack = client_roundtrip(&path, &[ServeRequest::shutdown("stop")]).unwrap();
        assert!(ack[0].ok);
        let traces = handle.join().unwrap().unwrap();
        assert!(traces.is_empty(), "tracing was off");
        assert!(!sock.exists(), "socket file cleaned up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
