//! The octave/level Gaussian scale-space pyramid with
//! difference-of-Gaussian (DoG) stacks.
//!
//! Construction follows the paper's §3.1.2 (which in turn follows Lowe's
//! SIFT): the series is reduced into `o` octaves, each octave corresponding
//! to a doubling of the smoothing rate; each octave is divided into `s`
//! levels by repeatedly convolving with Gaussians with parameter `κ`
//! (`κ^s = 2`); adjacent smoothed levels are subtracted to produce DoG
//! series, which the detector (in `sdtw-salient`) scans for ε-relaxed
//! extrema. After the `s` levels of an octave are processed, the series
//! corresponding to the doubled σ is downsampled by picking every second
//! sample to form the base of the next octave.
//!
//! Per octave we build `s + 3` smoothed levels (yielding `s + 2` DoG
//! levels), so that extrema detection can compare the `s` interior DoG
//! levels with a full up-scale and down-scale neighbour — the standard SIFT
//! arrangement.

use crate::convolve::{convolve_reflect, downsample_half};
use crate::kernel::GaussianKernel;
use sdtw_tseries::{TimeSeries, TsError};
use serde::{Deserialize, Serialize};

/// Configuration of the scale-space pyramid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PyramidConfig {
    /// Number of octaves. `None` uses the paper's default
    /// `o = ⌊log2 N⌋ − 6`, clamped to at least 1 and capped so every octave
    /// keeps at least [`PyramidConfig::min_octave_len`] samples.
    pub octaves: Option<usize>,
    /// Levels per octave (`s` in the paper; default 2, so `κ = √2`).
    pub levels_per_octave: usize,
    /// Base smoothing σ of the first level of each octave, in samples of
    /// that octave's resolution (SIFT's conventional 1.6).
    pub base_sigma: f64,
    /// Octaves stop when the downsampled series would fall below this
    /// length (extrema detection needs room for neighbours).
    pub min_octave_len: usize,
}

impl Default for PyramidConfig {
    fn default() -> Self {
        Self {
            octaves: None,
            levels_per_octave: 2,
            base_sigma: 1.6,
            min_octave_len: 8,
        }
    }
}

impl PyramidConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] for a zero level count, non-positive
    /// base sigma, or a `min_octave_len` smaller than 3 (extrema need two
    /// neighbours).
    pub fn validate(&self) -> Result<(), TsError> {
        if self.levels_per_octave == 0 {
            return Err(TsError::InvalidParameter {
                name: "levels_per_octave",
                reason: "must be at least 1".into(),
            });
        }
        if !self.base_sigma.is_finite() || self.base_sigma <= 0.0 {
            return Err(TsError::InvalidParameter {
                name: "base_sigma",
                reason: format!("must be finite and > 0, got {}", self.base_sigma),
            });
        }
        if self.min_octave_len < 3 {
            return Err(TsError::InvalidParameter {
                name: "min_octave_len",
                reason: "must be at least 3".into(),
            });
        }
        if let Some(0) = self.octaves {
            return Err(TsError::InvalidParameter {
                name: "octaves",
                reason: "must be at least 1 when given".into(),
            });
        }
        Ok(())
    }

    /// The paper's default octave count for a series of length `n`:
    /// `⌊log2 n⌋ − 6`, clamped to `[1, ∞)`.
    pub fn paper_octaves(n: usize) -> usize {
        if n < 2 {
            return 1;
        }
        let log2 = (usize::BITS - 1 - n.leading_zeros()) as isize; // floor(log2 n)
        (log2 - 6).max(1) as usize
    }

    /// Octave count actually used when `octaves` is `None`:
    /// `max(paper_octaves(n), 4)`. For the paper's series lengths
    /// (150–275) the literal formula yields 1–2 octaves, whose scale range
    /// (σ ≲ 4.5 samples) cannot represent the *rough*-scale features the
    /// paper reports in Table 2 (scopes ≥ 15% of the series). Four octaves
    /// cover σ up to ≈ 25 samples (scopes up to the full series length for
    /// these datasets); the cap from `min_octave_len` still applies.
    /// Recorded as a deliberate deviation in DESIGN.md.
    pub fn auto_octaves(n: usize) -> usize {
        Self::paper_octaves(n).max(4)
    }

    /// The per-level scale multiplier `κ` with `κ^s = 2`.
    pub fn kappa(&self) -> f64 {
        2f64.powf(1.0 / self.levels_per_octave as f64)
    }
}

/// One smoothed level of an octave.
#[derive(Debug, Clone, PartialEq)]
pub struct Level {
    /// Smoothing σ in the octave's own resolution.
    pub sigma_octave: f64,
    /// Smoothing σ expressed in original-series samples (σ_octave · 2^o).
    pub sigma_absolute: f64,
    /// The smoothed samples at this octave's resolution.
    pub values: Vec<f64>,
}

/// One octave: its Gaussian levels and DoG stack.
#[derive(Debug, Clone, PartialEq)]
pub struct Octave {
    /// Octave index (0 = original resolution).
    pub index: usize,
    /// Downsampling factor relative to the input (2^index).
    pub factor: usize,
    /// `s + 3` Gaussian-smoothed levels (ascending σ).
    pub gaussians: Vec<Level>,
    /// `s + 2` DoG levels; `dog[l] = gaussians[l+1] - gaussians[l]`,
    /// attributed the σ of `gaussians[l]`.
    pub dog: Vec<Level>,
}

impl Octave {
    /// Number of samples at this octave's resolution.
    pub fn len(&self) -> usize {
        self.gaussians.first().map_or(0, |l| l.values.len())
    }

    /// Whether the octave carries no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maps an index at this octave's resolution back to the original
    /// series resolution.
    #[inline]
    pub fn to_original_index(&self, i: usize) -> usize {
        i * self.factor
    }
}

/// A fully built scale-space pyramid.
#[derive(Debug, Clone, PartialEq)]
pub struct Pyramid {
    octaves: Vec<Octave>,
    config: PyramidConfig,
    input_len: usize,
}

impl Pyramid {
    /// Builds the pyramid for a series.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn build(ts: &TimeSeries, config: &PyramidConfig) -> Result<Self, TsError> {
        config.validate()?;
        let n = ts.len();
        let requested = config
            .octaves
            .unwrap_or_else(|| PyramidConfig::auto_octaves(n));
        let s = config.levels_per_octave;
        let kappa = config.kappa();

        let mut octaves = Vec::with_capacity(requested);
        // base of octave 0: the input smoothed to base_sigma
        let base_kernel = GaussianKernel::new(config.base_sigma)?;
        let mut base = convolve_reflect(ts.values(), &base_kernel);
        let mut factor = 1usize;

        for index in 0..requested {
            if base.len() < config.min_octave_len {
                break;
            }
            // Gaussian levels: level l has sigma base_sigma * kappa^l in
            // octave resolution. Level 0 is `base` itself; level l>0 is
            // obtained by incrementally smoothing level l-1 with the sigma
            // difference (Gaussian semigroup: σ_inc² = σ_l² − σ_{l-1}²).
            let mut gaussians: Vec<Level> = Vec::with_capacity(s + 3);
            gaussians.push(Level {
                sigma_octave: config.base_sigma,
                sigma_absolute: config.base_sigma * factor as f64,
                values: base.clone(),
            });
            for l in 1..(s + 3) {
                let sigma_prev = config.base_sigma * kappa.powi(l as i32 - 1);
                let sigma_this = config.base_sigma * kappa.powi(l as i32);
                let sigma_inc = (sigma_this * sigma_this - sigma_prev * sigma_prev).sqrt();
                let kernel = GaussianKernel::new(sigma_inc)?;
                let values = convolve_reflect(&gaussians[l - 1].values, &kernel);
                gaussians.push(Level {
                    sigma_octave: sigma_this,
                    sigma_absolute: sigma_this * factor as f64,
                    values,
                });
            }
            // DoG stack
            let mut dog = Vec::with_capacity(s + 2);
            for l in 0..(s + 2) {
                let values = gaussians[l + 1]
                    .values
                    .iter()
                    .zip(&gaussians[l].values)
                    .map(|(hi, lo)| hi - lo)
                    .collect();
                dog.push(Level {
                    sigma_octave: gaussians[l].sigma_octave,
                    sigma_absolute: gaussians[l].sigma_absolute,
                    values,
                });
            }
            // Next octave: downsample the level with doubled sigma
            // (gaussians[s] has sigma base*kappa^s = 2*base).
            let next_base = downsample_half(&gaussians[s].values);
            octaves.push(Octave {
                index,
                factor,
                gaussians,
                dog,
            });
            base = next_base;
            factor *= 2;
        }

        Ok(Self {
            octaves,
            config: config.clone(),
            input_len: n,
        })
    }

    /// The octaves, finest first.
    pub fn octaves(&self) -> &[Octave] {
        &self.octaves
    }

    /// The configuration used to build this pyramid.
    pub fn config(&self) -> &PyramidConfig {
        &self.config
    }

    /// Length of the input series.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Total number of DoG sample positions across all octaves and levels —
    /// the size of the detector's search space (used in work accounting).
    pub fn dog_cells(&self) -> usize {
        self.octaves
            .iter()
            .map(|o| o.dog.iter().map(|l| l.values.len()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, period: f64) -> TimeSeries {
        TimeSeries::new(
            (0..n)
                .map(|i| (i as f64 * std::f64::consts::TAU / period).sin())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn paper_octave_formula() {
        assert_eq!(PyramidConfig::paper_octaves(150), 1); // floor(log2 150)=7
        assert_eq!(PyramidConfig::paper_octaves(275), 2); // floor(log2 275)=8
        assert_eq!(PyramidConfig::paper_octaves(270), 2);
        assert_eq!(PyramidConfig::paper_octaves(1 << 10), 4);
        assert_eq!(PyramidConfig::paper_octaves(1), 1);
        assert_eq!(PyramidConfig::paper_octaves(0), 1);
    }

    #[test]
    fn auto_octaves_guarantees_scale_coverage() {
        assert_eq!(PyramidConfig::auto_octaves(150), 4);
        assert_eq!(PyramidConfig::auto_octaves(275), 4);
        assert_eq!(PyramidConfig::auto_octaves(1 << 10), 4);
        assert_eq!(PyramidConfig::auto_octaves(1 << 12), 6);
    }

    #[test]
    fn kappa_satisfies_doubling() {
        let cfg = PyramidConfig {
            levels_per_octave: 2,
            ..Default::default()
        };
        assert!((cfg.kappa().powi(2) - 2.0).abs() < 1e-12);
        let cfg3 = PyramidConfig {
            levels_per_octave: 3,
            ..Default::default()
        };
        assert!((cfg3.kappa().powi(3) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let cfg = PyramidConfig {
            levels_per_octave: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = PyramidConfig {
            base_sigma: 0.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = PyramidConfig {
            min_octave_len: 2,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = PyramidConfig {
            octaves: Some(0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builds_requested_octave_structure() {
        let ts = sine(256, 40.0);
        let cfg = PyramidConfig {
            octaves: Some(3),
            ..Default::default()
        };
        let pyr = Pyramid::build(&ts, &cfg).unwrap();
        assert_eq!(pyr.octaves().len(), 3);
        let s = cfg.levels_per_octave;
        for (i, oct) in pyr.octaves().iter().enumerate() {
            assert_eq!(oct.index, i);
            assert_eq!(oct.factor, 1 << i);
            assert_eq!(oct.gaussians.len(), s + 3);
            assert_eq!(oct.dog.len(), s + 2);
            for l in &oct.dog {
                assert_eq!(l.values.len(), oct.len());
            }
        }
        // resolutions halve
        assert_eq!(pyr.octaves()[1].len(), 128);
        assert_eq!(pyr.octaves()[2].len(), 64);
    }

    #[test]
    fn octave_count_capped_by_min_len() {
        let ts = sine(32, 8.0);
        let cfg = PyramidConfig {
            octaves: Some(10),
            min_octave_len: 8,
            ..Default::default()
        };
        let pyr = Pyramid::build(&ts, &cfg).unwrap();
        // 32 -> 16 -> 8 -> (4 < 8 stops)
        assert_eq!(pyr.octaves().len(), 3);
    }

    #[test]
    fn sigma_increases_within_octave_and_absolute_across_octaves() {
        let ts = sine(256, 32.0);
        let pyr = Pyramid::build(
            &ts,
            &PyramidConfig {
                octaves: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        for oct in pyr.octaves() {
            for w in oct.gaussians.windows(2) {
                assert!(w[1].sigma_octave > w[0].sigma_octave);
                assert!(w[1].sigma_absolute > w[0].sigma_absolute);
            }
        }
        let o0 = &pyr.octaves()[0];
        let o1 = &pyr.octaves()[1];
        // octave 1 level 0 has the absolute sigma of octave 0's doubled base
        assert!(o1.gaussians[0].sigma_absolute > o0.gaussians[0].sigma_absolute);
    }

    #[test]
    fn dog_of_constant_series_is_zero() {
        let ts = TimeSeries::new(vec![4.2; 64]).unwrap();
        let pyr = Pyramid::build(&ts, &PyramidConfig::default()).unwrap();
        for oct in pyr.octaves() {
            for level in &oct.dog {
                for &v in &level.values {
                    assert!(v.abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn dog_responds_to_a_bump() {
        // A Gaussian bump produces non-trivial DoG response near its centre.
        let n = 128;
        let ts = TimeSeries::new(
            (0..n)
                .map(|i| {
                    let d = i as f64 - 64.0;
                    (-d * d / (2.0 * 25.0)).exp()
                })
                .collect(),
        )
        .unwrap();
        let pyr = Pyramid::build(&ts, &PyramidConfig::default()).unwrap();
        let dog = &pyr.octaves()[0].dog[1];
        let peak_region: f64 = dog.values[56..72].iter().map(|v| v.abs()).sum();
        let tail_region: f64 = dog.values[0..16].iter().map(|v| v.abs()).sum();
        assert!(peak_region > tail_region * 5.0);
    }

    #[test]
    fn to_original_index_scales_by_factor() {
        let ts = sine(128, 16.0);
        let pyr = Pyramid::build(
            &ts,
            &PyramidConfig {
                octaves: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(pyr.octaves()[1].to_original_index(5), 10);
    }

    #[test]
    fn dog_cells_counts_search_space() {
        let ts = sine(64, 16.0);
        let cfg = PyramidConfig {
            octaves: Some(2),
            levels_per_octave: 2,
            ..Default::default()
        };
        let pyr = Pyramid::build(&ts, &cfg).unwrap();
        // octave0: 64 samples * 4 dog levels; octave1: 32 * 4
        assert_eq!(pyr.dog_cells(), 64 * 4 + 32 * 4);
    }

    #[test]
    fn short_series_still_builds_one_octave() {
        let ts = sine(9, 4.0);
        let pyr = Pyramid::build(&ts, &PyramidConfig::default()).unwrap();
        assert_eq!(pyr.octaves().len(), 1);
    }
}
