//! Gradients of (smoothed) series.
//!
//! In 2D SIFT the descriptor samples gradient magnitudes and orientations
//! around the keypoint; in the 1D adaptation "the only relevant gradients
//! are along the horizontal direction" (paper §3.1.2, step 2), so a
//! gradient here is a signed scalar slope.

/// Central-difference gradient of a sample buffer.
///
/// Interior: `(v[i+1] - v[i-1]) / 2`; boundaries use one-sided differences.
/// Output has the same length as the input; a single-sample series has
/// gradient `[0.0]`.
pub fn central_gradient(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    match n {
        0 => Vec::new(),
        1 => vec![0.0],
        _ => {
            let mut out = Vec::with_capacity(n);
            out.push(values[1] - values[0]);
            for i in 1..n - 1 {
                out.push((values[i + 1] - values[i - 1]) * 0.5);
            }
            out.push(values[n - 1] - values[n - 2]);
            out
        }
    }
}

/// Gradient sampled at a fractional position via linear interpolation of
/// the central-difference gradient; positions are clamped to the buffer.
pub fn gradient_at(gradient: &[f64], pos: f64) -> f64 {
    if gradient.is_empty() {
        return 0.0;
    }
    let pos = pos.clamp(0.0, (gradient.len() - 1) as f64);
    let lo = pos.floor() as usize;
    let hi = (lo + 1).min(gradient.len() - 1);
    let frac = pos - lo as f64;
    gradient[lo] * (1.0 - frac) + gradient[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_linear_ramp_is_constant() {
        let v: Vec<f64> = (0..10).map(|i| 2.0 * i as f64).collect();
        let g = central_gradient(&v);
        assert_eq!(g.len(), 10);
        for x in g {
            assert!((x - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gradient_of_constant_is_zero() {
        let g = central_gradient(&[3.0; 7]);
        assert!(g.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn degenerate_lengths() {
        assert!(central_gradient(&[]).is_empty());
        assert_eq!(central_gradient(&[5.0]), &[0.0]);
        assert_eq!(central_gradient(&[1.0, 4.0]), &[3.0, 3.0]);
    }

    #[test]
    fn peak_has_sign_change() {
        let v = [0.0, 1.0, 2.0, 1.0, 0.0];
        let g = central_gradient(&v);
        assert!(g[1] > 0.0);
        assert_eq!(g[2], 0.0);
        assert!(g[3] < 0.0);
    }

    #[test]
    fn gradient_at_interpolates_and_clamps() {
        let g = [0.0, 2.0, 4.0];
        assert!((gradient_at(&g, 0.5) - 1.0).abs() < 1e-12);
        assert!((gradient_at(&g, 1.75) - 3.5).abs() < 1e-12);
        assert_eq!(gradient_at(&g, -3.0), 0.0);
        assert_eq!(gradient_at(&g, 99.0), 4.0);
        assert_eq!(gradient_at(&[], 1.0), 0.0);
    }
}
