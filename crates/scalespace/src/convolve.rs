//! Reflective-padding convolution.

use crate::kernel::GaussianKernel;
use sdtw_tseries::{TimeSeries, TsError};

/// Maps an out-of-range index into `[0, n)` by reflecting at the
/// boundaries (half-sample symmetric: `-1 → 0`, `n → n-1`), iterating until
/// in range. Reflection avoids the edge darkening that zero padding causes,
/// which matters because the detector must not hallucinate boundary
/// extrema.
#[inline]
fn reflect(mut idx: isize, n: usize) -> usize {
    let n = n as isize;
    debug_assert!(n > 0);
    loop {
        if idx < 0 {
            idx = -idx - 1;
        } else if idx >= n {
            idx = 2 * n - idx - 1;
        } else {
            return idx as usize;
        }
    }
}

/// Convolves raw samples with a Gaussian kernel under reflective padding.
pub fn convolve_reflect(values: &[f64], kernel: &GaussianKernel) -> Vec<f64> {
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let r = kernel.radius() as isize;
    let w = kernel.weights();
    let mut out = Vec::with_capacity(n);
    // Fast interior path: no reflection needed when the window fits.
    for i in 0..n {
        let i_isize = i as isize;
        let acc = if i_isize - r >= 0 && i_isize + r < n as isize {
            let base = (i_isize - r) as usize;
            let window = &values[base..base + w.len()];
            window.iter().zip(w.iter()).map(|(v, k)| v * k).sum()
        } else {
            let mut acc = 0.0;
            for (j, &k) in w.iter().enumerate() {
                let src = reflect(i_isize - r + j as isize, n);
                acc += values[src] * k;
            }
            acc
        };
        out.push(acc);
    }
    out
}

/// Gaussian-smooths a [`TimeSeries`], returning the smoothed series
/// (`L(·, σ)` in the paper's notation). Labels/ids are preserved.
///
/// # Errors
///
/// Propagates [`TsError::InvalidParameter`] for invalid `sigma`.
pub fn gaussian_smooth(ts: &TimeSeries, sigma: f64) -> Result<TimeSeries, TsError> {
    let kernel = GaussianKernel::new(sigma)?;
    let out = convolve_reflect(ts.values(), &kernel);
    let mut res = TimeSeries::new(out).expect("convolution of finite input is finite");
    if let Some(l) = ts.label() {
        res = res.labeled(l);
    }
    if let Some(id) = ts.id() {
        res = res.identified(id);
    }
    Ok(res)
}

/// Downsamples by keeping every second sample (SIFT-style octave
/// reduction: "we downsample the series corresponding to the doubling of σ
/// by picking every second pixel").
pub fn downsample_half(values: &[f64]) -> Vec<f64> {
    values.iter().step_by(2).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reflect_maps_into_range() {
        assert_eq!(reflect(-1, 5), 0);
        assert_eq!(reflect(-2, 5), 1);
        assert_eq!(reflect(5, 5), 4);
        assert_eq!(reflect(6, 5), 3);
        assert_eq!(reflect(2, 5), 2);
        // deep reflection (window much larger than series): half-sample
        // pattern for n=3 extends as … 0 0 1 2 2 1 0 | 0 1 2 | 2 1 0 0 …
        assert_eq!(reflect(-7, 3), 0);
        assert_eq!(reflect(9, 3), 2);
    }

    #[test]
    fn constant_series_is_fixed_point() {
        let k = GaussianKernel::new(2.0).unwrap();
        let out = convolve_reflect(&[5.0; 20], &k);
        for v in out {
            assert!((v - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn convolution_is_linear() {
        let k = GaussianKernel::new(1.3).unwrap();
        let a: Vec<f64> = (0..30).map(|i| (i as f64 / 3.0).sin()).collect();
        let b: Vec<f64> = (0..30).map(|i| (i as f64 / 5.0).cos()).collect();
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ca = convolve_reflect(&a, &k);
        let cb = convolve_reflect(&b, &k);
        let csum = convolve_reflect(&sum, &k);
        for i in 0..30 {
            assert!((csum[i] - (ca[i] + cb[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_reduces_roughness() {
        let v: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let k = GaussianKernel::new(2.0).unwrap();
        let out = convolve_reflect(&v, &k);
        let rough_in: f64 = v.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        let rough_out: f64 = out.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        assert!(rough_out < rough_in * 0.2);
    }

    #[test]
    fn preserves_mean_approximately() {
        // reflection padding conserves mass for symmetric kernels up to
        // boundary effects; on a long series the drift must be tiny
        let v: Vec<f64> = (0..200).map(|i| ((i * 7) % 13) as f64).collect();
        let k = GaussianKernel::new(3.0).unwrap();
        let out = convolve_reflect(&v, &k);
        let m_in = v.iter().sum::<f64>() / v.len() as f64;
        let m_out = out.iter().sum::<f64>() / out.len() as f64;
        assert!((m_in - m_out).abs() < 0.15, "in={m_in} out={m_out}");
    }

    #[test]
    fn short_series_and_len_one() {
        let k = GaussianKernel::new(4.0).unwrap(); // radius 12 >> len
        let out = convolve_reflect(&[1.0, 2.0], &k);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| v.is_finite() && *v >= 1.0 && *v <= 2.0));
        let single = convolve_reflect(&[3.0], &k);
        assert!((single[0] - 3.0).abs() < 1e-12);
        let empty = convolve_reflect(&[], &k);
        assert!(empty.is_empty());
    }

    #[test]
    fn gaussian_smooth_preserves_metadata() {
        let ts = TimeSeries::with_label(vec![1.0, 2.0, 3.0], 2)
            .unwrap()
            .identified(5);
        let sm = gaussian_smooth(&ts, 1.0).unwrap();
        assert_eq!(sm.label(), Some(2));
        assert_eq!(sm.id(), Some(5));
        assert_eq!(sm.len(), 3);
        assert!(gaussian_smooth(&ts, -1.0).is_err());
    }

    #[test]
    fn downsample_keeps_even_indices() {
        assert_eq!(
            downsample_half(&[0.0, 1.0, 2.0, 3.0, 4.0]),
            &[0.0, 2.0, 4.0]
        );
        assert_eq!(downsample_half(&[7.0]), &[7.0]);
        assert!(downsample_half(&[]).is_empty());
    }
}
