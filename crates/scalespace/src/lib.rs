//! # sdtw-scalespace — 1D Gaussian scale-space substrate
//!
//! The sDTW salient-feature detector (paper §3.1.2, step 1) searches for
//! points of interest `⟨x, σ⟩` across multiple scales of the given time
//! series. This crate builds the machinery behind that search:
//!
//! * [`kernel::GaussianKernel`] — sampled, normalised Gaussian kernels
//!   `G(x, σ)`;
//! * [`convolve`] — reflective-padding convolution (`L(i, σ) = G(i, σ) ∗ X(i)`);
//! * [`pyramid`] — the octave/level scale-space: the series is incrementally
//!   reduced into `o` octaves (each a doubling of the smoothing rate), each
//!   octave divided into `s` levels by repeated convolution with parameter
//!   `κ` where `κ^s = 2`, and adjacent levels subtracted to obtain
//!   difference-of-Gaussian (DoG) series `D(i, σ) = L(i, κσ) − L(i, σ)`;
//! * [`gradient`] — central-difference gradients of smoothed series, used by
//!   descriptor extraction.
//!
//! The paper's defaults (`o = ⌊log2 N⌋ − 6` octaves, `s = 2` levels) are the
//! defaults of [`pyramid::PyramidConfig`].
//!
//! # Example
//!
//! ```
//! use sdtw_tseries::TimeSeries;
//! use sdtw_scalespace::pyramid::{Pyramid, PyramidConfig};
//!
//! let ts = TimeSeries::new((0..256).map(|i| (i as f64 / 20.0).sin()).collect()).unwrap();
//! let pyr = Pyramid::build(&ts, &PyramidConfig::default()).unwrap();
//! assert!(!pyr.octaves().is_empty());
//! // every octave halves the resolution of the previous one
//! for w in pyr.octaves().windows(2) {
//!     assert!(w[1].len() <= w[0].len());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convolve;
pub mod gradient;
pub mod kernel;
pub mod pyramid;

pub use kernel::GaussianKernel;
pub use pyramid::{Pyramid, PyramidConfig};
