//! Sampled Gaussian kernels.

use sdtw_tseries::TsError;

/// A sampled, normalised 1D Gaussian kernel `G(x, σ)`.
///
/// The kernel is sampled at integer offsets `-r ..= r` with
/// `r = ceil(3σ)` (three standard deviations cover ≈ 99.73% of the mass,
/// the same coverage argument the paper uses to define feature scopes) and
/// renormalised so the weights sum to exactly 1 — this makes convolution of
/// a constant series exactly the same constant, which downstream property
/// tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianKernel {
    sigma: f64,
    radius: usize,
    weights: Vec<f64>,
}

impl GaussianKernel {
    /// Builds a kernel for standard deviation `sigma`.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] when `sigma` is not finite and strictly
    /// positive.
    pub fn new(sigma: f64) -> Result<Self, TsError> {
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(TsError::InvalidParameter {
                name: "sigma",
                reason: format!("must be finite and > 0, got {sigma}"),
            });
        }
        let radius = (3.0 * sigma).ceil() as usize;
        let radius = radius.max(1);
        let denom = 2.0 * sigma * sigma;
        let mut weights = Vec::with_capacity(2 * radius + 1);
        for off in -(radius as isize)..=(radius as isize) {
            let x = off as f64;
            weights.push((-(x * x) / denom).exp());
        }
        let sum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        Ok(Self {
            sigma,
            radius,
            weights,
        })
    }

    /// Standard deviation the kernel was built for.
    #[inline]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Half-width of the support (`weights.len() == 2*radius + 1`).
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Normalised weights, centre at index `radius`.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Evaluates the *continuous* (unnormalised-by-sampling) Gaussian weight
    /// `exp(-x² / 2σ²)` at offset `x`. Used by descriptor extraction, which
    /// weights gradient magnitudes by distance from the keypoint.
    #[inline]
    pub fn continuous_weight(sigma: f64, x: f64) -> f64 {
        (-(x * x) / (2.0 * sigma * sigma)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_sigma() {
        assert!(GaussianKernel::new(0.0).is_err());
        assert!(GaussianKernel::new(-1.0).is_err());
        assert!(GaussianKernel::new(f64::NAN).is_err());
        assert!(GaussianKernel::new(f64::INFINITY).is_err());
    }

    #[test]
    fn weights_sum_to_one() {
        for sigma in [0.3, 0.8, 1.6, 3.2, 12.8] {
            let k = GaussianKernel::new(sigma).unwrap();
            let sum: f64 = k.weights().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "sigma={sigma}, sum={sum}");
        }
    }

    #[test]
    fn weights_are_symmetric_and_peak_at_centre() {
        let k = GaussianKernel::new(2.0).unwrap();
        let w = k.weights();
        let r = k.radius();
        assert_eq!(w.len(), 2 * r + 1);
        for i in 0..r {
            assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-15);
        }
        let peak = w[r];
        assert!(w.iter().all(|&x| x <= peak));
    }

    #[test]
    fn radius_grows_with_sigma() {
        let small = GaussianKernel::new(0.5).unwrap();
        let large = GaussianKernel::new(4.0).unwrap();
        assert!(large.radius() > small.radius());
        assert_eq!(large.radius(), 12); // ceil(3*4)
    }

    #[test]
    fn tiny_sigma_still_has_radius_one() {
        let k = GaussianKernel::new(0.05).unwrap();
        assert_eq!(k.radius(), 1);
        // essentially a delta: centre weight dominates
        assert!(k.weights()[1] > 0.999);
    }

    #[test]
    fn continuous_weight_decays() {
        let w0 = GaussianKernel::continuous_weight(2.0, 0.0);
        let w1 = GaussianKernel::continuous_weight(2.0, 1.0);
        let w2 = GaussianKernel::continuous_weight(2.0, 4.0);
        assert_eq!(w0, 1.0);
        assert!(w1 < w0 && w2 < w1);
    }
}
