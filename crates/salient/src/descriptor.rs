//! Temporal feature descriptors (paper §3.1.2, step 2).
//!
//! The 1D reduction of SIFT's descriptor: superimpose `2a` cells along time
//! around the keypoint, at the keypoint's own octave resolution; for each
//! cell accumulate a 2-bin gradient histogram — total magnitude of positive
//! slopes and total magnitude of negative slopes (the only two
//! "orientations" a 1D gradient has). Magnitudes are Gaussian-weighted by
//! distance from the keypoint so the descriptor changes smoothly as the
//! window shifts. Total length is `2a × 2 = bins`.

use crate::config::DescriptorConfig;
use crate::keypoint::Keypoint;
use sdtw_scalespace::gradient::central_gradient;
use sdtw_scalespace::kernel::GaussianKernel;
use sdtw_scalespace::Pyramid;

/// Builds the descriptor for one keypoint from the pyramid it was detected
/// in. Returns `bins` values (non-negative; unit-L2 when
/// `amplitude_invariant`).
///
/// Sampling happens on the Gaussian level matching the keypoint's DoG level
/// in the keypoint's octave — so a fixed `bins` covers wider original-time
/// ranges for coarser keypoints, which is exactly the multi-scale context
/// behaviour Figure 6 of the paper illustrates.
pub fn build_descriptor(
    pyramid: &Pyramid,
    keypoint: &Keypoint,
    config: &DescriptorConfig,
) -> Vec<f64> {
    let octave = &pyramid.octaves()[keypoint.octave];
    // The DoG level l was computed from gaussians[l] and gaussians[l+1];
    // sample gradients on the lower one (σ matching the reported scale).
    let smoothed = &octave.gaussians[keypoint.level.min(octave.gaussians.len() - 1)].values;
    let grad = central_gradient(smoothed);
    let n = grad.len();

    let cells = config.cells();
    let width = config.samples_per_cell;
    let half_span = (cells * width) as f64 / 2.0;
    // Gaussian weighting window: σ_w = half the descriptor span (SIFT uses
    // one half of the descriptor window width).
    let weight_sigma = half_span.max(1.0) / 2.0;

    let centre = keypoint.octave_position as f64;
    let mut desc = vec![0.0; config.bins];
    for c in 0..cells {
        // cell c spans [centre - half_span + c*width, ... + width)
        let cell_start = centre - half_span + (c * width) as f64;
        for s in 0..width {
            let pos = cell_start + s as f64 + 0.5;
            // clamp sampling to the series (boundary cells re-read edges)
            let idx = pos.round().clamp(0.0, (n.max(1) - 1) as f64) as usize;
            let g = if n == 0 { 0.0 } else { grad[idx] };
            let w = GaussianKernel::continuous_weight(weight_sigma, pos - centre);
            let mag = g.abs() * w;
            if g >= 0.0 {
                desc[2 * c] += mag;
            } else {
                desc[2 * c + 1] += mag;
            }
        }
    }

    if config.amplitude_invariant {
        normalize(&mut desc, config.clamp);
    }
    desc
}

/// L2-normalises in place; optionally clamps components and renormalises
/// (SIFT's robustness step). A zero vector is left unchanged.
fn normalize(desc: &mut [f64], clamp: Option<f64>) {
    let norm = |d: &[f64]| d.iter().map(|v| v * v).sum::<f64>().sqrt();
    let n0 = norm(desc);
    if n0 == 0.0 {
        return;
    }
    for v in desc.iter_mut() {
        *v /= n0;
    }
    if let Some(c) = clamp {
        let mut clipped = false;
        for v in desc.iter_mut() {
            if *v > c {
                *v = c;
                clipped = true;
            }
        }
        if clipped {
            let n1 = norm(desc);
            if n1 > 0.0 {
                for v in desc.iter_mut() {
                    *v /= n1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SalientConfig;
    use crate::detect::detect_keypoints;

    use sdtw_tseries::TimeSeries;

    fn bump(n: usize, centre: f64, width: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let d = (i as f64 - centre) / width;
                amp * (-d * d / 2.0).exp()
            })
            .collect()
    }

    fn strongest_peak_descriptor(values: Vec<f64>, cfg: &SalientConfig) -> (Keypoint, Vec<f64>) {
        strongest_descriptor_near(values, cfg, None)
    }

    /// Strongest keypoint (optionally restricted to ±12 samples of a known
    /// feature centre, so tests compare like-for-like keypoints).
    fn strongest_descriptor_near(
        values: Vec<f64>,
        cfg: &SalientConfig,
        near: Option<usize>,
    ) -> (Keypoint, Vec<f64>) {
        let ts = TimeSeries::new(values).unwrap();
        let pyr = Pyramid::build(&ts, &cfg.pyramid).unwrap();
        let kps = detect_keypoints(&pyr, cfg, ts.max() - ts.min());
        let kp = kps
            .into_iter()
            .filter(|k| near.is_none_or(|c| (k.position as i64 - c as i64).unsigned_abs() <= 12))
            .max_by(|a, b| {
                a.response
                    .abs()
                    .partial_cmp(&b.response.abs())
                    .expect("finite")
            })
            .expect("keypoints exist");
        let d = build_descriptor(&pyr, &kp, &cfg.descriptor);
        (kp, d)
    }

    #[test]
    fn descriptor_has_configured_length() {
        for bins in [4usize, 8, 16, 32, 64, 128] {
            let cfg = SalientConfig::default().with_descriptor_bins(bins);
            let (_, d) = strongest_peak_descriptor(bump(256, 128.0, 8.0, 1.0), &cfg);
            assert_eq!(d.len(), bins);
        }
    }

    #[test]
    fn descriptor_is_unit_norm_when_invariant() {
        let cfg = SalientConfig::default();
        let (_, d) = strongest_peak_descriptor(bump(256, 128.0, 8.0, 1.0), &cfg);
        let norm: f64 = d.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "norm = {norm}");
        assert!(d.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn amplitude_invariance_on_and_off() {
        let cfg_on = SalientConfig::default();
        let mut cfg_off = SalientConfig::default();
        cfg_off.descriptor.amplitude_invariant = false;

        let (_, d1_on) = strongest_peak_descriptor(bump(256, 128.0, 8.0, 1.0), &cfg_on);
        let (_, d2_on) = strongest_peak_descriptor(bump(256, 128.0, 8.0, 3.0), &cfg_on);
        let dist_on: f64 = d1_on
            .iter()
            .zip(&d2_on)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist_on < 0.05, "normalised descriptors differ: {dist_on}");

        let (_, d1_off) = strongest_peak_descriptor(bump(256, 128.0, 8.0, 1.0), &cfg_off);
        let (_, d2_off) = strongest_peak_descriptor(bump(256, 128.0, 8.0, 3.0), &cfg_off);
        let dist_off: f64 = d1_off
            .iter()
            .zip(&d2_off)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(
            dist_off > dist_on * 5.0,
            "raw descriptors should diverge: {dist_off} vs {dist_on}"
        );
    }

    #[test]
    fn shift_invariance_of_descriptor() {
        // the same feature at a different position produces (nearly) the
        // same descriptor (comparing the dominant keypoint *of the bump*,
        // not the globally strongest one, which may be a side lobe)
        let cfg = SalientConfig::default();
        let (_, d1) = strongest_descriptor_near(bump(256, 80.0, 8.0, 1.0), &cfg, Some(80));
        let (_, d2) = strongest_descriptor_near(bump(256, 150.0, 8.0, 1.0), &cfg, Some(150));
        let dist: f64 = d1
            .iter()
            .zip(&d2)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist < 0.1, "shifted descriptors differ by {dist}");
    }

    #[test]
    fn different_shapes_have_different_descriptors() {
        let cfg = SalientConfig::default();
        let (_, d_bump) = strongest_peak_descriptor(bump(256, 128.0, 8.0, 1.0), &cfg);
        // a ramp feature: rising sawtooth has asymmetric slopes
        let ramp: Vec<f64> = (0..256)
            .map(|i| {
                let d = i as f64 - 128.0;
                if (-24.0..0.0).contains(&d) {
                    1.0 + d / 24.0
                } else if (0.0..4.0).contains(&d) {
                    1.0 - d / 4.0
                } else {
                    0.0
                }
            })
            .collect();
        let (_, d_ramp) = strongest_peak_descriptor(ramp, &cfg);
        let dist: f64 = d_bump
            .iter()
            .zip(&d_ramp)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.15, "distinct shapes too close: {dist}");
    }

    #[test]
    fn clamp_reduces_dominance_and_keeps_unit_norm() {
        // SIFT semantics: one clamp + renormalise pass. The dominant
        // component may still exceed the clamp after renormalisation, but
        // the *relative* weight of the small components must grow.
        let mut unclamped = vec![10.0, 0.1, 0.1, 0.1];
        normalize(&mut unclamped, None);
        let mut clamped = vec![10.0, 0.1, 0.1, 0.1];
        normalize(&mut clamped, Some(0.2));
        let norm: f64 = clamped.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        assert!(clamped[1] > unclamped[1] * 3.0, "small components lifted");
        assert!(clamped[0] < unclamped[0], "dominant component reduced");
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut d = vec![0.0; 8];
        normalize(&mut d, Some(0.2));
        assert!(d.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn descriptor_near_boundary_does_not_panic() {
        let cfg = SalientConfig::default();
        let ts = TimeSeries::new(bump(64, 3.0, 2.0, 1.0)).unwrap();
        let pyr = Pyramid::build(&ts, &cfg.pyramid).unwrap();
        let kps = detect_keypoints(&pyr, &cfg, ts.max() - ts.min());
        for kp in &kps {
            let d = build_descriptor(&pyr, kp, &cfg.descriptor);
            assert_eq!(d.len(), cfg.descriptor.bins);
            assert!(d.iter().all(|v| v.is_finite()));
        }
    }
}
