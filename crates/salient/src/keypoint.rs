//! Keypoint representation.

use serde::{Deserialize, Serialize};

/// Series-centric polarity of a keypoint. With `D = L(κσ) − L(σ)`, a
/// locally *elevated* region of the series (a peak, the white region of the
/// paper's Figure 4(b)) produces a DoG **minimum**, and a locally depressed
/// region (a dip, dark in Figure 4(b)) a DoG **maximum** — so the mapping
/// is inverted relative to the DoG sign. Both polarities carry alignment
/// information in 1D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Polarity {
    /// Locally elevated series region (DoG minimum, `response < 0`).
    Peak,
    /// Locally depressed series region (DoG maximum, `response > 0`).
    Dip,
}

/// Coarse scale class of a feature — the paper's fine / medium / rough
/// reporting buckets of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScaleClass {
    /// Small temporal features located near the original resolution.
    Fine,
    /// Mid-size features.
    Medium,
    /// Large features found at strongly reduced scales.
    Rough,
}

impl ScaleClass {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ScaleClass::Fine => "fine",
            ScaleClass::Medium => "medium",
            ScaleClass::Rough => "rough",
        }
    }
}

/// A detected salient point `⟨x, σ⟩` (paper §3.1.2, step 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Keypoint {
    /// Position in original-series samples.
    pub position: usize,
    /// Position at the octave's own resolution (used by the descriptor).
    pub octave_position: usize,
    /// Octave index the keypoint was found in.
    pub octave: usize,
    /// DoG level within the octave.
    pub level: usize,
    /// Absolute scale σ, in original-series samples.
    pub sigma: f64,
    /// DoG response at the keypoint (signed).
    pub response: f64,
    /// Peak or dip.
    pub polarity: Polarity,
}

impl Keypoint {
    /// Scope radius in samples: `scope_sigmas · σ` (the paper's `3σ`).
    pub fn scope_radius(&self, scope_sigmas: f64) -> f64 {
        scope_sigmas * self.sigma
    }

    /// Scope as a clamped inclusive sample interval `[start, end]` on a
    /// series of length `n`.
    pub fn scope_bounds(&self, scope_sigmas: f64, n: usize) -> (usize, usize) {
        let r = self.scope_radius(scope_sigmas);
        let start = (self.position as f64 - r).max(0.0).floor() as usize;
        let end = (self.position as f64 + r).min((n - 1) as f64).ceil() as usize;
        (start, end.min(n - 1))
    }

    /// Scope length in samples (`end - start + 1` of the unclamped scope):
    /// the `scope(f)` quantity used by the matcher's alignment score.
    pub fn scope_len(&self, scope_sigmas: f64) -> f64 {
        2.0 * self.scope_radius(scope_sigmas) + 1.0
    }

    /// Classifies this keypoint into the paper's fine/medium/rough
    /// reporting buckets (Table 2) by its *absolute* scale: σ < 4 samples
    /// is fine (scope under ~25 samples), σ < 10 medium, anything coarser
    /// rough. Absolute-σ bucketing is robust against octave aliasing (the
    /// same σ is representable in two adjacent octaves) and maps 1:1 onto
    /// the default pyramid's octaves for canonically attributed points.
    pub fn scale_class(&self) -> ScaleClass {
        if self.sigma < 4.0 {
            ScaleClass::Fine
        } else if self.sigma < 10.0 {
            ScaleClass::Medium
        } else {
            ScaleClass::Rough
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp(position: usize, sigma: f64) -> Keypoint {
        Keypoint {
            position,
            octave_position: position,
            octave: 0,
            level: 1,
            sigma,
            response: 1.0,
            polarity: Polarity::Peak,
        }
    }

    #[test]
    fn scope_radius_is_sigma_scaled() {
        let k = kp(50, 2.0);
        assert_eq!(k.scope_radius(3.0), 6.0);
        assert_eq!(k.scope_len(3.0), 13.0);
    }

    #[test]
    fn scope_bounds_clamp_to_series() {
        let k = kp(2, 2.0);
        let (s, e) = k.scope_bounds(3.0, 100);
        assert_eq!(s, 0);
        assert_eq!(e, 8);
        let k = kp(98, 2.0);
        let (s, e) = k.scope_bounds(3.0, 100);
        assert_eq!(s, 92);
        assert_eq!(e, 99);
    }

    #[test]
    fn scale_class_follows_absolute_sigma() {
        assert_eq!(kp(50, 1.6).scale_class(), ScaleClass::Fine);
        assert_eq!(kp(50, 3.2).scale_class(), ScaleClass::Fine);
        assert_eq!(kp(50, 4.52).scale_class(), ScaleClass::Medium);
        assert_eq!(kp(50, 9.05).scale_class(), ScaleClass::Medium);
        assert_eq!(kp(50, 12.8).scale_class(), ScaleClass::Rough);
        assert_eq!(kp(50, 25.6).scale_class(), ScaleClass::Rough);
        // octave aliasing must not change the bucket
        let mut aliased = kp(50, 6.4);
        aliased.octave = 2;
        assert_eq!(aliased.scale_class(), ScaleClass::Medium);
    }

    #[test]
    fn scale_class_names() {
        assert_eq!(ScaleClass::Fine.name(), "fine");
        assert_eq!(ScaleClass::Medium.name(), "medium");
        assert_eq!(ScaleClass::Rough.name(), "rough");
    }
}
