//! Salient features: keypoint + scope + amplitude + descriptor, and the
//! top-level extraction entry point.

use crate::config::SalientConfig;
use crate::descriptor::build_descriptor;
use crate::detect::detect_keypoints;
use crate::keypoint::{Keypoint, ScaleClass};
use sdtw_scalespace::Pyramid;
use sdtw_tseries::{TimeSeries, TsError};
use serde::{Deserialize, Serialize};

/// A fully described salient feature of one time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SalientFeature {
    /// The underlying keypoint `⟨x, σ⟩`.
    pub keypoint: Keypoint,
    /// Scope start (inclusive, clamped to the series).
    pub scope_start: usize,
    /// Scope end (inclusive, clamped to the series).
    pub scope_end: usize,
    /// Unclamped scope length `2·(scope_sigmas·σ)+1` — the `scope(f)`
    /// quantity of the matcher's alignment score.
    pub scope_len: f64,
    /// Mean raw series value within the scope — the feature "amplitude"
    /// used by the matcher's `τ_a` bound and `Δ_amp`.
    pub amplitude: f64,
    /// The `2a × 2` gradient descriptor.
    pub descriptor: Vec<f64>,
}

impl SalientFeature {
    /// Centre position (samples) — `center(f)` in the paper's scoring.
    pub fn center(&self) -> f64 {
        self.keypoint.position as f64
    }

    /// Scale class (fine/medium/rough) of the underlying keypoint.
    pub fn scale_class(&self) -> ScaleClass {
        self.keypoint.scale_class()
    }
}

/// The features of one series plus the context needed to interpret them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSet {
    /// Length of the series the features were extracted from.
    pub series_len: usize,
    /// The features, sorted by position.
    pub features: Vec<SalientFeature>,
}

impl FeatureSet {
    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when no features were found.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Counts features per scale class (fine, medium, rough) — the Table 2
    /// reporting primitive.
    pub fn count_by_scale(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for f in &self.features {
            match f.scale_class() {
                ScaleClass::Fine => counts[0] += 1,
                ScaleClass::Medium => counts[1] += 1,
                ScaleClass::Rough => counts[2] += 1,
            }
        }
        counts
    }
}

/// Extracts the salient features of a series (paper §3.1.2 end-to-end:
/// pyramid → ε-relaxed detection → contrast filter → descriptors → scopes
/// and amplitudes).
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn extract_features(
    ts: &TimeSeries,
    config: &SalientConfig,
) -> Result<Vec<SalientFeature>, TsError> {
    config.validate()?;
    let pyramid = Pyramid::build(ts, &config.pyramid)?;
    let keypoints = detect_keypoints(&pyramid, config, ts.max() - ts.min());
    let n = ts.len();
    let features = keypoints
        .into_iter()
        .map(|kp| {
            let (scope_start, scope_end) = kp.scope_bounds(config.scope_sigmas, n);
            let scope_len = kp.scope_len(config.scope_sigmas);
            let amplitude = ts.window_mean(scope_start, scope_end + 1);
            let descriptor = build_descriptor(&pyramid, &kp, &config.descriptor);
            SalientFeature {
                keypoint: kp,
                scope_start,
                scope_end,
                scope_len,
                amplitude,
                descriptor,
            }
        })
        .collect();
    Ok(features)
}

/// Extracts features and wraps them in a [`FeatureSet`].
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn extract_feature_set(ts: &TimeSeries, config: &SalientConfig) -> Result<FeatureSet, TsError> {
    Ok(FeatureSet {
        series_len: ts.len(),
        features: extract_features(ts, config)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_bumps(n: usize) -> TimeSeries {
        TimeSeries::new(
            (0..n)
                .map(|i| {
                    let d1 = (i as f64 - 60.0) / 6.0;
                    let d2 = (i as f64 - 180.0) / 14.0;
                    (-d1 * d1 / 2.0).exp() + 0.8 * (-d2 * d2 / 2.0).exp()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn extraction_finds_both_bumps() {
        let ts = two_bumps(256);
        let feats = extract_features(&ts, &SalientConfig::default()).unwrap();
        assert!(feats.iter().any(|f| (f.center() - 60.0).abs() <= 8.0));
        assert!(feats.iter().any(|f| (f.center() - 180.0).abs() <= 16.0));
    }

    #[test]
    fn scopes_are_clamped_and_ordered() {
        let ts = two_bumps(256);
        let feats = extract_features(&ts, &SalientConfig::default()).unwrap();
        for f in &feats {
            assert!(f.scope_start <= f.scope_end);
            assert!(f.scope_end < 256);
            assert!(f.scope_len >= 1.0);
            assert!(f.amplitude.is_finite());
            assert_eq!(f.descriptor.len(), 64);
        }
        for w in feats.windows(2) {
            assert!(w[0].keypoint.position <= w[1].keypoint.position);
        }
    }

    #[test]
    fn amplitude_reflects_local_level() {
        let ts = two_bumps(256);
        let feats = extract_features(&ts, &SalientConfig::default()).unwrap();
        // a feature on the taller bump has higher amplitude than the
        // series mean
        let tall = feats
            .iter()
            .filter(|f| (f.center() - 60.0).abs() <= 6.0)
            .max_by(|a, b| a.amplitude.partial_cmp(&b.amplitude).expect("finite"))
            .expect("feature near tall bump");
        assert!(tall.amplitude > ts.mean());
    }

    #[test]
    fn feature_set_counts_by_scale() {
        let ts = two_bumps(256);
        let cfg = SalientConfig::default();
        let set = extract_feature_set(&ts, &cfg).unwrap();
        let counts = set.count_by_scale();
        assert_eq!(counts.iter().sum::<usize>(), set.len());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let ts = two_bumps(64);
        let cfg = SalientConfig {
            epsilon: 2.0,
            ..Default::default()
        };
        assert!(extract_features(&ts, &cfg).is_err());
    }

    #[test]
    fn busy_series_yields_more_fine_features_than_smooth() {
        let busy = TimeSeries::new(
            (0..256)
                .map(|i| (i as f64 / 3.0).sin() + 0.5 * (i as f64 / 7.0).cos())
                .collect(),
        )
        .unwrap();
        let smooth = TimeSeries::new((0..256).map(|i| (i as f64 / 60.0).sin()).collect()).unwrap();
        // strict extremality isolates the scale-attribution claim from the
        // ε-relaxed plateau acceptance (which admits near-extremal runs on
        // smooth series by design)
        let cfg = SalientConfig {
            epsilon: 0.0,
            ..Default::default()
        };
        let b = extract_feature_set(&busy, &cfg).unwrap();
        let s = extract_feature_set(&smooth, &cfg).unwrap();
        let b_counts = b.count_by_scale();
        let s_counts = s.count_by_scale();
        assert!(
            b_counts[0] > s_counts[0],
            "busy fine {} <= smooth fine {}",
            b_counts[0],
            s_counts[0]
        );
    }

    #[test]
    fn serde_round_trip_of_feature_set() {
        let ts = two_bumps(128);
        let cfg = SalientConfig::default();
        let set = extract_feature_set(&ts, &cfg).unwrap();
        let json = serde_json::to_string(&set).unwrap();
        let back: FeatureSet = serde_json::from_str(&json).unwrap();
        // JSON float formatting is not guaranteed bit-exact; compare
        // structure exactly and floats approximately.
        assert_eq!(set.series_len, back.series_len);
        assert_eq!(set.len(), back.len());
        for (a, b) in set.features.iter().zip(&back.features) {
            assert_eq!(a.keypoint.position, b.keypoint.position);
            assert_eq!(a.keypoint.polarity, b.keypoint.polarity);
            assert_eq!((a.scope_start, a.scope_end), (b.scope_start, b.scope_end));
            assert!((a.amplitude - b.amplitude).abs() < 1e-9);
            for (x, y) in a.descriptor.iter().zip(&b.descriptor) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
