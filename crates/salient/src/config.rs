//! Configuration of the salient feature detector and descriptor.

use sdtw_scalespace::PyramidConfig;
use sdtw_tseries::TsError;
use serde::{Deserialize, Serialize};

/// Descriptor extraction parameters (paper §3.1.2, step 2 and §4.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DescriptorConfig {
    /// Total descriptor length (`2a × 2` in the paper's notation). Must be
    /// even and at least 4. The paper's experiments default to 64 and
    /// sweep 4…128 in Figure 18.
    pub bins: usize,
    /// Samples per histogram cell, measured at the keypoint's octave
    /// resolution (the analogue of SIFT's 4-pixel cells). Longer
    /// descriptors therefore cover wider temporal context — exactly the
    /// trade-off Figure 18 studies.
    pub samples_per_cell: usize,
    /// Normalise descriptors to unit L2 norm, making them invariant to
    /// amplitude scaling. One of the paper's independently controllable
    /// invariances.
    pub amplitude_invariant: bool,
    /// After normalisation, clamp each component to this value and
    /// renormalise (SIFT's robustness trick against single dominant
    /// gradients). Ignored when `amplitude_invariant` is false.
    pub clamp: Option<f64>,
}

impl Default for DescriptorConfig {
    fn default() -> Self {
        Self {
            bins: 64,
            samples_per_cell: 4,
            amplitude_invariant: true,
            clamp: Some(0.2),
        }
    }
}

impl DescriptorConfig {
    /// Number of cells (`2a`).
    pub fn cells(&self) -> usize {
        self.bins / 2
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] for odd or too-small bin counts, zero
    /// cell width, or a non-positive clamp.
    pub fn validate(&self) -> Result<(), TsError> {
        if self.bins < 4 || !self.bins.is_multiple_of(2) {
            return Err(TsError::InvalidParameter {
                name: "bins",
                reason: format!("must be even and >= 4, got {}", self.bins),
            });
        }
        if self.samples_per_cell == 0 {
            return Err(TsError::InvalidParameter {
                name: "samples_per_cell",
                reason: "must be at least 1".into(),
            });
        }
        if let Some(c) = self.clamp {
            if !c.is_finite() || c <= 0.0 {
                return Err(TsError::InvalidParameter {
                    name: "clamp",
                    reason: format!("must be finite and > 0, got {c}"),
                });
            }
        }
        Ok(())
    }
}

/// Full configuration of salient feature extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SalientConfig {
    /// Scale-space pyramid parameters (octaves, levels, base σ).
    pub pyramid: PyramidConfig,
    /// The ε of the relaxed extremum test: accept a candidate whose
    /// response is ≥ `(1 − ε)×` every neighbour's. The paper's experiments
    /// use 0.96% (0.0096).
    pub epsilon: f64,
    /// Minimum |DoG response| for a keypoint, as a fraction of the series'
    /// value range — the low-contrast filter of SIFT step 2.
    pub contrast_threshold: f64,
    /// Scope radius in units of σ. The paper fixes 3 ("3 standard
    /// deviations would cover ~99.73% of the original time points").
    pub scope_sigmas: f64,
    /// Descriptor parameters.
    pub descriptor: DescriptorConfig,
}

impl Default for SalientConfig {
    fn default() -> Self {
        Self {
            pyramid: PyramidConfig::default(),
            epsilon: 0.0096,
            contrast_threshold: 1e-3,
            scope_sigmas: 3.0,
            descriptor: DescriptorConfig::default(),
        }
    }
}

impl SalientConfig {
    /// Validates the configuration (including the nested pyramid and
    /// descriptor configs).
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] on any out-of-domain field.
    pub fn validate(&self) -> Result<(), TsError> {
        self.pyramid.validate()?;
        self.descriptor.validate()?;
        if !(0.0..1.0).contains(&self.epsilon) {
            return Err(TsError::InvalidParameter {
                name: "epsilon",
                reason: format!("must be in [0, 1), got {}", self.epsilon),
            });
        }
        if !self.contrast_threshold.is_finite() || self.contrast_threshold < 0.0 {
            return Err(TsError::InvalidParameter {
                name: "contrast_threshold",
                reason: format!("must be finite and >= 0, got {}", self.contrast_threshold),
            });
        }
        if !self.scope_sigmas.is_finite() || self.scope_sigmas <= 0.0 {
            return Err(TsError::InvalidParameter {
                name: "scope_sigmas",
                reason: format!("must be finite and > 0, got {}", self.scope_sigmas),
            });
        }
        Ok(())
    }

    /// Convenience: the default configuration with a different descriptor
    /// length (the Figure 18 sweep knob).
    #[must_use]
    pub fn with_descriptor_bins(mut self, bins: usize) -> Self {
        self.descriptor.bins = bins;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SalientConfig::default().validate().unwrap();
    }

    #[test]
    fn default_descriptor_is_papers_64_bins() {
        let cfg = SalientConfig::default();
        assert_eq!(cfg.descriptor.bins, 64);
        assert_eq!(cfg.descriptor.cells(), 32);
        assert!((cfg.epsilon - 0.0096).abs() < 1e-12);
        assert_eq!(cfg.scope_sigmas, 3.0);
    }

    #[test]
    fn descriptor_rejects_bad_bins() {
        for bins in [0, 2, 3, 5, 7] {
            let cfg = DescriptorConfig {
                bins,
                ..Default::default()
            };
            assert!(cfg.validate().is_err(), "bins={bins} should be rejected");
        }
        let cfg = DescriptorConfig {
            bins: 4,
            ..Default::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn descriptor_rejects_zero_cell_width_and_bad_clamp() {
        let cfg = DescriptorConfig {
            samples_per_cell: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = DescriptorConfig {
            clamp: Some(0.0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = DescriptorConfig {
            clamp: None,
            ..Default::default()
        };
        cfg.validate().unwrap();
    }

    #[test]
    fn salient_rejects_bad_epsilon_and_thresholds() {
        let cfg = SalientConfig {
            epsilon: 1.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SalientConfig {
            epsilon: -0.1,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SalientConfig {
            contrast_threshold: f64::NAN,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SalientConfig {
            scope_sigmas: 0.0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn with_descriptor_bins_builder() {
        let cfg = SalientConfig::default().with_descriptor_bins(8);
        assert_eq!(cfg.descriptor.bins, 8);
        cfg.validate().unwrap();
    }

    #[test]
    fn serde_round_trip() {
        let cfg = SalientConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SalientConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
