//! ε-relaxed scale-space extremum detection (paper §3.1.2, step 1).
//!
//! Classic SIFT keeps a DoG sample only when it strictly dominates all its
//! space/scale neighbours. The paper argues that for DTW-band construction
//! over-pruning is harmful — nearby features "may prune each other" — and
//! instead accepts `⟨x, σ⟩` when its response is at least `(1 − ε)×` each
//! neighbour's. We run that relaxed test for maxima on the DoG stack and,
//! symmetrically, for minima (dips matter as much as peaks in 1D), then
//! drop low-contrast candidates.

use crate::config::SalientConfig;
use crate::keypoint::{Keypoint, Polarity};
use sdtw_scalespace::Pyramid;

/// Relaxed dominance test for a maximum: `v` must be ≥ `(1−ε)·u` for every
/// neighbour `u`. Negative neighbours are automatically dominated (the test
/// is on signed responses, exactly as stated in the paper).
#[inline]
fn dominates_max(v: f64, neighbours: &[f64], eps: f64) -> bool {
    neighbours.iter().all(|&u| v >= (1.0 - eps) * u)
}

/// Relaxed dominance test for a minimum: mirror image of `dominates_max`.
#[inline]
fn dominates_min(v: f64, neighbours: &[f64], eps: f64) -> bool {
    neighbours.iter().all(|&u| -v >= (1.0 - eps) * -u)
}

/// Scans the pyramid's DoG stacks and returns all accepted keypoints,
/// sorted by original-resolution position (ties: ascending σ).
///
/// `value_range` is the input series' `max − min`; the contrast threshold
/// is expressed relative to it so detection is insensitive to absolute
/// amplitude units.
pub fn detect_keypoints(
    pyramid: &Pyramid,
    config: &SalientConfig,
    value_range: f64,
) -> Vec<Keypoint> {
    if value_range <= 0.0 {
        // a constant series has no structure; without this early-out the
        // DoG's ~1e-16 floating-point residue would read as "features"
        return Vec::new();
    }
    // floor the threshold at well above f64 rounding noise in the DoG
    let min_response = (config.contrast_threshold * value_range).max(1e-9 * value_range);
    let mut out = Vec::new();
    for octave in pyramid.octaves() {
        let dog = &octave.dog;
        if dog.len() < 3 {
            continue;
        }
        let len = octave.len();
        if len < 3 {
            continue;
        }
        // Every DoG level is scanned. Interior levels compare against both
        // scale neighbours; the stack-boundary levels compare one-sided.
        // (Strict SIFT skips boundary levels; the paper's whole point is
        // to under-prune keypoints, and skipping them would blind the
        // matcher to half the computed scale range at s = 2.)
        let mut neighbours: Vec<f64> = Vec::with_capacity(8);
        for l in 0..dog.len() {
            let below = l.checked_sub(1).map(|b| &dog[b].values);
            let here = &dog[l].values;
            let above = dog.get(l + 1).map(|a| &a.values);
            for i in 1..len - 1 {
                let v = here[i];
                if v.abs() < min_response {
                    continue;
                }
                neighbours.clear();
                neighbours.extend_from_slice(&[here[i - 1], here[i + 1]]);
                for stack in [below, above].into_iter().flatten() {
                    neighbours.extend_from_slice(&[stack[i - 1], stack[i], stack[i + 1]]);
                }
                // DoG maxima mark locally depressed series regions (Dip),
                // DoG minima mark elevated ones (Peak) — see `Polarity`.
                let polarity = if v > 0.0 && dominates_max(v, &neighbours, config.epsilon) {
                    Some(Polarity::Dip)
                } else if v < 0.0 && dominates_min(v, &neighbours, config.epsilon) {
                    Some(Polarity::Peak)
                } else {
                    None
                };
                if let Some(polarity) = polarity {
                    out.push(Keypoint {
                        position: octave.to_original_index(i),
                        octave_position: i,
                        octave: octave.index,
                        level: l,
                        sigma: dog[l].sigma_absolute,
                        response: v,
                        polarity,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| {
        a.position
            .cmp(&b.position)
            .then(a.sigma.partial_cmp(&b.sigma).expect("finite sigma"))
    });
    dedupe_cross_octave(out)
}

/// Removes cross-octave duplicate keypoints. With `κ^s = 2`, DoG level `l`
/// of octave `o+1` carries the same absolute σ as level `l+s` of octave
/// `o`, so scanning every level detects the same `⟨x, σ⟩` twice at two
/// resolutions. Descriptors sampled at different resolutions cover
/// different temporal spans, so duplicate attributions would make matching
/// ambiguous; we keep the finer-octave (better-localised) one, breaking
/// ties by |response|. Input must be position-sorted; output is too.
fn dedupe_cross_octave(kps: Vec<Keypoint>) -> Vec<Keypoint> {
    let mut out: Vec<Keypoint> = Vec::with_capacity(kps.len());
    for kp in kps {
        let mut duplicate = false;
        for prev in out.iter_mut().rev() {
            let pos_diff = kp.position.saturating_sub(prev.position);
            // coarse-octave positions are quantised by the octave factor
            let pos_tol = 1usize << kp.octave.max(prev.octave);
            if pos_diff > 64 {
                break; // sorted input: nothing earlier can collide
            }
            if pos_diff > pos_tol || prev.polarity != kp.polarity {
                continue;
            }
            let ratio = if kp.sigma > prev.sigma {
                kp.sigma / prev.sigma
            } else {
                prev.sigma / kp.sigma
            };
            if ratio < 1.01 {
                let better = (kp.octave, std::cmp::Reverse(ordered(kp.response.abs())))
                    < (prev.octave, std::cmp::Reverse(ordered(prev.response.abs())));
                if better {
                    *prev = kp.clone();
                }
                duplicate = true;
                break;
            }
        }
        if !duplicate {
            out.push(kp);
        }
    }
    out.sort_by(|a, b| {
        a.position
            .cmp(&b.position)
            .then(a.sigma.partial_cmp(&b.sigma).expect("finite sigma"))
    });
    out
}

/// Total order on finite non-negative floats (for tuple comparisons).
#[inline]
fn ordered(v: f64) -> u64 {
    debug_assert!(v.is_finite() && v >= 0.0);
    v.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    use sdtw_tseries::TimeSeries;

    fn bump_series(n: usize, centre: f64, width: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let d = (i as f64 - centre) / width;
                amp * (-d * d / 2.0).exp()
            })
            .collect()
    }

    fn detect(ts: &TimeSeries, cfg: &SalientConfig) -> Vec<Keypoint> {
        let pyr = Pyramid::build(ts, &cfg.pyramid).unwrap();
        detect_keypoints(&pyr, cfg, ts.max() - ts.min())
    }

    #[test]
    fn dominance_tests_handle_signs() {
        assert!(dominates_max(1.0, &[0.9, -5.0, 0.99], 0.02));
        assert!(!dominates_max(1.0, &[1.1], 0.02));
        assert!(dominates_max(1.0, &[1.01], 0.02)); // within epsilon
        assert!(dominates_min(-1.0, &[-0.9, 5.0], 0.02));
        assert!(!dominates_min(-1.0, &[-1.2], 0.02));
    }

    #[test]
    fn epsilon_zero_is_strict_extremality() {
        assert!(!dominates_max(1.0, &[1.0000001], 0.0));
        assert!(dominates_max(1.0, &[1.0], 0.0));
    }

    #[test]
    fn constant_series_has_no_keypoints() {
        let ts = TimeSeries::new(vec![3.0; 200]).unwrap();
        assert!(detect(&ts, &SalientConfig::default()).is_empty());
    }

    #[test]
    fn single_bump_detected_near_centre() {
        let ts = TimeSeries::new(bump_series(128, 64.0, 6.0, 1.0)).unwrap();
        let kps = detect(&ts, &SalientConfig::default());
        assert!(!kps.is_empty());
        let nearest = kps
            .iter()
            .map(|k| (k.position as i64 - 64).unsigned_abs())
            .min()
            .unwrap();
        assert!(nearest <= 6, "closest keypoint {nearest} samples away");
        // the bump is a peak: at least one Peak-polarity keypoint near it
        assert!(kps
            .iter()
            .any(|k| k.polarity == Polarity::Peak && (k.position as i64 - 64).abs() <= 8));
    }

    #[test]
    fn dip_detected_with_dip_polarity() {
        let mut v = vec![1.0; 128];
        for (i, b) in bump_series(128, 40.0, 5.0, 0.8).into_iter().enumerate() {
            v[i] -= b;
        }
        let ts = TimeSeries::new(v).unwrap();
        let kps = detect(&ts, &SalientConfig::default());
        assert!(kps
            .iter()
            .any(|k| k.polarity == Polarity::Dip && (k.position as i64 - 40).abs() <= 8));
    }

    #[test]
    fn wider_bump_yields_larger_scale() {
        let narrow = TimeSeries::new(bump_series(256, 128.0, 3.0, 1.0)).unwrap();
        let wide = TimeSeries::new(bump_series(256, 128.0, 20.0, 1.0)).unwrap();
        let cfg = SalientConfig::default();
        let kn = detect(&narrow, &cfg);
        let kw = detect(&wide, &cfg);
        let best_sigma = |kps: &[Keypoint]| -> f64 {
            kps.iter()
                .filter(|k| (k.position as i64 - 128).abs() <= 15 && k.polarity == Polarity::Peak)
                .max_by(|a, b| {
                    a.response
                        .abs()
                        .partial_cmp(&b.response.abs())
                        .expect("finite")
                })
                .map(|k| k.sigma)
                .unwrap_or(0.0)
        };
        let sn = best_sigma(&kn);
        let sw = best_sigma(&kw);
        assert!(sn > 0.0 && sw > 0.0);
        assert!(sw > sn, "wide bump sigma {sw} should exceed narrow {sn}");
    }

    #[test]
    fn relaxed_epsilon_accepts_more_keypoints_than_strict() {
        // noisy multi-feature series
        let v: Vec<f64> = (0..256)
            .map(|i| {
                let t = i as f64;
                (t / 9.0).sin() + 0.4 * (t / 23.0).cos() + 0.2 * (t / 3.0).sin()
            })
            .collect();
        let ts = TimeSeries::new(v).unwrap();
        let strict = SalientConfig {
            epsilon: 0.0,
            ..Default::default()
        };
        let relaxed = SalientConfig {
            epsilon: 0.1,
            ..Default::default()
        };
        let ks = detect(&ts, &strict).len();
        let kr = detect(&ts, &relaxed).len();
        assert!(kr > ks, "relaxed {kr} should exceed strict {ks}");
    }

    #[test]
    fn contrast_threshold_filters_noise() {
        let v: Vec<f64> = (0..256)
            .map(|i| {
                let t = i as f64;
                // dominant slow wave + tiny ripple
                (t / 40.0).sin() + 0.001 * (t / 2.5).sin()
            })
            .collect();
        let ts = TimeSeries::new(v).unwrap();
        let lax = SalientConfig {
            contrast_threshold: 0.0,
            ..Default::default()
        };
        let tight = SalientConfig {
            contrast_threshold: 0.02,
            ..Default::default()
        };
        let n_lax = detect(&ts, &lax).len();
        let n_tight = detect(&ts, &tight).len();
        assert!(n_tight < n_lax, "tight {n_tight} vs lax {n_lax}");
    }

    #[test]
    fn keypoints_are_position_sorted() {
        let v: Vec<f64> = (0..300).map(|i| (i as f64 / 11.0).sin()).collect();
        let ts = TimeSeries::new(v).unwrap();
        let kps = detect(&ts, &SalientConfig::default());
        for w in kps.windows(2) {
            assert!(w[0].position <= w[1].position);
        }
    }

    #[test]
    fn shift_invariance_of_positions() {
        // shifting the pattern shifts keypoint positions accordingly
        let base = bump_series(256, 80.0, 8.0, 1.0);
        let shifted = bump_series(256, 140.0, 8.0, 1.0);
        let cfg = SalientConfig::default();
        let k0 = detect(&TimeSeries::new(base).unwrap(), &cfg);
        let k1 = detect(&TimeSeries::new(shifted).unwrap(), &cfg);
        let strongest = |kps: &[Keypoint]| {
            kps.iter()
                .filter(|k| k.polarity == Polarity::Peak)
                .max_by(|a, b| {
                    a.response
                        .abs()
                        .partial_cmp(&b.response.abs())
                        .expect("finite")
                })
                .map(|k| k.position as i64)
                .unwrap()
        };
        let d = strongest(&k1) - strongest(&k0);
        assert!((d - 60).abs() <= 6, "expected ~60-sample shift, got {d}");
    }

    #[test]
    fn short_series_do_not_panic() {
        for n in [1usize, 2, 3, 5, 8] {
            let ts = TimeSeries::new((0..n).map(|i| i as f64).collect()).unwrap();
            let _ = detect(&ts, &SalientConfig::default());
        }
    }
}
