//! # sdtw-salient — 1D SIFT-like salient features for time series
//!
//! Implements step 1 of sDTW (paper §3.1): locate robust salient features
//! on a time series via a scale-invariant analysis and equip each with a
//! temporal descriptor usable for cross-series alignment.
//!
//! Pipeline:
//!
//! 1. build the Gaussian scale-space pyramid and its DoG stacks
//!    (`sdtw-scalespace`);
//! 2. [`detect`] — scan the interior DoG levels for **ε-relaxed extrema**:
//!    a point is accepted when its response is at least `(1 − ε)×` that of
//!    every space/scale neighbour. The paper deliberately relaxes strict
//!    SIFT extremality so that "features that are similar in scale and time
//!    may \[not\] prune each other"; both maxima (peaks) and minima (dips)
//!    are detected. Low-contrast candidates are filtered;
//! 3. [`descriptor`] — build a `2a × 2` gradient descriptor around each
//!    keypoint at its own scale: `2a` cells along time, each holding a
//!    2-bin histogram (total positive-slope magnitude, total negative-slope
//!    magnitude), Gaussian-weighted by distance from the keypoint. This is
//!    the 1D reduction of SIFT's `2a × 2b × c` layout (paper Figure 5(b));
//! 4. [`feature`] — bundle keypoint + descriptor + scope + amplitude into
//!    [`feature::SalientFeature`] and expose the top-level
//!    [`feature::extract_features`].
//!
//! Every invariance can be "independently controlled" (paper §3.1.2):
//! amplitude normalisation of descriptors is a config switch, and the
//! matcher (in `sdtw-align`) applies the amplitude/scale bounds.
//!
//! # Example
//!
//! ```
//! use sdtw_tseries::TimeSeries;
//! use sdtw_salient::{SalientConfig, feature::extract_features};
//!
//! // A clean bump produces at least one salient feature near its centre.
//! let ts = TimeSeries::new(
//!     (0..128).map(|i| { let d = (i as f64 - 64.0) / 8.0; (-d * d / 2.0).exp() }).collect(),
//! ).unwrap();
//! let feats = extract_features(&ts, &SalientConfig::default()).unwrap();
//! assert!(!feats.is_empty());
//! assert!(feats.iter().any(|f| (f.keypoint.position as i64 - 64).abs() <= 8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod descriptor;
pub mod detect;
pub mod feature;
pub mod keypoint;

pub use config::{DescriptorConfig, SalientConfig};
pub use feature::{extract_features, FeatureSet, SalientFeature};
pub use keypoint::{Keypoint, Polarity, ScaleClass};
