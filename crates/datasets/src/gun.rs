//! Gun analogue: 2 classes, 50 series, length 150.
//!
//! The real UCR Gun/Point data tracks a hand's centroid while an actor
//! draws (or merely points) and re-holsters: a smooth rise to a plateau
//! and a return, where the "gun" class shows extra micro-structure (the
//! draw/holster overshoot) around the plateau edges. The analogue keeps
//! exactly that regime: one dominant large feature per series (most
//! salient mass at rough scales, as the paper's Table 2 reports for Gun),
//! with a class-discriminating overshoot dip near re-holstering.

use crate::gen::{add_bump, add_step, deform, rng_for, Deformation};
use crate::Dataset;
use sdtw_tseries::TimeSeries;

/// Series length (Table 1).
pub const LENGTH: usize = 150;
/// Number of series (Table 1).
pub const COUNT: usize = 50;
/// Number of classes (Table 1).
pub const CLASSES: usize = 2;

/// Class prototype: `class 0` = draw-and-holster (with overshoot),
/// `class 1` = point (clean plateau).
///
/// The motion is dominated by *large-scale* structure — a broad raised arc
/// with smooth rise/return — which is what gives the real Gun data its
/// rough-scale salient mass (paper Table 2). The class difference is the
/// small overshoot/dip micro-structure around draw and holster.
fn prototype(class: u32) -> Vec<f64> {
    let mut v = vec![0.0; LENGTH];
    // rise to the plateau and the return: two opposing smooth, *wide*
    // steps (the hand accelerates and decelerates gradually)
    add_step(&mut v, 0.27, 0.06, 1.0);
    add_step(&mut v, 0.72, 0.06, -1.0);
    // the arc of the raised arm: broad overlapping humps across the
    // plateau (aim, steady, begin-return phases) — all rough-scale
    add_bump(&mut v, 0.40, 0.09, 0.16);
    add_bump(&mut v, 0.60, 0.09, 0.14);
    add_bump(&mut v, 0.50, 0.18, 0.12);
    if class == 0 {
        // the draw overshoot just after the rise and the holster dip just
        // after the return — the micro-structure that separates "gun"
        // from "point"
        add_bump(&mut v, 0.33, 0.02, 0.28);
        add_bump(&mut v, 0.80, 0.025, -0.22);
    }
    v
}

/// Deformation regime: moderate warps; light sensor noise (motion capture
/// is smooth at large scales but carries fine measurement texture, which
/// is where the real Gun data's many fine-scale salient points come from).
fn deformation() -> Deformation {
    Deformation {
        warp_anchors: 2,
        warp_strength: 0.10,
        amp_jitter: 0.08,
        noise_sd: 0.012,
        drift: 0.02,
    }
}

/// Generates the Gun analogue.
pub fn generate(seed: u64) -> Dataset {
    let mut series = Vec::with_capacity(COUNT);
    let per_class = COUNT / CLASSES;
    let mut id = 0u64;
    for class in 0..CLASSES as u32 {
        let proto = prototype(class);
        let mut rng = rng_for(seed, 0x67756e + class as u64); // "gun" stream
        for _ in 0..per_class {
            let values = deform(&mut rng, &proto, LENGTH, &deformation());
            series.push(
                TimeSeries::with_label(values, class)
                    .expect("generated series is finite")
                    .identified(id),
            );
            id += 1;
        }
    }
    Dataset {
        name: "gun-analog".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table1() {
        let ds = generate(1);
        assert_eq!(ds.series.len(), COUNT);
        assert_eq!(ds.class_count(), CLASSES);
        assert!(ds.series.iter().all(|s| s.len() == LENGTH));
    }

    #[test]
    fn prototypes_differ_between_classes() {
        let p0 = prototype(0);
        let p1 = prototype(1);
        let diff: f64 = p0.iter().zip(&p1).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1.0, "class prototypes too similar: {diff}");
    }

    #[test]
    fn series_have_plateau_structure() {
        let ds = generate(3);
        for s in ds.series.iter().take(10) {
            let v = s.values();
            let plateau_mean = v[60..100].iter().sum::<f64>() / 40.0;
            let edge_mean = (v[0..15].iter().sum::<f64>() + v[135..150].iter().sum::<f64>()) / 30.0;
            assert!(
                plateau_mean > edge_mean + 0.5,
                "plateau {plateau_mean} vs edges {edge_mean}"
            );
        }
    }

    #[test]
    fn intra_class_closer_than_inter_class_on_average() {
        // sanity for classification experiments: plain Euclidean on a few
        // pairs (DTW experiments live in the eval crate)
        let ds = generate(11);
        let d = |a: &TimeSeries, b: &TimeSeries| -> f64 {
            a.values()
                .iter()
                .zip(b.values())
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        let groups = ds.by_class();
        let (_, c0) = &groups[0];
        let (_, c1) = &groups[1];
        let intra =
            d(&ds.series[c0[0]], &ds.series[c0[1]]) + d(&ds.series[c1[0]], &ds.series[c1[1]]);
        let inter =
            d(&ds.series[c0[0]], &ds.series[c1[0]]) + d(&ds.series[c0[1]], &ds.series[c1[1]]);
        assert!(
            inter > intra * 0.8,
            "inter {inter} should not be far below intra {intra}"
        );
    }
}
