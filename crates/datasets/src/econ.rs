//! Economic-index style demo series (the motivation of the paper's
//! Figure 1): a small corpus of drifting index curves where designated
//! groups are pairwise similar (A ≈ B, C ≈ D in the figure) while groups
//! differ from each other. Used by the retrieval example.

use crate::gen::{add_bump, deform, rng_for, Deformation};
use crate::Dataset;
use rand::Rng;
use sdtw_tseries::TimeSeries;

/// Default series length of the demo corpus.
pub const LENGTH: usize = 300;

/// Generates `groups` index groups of `per_group` similar series each.
pub fn generate(seed: u64, groups: usize, per_group: usize) -> Dataset {
    let mut series = Vec::with_capacity(groups * per_group);
    let mut id = 0u64;
    for g in 0..groups as u32 {
        // group prototype: slow trend + a few medium features
        let mut proto = vec![0.5; LENGTH];
        let mut rng = rng_for(seed, 0x65636f + g as u64); // "eco" stream
        let trend: f64 = rng.gen_range(-0.3..0.3);
        for (i, v) in proto.iter_mut().enumerate() {
            *v += trend * i as f64 / LENGTH as f64;
        }
        for _ in 0..rng.gen_range(3..=5) {
            let centre = rng.gen_range(0.1..0.9);
            let width = rng.gen_range(0.03..0.10);
            let amp = rng.gen_range(0.05..0.25) * if rng.gen_bool(0.5) { -1.0 } else { 1.0 };
            add_bump(&mut proto, centre, width, amp);
        }
        let deformation = Deformation {
            warp_anchors: 2,
            warp_strength: 0.05,
            amp_jitter: 0.05,
            noise_sd: 0.006,
            drift: 0.02,
        };
        for _ in 0..per_group {
            let values = deform(&mut rng, &proto, LENGTH, &deformation);
            series.push(
                TimeSeries::with_label(values, g)
                    .expect("generated series is finite")
                    .identified(id),
            );
            id += 1;
        }
    }
    Dataset {
        name: "econ-demo".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let ds = generate(1, 2, 2);
        assert_eq!(ds.series.len(), 4);
        assert_eq!(ds.class_count(), 2);
        assert!(ds.series.iter().all(|s| s.len() == LENGTH));
    }

    #[test]
    fn within_group_series_are_closer_than_across() {
        let ds = generate(7, 2, 2);
        let d = |a: usize, b: usize| -> f64 {
            ds.series[a]
                .values()
                .iter()
                .zip(ds.series[b].values())
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        // A=0, B=1 (group 0); C=2, D=3 (group 1)
        let within = d(0, 1) + d(2, 3);
        let across = d(0, 2) + d(1, 3);
        assert!(
            across > within,
            "across-group {across} should exceed within-group {within}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(generate(3, 2, 2), generate(3, 2, 2));
        assert_ne!(generate(3, 2, 2), generate(4, 2, 2));
    }
}
