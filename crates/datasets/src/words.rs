//! 50Words analogue: 50 classes, 450 series, length 270.
//!
//! The real UCR 50Words data consists of word-profile curves from
//! historical manuscripts: busy contours with many small humps and almost
//! no large-scale structure — the paper's Table 2 shows 50Words with by
//! far the fewest rough-scale salient points, and §4.4 attributes the
//! descriptor-length behaviour to its features being individually
//! undiscriminating. The analogue reproduces that regime: each class
//! prototype is a dense sum of narrow bumps with random positions/heights,
//! and instances are mild deformations (profiles of the same word vary
//! little in global time).
//!
//! Class sizes are balanced at 9 (the real archive is unbalanced, but
//! only the totals — 450 series, 50 classes — enter the paper's
//! experiments).

use crate::gen::{add_bump, deform, rng_for, Deformation};
use crate::Dataset;
use rand::Rng;
use sdtw_tseries::TimeSeries;

/// Series length (Table 1).
pub const LENGTH: usize = 270;
/// Number of series (Table 1).
pub const COUNT: usize = 450;
/// Number of classes (Table 1).
pub const CLASSES: usize = 50;

/// Draws a class prototype: 10–16 narrow bumps over a gentle envelope.
fn prototype(seed: u64, class: u32) -> Vec<f64> {
    let mut rng = rng_for(seed, 0x776f7264 + class as u64); // "word" stream
    let mut v = vec![0.0; LENGTH];
    // a *faint, near-flat* envelope only — the real 50Words profiles have
    // almost no large-scale structure (fewest rough salient points in the
    // paper's Table 2), so the envelope must stay below the detector's
    // contrast relevance
    add_bump(&mut v, 0.5, 0.55, 0.06);
    // Stratified bump placement with alternating signs: clusters of
    // same-sign humps would merge into large-scale structure under coarse
    // smoothing, which 50Words profiles must not have. Widths stay below
    // σ ≈ 4 samples so every feature is fine-scale.
    let bumps = rng.gen_range(14..=18);
    for k in 0..bumps {
        let slot = 0.06 + 0.88 * (k as f64 + rng.gen_range(0.15..0.85)) / bumps as f64;
        let width = rng.gen_range(0.006..0.014); // narrow: fine-scale features
        let amp = rng.gen_range(0.15..0.55) * if rng.gen_bool(0.4) { -1.0 } else { 1.0 };
        add_bump(&mut v, slot, width, amp);
    }
    // High-pass: remove whatever large-scale mass the random bumps
    // accumulated, *by construction* — the defining property of this
    // corpus is the absence of rough-scale structure (paper Table 2).
    let ts = TimeSeries::new(v).expect("finite prototype");
    let smooth = sdtw_tseries::transform::moving_average(&ts, 20);
    ts.values()
        .iter()
        .zip(smooth.values())
        .map(|(a, b)| a - 0.85 * b)
        .collect()
}

/// Deformation regime: *minor deformations around the diagonal* — the
/// paper singles 50Words out as having "not … major shifts, but only minor
/// deformations" (§4.4, fc,aw discussion).
fn deformation() -> Deformation {
    Deformation {
        warp_anchors: 2,
        warp_strength: 0.03,
        amp_jitter: 0.08,
        noise_sd: 0.012,
        drift: 0.008, // minimal drift: drift is large-scale structure
    }
}

/// Generates the 50Words analogue.
pub fn generate(seed: u64) -> Dataset {
    let mut series = Vec::with_capacity(COUNT);
    let per_class = COUNT / CLASSES;
    let mut id = 0u64;
    for class in 0..CLASSES as u32 {
        let proto = prototype(seed, class);
        let mut rng = rng_for(seed, 0x35307764 + class as u64 * 7919);
        for _ in 0..per_class {
            let values = deform(&mut rng, &proto, LENGTH, &deformation());
            series.push(
                TimeSeries::with_label(values, class)
                    .expect("generated series is finite")
                    .identified(id),
            );
            id += 1;
        }
    }
    Dataset {
        name: "50words-analog".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdtw_tseries::stats::SeriesSummary;

    #[test]
    fn spec_matches_table1() {
        let ds = generate(1);
        assert_eq!(ds.series.len(), COUNT);
        assert_eq!(ds.class_count(), CLASSES);
        assert!(ds.series.iter().all(|s| s.len() == LENGTH));
    }

    #[test]
    fn profiles_are_busier_than_gun_profiles() {
        let words = generate(2);
        let gun = crate::gun::generate(2);
        let rough = |s: &TimeSeries| SeriesSummary::of(s).roughness;
        let w_mean: f64 = words.series.iter().take(30).map(rough).sum::<f64>() / 30.0;
        let g_mean: f64 = gun.series.iter().take(30).map(rough).sum::<f64>() / 30.0;
        assert!(
            w_mean > g_mean,
            "50words roughness {w_mean} should exceed gun {g_mean}"
        );
    }

    #[test]
    fn class_prototypes_are_distinct() {
        let p0 = prototype(1, 0);
        let p1 = prototype(1, 1);
        let diff: f64 = p0.iter().zip(&p1).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 3.0);
    }

    #[test]
    fn nine_series_per_class() {
        let ds = generate(3);
        for (_, members) in ds.by_class() {
            assert_eq!(members.len(), 9);
        }
    }
}
