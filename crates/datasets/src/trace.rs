//! Trace analogue: 4 classes, 100 series, length 275.
//!
//! The real UCR Trace data simulates instrumentation transients in a
//! nuclear power plant: per-class step/ramp/oscillation signatures at
//! class-specific positions. The analogue keeps that regime — each class
//! is a distinct transient programme, instances differ by warp/noise —
//! giving the mixed fine+medium scale distribution the paper's Table 2
//! shows for Trace, and four tight clusters for the intra-class error
//! experiment (Figure 15).

use crate::gen::{add_bump, add_burst, add_step, deform, rng_for, Deformation};
use crate::Dataset;
use sdtw_tseries::TimeSeries;

/// Series length (Table 1).
pub const LENGTH: usize = 275;
/// Number of series (Table 1).
pub const COUNT: usize = 100;
/// Number of classes (Table 1).
pub const CLASSES: usize = 4;

/// Class prototypes: four transient programmes.
fn prototype(class: u32) -> Vec<f64> {
    let mut v = vec![0.0; LENGTH];
    match class {
        0 => {
            // sudden step up, hold, slow decay back
            add_step(&mut v, 0.35, 0.01, 1.0);
            add_step(&mut v, 0.75, 0.12, -1.0);
        }
        1 => {
            // slow ramp up then sharp drop
            add_step(&mut v, 0.45, 0.15, 1.0);
            add_step(&mut v, 0.85, 0.012, -1.0);
        }
        2 => {
            // step with an oscillation burst riding on the transition
            add_step(&mut v, 0.40, 0.015, 0.8);
            add_burst(&mut v, 0.42, 0.06, 0.035, 0.35);
            add_step(&mut v, 0.80, 0.05, -0.8);
        }
        _ => {
            // dip-then-overshoot (inverted transient)
            add_bump(&mut v, 0.30, 0.05, -0.7);
            add_step(&mut v, 0.55, 0.02, 1.0);
            add_bump(&mut v, 0.58, 0.02, 0.25);
            add_step(&mut v, 0.88, 0.03, -1.0);
        }
    }
    v
}

/// Deformation regime: noticeable time skew (transients shift), mild
/// noise.
fn deformation() -> Deformation {
    Deformation {
        warp_anchors: 3,
        warp_strength: 0.09,
        amp_jitter: 0.06,
        noise_sd: 0.012,
        drift: 0.02,
    }
}

/// Generates the Trace analogue.
pub fn generate(seed: u64) -> Dataset {
    let mut series = Vec::with_capacity(COUNT);
    let per_class = COUNT / CLASSES;
    let mut id = 0u64;
    for class in 0..CLASSES as u32 {
        let proto = prototype(class);
        let mut rng = rng_for(seed, 0x747261 + class as u64); // "tra" stream
        for _ in 0..per_class {
            let values = deform(&mut rng, &proto, LENGTH, &deformation());
            series.push(
                TimeSeries::with_label(values, class)
                    .expect("generated series is finite")
                    .identified(id),
            );
            id += 1;
        }
    }
    Dataset {
        name: "trace-analog".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_table1() {
        let ds = generate(1);
        assert_eq!(ds.series.len(), COUNT);
        assert_eq!(ds.class_count(), CLASSES);
        assert!(ds.series.iter().all(|s| s.len() == LENGTH));
    }

    #[test]
    fn all_prototypes_pairwise_distinct() {
        for a in 0..CLASSES as u32 {
            for b in (a + 1)..CLASSES as u32 {
                let pa = prototype(a);
                let pb = prototype(b);
                let diff: f64 = pa.iter().zip(&pb).map(|(x, y)| (x - y).abs()).sum();
                assert!(diff > 5.0, "classes {a}/{b} too similar: {diff}");
            }
        }
    }

    #[test]
    fn class2_has_oscillation_energy() {
        // The burst class has more high-frequency energy near its step
        // than the plain step class.
        let hf = |v: &[f64]| -> f64 {
            v.windows(3)
                .map(|w| (w[2] - 2.0 * w[1] + w[0]).abs())
                .sum::<f64>()
        };
        let p0 = prototype(0);
        let p2 = prototype(2);
        assert!(hf(&p2[95..135]) > hf(&p0[85..125]) * 2.0);
    }

    #[test]
    fn classes_are_balanced() {
        let ds = generate(9);
        for (_, members) in ds.by_class() {
            assert_eq!(members.len(), COUNT / CLASSES);
        }
    }
}
