//! Shared generation machinery: seeded randomness, prototypes,
//! deformations.
//!
//! Every dataset instance is a *deformation* of a class prototype: a
//! smooth random monotone time warp (feature order preserved — the sDTW
//! transformation model), amplitude jitter, slow baseline drift and
//! additive Gaussian noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdtw_tseries::{TimeSeries, WarpMap};
use serde::{Deserialize, Serialize};

/// Deterministic RNG for a (seed, stream) pair, so each dataset/class/
/// instance draws from an independent stream.
pub fn rng_for(seed: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Standard normal sample via Box–Muller (rand 0.8 core has no Gaussian
/// distribution; this avoids a rand_distr dependency).
pub fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Adds a Gaussian bump of amplitude `amp` centred at `centre_frac · n`
/// with width `width_frac · n` onto `values`.
pub fn add_bump(values: &mut [f64], centre_frac: f64, width_frac: f64, amp: f64) {
    let n = values.len() as f64;
    let centre = centre_frac * (n - 1.0);
    let width = (width_frac * n).max(0.75);
    for (i, v) in values.iter_mut().enumerate() {
        let d = (i as f64 - centre) / width;
        *v += amp * (-d * d / 2.0).exp();
    }
}

/// Adds a smooth sigmoid step of height `amp` at `centre_frac · n` with
/// 10–90% rise width `width_frac · n`.
pub fn add_step(values: &mut [f64], centre_frac: f64, width_frac: f64, amp: f64) {
    let n = values.len() as f64;
    let centre = centre_frac * (n - 1.0);
    let width = (width_frac * n).max(0.75);
    for (i, v) in values.iter_mut().enumerate() {
        let z = (i as f64 - centre) / width;
        *v += amp / (1.0 + (-z).exp());
    }
}

/// Adds a windowed oscillation burst: `amp · sin(2π(t−c)/period)` under a
/// Gaussian window centred at `centre_frac` with width `width_frac`.
pub fn add_burst(
    values: &mut [f64],
    centre_frac: f64,
    width_frac: f64,
    period_frac: f64,
    amp: f64,
) {
    let n = values.len() as f64;
    let centre = centre_frac * (n - 1.0);
    let width = (width_frac * n).max(1.0);
    let period = (period_frac * n).max(2.0);
    for (i, v) in values.iter_mut().enumerate() {
        let t = i as f64 - centre;
        let window = (-(t / width) * (t / width) / 2.0).exp();
        *v += amp * window * (std::f64::consts::TAU * t / period).sin();
    }
}

/// Deformation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deformation {
    /// Number of interior warp anchors (0 disables warping).
    pub warp_anchors: usize,
    /// Maximum |y − x| displacement of an anchor (normalised time units).
    pub warp_strength: f64,
    /// Multiplicative amplitude jitter: gain drawn from
    /// `1 ± amp_jitter` (uniform).
    pub amp_jitter: f64,
    /// Additive white-noise standard deviation.
    pub noise_sd: f64,
    /// Peak of a slow random drift added across the series.
    pub drift: f64,
}

impl Default for Deformation {
    fn default() -> Self {
        Self {
            warp_anchors: 2,
            warp_strength: 0.08,
            amp_jitter: 0.10,
            noise_sd: 0.01,
            drift: 0.03,
        }
    }
}

/// Draws a random monotone warp map with up to `anchors` interior anchors
/// displaced by at most `strength`.
pub fn random_warp(rng: &mut StdRng, anchors: usize, strength: f64) -> WarpMap {
    if anchors == 0 || strength <= 0.0 {
        return WarpMap::identity();
    }
    // strictly increasing xs in (0.1, 0.9)
    let mut xs: Vec<f64> = (0..anchors)
        .map(|k| {
            let base = 0.1 + 0.8 * (k as f64 + 0.5) / anchors as f64;
            base + rng.gen_range(-0.25..0.25) * 0.8 / anchors as f64
        })
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut pairs = Vec::with_capacity(anchors);
    let mut prev_x: f64 = 0.0;
    let mut prev_y: f64 = 0.0;
    for &x in &xs {
        let x = x.clamp(prev_x + 1e-3, 0.999);
        let y_raw = x + rng.gen_range(-strength..strength);
        let y = y_raw.clamp(prev_y + 1e-3, 0.999);
        pairs.push((x, y));
        prev_x = x;
        prev_y = y;
    }
    WarpMap::from_anchors(&pairs).unwrap_or_else(|_| WarpMap::identity())
}

/// Deforms a prototype into a dataset instance of length `len`.
pub fn deform(rng: &mut StdRng, proto: &[f64], len: usize, d: &Deformation) -> Vec<f64> {
    let proto_ts = TimeSeries::new(proto.to_vec()).expect("valid prototype");
    let warp = random_warp(rng, d.warp_anchors, d.warp_strength);
    let warped = warp.apply(&proto_ts, len).expect("positive target length");
    let gain = 1.0 + rng.gen_range(-d.amp_jitter..=d.amp_jitter);
    let offset: f64 = rng.gen_range(-d.amp_jitter..=d.amp_jitter) * 0.2;
    let drift_phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    let drift_amp = rng.gen_range(0.0..=d.drift.max(f64::MIN_POSITIVE));
    warped
        .values()
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let t = i as f64 / len.max(2) as f64;
            let drift = drift_amp * (std::f64::consts::TAU * t * 0.7 + drift_phase).sin();
            v * gain + offset + drift + d.noise_sd * gauss(rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_streams_are_independent_and_deterministic() {
        let a: f64 = rng_for(1, 0).gen();
        let b: f64 = rng_for(1, 0).gen();
        assert_eq!(a, b);
        let c: f64 = rng_for(1, 1).gen();
        assert_ne!(a, c);
    }

    #[test]
    fn gauss_has_sane_moments() {
        let mut rng = rng_for(42, 0);
        let samples: Vec<f64> = (0..20_000).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn add_bump_peaks_at_centre() {
        let mut v = vec![0.0; 101];
        add_bump(&mut v, 0.5, 0.05, 2.0);
        let max_idx = v
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .unwrap()
            .0;
        assert_eq!(max_idx, 50);
        assert!((v[50] - 2.0).abs() < 1e-9);
        assert!(v[0] < 0.01);
    }

    #[test]
    fn add_step_transitions_between_levels() {
        let mut v = vec![0.0; 100];
        add_step(&mut v, 0.5, 0.02, 3.0);
        assert!(v[10] < 0.05);
        assert!((v[90] - 3.0).abs() < 0.05);
        assert!((v[49] - 1.5).abs() < 0.5);
    }

    #[test]
    fn add_burst_is_windowed() {
        let mut v = vec![0.0; 200];
        add_burst(&mut v, 0.5, 0.05, 0.04, 1.0);
        let centre_energy: f64 = v[80..120].iter().map(|x| x * x).sum();
        let tail_energy: f64 = v[0..40].iter().map(|x| x * x).sum();
        assert!(centre_energy > tail_energy * 100.0);
    }

    #[test]
    fn random_warp_is_valid_and_bounded() {
        let mut rng = rng_for(9, 3);
        for _ in 0..50 {
            let w = random_warp(&mut rng, 3, 0.1);
            // strictly monotone by construction: probe a grid
            let mut prev = -1.0;
            for k in 0..=20 {
                let t = k as f64 / 20.0;
                let y = w.eval(t);
                assert!(y >= prev);
                assert!((y - t).abs() < 0.25, "warp displacement too large");
                prev = y;
            }
        }
    }

    #[test]
    fn zero_anchor_warp_is_identity() {
        let mut rng = rng_for(1, 1);
        assert_eq!(random_warp(&mut rng, 0, 0.5), WarpMap::identity());
        assert_eq!(random_warp(&mut rng, 3, 0.0), WarpMap::identity());
    }

    #[test]
    fn deform_preserves_rough_shape() {
        let mut proto = vec![0.0; 150];
        add_bump(&mut proto, 0.4, 0.06, 1.0);
        let mut rng = rng_for(5, 0);
        let inst = deform(&mut rng, &proto, 150, &Deformation::default());
        assert_eq!(inst.len(), 150);
        // the bump survives: max in the middle region, small at the ends
        let max_region: f64 = inst[40..90].iter().cloned().fold(f64::MIN, f64::max);
        let edge: f64 = inst[0..10].iter().cloned().fold(f64::MIN, f64::max);
        assert!(max_region > edge + 0.5);
    }

    #[test]
    fn deform_instances_differ() {
        let mut proto = vec![0.0; 100];
        add_bump(&mut proto, 0.5, 0.1, 1.0);
        let mut rng = rng_for(5, 0);
        let a = deform(&mut rng, &proto, 100, &Deformation::default());
        let b = deform(&mut rng, &proto, 100, &Deformation::default());
        assert_ne!(a, b);
    }
}
