//! # sdtw-datasets — synthetic class-structured corpora
//!
//! The paper evaluates on three UCR archive datasets (Gun, Trace, 50Words;
//! Table 1). Those archives are not redistributable with this repository,
//! so this crate synthesises **stand-ins with the same cardinalities and
//! the same structural regimes** (see DESIGN.md §3 for the substitution
//! argument):
//!
//! * [`gun`] — 2 classes × 150 samples, 50 series: smooth motion profiles
//!   dominated by one large plateau feature (most salient mass at rough
//!   scales, like the real Gun/Point data);
//! * [`trace`] — 4 classes × 275 samples, 100 series: transient signals
//!   (steps, ramps, oscillation bursts) with class-specific shapes;
//! * [`words`] — 50 classes × 270 samples, 450 series: busy profile curves
//!   with many fine features and almost no large ones;
//! * [`econ`] — the economic-index style demo series of the paper's
//!   Figure 1 (pairwise-similar drifting indices), used by examples;
//! * [`gen`] — the shared machinery: seeded prototype construction and
//!   label-preserving deformations (smooth random time warps + amplitude
//!   jitter + drift + noise), exactly the transformation model sDTW
//!   assumes (time stretched, feature order preserved).
//!
//! All generators are deterministic in their seed.
//!
//! ```
//! use sdtw_datasets::{UcrAnalog, Dataset};
//!
//! let ds: Dataset = UcrAnalog::Gun.generate(42);
//! assert_eq!(ds.series.len(), 50);
//! assert_eq!(ds.class_count(), 2);
//! assert!(ds.series.iter().all(|s| s.len() == 150));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod econ;
pub mod gen;
pub mod gun;
pub mod trace;
pub mod words;

use sdtw_tseries::stats::CorpusSummary;
use sdtw_tseries::TimeSeries;
use serde::{Deserialize, Serialize};

/// A labelled corpus with a name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. `gun-analog`).
    pub name: String,
    /// The labelled, id-tagged series.
    pub series: Vec<TimeSeries>,
}

impl Dataset {
    /// Number of distinct class labels.
    pub fn class_count(&self) -> usize {
        CorpusSummary::of(&self.series).classes
    }

    /// Series indices per class label, ascending by label.
    pub fn by_class(&self) -> Vec<(u32, Vec<usize>)> {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.series.iter().enumerate() {
            map.entry(s.label().unwrap_or(0)).or_default().push(i);
        }
        map.into_iter().collect()
    }

    /// Corpus summary (Table 1 style).
    pub fn summary(&self) -> CorpusSummary {
        CorpusSummary::of(&self.series)
    }
}

/// The three UCR analogues of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UcrAnalog {
    /// Gun analogue: length 150, 50 series, 2 classes.
    Gun,
    /// Trace analogue: length 275, 100 series, 4 classes.
    Trace,
    /// 50Words analogue: length 270, 450 series, 50 classes.
    Words50,
}

impl UcrAnalog {
    /// All three datasets in the paper's order.
    pub const ALL: [UcrAnalog; 3] = [UcrAnalog::Gun, UcrAnalog::Trace, UcrAnalog::Words50];

    /// The Table 1 row: (name, length, number of series, number of
    /// classes).
    pub fn table1_spec(&self) -> (&'static str, usize, usize, usize) {
        match self {
            UcrAnalog::Gun => ("Gun", 150, 50, 2),
            UcrAnalog::Trace => ("Trace", 275, 100, 4),
            UcrAnalog::Words50 => ("50Words", 270, 450, 50),
        }
    }

    /// Generates the dataset deterministically from a seed.
    pub fn generate(&self, seed: u64) -> Dataset {
        match self {
            UcrAnalog::Gun => gun::generate(seed),
            UcrAnalog::Trace => trace::generate(seed),
            UcrAnalog::Words50 => words::generate(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_specs_match_paper() {
        assert_eq!(UcrAnalog::Gun.table1_spec(), ("Gun", 150, 50, 2));
        assert_eq!(UcrAnalog::Trace.table1_spec(), ("Trace", 275, 100, 4));
        assert_eq!(UcrAnalog::Words50.table1_spec(), ("50Words", 270, 450, 50));
    }

    #[test]
    fn generated_datasets_match_their_specs() {
        for kind in UcrAnalog::ALL {
            let (name, len, count, classes) = kind.table1_spec();
            let ds = kind.generate(7);
            assert_eq!(ds.series.len(), count, "{name}: series count");
            assert_eq!(ds.class_count(), classes, "{name}: class count");
            assert!(
                ds.series.iter().all(|s| s.len() == len),
                "{name}: series length"
            );
            // ids must be unique (feature-store keys)
            let mut ids: Vec<u64> = ds.series.iter().map(|s| s.id().unwrap()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), count, "{name}: duplicate ids");
        }
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = UcrAnalog::Gun.generate(123);
        let b = UcrAnalog::Gun.generate(123);
        assert_eq!(a, b);
        let c = UcrAnalog::Gun.generate(124);
        assert_ne!(a, c);
    }

    #[test]
    fn by_class_partitions_all_series() {
        let ds = UcrAnalog::Trace.generate(5);
        let groups = ds.by_class();
        assert_eq!(groups.len(), 4);
        let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 100);
        // Trace classes are balanced (25 each)
        for (_, members) in &groups {
            assert_eq!(members.len(), 25);
        }
    }
}
