//! Summary statistics for series and corpora.
//!
//! Used by dataset characterisation (Table 1 / Table 2 style reporting) and
//! by the experiment binaries when printing averages over runs.

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Per-series summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Number of samples.
    pub len: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Mean absolute first difference (a cheap "busy-ness" indicator —
    /// feature-rich series like the 50Words family score high).
    pub roughness: f64,
}

impl SeriesSummary {
    /// Computes the summary of a series.
    pub fn of(ts: &TimeSeries) -> Self {
        let v = ts.values();
        let roughness = if v.len() < 2 {
            0.0
        } else {
            v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (v.len() - 1) as f64
        };
        Self {
            len: ts.len(),
            mean: ts.mean(),
            std_dev: ts.std_dev(),
            min: ts.min(),
            max: ts.max(),
            roughness,
        }
    }
}

/// Mean of a slice of f64; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice; 0 for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter()
        .map(|x| {
            let d = x - m;
            d * d
        })
        .sum::<f64>()
        / xs.len() as f64)
        .sqrt()
}

/// Median of a slice (averaging the middle pair for even lengths); 0 for an
/// empty slice. Does not mutate the input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Corpus-level summary: label histogram and length range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSummary {
    /// Number of series.
    pub count: usize,
    /// Number of distinct labels present (0 when unlabeled).
    pub classes: usize,
    /// Minimum series length.
    pub min_len: usize,
    /// Maximum series length.
    pub max_len: usize,
    /// Mean series length.
    pub mean_len: f64,
    /// Mean roughness across series.
    pub mean_roughness: f64,
}

impl CorpusSummary {
    /// Computes the summary of a corpus (slice of series).
    pub fn of(corpus: &[TimeSeries]) -> Self {
        use std::collections::BTreeSet;
        let mut labels = BTreeSet::new();
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        let mut sum_len = 0usize;
        let mut sum_rough = 0.0;
        for ts in corpus {
            if let Some(l) = ts.label() {
                labels.insert(l);
            }
            min_len = min_len.min(ts.len());
            max_len = max_len.max(ts.len());
            sum_len += ts.len();
            sum_rough += SeriesSummary::of(ts).roughness;
        }
        let count = corpus.len();
        Self {
            count,
            classes: labels.len(),
            min_len: if count == 0 { 0 } else { min_len },
            max_len,
            mean_len: if count == 0 {
                0.0
            } else {
                sum_len as f64 / count as f64
            },
            mean_roughness: if count == 0 {
                0.0
            } else {
                sum_rough / count as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn series_summary_basics() {
        let s = SeriesSummary::of(&ts(&[0.0, 2.0, 0.0]));
        assert_eq!(s.len, 3);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 2.0);
        assert!((s.roughness - 2.0).abs() < 1e-12);
    }

    #[test]
    fn roughness_of_single_sample_is_zero() {
        assert_eq!(SeriesSummary::of(&ts(&[5.0])).roughness, 0.0);
    }

    #[test]
    fn slice_stats() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[4.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        // input untouched
        let xs = [9.0, 1.0];
        let _ = median(&xs);
        assert_eq!(xs, [9.0, 1.0]);
    }

    #[test]
    fn corpus_summary_counts_classes_and_lengths() {
        let corpus = vec![
            ts(&[1.0, 2.0]).labeled(0),
            ts(&[1.0, 2.0, 3.0]).labeled(1),
            ts(&[1.0]).labeled(0),
        ];
        let s = CorpusSummary::of(&corpus);
        assert_eq!(s.count, 3);
        assert_eq!(s.classes, 2);
        assert_eq!(s.min_len, 1);
        assert_eq!(s.max_len, 3);
        assert!((s.mean_len - 2.0).abs() < 1e-12);
    }

    #[test]
    fn corpus_summary_empty() {
        let s = CorpusSummary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.classes, 0);
        assert_eq!(s.min_len, 0);
        assert_eq!(s.max_len, 0);
    }
}
