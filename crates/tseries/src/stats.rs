//! Summary statistics for series and corpora.
//!
//! Used by dataset characterisation (Table 1 / Table 2 style reporting) and
//! by the experiment binaries when printing averages over runs.

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// Per-series summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Number of samples.
    pub len: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Mean absolute first difference (a cheap "busy-ness" indicator —
    /// feature-rich series like the 50Words family score high).
    pub roughness: f64,
}

impl SeriesSummary {
    /// Computes the summary of a series.
    pub fn of(ts: &TimeSeries) -> Self {
        let v = ts.values();
        let roughness = if v.len() < 2 {
            0.0
        } else {
            v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (v.len() - 1) as f64
        };
        Self {
            len: ts.len(),
            mean: ts.mean(),
            std_dev: ts.std_dev(),
            min: ts.min(),
            max: ts.max(),
            roughness,
        }
    }
}

/// Mean of a slice of f64; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice; 0 for fewer than two values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter()
        .map(|x| {
            let d = x - m;
            d * d
        })
        .sum::<f64>()
        / xs.len() as f64)
        .sqrt()
}

/// Median of a slice (averaging the middle pair for even lengths); 0 for an
/// empty slice. Does not mutate the input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Incremental sliding-window moments: mean and (population) variance of
/// the last `capacity` pushed samples, maintained in O(1) amortised time
/// per push.
///
/// The accumulator keeps a ring buffer of the window contents plus the
/// running sum and sum of squares of *offset-centred* samples (`v -
/// offset`, the offset tracking the window mean so the squared terms
/// never catastrophically cancel); each push adds the incoming sample and
/// subtracts the evicted one. Floating-point drift from the sliding
/// subtraction is bounded by recomputing both sums exactly from the
/// buffer — and re-centring the offset — once every `capacity` evictions
/// (an O(capacity) pass, so O(1) amortised). Over any stream length the
/// reported moments stay within ~1e-12 absolute-plus-relative error of
/// the batch [`mean`]/[`std_dev`] of the same window.
///
/// Streaming subsequence search uses one of these per monitored stream to
/// feed the O(1) LB_Kim screen; consumers that need *bit-exact* window
/// statistics (e.g. to reproduce [`crate::transform::z_normalize`])
/// should recompute them from [`WindowedStats::copy_window_into`] at the
/// point of use and treat these as a screening approximation.
#[derive(Debug, Clone)]
pub struct WindowedStats {
    /// Ring buffer of the current window, `buf[(head + k) % capacity]`
    /// being the k-th oldest retained sample.
    buf: Vec<f64>,
    capacity: usize,
    head: usize,
    len: usize,
    /// Centring offset: sums accumulate `v - offset`, re-centred to the
    /// window mean at every refresh.
    offset: f64,
    /// Running `Σ (v - offset)` over the window.
    sum: f64,
    /// Running `Σ (v - offset)²` over the window.
    sum_sq: f64,
    /// Evictions since the last exact recomputation of the sums.
    evictions: usize,
    /// Total samples ever pushed (stream position).
    pushed: u64,
}

impl WindowedStats {
    /// Creates an accumulator over a window of `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0` (programmer error).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            buf: vec![0.0; capacity],
            capacity,
            head: 0,
            len: 0,
            offset: 0.0,
            sum: 0.0,
            sum_sq: 0.0,
            evictions: 0,
            pushed: 0,
        }
    }

    /// Pushes a sample, evicting (and returning) the oldest one once the
    /// window is full.
    pub fn push(&mut self, v: f64) -> Option<f64> {
        self.pushed += 1;
        if self.len == 0 {
            // seed the centring offset near the data's scale
            self.offset = v;
        }
        if self.len < self.capacity {
            self.buf[(self.head + self.len) % self.capacity] = v;
            self.len += 1;
            let c = v - self.offset;
            self.sum += c;
            self.sum_sq += c * c;
            return None;
        }
        let old = self.buf[self.head];
        self.buf[self.head] = v;
        self.head = (self.head + 1) % self.capacity;
        let c_new = v - self.offset;
        let c_old = old - self.offset;
        self.sum += c_new - c_old;
        self.sum_sq += c_new * c_new - c_old * c_old;
        self.evictions += 1;
        if self.evictions >= self.capacity {
            self.refresh();
        }
        Some(old)
    }

    /// Recomputes the sums exactly from the buffer and re-centres the
    /// offset on the current window mean (drift flush).
    fn refresh(&mut self) {
        self.evictions = 0;
        if self.len == 0 {
            self.sum = 0.0;
            self.sum_sq = 0.0;
            return;
        }
        let mut raw_sum = 0.0;
        for k in 0..self.len {
            raw_sum += self.buf[(self.head + k) % self.capacity];
        }
        self.offset = raw_sum / self.len as f64;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for k in 0..self.len {
            let c = self.buf[(self.head + k) % self.capacity] - self.offset;
            sum += c;
            sum_sq += c * c;
        }
        self.sum = sum;
        self.sum_sq = sum_sq;
    }

    /// Window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently in the window (`<= capacity`).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Total samples ever pushed (the stream position; the current window
    /// covers offsets `[pushed - len, pushed)`).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Oldest retained sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty window.
    pub fn front(&self) -> f64 {
        assert!(self.len > 0, "window is empty");
        self.buf[self.head]
    }

    /// Newest retained sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty window.
    pub fn back(&self) -> f64 {
        assert!(self.len > 0, "window is empty");
        self.buf[(self.head + self.len - 1) % self.capacity]
    }

    /// Mean of the window; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.offset + self.sum / self.len as f64
        }
    }

    /// Population variance of the window (clamped at 0 against rounding);
    /// 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        let n = self.len as f64;
        let var = self.sum_sq / n - (self.sum / n) * (self.sum / n);
        var.max(0.0)
    }

    /// Population standard deviation of the window.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Whether the O(1) moments are numerically trustworthy right now.
    ///
    /// The sliding variance is `Σc²/n − (Σc/n)²` over offset-centred
    /// samples; when the window sits far from the centring offset —
    /// e.g. just after a level shift in the stream, before the next
    /// scheduled re-centring — the two terms nearly cancel and the
    /// difference can be dominated by accumulated rounding. This
    /// reports `true` when the spread is at least 1% of the centred
    /// second moment, which bounds the relative error of
    /// [`WindowedStats::std_dev`] by roughly `100·m·ε` (~1e-9 for
    /// windows up to ~10⁴ samples); consumers that prune on the moments
    /// (the rolling LB_Kim) abstain when it reports `false` and fall
    /// back to exact recomputation. Windows whose true deviation is
    /// genuinely tiny relative to their offset distance also report
    /// `false` — for those, batch-exact statistics are the only safe
    /// source.
    pub fn moments_well_conditioned(&self) -> bool {
        if self.len < 2 {
            return true;
        }
        let ms = self.sum_sq / self.len as f64;
        ms <= 0.0 || self.variance() >= 1e-2 * ms
    }

    /// Copies the window contents, oldest first, into `out` (cleared
    /// first). The copy is in stream order, suitable for exact batch
    /// recomputation or running the DP on the window.
    pub fn copy_window_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(self.len);
        for k in 0..self.len {
            out.push(self.buf[(self.head + k) % self.capacity]);
        }
    }

    /// Empties the window (capacity is retained).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
        self.offset = 0.0;
        self.sum = 0.0;
        self.sum_sq = 0.0;
        self.evictions = 0;
        self.pushed = 0;
    }
}

/// Corpus-level summary: label histogram and length range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSummary {
    /// Number of series.
    pub count: usize,
    /// Number of distinct labels present (0 when unlabeled).
    pub classes: usize,
    /// Minimum series length.
    pub min_len: usize,
    /// Maximum series length.
    pub max_len: usize,
    /// Mean series length.
    pub mean_len: f64,
    /// Mean roughness across series.
    pub mean_roughness: f64,
}

impl CorpusSummary {
    /// Computes the summary of a corpus (slice of series).
    pub fn of(corpus: &[TimeSeries]) -> Self {
        use std::collections::BTreeSet;
        let mut labels = BTreeSet::new();
        let mut min_len = usize::MAX;
        let mut max_len = 0usize;
        let mut sum_len = 0usize;
        let mut sum_rough = 0.0;
        for ts in corpus {
            if let Some(l) = ts.label() {
                labels.insert(l);
            }
            min_len = min_len.min(ts.len());
            max_len = max_len.max(ts.len());
            sum_len += ts.len();
            sum_rough += SeriesSummary::of(ts).roughness;
        }
        let count = corpus.len();
        Self {
            count,
            classes: labels.len(),
            min_len: if count == 0 { 0 } else { min_len },
            max_len,
            mean_len: if count == 0 {
                0.0
            } else {
                sum_len as f64 / count as f64
            },
            mean_roughness: if count == 0 {
                0.0
            } else {
                sum_rough / count as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn series_summary_basics() {
        let s = SeriesSummary::of(&ts(&[0.0, 2.0, 0.0]));
        assert_eq!(s.len, 3);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 2.0);
        assert!((s.roughness - 2.0).abs() < 1e-12);
    }

    #[test]
    fn roughness_of_single_sample_is_zero() {
        assert_eq!(SeriesSummary::of(&ts(&[5.0])).roughness, 0.0);
    }

    #[test]
    fn slice_stats() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[4.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        // input untouched
        let xs = [9.0, 1.0];
        let _ = median(&xs);
        assert_eq!(xs, [9.0, 1.0]);
    }

    #[test]
    fn windowed_stats_filling_phase_matches_batch() {
        let mut w = WindowedStats::new(4);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        let xs = [2.0, -1.0, 3.5];
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(w.push(v), None, "no eviction while filling");
            assert_eq!(w.len(), i + 1);
            assert!((w.mean() - mean(&xs[..=i])).abs() < 1e-12);
            assert!((w.std_dev() - std_dev(&xs[..=i])).abs() < 1e-12);
        }
        assert!(!w.is_full());
        assert_eq!(w.front(), 2.0);
        assert_eq!(w.back(), 3.5);
    }

    #[test]
    fn windowed_stats_slides_and_evicts_in_order() {
        let mut w = WindowedStats::new(3);
        for v in [1.0, 2.0, 3.0] {
            w.push(v);
        }
        assert!(w.is_full());
        assert_eq!(w.push(4.0), Some(1.0));
        assert_eq!(w.push(5.0), Some(2.0));
        assert_eq!(w.front(), 3.0);
        assert_eq!(w.back(), 5.0);
        // window is now [3, 4, 5]
        assert!((w.mean() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - std_dev(&[3.0, 4.0, 5.0])).abs() < 1e-12);
        assert_eq!(w.pushed(), 5);
        let mut out = Vec::new();
        w.copy_window_into(&mut out);
        assert_eq!(out, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn windowed_stats_tracks_batch_over_long_streams() {
        // deterministic stream long enough to cross many refresh cycles
        let mut seed = 0xabcdu64;
        let mut rng = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            1000.0 + ((seed >> 33) as f64 / (1u64 << 31) as f64)
        };
        let stream: Vec<f64> = (0..5000).map(|_| rng()).collect();
        let m = 37;
        let mut w = WindowedStats::new(m);
        let mut copied = Vec::new();
        for (t, &v) in stream.iter().enumerate() {
            w.push(v);
            if t + 1 >= m {
                let window = &stream[t + 1 - m..=t];
                assert!(
                    (w.mean() - mean(window)).abs() <= 1e-9 * (1.0 + mean(window).abs()),
                    "mean drifted at {t}"
                );
                assert!(
                    (w.std_dev() - std_dev(window)).abs() <= 1e-9,
                    "std drifted at {t}: {} vs {}",
                    w.std_dev(),
                    std_dev(window)
                );
                if t % 997 == 0 {
                    w.copy_window_into(&mut copied);
                    assert_eq!(copied, window);
                }
            }
        }
    }

    #[test]
    fn windowed_stats_report_ill_conditioning_after_a_level_shift() {
        // samples near 0 (so the refreshes centre the offset there),
        // then — mid refresh cycle — a jump to 1e8 with a tiny ripple:
        // while the window sits fully inside the new level with a stale
        // offset, the centred sums cancel catastrophically and the
        // accumulator must flag it instead of reporting a confidently
        // wrong sigma. Whenever it claims to be well-conditioned, the
        // sigma must actually be accurate.
        let m = 16;
        let shift_at = 72; // 8 pushes past the refresh at 64
        let mut w = WindowedStats::new(m);
        let mut window = Vec::new();
        let mut saw_ill = false;
        for t in 0..200 {
            let v = if t < shift_at {
                (t as f64 / 3.0).sin()
            } else {
                1e8 + 1e-3 * (t as f64 / 2.0).sin()
            };
            w.push(v);
            if t < shift_at {
                assert!(w.moments_well_conditioned(), "well-centred at {t}");
                continue;
            }
            w.copy_window_into(&mut window);
            let exact_sd = std_dev(&window);
            if w.moments_well_conditioned() {
                assert!(
                    (w.std_dev() - exact_sd).abs() <= 1e-6 * (1.0 + exact_sd),
                    "t={t}: claimed well-conditioned but sigma is off: {} vs {exact_sd}",
                    w.std_dev()
                );
            } else if window.iter().all(|&x| x > 1e7) {
                // fully inside the new level with a stale offset
                saw_ill = true;
            }
        }
        assert!(
            saw_ill,
            "the stale-offset regime was never flagged — the guard is dead"
        );
        // long after the shift the scheduled refreshes have re-centred
        assert!(w.moments_well_conditioned(), "refresh restores trust");
    }

    #[test]
    fn windowed_stats_variance_clamps_and_clear_resets() {
        let mut w = WindowedStats::new(2);
        w.push(7.0);
        assert_eq!(w.variance(), 0.0, "single sample has zero variance");
        w.push(7.0);
        assert_eq!(w.std_dev(), 0.0, "constant window has zero deviation");
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.pushed(), 0);
        assert_eq!(w.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn windowed_stats_zero_capacity_panics() {
        let _ = WindowedStats::new(0);
    }

    #[test]
    fn corpus_summary_counts_classes_and_lengths() {
        let corpus = vec![
            ts(&[1.0, 2.0]).labeled(0),
            ts(&[1.0, 2.0, 3.0]).labeled(1),
            ts(&[1.0]).labeled(0),
        ];
        let s = CorpusSummary::of(&corpus);
        assert_eq!(s.count, 3);
        assert_eq!(s.classes, 2);
        assert_eq!(s.min_len, 1);
        assert_eq!(s.max_len, 3);
        assert!((s.mean_len - 2.0).abs() < 1e-12);
    }

    #[test]
    fn corpus_summary_empty() {
        let s = CorpusSummary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.classes, 0);
        assert_eq!(s.min_len, 0);
        assert_eq!(s.max_len, 0);
    }
}
