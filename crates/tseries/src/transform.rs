//! Series transformations: normalisation, smoothing, resampling,
//! differencing.
//!
//! All transformations return *new* series (see the immutability note on
//! [`TimeSeries`]). Labels and identifiers are preserved so that transformed
//! corpora keep their class structure.

use crate::error::TsError;
use crate::series::TimeSeries;

/// Re-attaches label/id from `src` onto freshly built `values`.
fn rebuild(src: &TimeSeries, values: Vec<f64>) -> TimeSeries {
    let mut out = TimeSeries::new(values).expect("transform produced invalid series");
    if let Some(l) = src.label() {
        out = out.labeled(l);
    }
    if let Some(id) = src.id() {
        out = out.identified(id);
    }
    out
}

/// Z-normalises a series: subtract the mean, divide by the population
/// standard deviation. A constant series (σ = 0) maps to all-zeros rather
/// than dividing by zero — the convention used by the UCR suite.
pub fn z_normalize(ts: &TimeSeries) -> TimeSeries {
    let mut values = Vec::new();
    z_normalize_values(ts.values(), &mut values);
    rebuild(ts, values)
}

/// [`z_normalize`] over a raw sample slice, writing into a reusable
/// buffer (cleared first). This is the **one** implementation of the
/// normalisation — [`z_normalize`] delegates here, so callers that
/// normalise windows of a larger buffer (subsequence search) are
/// bit-identical to the series path by construction: same left-to-right
/// summation order for the mean, same population-σ formula, same σ = 0
/// all-zeros convention.
pub fn z_normalize_values(src: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if src.is_empty() {
        return;
    }
    let n = src.len() as f64;
    let mean = src.iter().sum::<f64>() / n;
    let var = src
        .iter()
        .map(|v| {
            let d = v - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    let sd = var.sqrt();
    if sd == 0.0 {
        out.resize(src.len(), 0.0);
    } else {
        out.extend(src.iter().map(|v| (v - mean) / sd));
    }
}

/// Min-max scales a series into `[0, 1]`. A constant series maps to all
/// `0.5` (centre of the target range).
pub fn min_max_scale(ts: &TimeSeries) -> TimeSeries {
    let min = ts.min();
    let max = ts.max();
    let range = max - min;
    let values = if range == 0.0 {
        vec![0.5; ts.len()]
    } else {
        ts.values().iter().map(|v| (v - min) / range).collect()
    };
    rebuild(ts, values)
}

/// Centred moving-average smoothing with an odd window of size
/// `2*radius + 1`; boundaries use the available (truncated) window.
///
/// Kept distinct from Gaussian smoothing (which lives in `sdtw-scalespace`)
/// because dataset generators want a cheap, kernel-free smoother.
pub fn moving_average(ts: &TimeSeries, radius: usize) -> TimeSeries {
    if radius == 0 {
        return ts.clone();
    }
    let v = ts.values();
    let n = v.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(radius);
        let hi = (i + radius + 1).min(n);
        let sum: f64 = v[lo..hi].iter().sum();
        out.push(sum / (hi - lo) as f64);
    }
    rebuild(ts, out)
}

/// Linearly resamples a series to `target_len` samples.
///
/// Index `i` of the output reads position `i * (n-1) / (target_len-1)` of
/// the input (endpoints preserved). `target_len == 1` returns the first
/// sample.
///
/// # Errors
///
/// [`TsError::InvalidLength`] when `target_len == 0`.
pub fn resample(ts: &TimeSeries, target_len: usize) -> Result<TimeSeries, TsError> {
    if target_len == 0 {
        return Err(TsError::InvalidLength {
            requested: 0,
            reason: "resample target must be positive",
        });
    }
    let v = ts.values();
    let n = v.len();
    if target_len == 1 {
        return Ok(rebuild(ts, vec![v[0]]));
    }
    if n == 1 {
        return Ok(rebuild(ts, vec![v[0]; target_len]));
    }
    let mut out = Vec::with_capacity(target_len);
    let scale = (n - 1) as f64 / (target_len - 1) as f64;
    for i in 0..target_len {
        let pos = i as f64 * scale;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        out.push(v[lo] * (1.0 - frac) + v[hi] * frac);
    }
    Ok(rebuild(ts, out))
}

/// First differences: output length `n-1`, `out[i] = v[i+1] - v[i]`.
///
/// # Errors
///
/// [`TsError::InvalidLength`] when the input has a single sample.
pub fn difference(ts: &TimeSeries) -> Result<TimeSeries, TsError> {
    let v = ts.values();
    if v.len() < 2 {
        return Err(TsError::InvalidLength {
            requested: v.len(),
            reason: "differencing needs at least two samples",
        });
    }
    let out = v.windows(2).map(|w| w[1] - w[0]).collect();
    Ok(rebuild(ts, out))
}

/// Piecewise aggregate approximation (PAA): reduces a series to `segments`
/// values, each the mean of one of `segments` equal (fractional) chunks of
/// the input. The classic reduced representation for time-series indexing;
/// the coarse levels of multi-resolution DTW are built from repeated
/// 2-segment-per-step PAA.
///
/// # Errors
///
/// [`TsError::InvalidLength`] when `segments == 0` or exceeds the input
/// length.
pub fn paa(ts: &TimeSeries, segments: usize) -> Result<TimeSeries, TsError> {
    let v = ts.values();
    let n = v.len();
    if segments == 0 || segments > n {
        return Err(TsError::InvalidLength {
            requested: segments,
            reason: "PAA segment count must be in [1, len]",
        });
    }
    // fractional chunking: sample i contributes to segment floor(i*seg/n),
    // weighting boundary samples by their fractional overlap
    let mut sums = vec![0.0; segments];
    let mut weights = vec![0.0; segments];
    let scale = segments as f64 / n as f64;
    for (i, &x) in v.iter().enumerate() {
        let start = i as f64 * scale;
        let end = (i + 1) as f64 * scale;
        let first = start.floor() as usize;
        let last = ((end - 1e-12).floor() as usize).min(segments - 1);
        if first == last {
            sums[first] += x * (end - start);
            weights[first] += end - start;
        } else {
            // the sample straddles a segment boundary
            let boundary = (first + 1) as f64;
            sums[first] += x * (boundary - start);
            weights[first] += boundary - start;
            sums[last] += x * (end - boundary);
            weights[last] += end - boundary;
        }
    }
    let out = sums
        .iter()
        .zip(&weights)
        .map(|(s, w)| if *w > 0.0 { s / w } else { 0.0 })
        .collect();
    Ok(rebuild(ts, out))
}

/// Fixed-width PAA over a raw sample slice, writing segment means into a
/// reusable buffer (cleared first): segment `j` covers samples
/// `[j·width, min((j+1)·width, len))`, so every segment has exactly
/// `width` samples except a possibly shorter tail. Unlike [`paa`]'s
/// fractional chunking, the integer segmentation keeps per-segment
/// weights whole — the property the cascade's coarse (PAA) lower bound
/// needs for its admissibility argument (each segment's bound term is
/// multiplied by its exact sample count; see `sdtw_dtw::cascade`).
///
/// # Panics
///
/// Panics when `width == 0` (programmer error).
pub fn paa_fixed_values(src: &[f64], width: usize, out: &mut Vec<f64>) {
    assert!(width > 0, "PAA segment width must be positive");
    out.clear();
    let mut j = 0;
    while j < src.len() {
        let hi = (j + width).min(src.len());
        let seg = &src[j..hi];
        out.push(seg.iter().sum::<f64>() / seg.len() as f64);
        j = hi;
    }
}

/// Adds a constant offset to every sample.
pub fn offset(ts: &TimeSeries, delta: f64) -> TimeSeries {
    rebuild(ts, ts.values().iter().map(|v| v + delta).collect())
}

/// Multiplies every sample by a constant gain.
pub fn scale_amplitude(ts: &TimeSeries, gain: f64) -> TimeSeries {
    rebuild(ts, ts.values().iter().map(|v| v * gain).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::new(v.to_vec()).unwrap()
    }

    #[test]
    fn z_normalize_zero_mean_unit_var() {
        let z = z_normalize(&ts(&[1.0, 2.0, 3.0, 4.0, 5.0]));
        assert!(z.mean().abs() < 1e-12);
        assert!((z.std_dev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_constant_series() {
        let z = z_normalize(&ts(&[7.0; 5]));
        assert!(z.values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn min_max_hits_bounds() {
        let m = min_max_scale(&ts(&[2.0, 4.0, 6.0]));
        assert_eq!(m.values(), &[0.0, 0.5, 1.0]);
        let c = min_max_scale(&ts(&[3.0; 4]));
        assert!(c.values().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn moving_average_radius_zero_is_identity() {
        let a = ts(&[1.0, 5.0, 9.0]);
        assert_eq!(moving_average(&a, 0), a);
    }

    #[test]
    fn moving_average_smooths_and_preserves_constant() {
        let a = moving_average(&ts(&[0.0, 10.0, 0.0]), 1);
        // centre = mean(0,10,0) = 10/3; edges use truncated windows
        assert!((a.at(1) - 10.0 / 3.0).abs() < 1e-12);
        assert!((a.at(0) - 5.0).abs() < 1e-12);
        let c = moving_average(&ts(&[4.0; 6]), 2);
        assert!(c.values().iter().all(|&v| (v - 4.0).abs() < 1e-12));
    }

    #[test]
    fn resample_preserves_endpoints() {
        let a = ts(&[0.0, 1.0, 2.0, 3.0]);
        let r = resample(&a, 7).unwrap();
        assert_eq!(r.len(), 7);
        assert!((r.at(0) - 0.0).abs() < 1e-12);
        assert!((r.at(6) - 3.0).abs() < 1e-12);
        // linear input stays linear under linear interpolation
        for i in 0..7 {
            assert!((r.at(i) - i as f64 * 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn resample_degenerate_cases() {
        let a = ts(&[5.0]);
        assert_eq!(resample(&a, 4).unwrap().values(), &[5.0; 4]);
        let b = ts(&[1.0, 2.0]);
        assert_eq!(resample(&b, 1).unwrap().values(), &[1.0]);
        assert!(resample(&b, 0).is_err());
    }

    #[test]
    fn resample_identity_when_lengths_match() {
        let a = ts(&[0.3, 1.7, -2.0, 0.0, 9.5]);
        let r = resample(&a, 5).unwrap();
        for i in 0..5 {
            assert!((r.at(i) - a.at(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn difference_basics() {
        let d = difference(&ts(&[1.0, 4.0, 2.0])).unwrap();
        assert_eq!(d.values(), &[3.0, -2.0]);
        assert!(difference(&ts(&[1.0])).is_err());
    }

    #[test]
    fn paa_even_division_takes_chunk_means() {
        let a = ts(&[1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
        let p = paa(&a, 3).unwrap();
        assert_eq!(p.values(), &[2.0, 6.0, 10.0]);
    }

    #[test]
    fn paa_identity_when_segments_equal_len() {
        let a = ts(&[0.5, 1.5, -2.0]);
        let p = paa(&a, 3).unwrap();
        for (x, y) in a.values().iter().zip(p.values()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn paa_single_segment_is_the_mean() {
        let a = ts(&[2.0, 4.0, 9.0]);
        let p = paa(&a, 1).unwrap();
        assert!((p.at(0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn paa_fractional_chunks_preserve_mean() {
        // 5 samples into 2 segments: chunk boundary splits sample 2
        let a = ts(&[1.0, 1.0, 4.0, 7.0, 7.0]);
        let p = paa(&a, 2).unwrap();
        // weighted global mean must be preserved
        let global = a.mean();
        let paa_mean = (p.at(0) + p.at(1)) / 2.0;
        assert!((global - paa_mean).abs() < 1e-9, "{global} vs {paa_mean}");
    }

    #[test]
    fn paa_rejects_bad_segment_counts() {
        let a = ts(&[1.0, 2.0]);
        assert!(paa(&a, 0).is_err());
        assert!(paa(&a, 3).is_err());
    }

    #[test]
    fn paa_fixed_values_takes_integer_segment_means() {
        let mut out = Vec::new();
        paa_fixed_values(&[1.0, 3.0, 5.0, 7.0, 10.0], 2, &mut out);
        assert_eq!(out, vec![2.0, 6.0, 10.0], "tail keeps its own mean");
        paa_fixed_values(&[4.0, 8.0], 8, &mut out);
        assert_eq!(out, vec![6.0], "oversized width is one segment");
        paa_fixed_values(&[], 3, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn paa_fixed_values_rejects_zero_width() {
        paa_fixed_values(&[1.0], 0, &mut Vec::new());
    }

    #[test]
    fn offset_and_gain() {
        let a = ts(&[1.0, 2.0]);
        assert_eq!(offset(&a, 1.5).values(), &[2.5, 3.5]);
        assert_eq!(scale_amplitude(&a, 2.0).values(), &[2.0, 4.0]);
    }

    #[test]
    fn transforms_preserve_label_and_id() {
        let a = TimeSeries::with_label(vec![1.0, 2.0, 3.0], 4)
            .unwrap()
            .identified(99);
        for t in [
            z_normalize(&a),
            min_max_scale(&a),
            moving_average(&a, 1),
            resample(&a, 6).unwrap(),
            difference(&a).unwrap(),
            paa(&a, 2).unwrap(),
            offset(&a, 1.0),
            scale_amplitude(&a, 3.0),
        ] {
            assert_eq!(t.label(), Some(4));
            assert_eq!(t.id(), Some(99));
        }
    }
}
