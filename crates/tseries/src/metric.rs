//! Element-level distance functions `Δ(x_i, y_j)`.
//!
//! The DTW recurrence (paper §2.1.3) is parameterised by a distance on the
//! element domain `D`. For scalar series the common choices are the squared
//! difference (the default in most DTW literature, including the UCR code
//! the paper baselines against) and the absolute difference. The enum is
//! deliberately closed: an open trait would force the DP inner loop through
//! dynamic dispatch, and the banded kernel is the hottest code in the
//! repository.

use serde::{Deserialize, Serialize};

/// Pointwise distance used inside the DTW recurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ElementMetric {
    /// `(x - y)^2` — the classic DTW local cost.
    #[default]
    Squared,
    /// `|x - y|` — Manhattan local cost.
    Absolute,
}

impl ElementMetric {
    /// Evaluates the metric on a pair of samples.
    #[inline(always)]
    pub fn eval(self, x: f64, y: f64) -> f64 {
        let d = x - y;
        match self {
            ElementMetric::Squared => d * d,
            ElementMetric::Absolute => d.abs(),
        }
    }

    /// Short identifier used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ElementMetric::Squared => "sq",
            ElementMetric::Absolute => "abs",
        }
    }
}

/// Euclidean distance between two equal-length vectors.
///
/// Used for descriptor comparison in the matcher (paper §3.2.1: "computing
/// the distance between the feature vectors of each pair of salient points
/// using Euclidean distance").
///
/// # Panics
///
/// Panics in debug builds when the slices differ in length; in release the
/// shorter length wins (zip semantics) — callers validate lengths upstream.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance (saves the sqrt when only ordering matters).
#[inline]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "euclidean_sq: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_metric() {
        assert_eq!(ElementMetric::Squared.eval(3.0, 1.0), 4.0);
        assert_eq!(ElementMetric::Squared.eval(1.0, 3.0), 4.0);
        assert_eq!(ElementMetric::Squared.eval(2.5, 2.5), 0.0);
    }

    #[test]
    fn absolute_metric() {
        assert_eq!(ElementMetric::Absolute.eval(3.0, 1.0), 2.0);
        assert_eq!(ElementMetric::Absolute.eval(1.0, 3.0), 2.0);
        assert_eq!(ElementMetric::Absolute.eval(-1.0, 1.0), 2.0);
    }

    #[test]
    fn default_is_squared() {
        assert_eq!(ElementMetric::default(), ElementMetric::Squared);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ElementMetric::Squared.name(), "sq");
        assert_eq!(ElementMetric::Absolute.name(), "abs");
    }

    #[test]
    fn euclidean_on_vectors() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-12);
        assert!((euclidean_sq(&a, &b) - 25.0).abs() < 1e-12);
        assert_eq!(euclidean(&a, &a), 0.0);
    }

    #[test]
    fn euclidean_symmetry() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 7.0, 1.5];
        assert_eq!(euclidean(&a, &b), euclidean(&b, &a));
    }
}
