//! The core [`TimeSeries`] type.

use crate::error::TsError;
use serde::{Deserialize, Serialize};

/// A validated 1D time series of `f64` samples.
///
/// Invariants enforced at construction time:
///
/// * at least one sample,
/// * every sample is finite (no NaN / ±∞).
///
/// A series may carry an optional class `label` (used by the classification
/// experiments of the paper) and an optional `id` (used by retrieval
/// experiments and feature stores to key cached salient features).
///
/// The sample buffer is intentionally *not* mutable through the public API:
/// downstream crates cache derived artefacts (scale spaces, descriptors)
/// keyed by series identity, and silent mutation would invalidate them.
/// Transformations produce new series (see [`crate::transform`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
    /// Optional class label (e.g. the UCR class index).
    label: Option<u32>,
    /// Optional stable identifier within a corpus.
    id: Option<u64>,
}

impl TimeSeries {
    /// Creates a series from raw samples, validating the invariants.
    ///
    /// # Errors
    ///
    /// [`TsError::Empty`] when `values` is empty, [`TsError::NonFinite`] when
    /// any sample is NaN or infinite.
    pub fn new(values: Vec<f64>) -> Result<Self, TsError> {
        if values.is_empty() {
            return Err(TsError::Empty);
        }
        for (index, &value) in values.iter().enumerate() {
            if !value.is_finite() {
                return Err(TsError::NonFinite { index, value });
            }
        }
        Ok(Self {
            values,
            label: None,
            id: None,
        })
    }

    /// Creates a series and attaches a class label in one step.
    pub fn with_label(values: Vec<f64>, label: u32) -> Result<Self, TsError> {
        let mut ts = Self::new(values)?;
        ts.label = Some(label);
        Ok(ts)
    }

    /// Returns a copy of this series with the given label attached.
    #[must_use]
    pub fn labeled(mut self, label: u32) -> Self {
        self.label = Some(label);
        self
    }

    /// Returns a copy of this series with the given identifier attached.
    #[must_use]
    pub fn identified(mut self, id: u64) -> Self {
        self.id = Some(id);
        self
    }

    /// The samples as a slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // an empty series cannot be constructed
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Class label, if any.
    #[inline]
    pub fn label(&self) -> Option<u32> {
        self.label
    }

    /// Corpus identifier, if any.
    #[inline]
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Sample at index `i` (panics if out of range, like slice indexing).
    #[inline]
    pub fn at(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation of the samples.
    pub fn std_dev(&self) -> f64 {
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| {
                let d = v - mean;
                d * d
            })
            .sum::<f64>()
            / self.values.len() as f64;
        var.sqrt()
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Consumes the series and returns the raw sample buffer.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Mean of the samples inside the half-open window `[start, end)`,
    /// clamped to the series bounds. Used for feature-scope amplitude
    /// comparisons (`Δ_amp` in the matcher). Returns the overall mean when
    /// the clamped window is empty.
    pub fn window_mean(&self, start: usize, end: usize) -> f64 {
        let end = end.min(self.values.len());
        let start = start.min(end);
        if start == end {
            return self.mean();
        }
        self.values[start..end].iter().sum::<f64>() / (end - start) as f64
    }
}

impl AsRef<[f64]> for TimeSeries {
    fn as_ref(&self) -> &[f64] {
        &self.values
    }
}

impl std::ops::Index<usize> for TimeSeries {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.values[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty() {
        assert!(matches!(TimeSeries::new(vec![]), Err(TsError::Empty)));
    }

    #[test]
    fn rejects_nan_and_infinite() {
        let e = TimeSeries::new(vec![1.0, f64::NAN]).unwrap_err();
        assert!(matches!(e, TsError::NonFinite { index: 1, .. }));
        let e = TimeSeries::new(vec![f64::INFINITY]).unwrap_err();
        assert!(matches!(e, TsError::NonFinite { index: 0, .. }));
        let e = TimeSeries::new(vec![0.0, 1.0, f64::NEG_INFINITY]).unwrap_err();
        assert!(matches!(e, TsError::NonFinite { index: 2, .. }));
    }

    #[test]
    fn basic_accessors() {
        let ts = TimeSeries::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.at(0), 3.0);
        assert_eq!(ts[2], 2.0);
        assert_eq!(ts.min(), 1.0);
        assert_eq!(ts.max(), 3.0);
        assert!((ts.mean() - 2.0).abs() < 1e-12);
        assert!(ts.label().is_none());
        assert!(ts.id().is_none());
    }

    #[test]
    fn label_and_id_attachment() {
        let ts = TimeSeries::with_label(vec![1.0], 7).unwrap().identified(42);
        assert_eq!(ts.label(), Some(7));
        assert_eq!(ts.id(), Some(42));
        let ts2 = TimeSeries::new(vec![1.0]).unwrap().labeled(9);
        assert_eq!(ts2.label(), Some(9));
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        let ts = TimeSeries::new(vec![5.0; 10]).unwrap();
        assert_eq!(ts.std_dev(), 0.0);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        // values 1,2,3,4 -> mean 2.5, population variance 1.25
        let ts = TimeSeries::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((ts.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn window_mean_clamps_and_handles_empty() {
        let ts = TimeSeries::new(vec![0.0, 10.0, 20.0, 30.0]).unwrap();
        assert!((ts.window_mean(1, 3) - 15.0).abs() < 1e-12);
        // end beyond the buffer clamps
        assert!((ts.window_mean(2, 99) - 25.0).abs() < 1e-12);
        // fully out-of-range / empty window falls back to the global mean
        assert!((ts.window_mean(10, 12) - ts.mean()).abs() < 1e-12);
        assert!((ts.window_mean(2, 2) - ts.mean()).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let ts = TimeSeries::with_label(vec![1.0, 2.0], 3)
            .unwrap()
            .identified(11);
        let json = serde_json::to_string(&ts).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(ts, back);
    }
}
