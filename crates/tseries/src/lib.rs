//! # sdtw-tseries — time-series substrate
//!
//! Foundation crate for the sDTW reproduction (Candan, Rossini, Sapino,
//! Wang; PVLDB 5(11), 2012). Everything above this crate — scale spaces,
//! salient features, matching, DTW engines — operates on the [`TimeSeries`]
//! type and the element metrics defined here.
//!
//! The crate provides:
//!
//! * [`TimeSeries`] — an owned, validated, immutable-by-convention 1D series
//!   of `f64` samples with an optional label (used by the classification
//!   experiments) and an optional identifier;
//! * [`metric`] — pointwise distance functions `Δ(x_i, y_j)` used inside the
//!   DTW recurrence (squared, absolute, Euclidean on scalars);
//! * [`transform`] — z-normalisation, min-max scaling, moving-average
//!   smoothing, linear resampling, differencing;
//! * [`warp`] — smooth monotone warp maps used by the synthetic dataset
//!   generators and by tests that need ground-truth alignments;
//! * [`stats`] — summary statistics used by dataset characterisation
//!   (Table 2 style reporting) and by amplitude comparisons in matching;
//! * [`io`] — reader/writer for the UCR text format (one series per line,
//!   label first) so real archives drop in when available;
//! * [`error`] — the crate error type.
//!
//! # Example
//!
//! ```
//! use sdtw_tseries::{TimeSeries, transform};
//!
//! let ts = TimeSeries::new(vec![0.0, 1.0, 4.0, 1.0, 0.0]).unwrap();
//! let z = transform::z_normalize(&ts);
//! assert!((z.mean()).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod io;
pub mod metric;
pub mod series;
pub mod stats;
pub mod transform;
pub mod warp;

pub use error::TsError;
pub use metric::ElementMetric;
pub use series::TimeSeries;
pub use warp::WarpMap;
