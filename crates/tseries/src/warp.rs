//! Smooth monotone warp maps.
//!
//! The sDTW transformation model (paper §3.2.2) assumes that the two series
//! being compared are deformations of a common underlying pattern where
//! "time is stretched differently, but the order of the temporal features is
//! not altered". A [`WarpMap`] is exactly such a deformation: a strictly
//! monotone, continuous map `w : [0, 1] → [0, 1]` with `w(0) = 0` and
//! `w(1) = 1`, represented as a piecewise-linear function over anchor
//! points. Dataset generators apply warp maps to prototypes; tests use them
//! to create pairs whose ground-truth alignments are known.

use crate::error::TsError;
use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// A strictly monotone piecewise-linear map of normalised time
/// `[0,1] → [0,1]` fixing both endpoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarpMap {
    /// Anchor abscissae, strictly increasing, first = 0, last = 1.
    xs: Vec<f64>,
    /// Anchor ordinates, strictly increasing, first = 0, last = 1.
    ys: Vec<f64>,
}

impl WarpMap {
    /// Identity warp.
    pub fn identity() -> Self {
        Self {
            xs: vec![0.0, 1.0],
            ys: vec![0.0, 1.0],
        }
    }

    /// Builds a warp from interior anchors `(x, y)` (both in `(0,1)`,
    /// strictly increasing in both coordinates). The endpoints `(0,0)` and
    /// `(1,1)` are added automatically.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidParameter`] if anchors are out of range or not
    /// strictly increasing in either coordinate.
    pub fn from_anchors(anchors: &[(f64, f64)]) -> Result<Self, TsError> {
        let mut xs = Vec::with_capacity(anchors.len() + 2);
        let mut ys = Vec::with_capacity(anchors.len() + 2);
        xs.push(0.0);
        ys.push(0.0);
        for &(x, y) in anchors {
            if !(0.0..1.0).contains(&x) || x <= *xs.last().unwrap() {
                return Err(TsError::InvalidParameter {
                    name: "anchors",
                    reason: format!("abscissa {x} not strictly increasing in (0,1)"),
                });
            }
            if !(0.0..1.0).contains(&y) || y <= *ys.last().unwrap() {
                return Err(TsError::InvalidParameter {
                    name: "anchors",
                    reason: format!("ordinate {y} not strictly increasing in (0,1)"),
                });
            }
            xs.push(x);
            ys.push(y);
        }
        xs.push(1.0);
        ys.push(1.0);
        Ok(Self { xs, ys })
    }

    /// Evaluates the warp at normalised time `t` (clamped to `[0,1]`).
    pub fn eval(&self, t: f64) -> f64 {
        let t = t.clamp(0.0, 1.0);
        // find segment via binary search on the abscissae
        let seg = match self
            .xs
            .binary_search_by(|x| x.partial_cmp(&t).expect("anchors are finite"))
        {
            Ok(i) => return self.ys[i],
            Err(i) => i.saturating_sub(1).min(self.xs.len() - 2),
        };
        let (x0, x1) = (self.xs[seg], self.xs[seg + 1]);
        let (y0, y1) = (self.ys[seg], self.ys[seg + 1]);
        let frac = if x1 > x0 { (t - x0) / (x1 - x0) } else { 0.0 };
        y0 + frac * (y1 - y0)
    }

    /// Inverse warp (swap of anchors; valid because the map is strictly
    /// monotone).
    #[must_use]
    pub fn inverse(&self) -> Self {
        Self {
            xs: self.ys.clone(),
            ys: self.xs.clone(),
        }
    }

    /// Applies the warp to a series, producing `target_len` samples:
    /// output index `i` reads (linearly interpolated) input position
    /// `w(i / (target_len-1)) * (n-1)`.
    ///
    /// # Errors
    ///
    /// [`TsError::InvalidLength`] when `target_len == 0`.
    pub fn apply(&self, ts: &TimeSeries, target_len: usize) -> Result<TimeSeries, TsError> {
        if target_len == 0 {
            return Err(TsError::InvalidLength {
                requested: 0,
                reason: "warp target length must be positive",
            });
        }
        let v = ts.values();
        let n = v.len();
        let mut out = Vec::with_capacity(target_len);
        for i in 0..target_len {
            let t = if target_len == 1 {
                0.0
            } else {
                i as f64 / (target_len - 1) as f64
            };
            let pos = self.eval(t) * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let frac = pos - lo as f64;
            out.push(v[lo] * (1.0 - frac) + v[hi] * frac);
        }
        let mut res = TimeSeries::new(out).expect("warp produced invalid series");
        if let Some(l) = ts.label() {
            res = res.labeled(l);
        }
        if let Some(id) = ts.id() {
            res = res.identified(id);
        }
        Ok(res)
    }

    /// Ground-truth correspondence: for input index `j` of an `n`-sample
    /// series, the output index (under `apply` with `target_len = m`) whose
    /// read position is closest to `j`. Used by tests to validate that
    /// adaptive cores track the true alignment.
    pub fn correspondence(&self, j: usize, n: usize, m: usize) -> usize {
        if m <= 1 || n <= 1 {
            return 0;
        }
        let target = j as f64 / (n - 1) as f64;
        let inv = self.inverse();
        let t = inv.eval(target);
        (t * (m - 1) as f64).round() as usize
    }
}

impl Default for WarpMap {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_points_to_themselves() {
        let w = WarpMap::identity();
        for t in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert!((w.eval(t) - t).abs() < 1e-12);
        }
    }

    #[test]
    fn eval_clamps_out_of_range() {
        let w = WarpMap::identity();
        assert_eq!(w.eval(-3.0), 0.0);
        assert_eq!(w.eval(7.0), 1.0);
    }

    #[test]
    fn anchors_must_increase() {
        assert!(WarpMap::from_anchors(&[(0.5, 0.5), (0.4, 0.6)]).is_err());
        assert!(WarpMap::from_anchors(&[(0.5, 0.5), (0.6, 0.4)]).is_err());
        assert!(WarpMap::from_anchors(&[(0.0, 0.5)]).is_err());
        assert!(WarpMap::from_anchors(&[(0.5, 1.0)]).is_err());
        assert!(WarpMap::from_anchors(&[(0.3, 0.6), (0.7, 0.8)]).is_ok());
    }

    #[test]
    fn piecewise_interpolation() {
        // single interior anchor (0.5, 0.25): first half compressed
        let w = WarpMap::from_anchors(&[(0.5, 0.25)]).unwrap();
        assert!((w.eval(0.25) - 0.125).abs() < 1e-12);
        assert!((w.eval(0.5) - 0.25).abs() < 1e-12);
        assert!((w.eval(0.75) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn inverse_round_trips() {
        let w = WarpMap::from_anchors(&[(0.3, 0.6), (0.7, 0.8)]).unwrap();
        let inv = w.inverse();
        for t in [0.0, 0.1, 0.33, 0.5, 0.77, 1.0] {
            assert!((inv.eval(w.eval(t)) - t).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_identity_equals_resample() {
        let ts = TimeSeries::new(vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let out = WarpMap::identity().apply(&ts, 4).unwrap();
        for i in 0..4 {
            assert!((out.at(i) - ts.at(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_preserves_endpoints_and_monotone_order() {
        let ts = TimeSeries::new((0..50).map(|i| (i as f64 / 7.0).sin()).collect()).unwrap();
        let w = WarpMap::from_anchors(&[(0.4, 0.2)]).unwrap();
        let out = w.apply(&ts, 80).unwrap();
        assert_eq!(out.len(), 80);
        assert!((out.at(0) - ts.at(0)).abs() < 1e-12);
        assert!((out.at(79) - ts.at(49)).abs() < 1e-12);
    }

    #[test]
    fn apply_rejects_zero_length_and_handles_len_one() {
        let ts = TimeSeries::new(vec![1.0, 2.0]).unwrap();
        assert!(WarpMap::identity().apply(&ts, 0).is_err());
        let one = WarpMap::identity().apply(&ts, 1).unwrap();
        assert_eq!(one.values(), &[1.0]);
    }

    #[test]
    fn correspondence_identity() {
        let w = WarpMap::identity();
        assert_eq!(w.correspondence(0, 10, 10), 0);
        assert_eq!(w.correspondence(9, 10, 10), 9);
        assert_eq!(w.correspondence(4, 10, 19), 8);
    }
}
