//! UCR-format time-series I/O.
//!
//! The paper evaluates on datasets from the UCR time-series archive. The
//! archive's text format is one series per line: the class label first,
//! then the samples, separated by commas or whitespace. This module parses
//! and writes that format so that real archives can be dropped into the
//! experiment harness when available (the repository ships synthetic
//! stand-ins; see `sdtw-datasets`).

use crate::error::TsError;
use crate::series::TimeSeries;
use std::io::{BufRead, Write};
use std::path::Path;

/// Parses a single UCR line: `label, v1, v2, ...` (comma or whitespace
/// separated). The label must be a non-negative integer-valued number
/// (UCR labels are sometimes written as `1.0`).
fn parse_line(line: &str, line_no: usize) -> Result<Option<TimeSeries>, TsError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let mut fields = trimmed
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|s| !s.is_empty());
    let label_raw = fields.next().ok_or_else(|| TsError::Parse {
        line: line_no,
        reason: "missing label field".into(),
    })?;
    let label_f: f64 = label_raw.parse().map_err(|_| TsError::Parse {
        line: line_no,
        reason: format!("label `{label_raw}` is not numeric"),
    })?;
    if label_f < 0.0 || label_f.fract() != 0.0 || label_f > u32::MAX as f64 {
        return Err(TsError::Parse {
            line: line_no,
            reason: format!("label `{label_raw}` is not a non-negative integer"),
        });
    }
    let mut values = Vec::new();
    for field in fields {
        let v: f64 = field.parse().map_err(|_| TsError::Parse {
            line: line_no,
            reason: format!("sample `{field}` is not numeric"),
        })?;
        values.push(v);
    }
    if values.is_empty() {
        return Err(TsError::Parse {
            line: line_no,
            reason: "series has a label but no samples".into(),
        });
    }
    let ts = TimeSeries::with_label(values, label_f as u32).map_err(|e| TsError::Parse {
        line: line_no,
        reason: e.to_string(),
    })?;
    Ok(Some(ts))
}

/// Reads a UCR-format corpus from any reader. Blank lines are skipped.
/// Series are assigned sequential ids (0, 1, 2, …) in file order.
pub fn read_ucr<R: BufRead>(reader: R) -> Result<Vec<TimeSeries>, TsError> {
    let mut corpus = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(ts) = parse_line(&line, idx + 1)? {
            let id = corpus.len() as u64;
            corpus.push(ts.identified(id));
        }
    }
    Ok(corpus)
}

/// Reads a UCR-format corpus from a file path.
pub fn read_ucr_file<P: AsRef<Path>>(path: P) -> Result<Vec<TimeSeries>, TsError> {
    let file = std::fs::File::open(path)?;
    read_ucr(std::io::BufReader::new(file))
}

/// Writes a corpus in UCR format (comma separated). Unlabeled series are
/// written with label `0`.
pub fn write_ucr<W: Write>(mut writer: W, corpus: &[TimeSeries]) -> Result<(), TsError> {
    for ts in corpus {
        write!(writer, "{}", ts.label().unwrap_or(0))?;
        for v in ts.values() {
            write!(writer, ",{v}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Writes a corpus to a file path in UCR format.
pub fn write_ucr_file<P: AsRef<Path>>(path: P, corpus: &[TimeSeries]) -> Result<(), TsError> {
    let file = std::fs::File::create(path)?;
    write_ucr(std::io::BufWriter::new(file), corpus)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comma_separated() {
        let corpus = read_ucr("1,0.5,0.7,0.9\n2,1.0,1.1,1.2\n".as_bytes()).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus[0].label(), Some(1));
        assert_eq!(corpus[0].values(), &[0.5, 0.7, 0.9]);
        assert_eq!(corpus[1].label(), Some(2));
        assert_eq!(corpus[0].id(), Some(0));
        assert_eq!(corpus[1].id(), Some(1));
    }

    #[test]
    fn parses_whitespace_separated_and_float_labels() {
        let corpus = read_ucr("1.0  0.5 0.7\n".as_bytes()).unwrap();
        assert_eq!(corpus[0].label(), Some(1));
        assert_eq!(corpus[0].values(), &[0.5, 0.7]);
    }

    #[test]
    fn skips_blank_lines() {
        let corpus = read_ucr("\n1,2.0\n\n2,3.0\n\n".as_bytes()).unwrap();
        assert_eq!(corpus.len(), 2);
    }

    #[test]
    fn rejects_bad_label() {
        let e = read_ucr("x,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
        let e = read_ucr("1.5,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
        let e = read_ucr("-2,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_sample_and_empty_series() {
        let e = read_ucr("1,abc\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
        let e = read_ucr("1\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_nan_sample_with_line_number() {
        let e = read_ucr("1,2.0\n3,NaN\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn write_read_round_trip() {
        let corpus = vec![
            TimeSeries::with_label(vec![1.0, 2.0], 3).unwrap(),
            TimeSeries::new(vec![0.25]).unwrap(),
        ];
        let mut buf = Vec::new();
        write_ucr(&mut buf, &corpus).unwrap();
        let back = read_ucr(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].label(), Some(3));
        assert_eq!(back[0].values(), corpus[0].values());
        // unlabeled series round-trips with label 0
        assert_eq!(back[1].label(), Some(0));
        assert_eq!(back[1].values(), corpus[1].values());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sdtw_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        let corpus = vec![TimeSeries::with_label(vec![5.0, 6.0, 7.0], 1).unwrap()];
        write_ucr_file(&path, &corpus).unwrap();
        let back = read_ucr_file(&path).unwrap();
        assert_eq!(back[0].values(), corpus[0].values());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = read_ucr_file("/nonexistent/sdtw/corpus.txt").unwrap_err();
        assert!(matches!(e, TsError::Io(_)));
    }
}
