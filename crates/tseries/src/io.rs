//! UCR-format time-series I/O.
//!
//! The paper evaluates on datasets from the UCR time-series archive. The
//! archive's text format is one series per line: the class label first,
//! then the samples, separated by commas or whitespace. This module parses
//! and writes that format so that real archives can be dropped into the
//! experiment harness when available (the repository ships synthetic
//! stand-ins; see `sdtw-datasets`).

use crate::error::TsError;
use crate::series::TimeSeries;
use std::io::{BufRead, Write};
use std::path::Path;

/// Parses a single UCR line: `label, v1, v2, ...` (comma or whitespace
/// separated). The label must be a non-negative integer-valued number
/// (UCR labels are sometimes written as `1.0`).
fn parse_line(line: &str, line_no: usize) -> Result<Option<TimeSeries>, TsError> {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let mut fields = trimmed
        .split(|c: char| c == ',' || c.is_whitespace())
        .filter(|s| !s.is_empty());
    let label_raw = fields.next().ok_or_else(|| TsError::Parse {
        line: line_no,
        reason: "missing label field".into(),
    })?;
    let label_f: f64 = label_raw.parse().map_err(|_| TsError::Parse {
        line: line_no,
        reason: format!("label `{label_raw}` is not numeric"),
    })?;
    if label_f < 0.0 || label_f.fract() != 0.0 || label_f > u32::MAX as f64 {
        return Err(TsError::Parse {
            line: line_no,
            reason: format!("label `{label_raw}` is not a non-negative integer"),
        });
    }
    let mut values = Vec::new();
    for field in fields {
        let v: f64 = field.parse().map_err(|_| TsError::Parse {
            line: line_no,
            reason: format!("sample `{field}` is not numeric"),
        })?;
        values.push(v);
    }
    if values.is_empty() {
        return Err(TsError::Parse {
            line: line_no,
            reason: "series has a label but no samples".into(),
        });
    }
    let ts = TimeSeries::with_label(values, label_f as u32).map_err(|e| TsError::Parse {
        line: line_no,
        reason: e.to_string(),
    })?;
    Ok(Some(ts))
}

/// Reads a UCR-format corpus from any reader. Blank lines are skipped.
/// Series are assigned sequential ids (0, 1, 2, …) in file order.
pub fn read_ucr<R: BufRead>(reader: R) -> Result<Vec<TimeSeries>, TsError> {
    let mut corpus = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if let Some(ts) = parse_line(&line, idx + 1)? {
            let id = corpus.len() as u64;
            corpus.push(ts.identified(id));
        }
    }
    Ok(corpus)
}

/// Reads a UCR-format corpus from a file path.
pub fn read_ucr_file<P: AsRef<Path>>(path: P) -> Result<Vec<TimeSeries>, TsError> {
    let file = std::fs::File::open(path)?;
    read_ucr(std::io::BufReader::new(file))
}

/// Writes a corpus in UCR format (comma separated). Unlabeled series are
/// written with label `0`.
pub fn write_ucr<W: Write>(mut writer: W, corpus: &[TimeSeries]) -> Result<(), TsError> {
    for ts in corpus {
        write!(writer, "{}", ts.label().unwrap_or(0))?;
        for v in ts.values() {
            write!(writer, ",{v}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Writes a corpus to a file path in UCR format.
pub fn write_ucr_file<P: AsRef<Path>>(path: P, corpus: &[TimeSeries]) -> Result<(), TsError> {
    let file = std::fs::File::create(path)?;
    write_ucr(std::io::BufWriter::new(file), corpus)
}

/// Little-endian binary primitives shared by the workspace's columnar
/// snapshot codecs (the index's `SnapshotV2` format): fixed-width
/// integers and packed `f64` columns, streamed straight between typed
/// `Vec`s and any `Read`/`Write` without an intermediate tree.
///
/// Every reader tracks its own byte position externally (the codecs
/// thread an offset through for [`crate::TsError::SnapshotDecode`]
/// context), so these helpers stay plain `io::Result` functions.
pub mod binio {
    use std::io::{Read, Write};

    /// Writes one `u64`, little-endian.
    pub fn write_u64<W: Write>(w: &mut W, v: u64) -> std::io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    /// Writes one `u32`, little-endian.
    pub fn write_u32<W: Write>(w: &mut W, v: u32) -> std::io::Result<()> {
        w.write_all(&v.to_le_bytes())
    }

    /// Writes a packed `u64` column, little-endian.
    pub fn write_u64_column<W: Write>(w: &mut W, col: &[u64]) -> std::io::Result<()> {
        for &v in col {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Writes a packed `f64` column (IEEE-754 bits, little-endian).
    pub fn write_f64_column<W: Write>(w: &mut W, col: &[f64]) -> std::io::Result<()> {
        for &v in col {
            w.write_all(&v.to_bits().to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads one little-endian `u64`.
    pub fn read_u64<R: Read>(r: &mut R) -> std::io::Result<u64> {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads one little-endian `u32`.
    pub fn read_u32<R: Read>(r: &mut R) -> std::io::Result<u32> {
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Reads a packed `u64` column of `len` values into a fresh `Vec`.
    pub fn read_u64_column<R: Read>(r: &mut R, len: usize) -> std::io::Result<Vec<u64>> {
        let mut out = Vec::with_capacity(len);
        let mut buf = [0u8; 8];
        for _ in 0..len {
            r.read_exact(&mut buf)?;
            out.push(u64::from_le_bytes(buf));
        }
        Ok(out)
    }

    /// Reads a packed `f64` column of `len` values into a fresh `Vec`
    /// (bit-preserving: the column is decoded via `f64::from_bits`, so
    /// every payload — including NaN bit patterns — round-trips).
    pub fn read_f64_column<R: Read>(r: &mut R, len: usize) -> std::io::Result<Vec<f64>> {
        let mut out = Vec::with_capacity(len);
        let mut buf = [0u8; 8];
        for _ in 0..len {
            r.read_exact(&mut buf)?;
            out.push(f64::from_bits(u64::from_le_bytes(buf)));
        }
        Ok(out)
    }

    /// FNV-1a 64-bit hash — the snapshot header checksum. Deterministic,
    /// dependency-free, and adequate for corruption detection (the
    /// snapshot trust model matches any database file: integrity, not
    /// authentication).
    pub fn fnv1a64(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comma_separated() {
        let corpus = read_ucr("1,0.5,0.7,0.9\n2,1.0,1.1,1.2\n".as_bytes()).unwrap();
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus[0].label(), Some(1));
        assert_eq!(corpus[0].values(), &[0.5, 0.7, 0.9]);
        assert_eq!(corpus[1].label(), Some(2));
        assert_eq!(corpus[0].id(), Some(0));
        assert_eq!(corpus[1].id(), Some(1));
    }

    #[test]
    fn parses_whitespace_separated_and_float_labels() {
        let corpus = read_ucr("1.0  0.5 0.7\n".as_bytes()).unwrap();
        assert_eq!(corpus[0].label(), Some(1));
        assert_eq!(corpus[0].values(), &[0.5, 0.7]);
    }

    #[test]
    fn skips_blank_lines() {
        let corpus = read_ucr("\n1,2.0\n\n2,3.0\n\n".as_bytes()).unwrap();
        assert_eq!(corpus.len(), 2);
    }

    #[test]
    fn rejects_bad_label() {
        let e = read_ucr("x,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
        let e = read_ucr("1.5,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
        let e = read_ucr("-2,1.0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_sample_and_empty_series() {
        let e = read_ucr("1,abc\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
        let e = read_ucr("1\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_nan_sample_with_line_number() {
        let e = read_ucr("1,2.0\n3,NaN\n".as_bytes()).unwrap_err();
        assert!(matches!(e, TsError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn write_read_round_trip() {
        let corpus = vec![
            TimeSeries::with_label(vec![1.0, 2.0], 3).unwrap(),
            TimeSeries::new(vec![0.25]).unwrap(),
        ];
        let mut buf = Vec::new();
        write_ucr(&mut buf, &corpus).unwrap();
        let back = read_ucr(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].label(), Some(3));
        assert_eq!(back[0].values(), corpus[0].values());
        // unlabeled series round-trips with label 0
        assert_eq!(back[1].label(), Some(0));
        assert_eq!(back[1].values(), corpus[1].values());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("sdtw_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        let corpus = vec![TimeSeries::with_label(vec![5.0, 6.0, 7.0], 1).unwrap()];
        write_ucr_file(&path, &corpus).unwrap();
        let back = read_ucr_file(&path).unwrap();
        assert_eq!(back[0].values(), corpus[0].values());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = read_ucr_file("/nonexistent/sdtw/corpus.txt").unwrap_err();
        assert!(matches!(e, TsError::Io(_)));
    }

    #[test]
    fn binio_columns_round_trip_bit_exactly() {
        use super::binio::*;
        let f64s = vec![0.0, -0.0, 1.5, f64::MIN_POSITIVE, -1e300, 42.125];
        let u64s = vec![0u64, 1, u64::MAX, 0xdead_beef];
        let mut buf = Vec::new();
        write_u32(&mut buf, 7).unwrap();
        write_u64(&mut buf, u64::MAX).unwrap();
        write_f64_column(&mut buf, &f64s).unwrap();
        write_u64_column(&mut buf, &u64s).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u32(&mut r).unwrap(), 7);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX);
        let back_f = read_f64_column(&mut r, f64s.len()).unwrap();
        for (a, b) in f64s.iter().zip(&back_f) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(read_u64_column(&mut r, u64s.len()).unwrap(), u64s);
        assert!(r.is_empty(), "every byte consumed");
        // truncated reads surface as io errors
        let mut short = &buf[..3];
        assert!(read_u32(&mut short).is_err());
        let mut short = &buf[..6];
        assert!(read_u32(&mut short).is_ok());
        assert!(read_u64(&mut short).is_err());
    }

    #[test]
    fn fnv1a64_matches_known_vectors() {
        use super::binio::fnv1a64;
        // published FNV-1a test vectors
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
        // and is sensitive to single-byte corruption
        assert_ne!(fnv1a64(b"foobar"), fnv1a64(b"foobas"));
    }
}
