//! Error type shared by the time-series substrate.

use std::fmt;

/// Errors produced while constructing, transforming or parsing time series.
#[derive(Debug)]
pub enum TsError {
    /// A series was constructed from an empty sample vector.
    Empty,
    /// A sample was NaN or infinite at the given index.
    NonFinite {
        /// Index of the offending sample.
        index: usize,
        /// The offending value (printed for diagnostics).
        value: f64,
    },
    /// Two series were expected to have the same length.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A requested length (resampling target, window size, …) was invalid.
    InvalidLength {
        /// The requested length.
        requested: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A parameter was outside its legal domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A UCR-format line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// A persisted snapshot (index, trace, …) failed to decode.
    ///
    /// Shared by every snapshot codec so callers see *where* a payload
    /// went bad: the codec that rejected it, the byte offset for binary
    /// payloads (`None` for tree-shaped JSON), and the field or entry
    /// being decoded.
    SnapshotDecode {
        /// The codec that rejected the payload (`"json"`, `"binary-v2"`).
        format: &'static str,
        /// Byte offset of the failure within the payload, when known.
        offset: Option<u64>,
        /// Field/entry context plus the underlying reason.
        context: String,
    },
    /// Wrapper around I/O failures while reading/writing dataset files.
    Io(std::io::Error),
}

impl fmt::Display for TsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsError::Empty => write!(f, "time series must contain at least one sample"),
            TsError::NonFinite { index, value } => {
                write!(f, "non-finite sample {value} at index {index}")
            }
            TsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            TsError::InvalidLength { requested, reason } => {
                write!(f, "invalid length {requested}: {reason}")
            }
            TsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            TsError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            TsError::SnapshotDecode {
                format,
                offset,
                context,
            } => match offset {
                Some(at) => {
                    write!(
                        f,
                        "snapshot decode error ({format}) at byte {at}: {context}"
                    )
                }
                None => write!(f, "snapshot decode error ({format}): {context}"),
            },
            TsError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for TsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TsError {
    fn from(e: std::io::Error) -> Self {
        TsError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TsError::NonFinite {
            index: 3,
            value: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains("index 3"), "got: {s}");

        let e = TsError::LengthMismatch { left: 4, right: 7 };
        assert!(e.to_string().contains("4 vs 7"));

        let e = TsError::Parse {
            line: 12,
            reason: "bad float".into(),
        };
        assert!(e.to_string().contains("line 12"));

        let e = TsError::SnapshotDecode {
            format: "binary-v2",
            offset: Some(36),
            context: "section table truncated".into(),
        };
        let s = e.to_string();
        assert!(s.contains("binary-v2") && s.contains("byte 36"), "got: {s}");
        let e = TsError::SnapshotDecode {
            format: "json",
            offset: None,
            context: "entry 3: envelope inconsistent".into(),
        };
        let s = e.to_string();
        assert!(s.contains("json") && s.contains("entry 3"), "got: {s}");
        assert!(!s.contains("byte"), "got: {s}");
    }

    #[test]
    fn io_error_wraps_source() {
        use std::error::Error as _;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = TsError::from(io);
        assert!(e.source().is_some());
    }
}
