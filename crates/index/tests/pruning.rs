//! Pruning-power behaviour of the cascade: on the benchmark-style corpus
//! every stage must dispose of candidates, and the cascade must do
//! strictly less DP work than a linear scan.

use sdtw_index::{CascadeStats, IndexConfig, SdtwIndex};
use sdtw_tseries::TimeSeries;

/// The 200-series corpus shape tracked by `bench_index` (and, at 200×200,
/// by `BENCH_baseline.json`).
fn bench_corpus() -> Vec<TimeSeries> {
    (0..200usize)
        .map(|k| {
            TimeSeries::new(
                (0..48)
                    .map(|i| {
                        let t = i as f64;
                        ((t + k as f64) / 7.0).sin()
                            + 0.4 * ((t * (1.0 + k as f64 * 0.003)) / 17.0).cos()
                    })
                    .collect(),
            )
            .unwrap()
            .identified(k as u64)
        })
        .collect()
}

fn aggregate(index: &SdtwIndex, queries: &[TimeSeries], k: usize) -> CascadeStats {
    let results = index.batch_query(queries, k, false).unwrap();
    let mut total = CascadeStats::default();
    for r in &results {
        total.absorb(&r.stats);
    }
    total
}

#[test]
fn every_cascade_stage_prunes_on_the_bench_corpus() {
    let corpus = bench_corpus();
    let queries: Vec<TimeSeries> = corpus.iter().take(10).cloned().collect();
    let index = SdtwIndex::build(&corpus, IndexConfig::exact_banded(0.2)).unwrap();
    let total = aggregate(&index, &queries, 5);
    assert!(total.is_consistent());
    assert_eq!(total.candidates, (queries.len() * corpus.len()) as u64);
    assert!(total.pruned_kim > 0, "LB_Kim never fired: {total:?}");
    assert!(total.pruned_paa > 0, "coarse PAA never fired: {total:?}");
    assert!(total.pruned_keogh > 0, "LB_Keogh never fired: {total:?}");
    assert!(
        total.pruned_keogh_rev > 0,
        "reversed LB_Keogh never fired: {total:?}"
    );
    assert!(
        total.abandoned > 0,
        "early abandoning never fired: {total:?}"
    );
    assert!(total.dp_completed >= 5, "top-k needs completed DP runs");
    assert!(
        total.prune_rate() > 0.5,
        "cascade should dispose of most of the corpus, got {}",
        total.prune_rate()
    );
}

#[test]
fn cascade_does_less_dp_work_than_a_linear_scan() {
    let corpus = bench_corpus();
    let queries: Vec<TimeSeries> = corpus.iter().take(5).cloned().collect();
    let index = SdtwIndex::build(&corpus, IndexConfig::exact_banded(0.2)).unwrap();
    let total = aggregate(&index, &queries, 5);
    // a linear scan fills the full band for every (query, entry) pair
    let per_pair_cells = sdtw_dtw::sakoe::sakoe_chiba_band(48, 48, 0.2).area() as u64;
    let scan_cells = per_pair_cells * (queries.len() * corpus.len()) as u64;
    assert!(
        total.cells_filled < scan_cells / 2,
        "cascade filled {} cells, linear scan {}",
        total.cells_filled,
        scan_cells
    );
}

#[test]
fn traced_query_is_bit_identical_and_carries_phase_spans() {
    use sdtw_obs::TracePhase;
    let corpus = bench_corpus();
    let index = SdtwIndex::build(&corpus, IndexConfig::exact_banded(0.2)).unwrap();
    let query = corpus[7].clone();
    let plain = index.query(&query, 5).unwrap();
    let (traced, trace) = index.query_traced(&query, 5, "q7").unwrap();
    // recording must never change what the cascade sees
    assert_eq!(plain.neighbors.len(), traced.neighbors.len());
    for (a, b) in plain.neighbors.iter().zip(&traced.neighbors) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
    }
    assert_eq!(plain.stats, traced.stats);
    // the trace embeds the same counters and carries the phase spans
    assert_eq!(trace.counters.cascade, plain.stats);
    assert_eq!(trace.counters.passes, 1);
    assert!(trace.counters.is_consistent());
    let phases: Vec<_> = trace.spans.iter().map(|s| s.phase).collect();
    assert!(phases.contains(&TracePhase::LbKim), "{phases:?}");
    assert!(phases.contains(&TracePhase::BandPlan), "{phases:?}");
    assert!(phases.contains(&TracePhase::DpFill), "{phases:?}");
    assert!(phases.contains(&TracePhase::TopKMerge), "{phases:?}");
    // pruning-power denominators: band never exceeds the full grid, and
    // the cells the DP actually touched never exceed the band
    assert!(trace.band_area > 0 && trace.band_area <= trace.full_grid);
    assert!(trace.counters.cascade.cells_filled <= trace.band_area);
    // round-trips through the NDJSON line byte-for-byte
    let line = trace.to_json_line();
    let back = sdtw_obs::QueryTrace::from_json_line(&line).unwrap();
    assert_eq!(back.to_json_line(), line);
}

#[test]
fn sdtw_band_mode_also_prunes_on_structured_data() {
    // adaptive bands wander with the salient alignment; the LB_Keogh
    // stages only apply where the planned band stays inside the envelope
    // window, but LB_Kim and early abandoning are always live
    let ds = sdtw_datasets::UcrAnalog::Gun.generate(17);
    let corpus = ds.series[..24].to_vec();
    let queries: Vec<TimeSeries> = corpus.iter().take(4).cloned().collect();
    let index = SdtwIndex::build(&corpus, IndexConfig::sdtw_bands()).unwrap();
    let total = aggregate(&index, &queries, 3);
    assert!(total.is_consistent());
    assert!(
        total.pruned_before_dp() + total.abandoned > 0,
        "no pruning at all in sDTW mode: {total:?}"
    );
}
