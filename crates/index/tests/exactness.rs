//! Exactness of the cascade: the index must return identical ids and
//! bit-identical distances to the brute-force `compute_query_matrix`
//! oracle (and the deprecated `NnSearch` 1-NN oracle), on several seeded
//! datasets, for k ∈ {1, 5}, in both exact-banded-DTW and sDTW-band
//! modes.

use sdtw::{FeatureStore, KernelChoice, SDtw};
use sdtw_datasets::{econ, UcrAnalog};
use sdtw_eval::compute_query_matrix;
use sdtw_index::{IndexConfig, SdtwIndex, SnapshotCodec, SnapshotFormat};
use sdtw_tseries::transform::z_normalize;
use sdtw_tseries::TimeSeries;

/// Three seeded corpora with held-out queries: (name, corpus, queries).
fn seeded_datasets() -> Vec<(&'static str, Vec<TimeSeries>, Vec<TimeSeries>)> {
    let gun = UcrAnalog::Gun.generate(11).series;
    let trace = UcrAnalog::Trace.generate(22).series;
    let eco = econ::generate(7, 3, 4).series;
    vec![
        // corpus members and held-out members both appear as queries
        (
            "gun",
            gun[..20].to_vec(),
            vec![gun[0].clone(), gun[3].clone(), gun[24].clone()],
        ),
        (
            "trace",
            trace[..14].to_vec(),
            vec![trace[1].clone(), trace[20].clone()],
        ),
        (
            "econ",
            eco[..10].to_vec(),
            vec![eco[2].clone(), eco[10].clone()],
        ),
    ]
}

/// Brute-force oracle ranking under the same engine configuration.
fn oracle_top_k(
    queries: &[TimeSeries],
    corpus: &[TimeSeries],
    config: &IndexConfig,
    k: usize,
) -> Vec<Vec<(usize, u64)>> {
    let engine = SDtw::new(config.sdtw.clone()).unwrap();
    let store = FeatureStore::new(config.sdtw.salient.clone()).unwrap();
    let qm = compute_query_matrix(queries, corpus, &engine, &store, false).unwrap();
    (0..queries.len())
        .map(|q| {
            qm.top_k(q, k)
                .into_iter()
                .map(|j| (j, qm.get(q, j).to_bits()))
                .collect()
        })
        .collect()
}

fn assert_matches_oracle(config: IndexConfig, label: &str) {
    for (name, corpus, queries) in seeded_datasets() {
        let index = SdtwIndex::build(&corpus, config.clone()).unwrap();
        for k in [1usize, 5] {
            let oracle = oracle_top_k(&queries, &corpus, &config, k);
            for (q, query) in queries.iter().enumerate() {
                let got = index.query(query, k).unwrap();
                let got_pairs: Vec<(usize, u64)> = got
                    .neighbors
                    .iter()
                    .map(|n| (n.index, n.distance.to_bits()))
                    .collect();
                assert_eq!(
                    got_pairs, oracle[q],
                    "{label}/{name}: query {q} k={k} diverged from the oracle"
                );
                assert!(got.stats.is_consistent(), "{label}/{name}: stats leak");
            }
        }
    }
}

#[test]
fn exact_banded_mode_matches_the_oracle() {
    assert_matches_oracle(IndexConfig::exact_banded(0.2), "exact");
}

#[test]
fn sdtw_band_mode_matches_the_oracle() {
    assert_matches_oracle(IndexConfig::sdtw_bands(), "sdtw");
}

#[test]
fn z_normalized_index_matches_the_oracle_on_normalized_data() {
    let (_, corpus, queries) = seeded_datasets().remove(0);
    let config = IndexConfig {
        z_normalize: true,
        ..IndexConfig::exact_banded(0.2)
    };
    // the oracle sees pre-normalised data; the index normalises internally
    let corpus_n: Vec<TimeSeries> = corpus.iter().map(z_normalize).collect();
    let queries_n: Vec<TimeSeries> = queries.iter().map(z_normalize).collect();
    let index = SdtwIndex::build(&corpus, config.clone()).unwrap();
    let oracle = oracle_top_k(&queries_n, &corpus_n, &config, 3);
    for (q, query) in queries.iter().enumerate() {
        let got = index.query(query, 3).unwrap();
        let got_pairs: Vec<(usize, u64)> = got
            .neighbors
            .iter()
            .map(|n| (n.index, n.distance.to_bits()))
            .collect();
        assert_eq!(got_pairs, oracle[q], "z-norm query {q} diverged");
    }
}

#[test]
fn distance_ties_break_toward_the_lower_index_like_the_oracle() {
    // duplicated entries produce exact distance ties; the index must
    // resolve them by entry order, exactly as the oracle does
    let base: Vec<f64> = (0..60).map(|i| (i as f64 / 5.0).sin()).collect();
    let other: Vec<f64> = (0..60).map(|i| (i as f64 / 3.0).cos() * 2.0).collect();
    let corpus = vec![
        TimeSeries::new(other.clone()).unwrap(),
        TimeSeries::new(base.clone()).unwrap(),
        TimeSeries::new(other).unwrap(),
        TimeSeries::new(base.clone()).unwrap(),
        TimeSeries::new(base.clone()).unwrap(),
    ];
    let query = TimeSeries::new(base).unwrap();
    let config = IndexConfig::exact_banded(0.2);
    let index = SdtwIndex::build(&corpus, config.clone()).unwrap();
    let got = index.query(&query, 3).unwrap();
    let idx: Vec<usize> = got.neighbors.iter().map(|n| n.index).collect();
    assert_eq!(
        idx,
        vec![1, 3, 4],
        "zero-distance ties must keep entry order"
    );
    let oracle = oracle_top_k(&[query], &corpus, &config, 3);
    let got_pairs: Vec<(usize, u64)> = got
        .neighbors
        .iter()
        .map(|n| (n.index, n.distance.to_bits()))
        .collect();
    assert_eq!(got_pairs, oracle[0]);
}

#[test]
fn one_nn_agrees_with_the_query_matrix_oracle() {
    // the 1-NN role the deprecated `NnSearch` scan used to play: a
    // corpus-member query must come back as its own exact nearest
    // neighbour, bit-identical to the brute-force matrix ranking
    let corpus = UcrAnalog::Gun.generate(33).series[..16].to_vec();
    let query = corpus[7].clone();
    let config = IndexConfig::exact_banded(0.2);
    let index = SdtwIndex::build(&corpus, config.clone()).unwrap();
    let got = index.query(&query, 1).unwrap();
    let oracle = oracle_top_k(&[query], &corpus, &config, 1);
    assert_eq!(got.neighbors[0].index, oracle[0][0].0);
    assert_eq!(got.neighbors[0].distance.to_bits(), oracle[0][0].1);
    assert_eq!(got.neighbors[0].index, 7, "self is its own nearest");
    assert!(
        !got.stats.bounds_disabled,
        "standard kernel keeps bounds on"
    );
}

#[test]
fn amerced_kernel_index_matches_the_oracle_with_bounds_on() {
    // ω ≥ 0 keeps LB_Kim/LB_Keogh admissible (the amerced cost of any
    // path dominates its symmetric1 cost), so the cascade stays enabled
    // and must still be exact against the amerced brute force
    let mut exact = IndexConfig::exact_banded(0.2);
    exact.sdtw.dtw.kernel = KernelChoice::Amerced { penalty: 0.05 };
    assert_matches_oracle(exact.clone(), "amerced-exact");
    let mut sdtw_mode = IndexConfig::sdtw_bands();
    sdtw_mode.sdtw.dtw.kernel = KernelChoice::Amerced { penalty: 0.05 };
    assert_matches_oracle(sdtw_mode, "amerced-sdtw");
    // and the bounds were preserved, not disabled
    let (_, corpus, queries) = seeded_datasets().remove(0);
    let index = SdtwIndex::build(&corpus, exact).unwrap();
    let got = index.query(&queries[0], 3).unwrap();
    assert!(!got.stats.bounds_disabled);
    assert!(got.stats.is_consistent());
}

#[test]
fn amerced_kernel_changes_the_nearest_neighbour() {
    // q: a centred bump; A: the same bump shifted (DTW-near, pointwise
    // far); B: the bump plus small noise (pointwise-near). Plain DTW
    // warps the shift away and picks A; amercing prices those warp steps
    // and flips the nearest neighbour to B.
    let n = 64usize;
    let bump = |c: f64, i: usize| {
        let d = (i as f64 - c) / 4.0;
        (-d * d / 2.0).exp()
    };
    let q: Vec<f64> = (0..n).map(|i| bump(32.0, i)).collect();
    let a: Vec<f64> = (0..n).map(|i| bump(37.0, i)).collect();
    let b: Vec<f64> = (0..n)
        .map(|i| bump(32.0, i) + 0.1 * ((i * 7) as f64).sin())
        .collect();
    let corpus = vec![
        sdtw_tseries::TimeSeries::new(a).unwrap(),
        sdtw_tseries::TimeSeries::new(b).unwrap(),
    ];
    let query = sdtw_tseries::TimeSeries::new(q).unwrap();

    let standard = SdtwIndex::build(&corpus, IndexConfig::exact_banded(0.3)).unwrap();
    let nn_std = standard.query(&query, 1).unwrap().neighbors[0];
    assert_eq!(nn_std.index, 0, "plain DTW warps the shift away: A wins");

    let mut amerced_cfg = IndexConfig::exact_banded(0.3);
    amerced_cfg.sdtw.dtw.kernel = KernelChoice::Amerced { penalty: 1.0 };
    let amerced = SdtwIndex::build(&corpus, amerced_cfg.clone()).unwrap();
    let nn_am = amerced.query(&query, 1).unwrap().neighbors[0];
    assert_eq!(nn_am.index, 1, "amercing prices the warp: B wins");

    // both answers are exact against their own oracle
    let oracle = oracle_top_k(
        std::slice::from_ref(&query),
        &corpus,
        &IndexConfig::exact_banded(0.3),
        1,
    );
    assert_eq!((nn_std.index, nn_std.distance.to_bits()), oracle[0][0]);
    let oracle_am = oracle_top_k(&[query], &corpus, &amerced_cfg, 1);
    assert_eq!((nn_am.index, nn_am.distance.to_bits()), oracle_am[0][0]);
}

#[test]
fn batch_queries_are_bit_identical_serial_and_parallel() {
    let (_, corpus, queries) = seeded_datasets().remove(2);
    let index = SdtwIndex::build(&corpus, IndexConfig::sdtw_bands()).unwrap();
    let serial = index.batch_query(&queries, 3, false).unwrap();
    let parallel = index.batch_query(&queries, 3, true).unwrap();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.neighbors.len(), p.neighbors.len());
        for (a, b) in s.neighbors.iter().zip(&p.neighbors) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
        }
        assert_eq!(s.stats, p.stats);
    }
}

#[test]
#[allow(deprecated)] // the JSON shims must keep working until removed
fn json_snapshot_roundtrips_to_identical_results() {
    let (_, corpus, queries) = seeded_datasets().remove(0);
    let index = SdtwIndex::build(&corpus, IndexConfig::exact_banded(0.2)).unwrap();
    let json = index.to_json().unwrap();
    let loaded = SdtwIndex::from_json(&json).unwrap();
    assert_eq!(index.len(), loaded.len());
    for query in &queries {
        let a = index.query(query, 4).unwrap();
        let b = loaded.query(query, 4).unwrap();
        assert_eq!(a, b, "loaded index must answer identically");
    }
}

#[test]
fn snapshots_of_both_formats_answer_bit_identically() {
    // the codec seam: a JSON snapshot and a binary columnar snapshot of
    // the same index must answer every query with the same ids, the same
    // distance bits, and the same cascade accounting — in both engine
    // modes, on every seeded corpus
    for config in [IndexConfig::exact_banded(0.2), IndexConfig::sdtw_bands()] {
        for (name, corpus, queries) in seeded_datasets() {
            let index = SdtwIndex::build(&corpus, config.clone()).unwrap();
            let json = SnapshotCodec::encode(&index, SnapshotFormat::Json).unwrap();
            let bin = SnapshotCodec::encode(&index, SnapshotFormat::BinaryV2).unwrap();
            let from_json = SnapshotCodec::decode(&json).unwrap();
            let from_bin = SnapshotCodec::decode(&bin).unwrap();
            assert_eq!(from_json.entries(), from_bin.entries(), "{name}");
            for (qi, query) in queries.iter().enumerate() {
                let a = from_json.query(query, 4).unwrap();
                let b = from_bin.query(query, 4).unwrap();
                let c = index.query(query, 4).unwrap();
                assert_eq!(a, b, "{name}/q{qi}: formats must agree");
                assert_eq!(a, c, "{name}/q{qi}: loads must match the build");
            }
        }
    }
}

#[test]
fn converting_between_formats_is_lossless() {
    // the `sdtw index convert` path: JSON -> binary -> JSON round-trips
    // to an identical index (and the final JSON re-encoding is a fixed
    // point, so nothing silently drifts per hop)
    let (_, corpus, _) = seeded_datasets().remove(1);
    let index = SdtwIndex::build(&corpus, IndexConfig::sdtw_bands()).unwrap();
    let json = SnapshotCodec::encode(&index, SnapshotFormat::Json).unwrap();
    let via_bin = SnapshotCodec::encode(
        &SnapshotCodec::decode(&json).unwrap(),
        SnapshotFormat::BinaryV2,
    )
    .unwrap();
    let back = SnapshotCodec::decode(&via_bin).unwrap();
    assert_eq!(back.entries(), index.entries());
    assert_eq!(back.config(), index.config());
    let json_again = SnapshotCodec::encode(&back, SnapshotFormat::Json).unwrap();
    assert_eq!(json, json_again);
}

#[test]
fn corrupted_binary_snapshot_is_rejected() {
    let corpus = econ::generate(3, 2, 2).series;
    let index = SdtwIndex::build(&corpus, IndexConfig::exact_banded(0.2)).unwrap();
    let bytes = SnapshotCodec::encode(&index, SnapshotFormat::BinaryV2).unwrap();
    // flip one byte in every region of the file: header, table, columns
    for at in [9usize, 30, 50, bytes.len() / 2, bytes.len() - 9] {
        let mut tampered = bytes.clone();
        tampered[at] ^= 0x3f;
        if tampered == bytes {
            continue;
        }
        // either the decode rejects it, or the decoded index differs in
        // a payload column the structural checks deliberately trust
        // (sample values themselves carry no checksum)
        if let Ok(loaded) = SnapshotCodec::decode(&tampered) {
            assert_ne!(
                loaded.entries(),
                index.entries(),
                "byte {at}: tamper vanished"
            );
        }
    }
}

#[test]
#[allow(deprecated)] // the JSON shims must keep working until removed
fn corrupted_snapshot_is_rejected() {
    let corpus = econ::generate(3, 2, 2).series;
    let index = SdtwIndex::build(&corpus, IndexConfig::exact_banded(0.2)).unwrap();
    let json = index.to_json().unwrap();
    assert!(SdtwIndex::from_json("not json").is_err());
    // tamper with the envelope radius so the dimension check trips
    let tampered = json.replace("\"radius\":", "\"radius\": 9");
    if tampered != json {
        assert!(SdtwIndex::from_json(&tampered).is_err());
    }
}

#[test]
#[allow(deprecated)] // the JSON shims must keep working until removed
fn snapshot_with_out_of_range_features_is_rejected() {
    // adaptive mode caches salient features; a feature whose scope
    // escapes its series must fail the load-time structural check
    let corpus = UcrAnalog::Gun.generate(5).series[..6].to_vec();
    let index = SdtwIndex::build(&corpus, IndexConfig::sdtw_bands()).unwrap();
    let json = index.to_json().unwrap();
    let key = "\"scope_end\":";
    let pos = json.find(key).expect("adaptive snapshot stores features");
    let digits_start = pos + key.len();
    let digits_len = json[digits_start..]
        .find(|c: char| !c.is_ascii_digit())
        .unwrap();
    let tampered = format!(
        "{}{key}99999{}",
        &json[..pos],
        &json[digits_start + digits_len..]
    );
    assert!(SdtwIndex::from_json(&tampered).is_err());
    // untampered snapshot still loads
    assert!(SdtwIndex::from_json(&json).is_ok());
}

#[test]
fn k_larger_than_corpus_returns_everything_ranked() {
    let corpus = econ::generate(5, 2, 2).series;
    let index = SdtwIndex::build(&corpus, IndexConfig::exact_banded(0.3)).unwrap();
    let got = index.query(&corpus[0], 50).unwrap();
    assert_eq!(got.neighbors.len(), corpus.len());
    for w in got.neighbors.windows(2) {
        assert!(w[0].distance <= w[1].distance);
    }
}

#[test]
fn k_zero_is_rejected_and_empty_index_answers_empty() {
    let corpus = econ::generate(5, 2, 2).series;
    let index = SdtwIndex::build(&corpus, IndexConfig::default()).unwrap();
    assert!(index.query(&corpus[0], 0).is_err());
    let empty = SdtwIndex::build(&[], IndexConfig::default()).unwrap();
    assert!(empty.is_empty());
    let got = empty.query(&corpus[0], 3).unwrap();
    assert!(got.neighbors.is_empty());
    assert_eq!(got.stats.candidates, 0);
}
