//! Properties of the coarse PAA stage slotted between LB_Kim and
//! LB_Keogh:
//!
//! 1. **Admissibility chain** — for every (query, entry) pair the stage
//!    can fire on, `coarse PAA bound ≤ fine LB_Keogh ≤ banded DTW`,
//!    across segment widths that do and don't divide the series length
//!    (ragged tail segments) on seeded corpora.
//! 2. **Bit-identity of the toggle** — enabling the stage changes *no
//!    observable result*: [`SdtwIndex::query_detailed`] returns the same
//!    neighbors (ids and distance bits), and the same per-entry
//!    dispositions up to prune *attribution* (an entry the coarse stage
//!    prunes would have been pruned by LB_Keogh anyway, since the coarse
//!    bound never exceeds the fine one — the stage only shifts credit
//!    between stages, it never changes the survivor set).

use sdtw::SDtw;
use sdtw_datasets::{econ, UcrAnalog};
use sdtw_dtw::cascade::{CoarseEnvelope, StageKind};
use sdtw_dtw::lower_bound::{lb_keogh, Envelope};
use sdtw_index::{EntryOutcome, IndexConfig, SdtwIndex};
use sdtw_tseries::TimeSeries;

/// Segment widths the satellite properties sweep: 1 disables the stage,
/// the rest include widths that leave ragged tails on every corpus.
const WIDTHS: [usize; 4] = [1, 4, 8, 64];

/// Seeded corpora with held-out queries, all equal-length within each
/// corpus (the stage's applicability condition) and with lengths that no
/// sweep width divides evenly — gun/trace are 150-sample analogues, econ
/// windows are 100.
fn seeded_datasets() -> Vec<(&'static str, Vec<TimeSeries>, Vec<TimeSeries>)> {
    let gun = UcrAnalog::Gun.generate(404).series;
    let trace = UcrAnalog::Trace.generate(505).series;
    let eco = econ::generate(606, 3, 4).series;
    vec![
        (
            "gun",
            gun[..16].to_vec(),
            vec![gun[0].clone(), gun[20].clone()],
        ),
        (
            "trace",
            trace[..12].to_vec(),
            vec![trace[2].clone(), trace[18].clone()],
        ),
        (
            "econ",
            eco[..10].to_vec(),
            vec![eco[1].clone(), eco[10].clone()],
        ),
    ]
}

#[test]
fn coarse_bound_is_admissible_under_lb_keogh_and_banded_dtw() {
    let config = IndexConfig::exact_banded(0.2);
    let engine = SDtw::new(config.sdtw.clone()).unwrap();
    let metric = config.sdtw.dtw.metric;
    let mut buf = Vec::new();
    for (name, corpus, queries) in seeded_datasets() {
        for q in &queries {
            for (j, y) in corpus.iter().enumerate() {
                assert_eq!(q.len(), y.len(), "{name}: equal-length corpora");
                let radius = config.radius_for(y.len());
                let env = Envelope::build(y, radius);
                let fine = lb_keogh(q, &env, metric);
                let dtw = engine.query(q, y).run().unwrap().unwrap().distance;
                assert!(
                    fine <= dtw + 1e-9,
                    "{name}/{j}: LB_Keogh {fine} exceeded banded DTW {dtw}"
                );
                for width in WIDTHS {
                    if width < 2 {
                        continue; // width 1 is the fine bound itself
                    }
                    let coarse = CoarseEnvelope::build(&env, width);
                    assert_eq!(coarse.upper().len(), y.len().div_ceil(width));
                    let paa = coarse.lower_bound(q.values(), metric, &mut buf);
                    assert!(
                        paa <= fine + 1e-9,
                        "{name}/{j} w={width}: PAA bound {paa} exceeded LB_Keogh {fine}"
                    );
                }
            }
        }
    }
}

/// Maps a disposition's outcome to its off-stage equivalent: a coarse
/// prune becomes a Keogh prune (the justification the fine stage would
/// have produced), everything else is unchanged.
fn without_paa_attribution(outcome: EntryOutcome) -> EntryOutcome {
    match outcome {
        EntryOutcome::Pruned(StageKind::Paa) => EntryOutcome::Pruned(StageKind::Keogh),
        other => other,
    }
}

#[test]
fn query_detailed_is_bit_identical_with_the_stage_on_or_off() {
    for (name, corpus, queries) in seeded_datasets() {
        let off = SdtwIndex::build(
            &corpus,
            IndexConfig {
                paa_width: 0,
                ..IndexConfig::exact_banded(0.2)
            },
        )
        .unwrap();
        for width in WIDTHS {
            let on = SdtwIndex::build(
                &corpus,
                IndexConfig {
                    paa_width: width,
                    ..IndexConfig::exact_banded(0.2)
                },
            )
            .unwrap();
            for (qi, q) in queries.iter().enumerate() {
                for k in [1usize, 3] {
                    let (r_on, d_on) = on.query_detailed(q, k).unwrap();
                    let (r_off, d_off) = off.query_detailed(q, k).unwrap();
                    let ctx = format!("{name}/q{qi}/k{k}/w{width}");
                    // identical neighbors, to the distance bit
                    assert_eq!(r_on.neighbors.len(), r_off.neighbors.len(), "{ctx}");
                    for (a, b) in r_on.neighbors.iter().zip(&r_off.neighbors) {
                        assert_eq!(a.index, b.index, "{ctx}");
                        assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "{ctx}");
                    }
                    assert!(r_on.stats.is_consistent(), "{ctx}");
                    assert!(r_off.stats.is_consistent(), "{ctx}");
                    // identical DP effort: prunes only moved between stages
                    assert_eq!(r_on.stats.dp_completed, r_off.stats.dp_completed, "{ctx}");
                    assert_eq!(r_on.stats.abandoned, r_off.stats.abandoned, "{ctx}");
                    assert_eq!(r_on.stats.cells_filled, r_off.stats.cells_filled, "{ctx}");
                    if width < 2 {
                        assert_eq!(r_on.stats.pruned_paa, 0, "{ctx}: stage disabled");
                    }
                    // identical dispositions modulo prune attribution
                    assert_eq!(d_on.len(), d_off.len(), "{ctx}");
                    for (a, b) in d_on.iter().zip(&d_off) {
                        assert_eq!(a.index, b.index, "{ctx}");
                        assert_eq!(a.coarse_bound.to_bits(), b.coarse_bound.to_bits(), "{ctx}");
                        assert_eq!(
                            without_paa_attribution(a.outcome),
                            without_paa_attribution(b.outcome),
                            "{ctx} entry {}",
                            a.index
                        );
                        // the off index never attributes a prune to PAA
                        assert!(
                            !matches!(b.outcome, EntryOutcome::Pruned(StageKind::Paa)),
                            "{ctx}"
                        );
                    }
                }
            }
        }
    }
}
