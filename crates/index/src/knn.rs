//! Top-k accumulator: a bounded max-heap over `(distance, index)` pairs.
//!
//! The heap keeps the `k` lexicographically smallest `(distance, index)`
//! pairs seen so far — the same total order the brute-force oracle
//! (`QueryMatrix::top_k`, ascending distance with stable index tie-break)
//! sorts by, so a cascade feeding it is tie-exact, not just
//! distance-exact.

use serde::{Deserialize, Serialize};
use std::collections::BinaryHeap;

/// One retrieved neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Position of the entry in the indexed corpus.
    pub index: usize,
    /// Its (possibly normalised) constrained DTW distance to the query.
    pub distance: f64,
}

/// Heap entry ordered lexicographically by `(distance, index)`; the heap
/// is a max-heap, so the root is the current worst member of the top-k.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapItem {
    distance: f64,
    index: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // distances are finite by TimeSeries invariant, so total_cmp
        // agrees with the oracle's partial_cmp ordering
        self.distance
            .total_cmp(&other.distance)
            .then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Bounded best-k accumulator.
#[derive(Debug, Clone)]
pub(crate) struct TopK {
    k: usize,
    heap: BinaryHeap<HeapItem>,
}

impl TopK {
    /// Creates an accumulator for the `k` best candidates (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Current pruning threshold: any candidate whose distance (or lower
    /// bound) strictly exceeds this cannot enter the top-k. Infinite
    /// until the heap is full — ties at the threshold must still be
    /// examined, the index tie-break decides them.
    pub fn threshold(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().expect("heap is full").distance
        }
    }

    /// Offers a scored candidate; keeps the k lexicographically smallest
    /// `(distance, index)` pairs.
    pub fn offer(&mut self, index: usize, distance: f64) {
        let item = HeapItem { distance, index };
        if self.heap.len() < self.k {
            self.heap.push(item);
        } else if item < *self.heap.peek().expect("heap is full") {
            self.heap.pop();
            self.heap.push(item);
        }
    }

    /// Consumes the accumulator, returning neighbours ascending by
    /// `(distance, index)`.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut items: Vec<HeapItem> = self.heap.into_vec();
        items.sort();
        items
            .into_iter()
            .map(|h| Neighbor {
                index: h.index,
                distance: h.distance,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_smallest_in_order() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 0.5, 3.0, 2.0].iter().enumerate() {
            t.offer(i, *d);
        }
        let out = t.into_sorted();
        let pairs: Vec<(usize, f64)> = out.iter().map(|n| (n.index, n.distance)).collect();
        assert_eq!(pairs, vec![(3, 0.5), (1, 1.0), (5, 2.0)]);
    }

    #[test]
    fn threshold_is_infinite_until_full_then_tracks_the_worst() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f64::INFINITY);
        t.offer(0, 3.0);
        assert_eq!(t.threshold(), f64::INFINITY);
        t.offer(1, 1.0);
        assert_eq!(t.threshold(), 3.0);
        t.offer(2, 2.0);
        assert_eq!(t.threshold(), 2.0);
    }

    #[test]
    fn ties_break_toward_the_lower_index() {
        let mut t = TopK::new(2);
        // equal distances: indices 7 and 2 offered out of order, then 5
        t.offer(7, 1.0);
        t.offer(2, 1.0);
        t.offer(5, 1.0);
        let out = t.into_sorted();
        let idx: Vec<usize> = out.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![2, 5], "lowest indices win distance ties");
    }

    #[test]
    fn fewer_offers_than_k_returns_them_all() {
        let mut t = TopK::new(10);
        t.offer(1, 2.0);
        t.offer(0, 2.0);
        let out = t.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].index, 0);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }
}
