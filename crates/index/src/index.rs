//! The corpus index: build, cascade query, batch queries, JSON snapshots.

use crate::config::IndexConfig;
use crate::knn::{Neighbor, TopK};
use crate::stats::CascadeStats;
use rayon::prelude::*;
use sdtw::{DtwScratch, SDtw};
use sdtw_dtw::band::Band;
use sdtw_dtw::cascade::{Cascade, CascadeScratch, PruneStage, SampleInput};
use sdtw_dtw::engine::DtwEngine;
use sdtw_dtw::engine::Normalization;
use sdtw_dtw::lower_bound::{lb_keogh_batch, lb_kim_batch, Envelope, SeriesSummary, LB_LANES};
use sdtw_obs::{InputShape, QueryTrace, Recorder, TracePhase, WorkloadKind};
use sdtw_salient::{extract_features, SalientFeature};
use sdtw_tseries::transform::z_normalize;
use sdtw_tseries::{TimeSeries, TsError};
use serde::{Deserialize, Serialize};

/// One indexed corpus entry: the (possibly z-normalised) series plus every
/// precomputed artefact the cascade consumes — the LB_Kim summary, the
/// LB_Keogh envelope, and the salient descriptors the sDTW band planner
/// reuses across all queries (paper §3.4: extraction is a one-time,
/// indexable cost).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The stored series (post-normalisation when the index z-normalises).
    pub series: TimeSeries,
    /// Upper/lower envelope under the configured window radius.
    pub envelope: Envelope,
    /// Endpoint/extremum summary for the O(1) first filter.
    pub summary: SeriesSummary,
    /// Cached salient features (empty when the policy ignores alignment).
    pub features: Vec<SalientFeature>,
}

/// Answer to one kNN query: neighbours ascending by `(distance, index)`,
/// plus the per-stage pruning accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The k nearest entries (fewer when the corpus is smaller than k).
    pub neighbors: Vec<Neighbor>,
    /// What each cascade stage disposed of for this query.
    pub stats: CascadeStats,
}

/// Serialisable image of an index (the engine is rebuilt on load).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct IndexSnapshot {
    config: IndexConfig,
    entries: Vec<IndexEntry>,
}

/// A Kim-surviving candidate parked in the deferred queue until enough
/// accumulate to batch their forward LB_Keogh bounds ([`LB_LANES`] at a
/// time). The band is planned at enqueue time — in serial visit order —
/// so deferral changes *when* the per-sample stages run, never what they
/// see.
#[derive(Debug)]
struct PendingCandidate {
    idx: usize,
    band: Band,
}

/// A prebuilt kNN index over a `TimeSeries` corpus.
///
/// Build time precomputes, per entry: the z-normalised series (optional),
/// the LB_Kim [`SeriesSummary`], the LB_Keogh [`Envelope`], and the
/// salient descriptors the sDTW band planner needs. Query time runs the
/// cascade, visiting candidates in ascending LB_Kim order so the top-k
/// heap tightens as early as possible:
///
/// 1. **LB_Kim** — O(1) endpoint/extremum bound (admissible for every
///    feasible band);
/// 2. **LB_Keogh** — query samples against the entry's precomputed
///    envelope (admissible when the pair's sanitised band stays inside
///    the envelope window);
/// 3. **reversed LB_Keogh** — entry samples against the query's envelope
///    (built once per query);
/// 4. **early-abandoned banded DP** — seeded with the current k-th best
///    distance, reusing one [`DtwScratch`] per query (or per worker in
///    batch mode).
///
/// The LB_Kim ordering pass runs through the batched [`lb_kim_batch`]
/// lanes, and Kim survivors are parked in a deferred queue of up to
/// [`LB_LANES`] candidates so their forward LB_Keogh bounds compute as
/// one [`lb_keogh_batch`] lane pass; every pruning *decision* still
/// happens sequentially in visit order against a fresh top-k threshold,
/// which keeps results bit-identical to the fully serial sweep.
///
/// Results are exact: identical ids *and* distances (bit-for-bit) to
/// brute-forcing the same [`SDtw`] engine over the corpus, including
/// distance ties, which break toward the lower entry index exactly as the
/// `sdtw_eval::QueryMatrix` oracle does.
#[derive(Debug, Clone)]
pub struct SdtwIndex {
    config: IndexConfig,
    engine: SDtw,
    entries: Vec<IndexEntry>,
}

impl SdtwIndex {
    /// Builds an index over a corpus.
    ///
    /// # Errors
    ///
    /// Configuration validation and feature-extraction errors.
    pub fn build(corpus: &[TimeSeries], config: IndexConfig) -> Result<Self, TsError> {
        config.validate()?;
        let engine = SDtw::new(config.sdtw.clone())?;
        let needs_features = config.sdtw.policy.needs_alignment();
        let entries = corpus
            .iter()
            .map(|ts| {
                let series = if config.z_normalize {
                    z_normalize(ts)
                } else {
                    ts.clone()
                };
                let envelope = Envelope::build(&series, config.radius_for(series.len()));
                let summary = SeriesSummary::of(&series);
                let features = if needs_features {
                    extract_features(&series, &config.sdtw.salient)?
                } else {
                    Vec::new()
                };
                Ok(IndexEntry {
                    series,
                    envelope,
                    summary,
                    features,
                })
            })
            .collect::<Result<Vec<_>, TsError>>()?;
        Ok(Self {
            config,
            engine,
            entries,
        })
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored (post-normalisation) series of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn entry_series(&self, i: usize) -> &TimeSeries {
        &self.entries[i].series
    }

    /// The indexed entries (inspection/tests).
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Converts a raw accumulated-cost bound into the units of the
    /// configured normalisation, so it compares against final distances.
    fn normalize_bound(&self, raw: f64, n: usize, m: usize) -> f64 {
        match self.config.sdtw.dtw.normalization {
            Normalization::None => raw,
            Normalization::LengthSum => raw / (n + m) as f64,
        }
    }

    /// The shared pruning pipeline a query of this index runs: LB_Kim →
    /// LB_Keogh → reversed LB_Keogh, with the bound stages disabled
    /// entirely when the configured kernel reports them inadmissible.
    fn cascade(&self, bounds_enabled: bool) -> Cascade {
        Cascade::new(
            vec![
                PruneStage::Kim { guard: 0.0 },
                PruneStage::Keogh,
                PruneStage::KeoghRev,
            ],
            self.config.sdtw.dtw.metric,
            self.config.sdtw.dtw.normalization,
            bounds_enabled,
        )
    }

    /// kNN query with a caller-provided DP scratch (the batch hot path).
    ///
    /// # Errors
    ///
    /// `k == 0`, or feature extraction failing on the query.
    pub fn query_with_scratch(
        &self,
        query: &TimeSeries,
        k: usize,
        scratch: &mut DtwScratch,
    ) -> Result<QueryResult, TsError> {
        let (result, _, _) = self.query_recorded(query, k, scratch, &mut Recorder::disabled())?;
        Ok(result)
    }

    /// kNN query with full telemetry: the result plus a canonical
    /// [`QueryTrace`] with phase spans (extraction, envelope build,
    /// LB_Kim ordering, band planning, batched LB_Keogh, DP fill), the
    /// cascade counters embedded as the trace's counter block, and the
    /// band/grid denominators for pruning-power metrics.
    ///
    /// Results are bit-identical to [`SdtwIndex::query`] — recording
    /// never changes what the cascade sees.
    ///
    /// # Errors
    ///
    /// `k == 0`, or feature extraction failing on the query.
    pub fn query_traced(
        &self,
        query: &TimeSeries,
        k: usize,
        query_id: &str,
    ) -> Result<(QueryResult, QueryTrace), TsError> {
        let t0 = std::time::Instant::now();
        let mut scratch = DtwScratch::new();
        let mut rec = Recorder::enabled();
        let (result, band_area, full_grid) =
            self.query_recorded(query, k, &mut scratch, &mut rec)?;
        let mut trace = QueryTrace::new(query_id, WorkloadKind::IndexKnn);
        trace.shape = InputShape {
            x_len: query.len() as u64,
            y_len: self.entries.first().map_or(0, |e| e.series.len() as u64),
            k: k as u64,
            policy: self.config.sdtw.policy.label(),
            kernel: self.config.sdtw.dtw.kernel_label(),
            engine: format!("{:?}", DtwEngine::selected()).to_lowercase(),
        };
        trace.counters.cascade = result.stats;
        trace.counters.passes = 1;
        trace.band_area = band_area;
        trace.full_grid = full_grid;
        trace.spans = rec.finish();
        trace.wall = t0.elapsed();
        Ok((result, trace))
    }

    /// The instrumented query body: every public entry point funnels
    /// here, with a disabled recorder on the untraced paths. Returns the
    /// result plus the summed band area and unconstrained grid area of
    /// the candidates that reached the DP stage.
    fn query_recorded(
        &self,
        query: &TimeSeries,
        k: usize,
        scratch: &mut DtwScratch,
        rec: &mut Recorder,
    ) -> Result<(QueryResult, u64, u64), TsError> {
        if k == 0 {
            return Err(TsError::InvalidParameter {
                name: "k",
                reason: "top-k retrieval needs k >= 1".to_string(),
            });
        }
        let q = if self.config.z_normalize {
            z_normalize(query)
        } else {
            query.clone()
        };
        let fq = if self.config.sdtw.policy.needs_alignment() {
            rec.time(TracePhase::Extraction, || {
                extract_features(&q, &self.config.sdtw.salient)
            })?
        } else {
            Vec::new()
        };
        let metric = self.config.sdtw.dtw.metric;
        let q_summary = SeriesSummary::of(&q);
        let q_radius = self.config.radius_for(q.len());
        // LB_Kim/LB_Keogh bound the *standard symmetric1* accumulation;
        // the kernel declares whether its costs dominate that (true for
        // the standard patterns and for amerced with ω ≥ 0). A kernel
        // that discounts costs would make the bounds unsound, so its
        // queries skip the LB stages entirely — logged via
        // `CascadeStats::bounds_disabled`. Early abandoning needs only
        // per-kernel monotonicity and stays on.
        let bounds_ok = self.config.sdtw.dtw.lower_bounds_admissible();
        // the query envelope only feeds the reversed LB_Keogh stage —
        // skip the O(n·radius) build when the bounds are off
        let q_env = bounds_ok
            .then(|| rec.time(TracePhase::EnvelopeBuild, || Envelope::build(&q, q_radius)));
        let cascade = self.cascade(bounds_ok);
        let mut cascade_scratch = CascadeScratch::new();

        // Stage 1 for everyone up front — batched eight summaries per
        // lane pass (bit-identical to the scalar `lb_kim`): O(1) per
        // entry, and the visit order it induces (ascending bound, stable
        // by index) tightens the top-k threshold as early as possible.
        // Without admissible bounds it is still a deterministic (and
        // usually helpful) visit-order heuristic — it just never prunes.
        let order = rec.time(TracePhase::LbKim, || {
            let summaries: Vec<SeriesSummary> = self.entries.iter().map(|e| e.summary).collect();
            let mut kim_raw = Vec::with_capacity(summaries.len());
            lb_kim_batch(&q_summary, &summaries, metric, &mut kim_raw);
            let mut order: Vec<(f64, usize)> = kim_raw
                .iter()
                .enumerate()
                .map(|(i, &raw)| {
                    (
                        self.normalize_bound(raw, q.len(), self.entries[i].series.len()),
                        i,
                    )
                })
                .collect();
            order.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("lower bounds are finite")
                    .then(a.1.cmp(&b.1))
            });
            order
        });

        let mut topk = TopK::new(k);
        let mut stats = CascadeStats::default();
        // (band area, unconstrained grid area) summed over DP candidates —
        // the pruning-power denominators of a trace
        let mut areas = (0u64, 0u64);
        let mut pending: Vec<PendingCandidate> = Vec::with_capacity(LB_LANES);

        for &(kim, idx) in &order {
            let entry = &self.entries[idx];
            // strict comparisons throughout (inside the cascade): a
            // candidate tying the current k-th distance must still be
            // examined — the index tie-break decides whether it
            // displaces the incumbent.
            //
            // The threshold this Kim screen reads can be stale by the (at
            // most LB_LANES - 1) queued survivors ahead of this candidate;
            // staleness only ever *loosens* it, so deferral may admit an
            // extra candidate into the queue but never drops one the
            // serial order would keep. The flush re-reads a fresh
            // threshold before every decision that can touch the top-k,
            // so results stay bit-identical to the serial sweep — an
            // admitted-by-staleness candidate necessarily exceeds its
            // fresh flush threshold and falls to a later stage (shifting
            // pruning *credit* between stages, never counts in or out of
            // the top-k).
            let threshold = topk.threshold();
            if cascade
                .screen_summary(&mut stats, Some(kim), threshold)
                .is_some()
            {
                continue;
            }
            let (n, m) = (q.len(), entry.series.len());
            let (band, _) = rec.time(TracePhase::BandPlan, || {
                self.engine.plan_band(&fq, &entry.features, n, m)
            });
            // The DP kernel sanitises infeasible bands internally (for the
            // oracle path too — deterministically, so distances cannot
            // diverge); LB admissibility must be judged on those same
            // cells. Every current policy already emits feasible bands, so
            // this is a no-op guard for future band builders.
            let band = if band.is_feasible() {
                band
            } else {
                band.sanitize()
            };
            pending.push(PendingCandidate { idx, band });
            if pending.len() == LB_LANES {
                self.flush_pending(
                    &mut pending,
                    &q,
                    q_env.as_ref(),
                    &cascade,
                    &mut cascade_scratch,
                    &mut topk,
                    &mut stats,
                    scratch,
                    rec,
                    &mut areas,
                );
            }
        }
        self.flush_pending(
            &mut pending,
            &q,
            q_env.as_ref(),
            &cascade,
            &mut cascade_scratch,
            &mut topk,
            &mut stats,
            scratch,
            rec,
            &mut areas,
        );
        debug_assert!(stats.is_consistent(), "every candidate accounted once");
        let neighbors = rec.time(TracePhase::TopKMerge, || topk.into_sorted());
        Ok((QueryResult { neighbors, stats }, areas.0, areas.1))
    }

    /// Drains the deferred candidate queue: one batched forward LB_Keogh
    /// pass over the lanes whose stage applies (same predicate the
    /// cascade uses — equal lengths and the band inside the envelope
    /// window), then each candidate is decided strictly in FIFO (= serial
    /// visit) order against a *fresh* top-k threshold. The cascade
    /// re-derives applicability itself and falls back to the scalar
    /// bound when no precomputed value is present, so the predicate here
    /// is a performance filter, not a correctness gate.
    #[allow(clippy::too_many_arguments)]
    fn flush_pending(
        &self,
        pending: &mut Vec<PendingCandidate>,
        q: &TimeSeries,
        q_env: Option<&Envelope>,
        cascade: &Cascade,
        cascade_scratch: &mut CascadeScratch,
        topk: &mut TopK,
        stats: &mut CascadeStats,
        scratch: &mut DtwScratch,
        rec: &mut Recorder,
        areas: &mut (u64, u64),
    ) {
        if pending.is_empty() {
            return;
        }
        debug_assert!(pending.len() <= LB_LANES, "queue flushes at the lane width");
        let metric = self.config.sdtw.dtw.metric;
        let mut pre: [Option<f64>; LB_LANES] = [None; LB_LANES];
        if cascade.bounds_enabled() {
            rec.time(TracePhase::LbKeogh, || {
                let mut lanes: Vec<usize> = Vec::with_capacity(pending.len());
                let mut envs: Vec<&Envelope> = Vec::with_capacity(pending.len());
                for (p, cand) in pending.iter().enumerate() {
                    let entry = &self.entries[cand.idx];
                    if q.len() == entry.series.len()
                        && cand.band.within_window(entry.envelope.radius)
                    {
                        lanes.push(p);
                        envs.push(&entry.envelope);
                    }
                }
                let mut bounds = Vec::with_capacity(lanes.len());
                lb_keogh_batch(q.values(), &envs, metric, &mut bounds);
                for (&p, &raw) in lanes.iter().zip(&bounds) {
                    pre[p] = Some(raw);
                }
            });
        }
        for (p, cand) in pending.drain(..).enumerate() {
            let entry = &self.entries[cand.idx];
            let threshold = topk.threshold();
            let input = SampleInput {
                x: q.values(),
                y: entry.series.values(),
                y_envelope: Some(&entry.envelope),
                y_keogh_raw: pre[p],
                x_envelope: q_env,
                y_coarse: None,
            };
            // the sample-phase screen covers LB_Keogh and its reversed
            // second chance; both are attributed to the LbKeogh span
            if rec
                .time(TracePhase::LbKeogh, || {
                    cascade.screen_samples(stats, &input, &cand.band, threshold, cascade_scratch)
                })
                .is_some()
            {
                continue;
            }
            areas.0 += cand.band.area() as u64;
            areas.1 += (q.len() * entry.series.len()) as u64;
            match rec
                .time(TracePhase::DpFill, || {
                    self.engine
                        .query(q, &entry.series)
                        .band(&cand.band)
                        .cutoff(threshold)
                        .path(false)
                        .scratch(scratch)
                        .run()
                })
                .expect("band override cannot fail extraction")
            {
                None => stats.record_abandoned(cand.band.area()),
                Some(r) => {
                    stats.record_completed(r.cells_filled);
                    topk.offer(cand.idx, r.distance);
                }
            }
        }
    }

    /// kNN query (allocates a fresh DP scratch; see
    /// [`SdtwIndex::query_with_scratch`] for the reusing variant).
    ///
    /// # Errors
    ///
    /// `k == 0`, or feature extraction failing on the query.
    pub fn query(&self, query: &TimeSeries, k: usize) -> Result<QueryResult, TsError> {
        let mut scratch = DtwScratch::new();
        self.query_with_scratch(query, k, &mut scratch)
    }

    /// Answers a batch of queries, optionally on the rayon worker pool
    /// (one DP scratch per worker). Queries are independent, so parallel
    /// results are bit-identical to serial ones and arrive in input
    /// order.
    ///
    /// # Errors
    ///
    /// The first per-query error (`k == 0`, feature extraction).
    pub fn batch_query(
        &self,
        queries: &[TimeSeries],
        k: usize,
        parallel: bool,
    ) -> Result<Vec<QueryResult>, TsError> {
        let results: Vec<Result<QueryResult, TsError>> = if parallel {
            (0..queries.len())
                .into_par_iter()
                .map_init(DtwScratch::new, |scratch, i| {
                    self.query_with_scratch(&queries[i], k, scratch)
                })
                .collect()
        } else {
            let mut scratch = DtwScratch::new();
            queries
                .iter()
                .map(|q| self.query_with_scratch(q, k, &mut scratch))
                .collect()
        };
        results.into_iter().collect()
    }

    /// Serialises the index to JSON (configuration + entries; the engine
    /// is rebuilt on load).
    ///
    /// # Errors
    ///
    /// Serialisation failures (propagated from the serde layer).
    pub fn to_json(&self) -> Result<String, TsError> {
        let snapshot = IndexSnapshot {
            config: self.config.clone(),
            entries: self.entries.clone(),
        };
        serde_json::to_string(&snapshot).map_err(|e| TsError::InvalidParameter {
            name: "index_snapshot",
            reason: e.to_string(),
        })
    }

    /// Loads an index from a JSON snapshot, revalidating the
    /// configuration and the per-entry structural invariants: envelope
    /// length/radius and summary length must match the stored series and
    /// configuration, cached features must lie within their series, and
    /// alignment-free policies must carry no features. Feature *content*
    /// (descriptor values) is trusted, like any database file — rebuild
    /// from the raw corpus if the snapshot's provenance is in doubt.
    ///
    /// # Errors
    ///
    /// Parse failures, configuration validation failures, or corrupted
    /// entries.
    pub fn from_json(json: &str) -> Result<Self, TsError> {
        let snapshot: IndexSnapshot =
            serde_json::from_str(json).map_err(|e| TsError::InvalidParameter {
                name: "index_json",
                reason: e.to_string(),
            })?;
        snapshot.config.validate()?;
        let engine = SDtw::new(snapshot.config.sdtw.clone())?;
        let needs_features = snapshot.config.sdtw.policy.needs_alignment();
        let corrupt = |i: usize, what: String| TsError::InvalidParameter {
            name: "index_json",
            reason: format!("entry {i}: {what}"),
        };
        for (i, e) in snapshot.entries.iter().enumerate() {
            let len = e.series.len();
            let expected_radius = snapshot.config.radius_for(len);
            if e.envelope.upper.len() != len
                || e.envelope.lower.len() != len
                || e.envelope.radius != expected_radius
                || e.summary.len != len
            {
                return Err(corrupt(
                    i,
                    format!(
                        "envelope/summary inconsistent with series \
                         (len {len}, expected radius {expected_radius})"
                    ),
                ));
            }
            if !needs_features && !e.features.is_empty() {
                return Err(corrupt(
                    i,
                    "cached features present under an alignment-free policy".to_string(),
                ));
            }
            for f in &e.features {
                if f.keypoint.position >= len || f.scope_start > f.scope_end || f.scope_end >= len {
                    return Err(corrupt(
                        i,
                        format!(
                            "cached feature outside its series (pos {}, scope \
                             [{}, {}], len {len})",
                            f.keypoint.position, f.scope_start, f.scope_end
                        ),
                    ));
                }
            }
        }
        Ok(Self {
            config: snapshot.config,
            engine,
            entries: snapshot.entries,
        })
    }
}
