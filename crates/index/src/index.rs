//! The corpus index: build, cascade query, batch queries, JSON snapshots.

use crate::config::IndexConfig;
use crate::knn::{Neighbor, TopK};
use crate::stats::CascadeStats;
use rayon::prelude::*;
use sdtw::{DtwScratch, SDtw};
use sdtw_dtw::band::Band;
use sdtw_dtw::cascade::{
    Cascade, CascadeScratch, CoarseEnvelope, PruneStage, SampleInput, StageKind,
};
use sdtw_dtw::engine::DtwEngine;
use sdtw_dtw::engine::Normalization;
use sdtw_dtw::lower_bound::{lb_keogh_batch, lb_kim_batch, Envelope, SeriesSummary, LB_LANES};
use sdtw_obs::{InputShape, QueryTrace, Recorder, TracePhase, WorkloadKind};
use sdtw_salient::{extract_features, SalientFeature};
use sdtw_tseries::transform::z_normalize;
use sdtw_tseries::{TimeSeries, TsError};
use serde::{Deserialize, Serialize};

/// One indexed corpus entry: the (possibly z-normalised) series plus every
/// precomputed artefact the cascade consumes — the LB_Kim summary, the
/// LB_Keogh envelope, and the salient descriptors the sDTW band planner
/// reuses across all queries (paper §3.4: extraction is a one-time,
/// indexable cost).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IndexEntry {
    /// The stored series (post-normalisation when the index z-normalises).
    pub series: TimeSeries,
    /// Upper/lower envelope under the configured window radius.
    pub envelope: Envelope,
    /// Endpoint/extremum summary for the O(1) first filter.
    pub summary: SeriesSummary,
    /// Cached salient features (empty when the policy ignores alignment).
    pub features: Vec<SalientFeature>,
    /// Coarse PAA compression of `envelope` for the pre-filter stage
    /// (`None` when [`IndexConfig::paa_width`] disables the stage).
    pub coarse: Option<CoarseEnvelope>,
}

// Hand-written for schema evolution: entries serialised before the PAA
// stage existed have no `coarse` member — they decode to `None` and the
// snapshot loader backfills the artefact deterministically from the
// stored envelope.
impl serde::Deserialize for IndexEntry {
    fn from_json(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            series: serde::Deserialize::from_json(serde::obj_get(v, "series")?)?,
            envelope: serde::Deserialize::from_json(serde::obj_get(v, "envelope")?)?,
            summary: serde::Deserialize::from_json(serde::obj_get(v, "summary")?)?,
            features: serde::Deserialize::from_json(serde::obj_get(v, "features")?)?,
            coarse: match v.get("coarse") {
                Some(c) => serde::Deserialize::from_json(c)?,
                None => None,
            },
        })
    }
}

/// Answer to one kNN query: neighbours ascending by `(distance, index)`,
/// plus the per-stage pruning accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// The k nearest entries (fewer when the corpus is smaller than k).
    pub neighbors: Vec<Neighbor>,
    /// What each cascade stage disposed of for this query.
    pub stats: CascadeStats,
}

/// One corpus entry's stage-1 screening record: its normalised LB_Kim
/// bound against the query, carried in visit order by a
/// [`CoarseScreen`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryBound {
    /// Corpus entry index.
    pub index: usize,
    /// Normalised LB_Kim bound of the (query, entry) pair — an
    /// admissible lower bound on their whole-recording distance when
    /// [`CoarseScreen::admissible`] holds, a visit-order heuristic
    /// otherwise.
    pub bound: f64,
}

/// The stage-1 coarse screen of a query against every indexed entry:
/// the bucketed ascending visit order the kNN cascade itself uses,
/// exposed so composing services (the serve daemon's two-level pattern
/// search) can rank entries without running the whole cascade.
///
/// The bounds speak about *whole-recording* distances under the index's
/// normalisation — a consumer localising subsequences inside entries
/// must treat them as ranking hints only and prune with its own
/// window-level bounds (see DESIGN.md §13).
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseScreen {
    /// Every entry exactly once, bucketed ascending by bound (stable by
    /// index within a bucket).
    pub order: Vec<EntryBound>,
    /// Whether the configured kernel keeps the LB stages admissible
    /// (`false` turns every bound into a pure heuristic that must not
    /// prune).
    pub admissible: bool,
}

/// How the kNN cascade disposed of one corpus entry
/// (see [`SdtwIndex::query_detailed`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EntryOutcome {
    /// A lower-bound stage proved the entry cannot enter the top-k.
    Pruned(StageKind),
    /// The banded DP abandoned early: the partial cost already exceeded
    /// the running k-th distance.
    Abandoned,
    /// The DP completed with this exact distance (the entry is a
    /// *survivor*; it is in the top-k iff the distance made the cut).
    Completed(f64),
}

/// Per-entry record of a detailed kNN query: the coarse stage-1 bound
/// that ordered the visit plus the cascade's final verdict. The pruned /
/// abandoned / completed split is the survivor set the serve subsystem's
/// admissibility tests audit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryDisposition {
    /// Corpus entry index.
    pub index: usize,
    /// The normalised LB_Kim bound from the ordering pass.
    pub coarse_bound: f64,
    /// The cascade's verdict for this entry.
    pub outcome: EntryOutcome,
}

/// Serialisable image of an index (the engine is rebuilt on load).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct IndexSnapshot {
    config: IndexConfig,
    entries: Vec<IndexEntry>,
}

/// A Kim-surviving candidate parked in the deferred queue until enough
/// accumulate to batch their forward LB_Keogh bounds ([`LB_LANES`] at a
/// time — the queue capacity is never assumed to be a literal `8`; the
/// width comes from the `sdtw_dtw::simd` lane layer through that one
/// const, so widening the SIMD lanes re-sizes this queue automatically).
/// The band is planned at enqueue time — in serial visit order — so
/// deferral changes *when* the per-sample stages run, never what they
/// see.
#[derive(Debug)]
struct PendingCandidate {
    idx: usize,
    band: Band,
    /// The stage-1 bound that ordered the visit (kept for dispositions).
    kim: f64,
}

/// Orders scored candidates ascending by bound *approximately*, via one
/// O(n) stable counting pass over equal-width buckets instead of a full
/// `O(n log n)` sort — the visit order only seeds how fast the top-k
/// threshold tightens, so bucket-granular ordering keeps results exact
/// (every candidate is still screened) while taking the recurring
/// per-query sort off the serve hot path. Within a bucket the input
/// (entry-index) order is preserved, so the order is deterministic.
fn bucketed_ascending(scored: Vec<(f64, usize)>) -> Vec<(f64, usize)> {
    if scored.len() <= 1 {
        return scored;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(b, _) in &scored {
        debug_assert!(b.is_finite(), "lower bounds are finite");
        lo = lo.min(b);
        hi = hi.max(b);
    }
    let span = hi - lo;
    if span <= 0.0 || span.is_nan() {
        // all bounds equal (or degenerate): input order is already the
        // stable ascending order
        return scored;
    }
    let nb = scored.len().min(64);
    let bucket_of = |b: f64| (((b - lo) / span) * nb as f64).min((nb - 1) as f64) as usize;
    let mut counts = vec![0usize; nb];
    for &(b, _) in &scored {
        counts[bucket_of(b)] += 1;
    }
    let mut next = vec![0usize; nb];
    let mut acc = 0usize;
    for (n, c) in next.iter_mut().zip(&counts) {
        *n = acc;
        acc += c;
    }
    let mut out = vec![(0.0, 0usize); scored.len()];
    for &(b, i) in &scored {
        let slot = &mut next[bucket_of(b)];
        out[*slot] = (b, i);
        *slot += 1;
    }
    out
}

/// A prebuilt kNN index over a `TimeSeries` corpus.
///
/// Build time precomputes, per entry: the z-normalised series (optional),
/// the LB_Kim [`SeriesSummary`], the LB_Keogh [`Envelope`], and the
/// salient descriptors the sDTW band planner needs. Query time runs the
/// cascade, visiting candidates in ascending LB_Kim order so the top-k
/// heap tightens as early as possible:
///
/// 1. **LB_Kim** — O(1) endpoint/extremum bound (admissible for every
///    feasible band);
/// 2. **LB_Keogh** — query samples against the entry's precomputed
///    envelope (admissible when the pair's sanitised band stays inside
///    the envelope window);
/// 3. **reversed LB_Keogh** — entry samples against the query's envelope
///    (built once per query);
/// 4. **early-abandoned banded DP** — seeded with the current k-th best
///    distance, reusing one [`DtwScratch`] per query (or per worker in
///    batch mode).
///
/// The LB_Kim ordering pass runs through the batched [`lb_kim_batch`]
/// lanes, and Kim survivors are parked in a deferred queue of up to
/// [`LB_LANES`] candidates so their forward LB_Keogh bounds compute as
/// one [`lb_keogh_batch`] lane pass; every pruning *decision* still
/// happens sequentially in visit order against a fresh top-k threshold,
/// which keeps results bit-identical to the fully serial sweep.
///
/// Results are exact: identical ids *and* distances (bit-for-bit) to
/// brute-forcing the same [`SDtw`] engine over the corpus, including
/// distance ties, which break toward the lower entry index exactly as the
/// `sdtw_eval::QueryMatrix` oracle does.
#[derive(Debug, Clone)]
pub struct SdtwIndex {
    config: IndexConfig,
    engine: SDtw,
    entries: Vec<IndexEntry>,
}

impl SdtwIndex {
    /// Builds an index over a corpus.
    ///
    /// # Errors
    ///
    /// Configuration validation and feature-extraction errors.
    pub fn build(corpus: &[TimeSeries], config: IndexConfig) -> Result<Self, TsError> {
        config.validate()?;
        let engine = SDtw::new(config.sdtw.clone())?;
        let needs_features = config.sdtw.policy.needs_alignment();
        let entries = corpus
            .iter()
            .map(|ts| {
                let series = if config.z_normalize {
                    z_normalize(ts)
                } else {
                    ts.clone()
                };
                let envelope = Envelope::build(&series, config.radius_for(series.len()));
                let summary = SeriesSummary::of(&series);
                let features = if needs_features {
                    extract_features(&series, &config.sdtw.salient)?
                } else {
                    Vec::new()
                };
                let coarse = (config.paa_width >= 2)
                    .then(|| CoarseEnvelope::build(&envelope, config.paa_width));
                Ok(IndexEntry {
                    series,
                    envelope,
                    summary,
                    features,
                    coarse,
                })
            })
            .collect::<Result<Vec<_>, TsError>>()?;
        Ok(Self {
            config,
            engine,
            entries,
        })
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored (post-normalisation) series of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn entry_series(&self, i: usize) -> &TimeSeries {
        &self.entries[i].series
    }

    /// The indexed entries (inspection/tests).
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Converts a raw accumulated-cost bound into the units of the
    /// configured normalisation, so it compares against final distances.
    fn normalize_bound(&self, raw: f64, n: usize, m: usize) -> f64 {
        match self.config.sdtw.dtw.normalization {
            Normalization::None => raw,
            Normalization::LengthSum => raw / (n + m) as f64,
        }
    }

    /// The shared pruning pipeline a query of this index runs: LB_Kim →
    /// coarse PAA → LB_Keogh → reversed LB_Keogh, with the bound stages
    /// disabled entirely when the configured kernel reports them
    /// inadmissible. The PAA stage sits between Kim and Keogh because
    /// its `O(len / width)` cost fills the gap between the O(1) summary
    /// bound and the O(len) fine bound — and since its bound never
    /// exceeds LB_Keogh's (with the same applicability condition), it
    /// only shifts pruning *credit* earlier, never changing the top-k.
    /// When [`IndexConfig::paa_width`] disables it, the stage is omitted
    /// from the list entirely so `lb_inapplicable` accounting matches
    /// the pre-PAA cascade exactly.
    fn cascade(&self, bounds_enabled: bool) -> Cascade {
        let mut stages = Vec::with_capacity(4);
        stages.push(PruneStage::Kim { guard: 0.0 });
        if self.config.paa_width >= 2 {
            stages.push(PruneStage::Paa);
        }
        stages.push(PruneStage::Keogh);
        stages.push(PruneStage::KeoghRev);
        Cascade::new(
            stages,
            self.config.sdtw.dtw.metric,
            self.config.sdtw.dtw.normalization,
            bounds_enabled,
        )
    }

    /// kNN query with a caller-provided DP scratch (the batch hot path).
    ///
    /// # Errors
    ///
    /// `k == 0`, or feature extraction failing on the query.
    pub fn query_with_scratch(
        &self,
        query: &TimeSeries,
        k: usize,
        scratch: &mut DtwScratch,
    ) -> Result<QueryResult, TsError> {
        let (result, _, _) = self.query_recorded(query, k, scratch, &mut Recorder::disabled())?;
        Ok(result)
    }

    /// kNN query with full telemetry: the result plus a canonical
    /// [`QueryTrace`] with phase spans (extraction, envelope build,
    /// LB_Kim ordering, band planning, batched LB_Keogh, DP fill), the
    /// cascade counters embedded as the trace's counter block, and the
    /// band/grid denominators for pruning-power metrics.
    ///
    /// Results are bit-identical to [`SdtwIndex::query`] — recording
    /// never changes what the cascade sees.
    ///
    /// # Errors
    ///
    /// `k == 0`, or feature extraction failing on the query.
    pub fn query_traced(
        &self,
        query: &TimeSeries,
        k: usize,
        query_id: &str,
    ) -> Result<(QueryResult, QueryTrace), TsError> {
        let t0 = std::time::Instant::now();
        let mut scratch = DtwScratch::new();
        let mut rec = Recorder::enabled();
        let (result, band_area, full_grid) =
            self.query_recorded(query, k, &mut scratch, &mut rec)?;
        let mut trace = QueryTrace::new(query_id, WorkloadKind::IndexKnn);
        trace.shape = InputShape {
            x_len: query.len() as u64,
            y_len: self.entries.first().map_or(0, |e| e.series.len() as u64),
            k: k as u64,
            policy: self.config.sdtw.policy.label(),
            kernel: self.config.sdtw.dtw.kernel_label(),
            engine: format!("{:?}", DtwEngine::selected()).to_lowercase(),
        };
        trace.counters.cascade = result.stats;
        trace.counters.passes = 1;
        trace.band_area = band_area;
        trace.full_grid = full_grid;
        trace.spans = rec.finish();
        trace.wall = t0.elapsed();
        Ok((result, trace))
    }

    /// The batched stage-1 ordering pass over a *prepared* (normalised)
    /// query: every entry's normalised LB_Kim bound, in bucketed
    /// ascending visit order.
    fn coarse_order(&self, q: &TimeSeries) -> Vec<(f64, usize)> {
        let metric = self.config.sdtw.dtw.metric;
        let q_summary = SeriesSummary::of(q);
        let summaries: Vec<SeriesSummary> = self.entries.iter().map(|e| e.summary).collect();
        let mut kim_raw = Vec::with_capacity(summaries.len());
        lb_kim_batch(&q_summary, &summaries, metric, &mut kim_raw);
        let scored: Vec<(f64, usize)> = kim_raw
            .iter()
            .enumerate()
            .map(|(i, &raw)| {
                (
                    self.normalize_bound(raw, q.len(), self.entries[i].series.len()),
                    i,
                )
            })
            .collect();
        bucketed_ascending(scored)
    }

    /// Runs only the stage-1 coarse screen: every entry's normalised
    /// LB_Kim bound against `query`, in the same bucketed ascending
    /// visit order a kNN query would use. O(corpus) with no DP work —
    /// the level-1 ranking seam of the serve daemon's two-level pattern
    /// cascade.
    pub fn coarse_screen(&self, query: &TimeSeries) -> CoarseScreen {
        let q = if self.config.z_normalize {
            z_normalize(query)
        } else {
            query.clone()
        };
        let order = self
            .coarse_order(&q)
            .into_iter()
            .map(|(bound, index)| EntryBound { index, bound })
            .collect();
        CoarseScreen {
            order,
            admissible: self.config.sdtw.dtw.lower_bounds_admissible(),
        }
    }

    /// kNN query that also reports, per corpus entry, the cascade's
    /// verdict and the stage-1 bound that ordered its visit — the
    /// survivor set (entries whose DP completed, distances included) and
    /// the per-entry lower bounds that justify every prune.
    /// Dispositions are returned in entry-index order, one per entry.
    ///
    /// The [`QueryResult`] is bit-identical to [`SdtwIndex::query`].
    ///
    /// # Errors
    ///
    /// `k == 0`, or feature extraction failing on the query.
    pub fn query_detailed(
        &self,
        query: &TimeSeries,
        k: usize,
    ) -> Result<(QueryResult, Vec<EntryDisposition>), TsError> {
        let mut scratch = DtwScratch::new();
        let mut dispositions = Vec::with_capacity(self.entries.len());
        let (result, _, _) = self.query_recorded_into(
            query,
            k,
            &mut scratch,
            &mut Recorder::disabled(),
            Some(&mut dispositions),
        )?;
        dispositions.sort_by_key(|d| d.index);
        Ok((result, dispositions))
    }

    /// The instrumented query body: every public entry point funnels
    /// here, with a disabled recorder on the untraced paths. Returns the
    /// result plus the summed band area and unconstrained grid area of
    /// the candidates that reached the DP stage.
    fn query_recorded(
        &self,
        query: &TimeSeries,
        k: usize,
        scratch: &mut DtwScratch,
        rec: &mut Recorder,
    ) -> Result<(QueryResult, u64, u64), TsError> {
        self.query_recorded_into(query, k, scratch, rec, None)
    }

    /// [`SdtwIndex::query_recorded`] with an optional per-entry
    /// disposition sink (pushed in visit order; filled for every entry).
    fn query_recorded_into(
        &self,
        query: &TimeSeries,
        k: usize,
        scratch: &mut DtwScratch,
        rec: &mut Recorder,
        mut dispositions: Option<&mut Vec<EntryDisposition>>,
    ) -> Result<(QueryResult, u64, u64), TsError> {
        if k == 0 {
            return Err(TsError::InvalidParameter {
                name: "k",
                reason: "top-k retrieval needs k >= 1".to_string(),
            });
        }
        let q = if self.config.z_normalize {
            z_normalize(query)
        } else {
            query.clone()
        };
        let fq = if self.config.sdtw.policy.needs_alignment() {
            rec.time(TracePhase::Extraction, || {
                extract_features(&q, &self.config.sdtw.salient)
            })?
        } else {
            Vec::new()
        };
        let q_radius = self.config.radius_for(q.len());
        // LB_Kim/LB_Keogh bound the *standard symmetric1* accumulation;
        // the kernel declares whether its costs dominate that (true for
        // the standard patterns and for amerced with ω ≥ 0). A kernel
        // that discounts costs would make the bounds unsound, so its
        // queries skip the LB stages entirely — logged via
        // `CascadeStats::bounds_disabled`. Early abandoning needs only
        // per-kernel monotonicity and stays on.
        let bounds_ok = self.config.sdtw.dtw.lower_bounds_admissible();
        // the query envelope only feeds the reversed LB_Keogh stage —
        // skip the O(n·radius) build when the bounds are off
        let q_env = bounds_ok
            .then(|| rec.time(TracePhase::EnvelopeBuild, || Envelope::build(&q, q_radius)));
        let cascade = self.cascade(bounds_ok);
        let mut cascade_scratch = CascadeScratch::new();

        // Stage 1 for everyone up front — batched eight summaries per
        // lane pass (bit-identical to the scalar `lb_kim`): O(1) per
        // entry, and the visit order it induces (bucketed ascending
        // bound, stable by index) tightens the top-k threshold as early
        // as possible without paying a full per-query sort. Without
        // admissible bounds it is still a deterministic (and usually
        // helpful) visit-order heuristic — it just never prunes.
        let order = rec.time(TracePhase::LbKim, || self.coarse_order(&q));

        let mut topk = TopK::new(k);
        let mut stats = CascadeStats::default();
        // (band area, unconstrained grid area) summed over DP candidates —
        // the pruning-power denominators of a trace
        let mut areas = (0u64, 0u64);
        let mut pending: Vec<PendingCandidate> = Vec::with_capacity(LB_LANES);

        for &(kim, idx) in &order {
            let entry = &self.entries[idx];
            // strict comparisons throughout (inside the cascade): a
            // candidate tying the current k-th distance must still be
            // examined — the index tie-break decides whether it
            // displaces the incumbent.
            //
            // The threshold this Kim screen reads can be stale by the (at
            // most LB_LANES - 1) queued survivors ahead of this candidate;
            // staleness only ever *loosens* it, so deferral may admit an
            // extra candidate into the queue but never drops one the
            // serial order would keep. The flush re-reads a fresh
            // threshold before every decision that can touch the top-k,
            // so results stay bit-identical to the serial sweep — an
            // admitted-by-staleness candidate necessarily exceeds its
            // fresh flush threshold and falls to a later stage (shifting
            // pruning *credit* between stages, never counts in or out of
            // the top-k).
            let threshold = topk.threshold();
            if let Some(kind) = cascade.screen_summary(&mut stats, Some(kim), threshold) {
                if let Some(d) = dispositions.as_deref_mut() {
                    d.push(EntryDisposition {
                        index: idx,
                        coarse_bound: kim,
                        outcome: EntryOutcome::Pruned(kind),
                    });
                }
                continue;
            }
            let (n, m) = (q.len(), entry.series.len());
            let (band, _) = rec.time(TracePhase::BandPlan, || {
                self.engine.plan_band(&fq, &entry.features, n, m)
            });
            // The DP kernel sanitises infeasible bands internally (for the
            // oracle path too — deterministically, so distances cannot
            // diverge); LB admissibility must be judged on those same
            // cells. Every current policy already emits feasible bands, so
            // this is a no-op guard for future band builders.
            let band = if band.is_feasible() {
                band
            } else {
                band.sanitize()
            };
            pending.push(PendingCandidate { idx, band, kim });
            if pending.len() == LB_LANES {
                self.flush_pending(
                    &mut pending,
                    &q,
                    q_env.as_ref(),
                    &cascade,
                    &mut cascade_scratch,
                    &mut topk,
                    &mut stats,
                    scratch,
                    rec,
                    &mut areas,
                    dispositions.as_deref_mut(),
                );
            }
        }
        self.flush_pending(
            &mut pending,
            &q,
            q_env.as_ref(),
            &cascade,
            &mut cascade_scratch,
            &mut topk,
            &mut stats,
            scratch,
            rec,
            &mut areas,
            dispositions,
        );
        debug_assert!(stats.is_consistent(), "every candidate accounted once");
        let neighbors = rec.time(TracePhase::TopKMerge, || topk.into_sorted());
        Ok((QueryResult { neighbors, stats }, areas.0, areas.1))
    }

    /// Drains the deferred candidate queue: one batched forward LB_Keogh
    /// pass over the lanes whose stage applies (same predicate the
    /// cascade uses — equal lengths and the band inside the envelope
    /// window), then each candidate is decided strictly in FIFO (= serial
    /// visit) order against a *fresh* top-k threshold. The cascade
    /// re-derives applicability itself and falls back to the scalar
    /// bound when no precomputed value is present, so the predicate here
    /// is a performance filter, not a correctness gate.
    #[allow(clippy::too_many_arguments)]
    fn flush_pending(
        &self,
        pending: &mut Vec<PendingCandidate>,
        q: &TimeSeries,
        q_env: Option<&Envelope>,
        cascade: &Cascade,
        cascade_scratch: &mut CascadeScratch,
        topk: &mut TopK,
        stats: &mut CascadeStats,
        scratch: &mut DtwScratch,
        rec: &mut Recorder,
        areas: &mut (u64, u64),
        mut dispositions: Option<&mut Vec<EntryDisposition>>,
    ) {
        if pending.is_empty() {
            return;
        }
        debug_assert!(pending.len() <= LB_LANES, "queue flushes at the lane width");
        let metric = self.config.sdtw.dtw.metric;
        let mut pre: [Option<f64>; LB_LANES] = [None; LB_LANES];
        if cascade.bounds_enabled() {
            rec.time(TracePhase::LbKeogh, || {
                let mut lanes: Vec<usize> = Vec::with_capacity(pending.len());
                let mut envs: Vec<&Envelope> = Vec::with_capacity(pending.len());
                for (p, cand) in pending.iter().enumerate() {
                    let entry = &self.entries[cand.idx];
                    if q.len() == entry.series.len()
                        && cand.band.within_window(entry.envelope.radius)
                    {
                        lanes.push(p);
                        envs.push(&entry.envelope);
                    }
                }
                let mut bounds = Vec::with_capacity(lanes.len());
                lb_keogh_batch(q.values(), &envs, metric, &mut bounds);
                for (&p, &raw) in lanes.iter().zip(&bounds) {
                    pre[p] = Some(raw);
                }
            });
        }
        for (p, cand) in pending.drain(..).enumerate() {
            let entry = &self.entries[cand.idx];
            let threshold = topk.threshold();
            let input = SampleInput {
                x: q.values(),
                y: entry.series.values(),
                y_envelope: Some(&entry.envelope),
                y_keogh_raw: pre[p],
                x_envelope: q_env,
                y_coarse: entry.coarse.as_ref(),
            };
            // the sample-phase screen covers LB_Keogh and its reversed
            // second chance; both are attributed to the LbKeogh span
            if let Some(kind) = rec.time(TracePhase::LbKeogh, || {
                cascade.screen_samples(stats, &input, &cand.band, threshold, cascade_scratch)
            }) {
                if let Some(d) = dispositions.as_deref_mut() {
                    d.push(EntryDisposition {
                        index: cand.idx,
                        coarse_bound: cand.kim,
                        outcome: EntryOutcome::Pruned(kind),
                    });
                }
                continue;
            }
            areas.0 += cand.band.area() as u64;
            areas.1 += (q.len() * entry.series.len()) as u64;
            match rec
                .time(TracePhase::DpFill, || {
                    self.engine
                        .query(q, &entry.series)
                        .band(&cand.band)
                        .cutoff(threshold)
                        .path(false)
                        .scratch(scratch)
                        .run()
                })
                .expect("band override cannot fail extraction")
            {
                None => {
                    stats.record_abandoned(cand.band.area());
                    if let Some(d) = dispositions.as_deref_mut() {
                        d.push(EntryDisposition {
                            index: cand.idx,
                            coarse_bound: cand.kim,
                            outcome: EntryOutcome::Abandoned,
                        });
                    }
                }
                Some(r) => {
                    stats.record_completed(r.cells_filled);
                    topk.offer(cand.idx, r.distance);
                    if let Some(d) = dispositions.as_deref_mut() {
                        d.push(EntryDisposition {
                            index: cand.idx,
                            coarse_bound: cand.kim,
                            outcome: EntryOutcome::Completed(r.distance),
                        });
                    }
                }
            }
        }
    }

    /// kNN query (allocates a fresh DP scratch; see
    /// [`SdtwIndex::query_with_scratch`] for the reusing variant).
    ///
    /// # Errors
    ///
    /// `k == 0`, or feature extraction failing on the query.
    pub fn query(&self, query: &TimeSeries, k: usize) -> Result<QueryResult, TsError> {
        let mut scratch = DtwScratch::new();
        self.query_with_scratch(query, k, &mut scratch)
    }

    /// Answers a batch of queries, optionally on the rayon worker pool
    /// (one DP scratch per worker). Queries are independent, so parallel
    /// results are bit-identical to serial ones and arrive in input
    /// order.
    ///
    /// # Errors
    ///
    /// The first per-query error (`k == 0`, feature extraction).
    pub fn batch_query(
        &self,
        queries: &[TimeSeries],
        k: usize,
        parallel: bool,
    ) -> Result<Vec<QueryResult>, TsError> {
        let results: Vec<Result<QueryResult, TsError>> = if parallel {
            (0..queries.len())
                .into_par_iter()
                .map_init(DtwScratch::new, |scratch, i| {
                    self.query_with_scratch(&queries[i], k, scratch)
                })
                .collect()
        } else {
            let mut scratch = DtwScratch::new();
            queries
                .iter()
                .map(|q| self.query_with_scratch(q, k, &mut scratch))
                .collect()
        };
        results.into_iter().collect()
    }

    /// Serialises the index to the JSON snapshot text (the codec's
    /// [`crate::SnapshotFormat::Json`] payload).
    pub(crate) fn encode_json(&self) -> Result<String, TsError> {
        let snapshot = IndexSnapshot {
            config: self.config.clone(),
            entries: self.entries.clone(),
        };
        serde_json::to_string(&snapshot).map_err(|e| TsError::SnapshotDecode {
            format: "json",
            offset: None,
            context: e.to_string(),
        })
    }

    /// Decodes the JSON snapshot text and assembles the index through
    /// the shared validation path.
    pub(crate) fn decode_json(json: &str) -> Result<Self, TsError> {
        let snapshot: IndexSnapshot =
            serde_json::from_str(json).map_err(|e| TsError::SnapshotDecode {
                format: "json",
                offset: None,
                context: e.to_string(),
            })?;
        Self::from_snapshot_parts(snapshot.config, snapshot.entries, "json")
    }

    /// The one assembly path every snapshot codec funnels into:
    /// revalidates the configuration, rebuilds the engine, checks the
    /// per-entry structural invariants — envelope length/radius and
    /// summary length must match the stored series and configuration,
    /// cached features must lie within their series, alignment-free
    /// policies must carry no features, and any stored coarse envelope
    /// must agree with the configured PAA width — then backfills coarse
    /// envelopes missing from pre-PAA snapshots (deterministically, from
    /// the stored envelope, so a migrated index answers bit-identically
    /// to a freshly built one). Artefact *content* (descriptor values,
    /// tube values) is trusted, like any database file — rebuild from
    /// the raw corpus if the snapshot's provenance is in doubt.
    pub(crate) fn from_snapshot_parts(
        config: IndexConfig,
        mut entries: Vec<IndexEntry>,
        format: &'static str,
    ) -> Result<Self, TsError> {
        config.validate()?;
        let engine = SDtw::new(config.sdtw.clone())?;
        let needs_features = config.sdtw.policy.needs_alignment();
        let corrupt = |i: usize, what: String| TsError::SnapshotDecode {
            format,
            offset: None,
            context: format!("entry {i}: {what}"),
        };
        for (i, e) in entries.iter().enumerate() {
            let len = e.series.len();
            let expected_radius = config.radius_for(len);
            if e.envelope.upper.len() != len
                || e.envelope.lower.len() != len
                || e.envelope.radius != expected_radius
                || e.summary.len != len
            {
                return Err(corrupt(
                    i,
                    format!(
                        "envelope/summary inconsistent with series \
                         (len {len}, expected radius {expected_radius})"
                    ),
                ));
            }
            if !needs_features && !e.features.is_empty() {
                return Err(corrupt(
                    i,
                    "cached features present under an alignment-free policy".to_string(),
                ));
            }
            for f in &e.features {
                if f.keypoint.position >= len || f.scope_start > f.scope_end || f.scope_end >= len {
                    return Err(corrupt(
                        i,
                        format!(
                            "cached feature outside its series (pos {}, scope \
                             [{}, {}], len {len})",
                            f.keypoint.position, f.scope_start, f.scope_end
                        ),
                    ));
                }
            }
            if let Some(c) = &e.coarse {
                if config.paa_width < 2 {
                    return Err(corrupt(
                        i,
                        "coarse envelope present but the PAA stage is disabled".to_string(),
                    ));
                }
                let segments = len.div_ceil(config.paa_width);
                if c.width() != config.paa_width
                    || c.source_len() != len
                    || c.radius() != expected_radius
                    || c.upper().len() != segments
                    || c.lower().len() != segments
                {
                    return Err(corrupt(
                        i,
                        format!(
                            "coarse envelope inconsistent with series/config \
                             (width {}, source_len {}, radius {}, segments {}/{}; \
                             expected width {}, len {len}, radius {expected_radius}, \
                             segments {segments})",
                            c.width(),
                            c.source_len(),
                            c.radius(),
                            c.upper().len(),
                            c.lower().len(),
                            config.paa_width,
                        ),
                    ));
                }
            }
        }
        if config.paa_width >= 2 {
            for e in &mut entries {
                if e.coarse.is_none() {
                    e.coarse = Some(CoarseEnvelope::build(&e.envelope, config.paa_width));
                }
            }
        }
        Ok(Self {
            config,
            engine,
            entries,
        })
    }

    /// Serialises the index to JSON (configuration + entries; the engine
    /// is rebuilt on load).
    ///
    /// # Errors
    ///
    /// Serialisation failures (propagated from the serde layer).
    #[deprecated(
        since = "0.1.0",
        note = "use `SnapshotCodec::encode` (JSON or the binary columnar v2 format)"
    )]
    pub fn to_json(&self) -> Result<String, TsError> {
        self.encode_json()
    }

    /// Loads an index from a JSON snapshot, revalidating the
    /// configuration and the per-entry structural invariants (see
    /// [`crate::SnapshotCodec`] for the shared validation contract).
    ///
    /// # Errors
    ///
    /// Parse failures, configuration validation failures, or corrupted
    /// entries.
    #[deprecated(
        since = "0.1.0",
        note = "use `SnapshotCodec::decode`, which auto-detects JSON and binary snapshots"
    )]
    pub fn from_json(json: &str) -> Result<Self, TsError> {
        Self::decode_json(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, phase: f64) -> TimeSeries {
        TimeSeries::new(
            (0..n)
                .map(|i| ((i as f64) / 7.0 + phase).sin() + 0.3 * ((i as f64) / 3.0 + phase).cos())
                .collect(),
        )
        .unwrap()
    }

    fn corpus(n_entries: usize, len: usize) -> Vec<TimeSeries> {
        (0..n_entries)
            .map(|k| series(len, k as f64 * 0.9))
            .collect()
    }

    #[test]
    fn bucketed_order_is_a_permutation_and_roughly_ascending() {
        let scored: Vec<(f64, usize)> = (0..100)
            .map(|i| (((i * 37) % 100) as f64 / 10.0, i))
            .collect();
        let out = bucketed_ascending(scored.clone());
        assert_eq!(out.len(), scored.len());
        let mut seen: Vec<usize> = out.iter().map(|&(_, i)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>(), "a permutation");
        // bucket-granular: each element's bound is within one bucket
        // width of a truly sorted sequence at the same rank
        let mut exact: Vec<f64> = scored.iter().map(|&(b, _)| b).collect();
        exact.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let width = (exact[99] - exact[0]) / 64.0;
        for (rank, &(b, _)) in out.iter().enumerate() {
            assert!(
                (b - exact[rank]).abs() <= width + 1e-12,
                "rank {rank}: {b} vs exact {}",
                exact[rank]
            );
        }
    }

    #[test]
    fn bucketed_order_degenerate_inputs() {
        assert_eq!(bucketed_ascending(Vec::new()), Vec::new());
        assert_eq!(bucketed_ascending(vec![(3.0, 7)]), vec![(3.0, 7)]);
        // all-equal bounds keep stable input (index) order
        let flat: Vec<(f64, usize)> = (0..5).map(|i| (2.5, i)).collect();
        assert_eq!(bucketed_ascending(flat.clone()), flat);
    }

    #[test]
    fn bucketed_order_is_deterministic() {
        let scored: Vec<(f64, usize)> = (0..57).map(|i| (((i * 13) % 29) as f64, i)).collect();
        assert_eq!(
            bucketed_ascending(scored.clone()),
            bucketed_ascending(scored)
        );
    }

    #[test]
    fn coarse_screen_covers_every_entry_with_admissible_bounds() {
        let c = corpus(17, 64);
        let index = SdtwIndex::build(&c, IndexConfig::exact_banded(0.2)).unwrap();
        let screen = index.coarse_screen(&c[4]);
        assert!(screen.admissible);
        let mut seen: Vec<usize> = screen.order.iter().map(|e| e.index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..17).collect::<Vec<_>>());
        // admissibility: every coarse bound is at or below the exact
        // whole-recording distance of its pair
        let all = index.query(&c[4], index.len()).unwrap();
        for eb in &screen.order {
            let d = all
                .neighbors
                .iter()
                .find(|n| n.index == eb.index)
                .unwrap()
                .distance;
            assert!(
                eb.bound <= d + 1e-12,
                "entry {}: bound {} above distance {d}",
                eb.index,
                eb.bound
            );
        }
    }

    #[test]
    fn query_detailed_matches_query_and_accounts_every_entry() {
        let c = corpus(23, 48);
        let index = SdtwIndex::build(&c, IndexConfig::exact_banded(0.15)).unwrap();
        let (detailed, dispositions) = index.query_detailed(&c[7], 3).unwrap();
        let plain = index.query(&c[7], 3).unwrap();
        assert_eq!(detailed, plain, "detailed query is bit-identical");
        assert_eq!(dispositions.len(), index.len(), "one verdict per entry");
        for (i, d) in dispositions.iter().enumerate() {
            assert_eq!(d.index, i, "sorted by entry index");
        }
        // the survivor set contains every reported neighbour, with the
        // same (bit-identical) distance
        for n in &plain.neighbors {
            match dispositions[n.index].outcome {
                EntryOutcome::Completed(d) => {
                    assert_eq!(d.to_bits(), n.distance.to_bits());
                }
                other => panic!("neighbour {} not a survivor: {other:?}", n.index),
            }
        }
        // every pruned entry's lower bound justifies its exclusion from
        // the top-k: coarse bound (Kim prunes) strictly above the k-th
        // distance at the moment of pruning, hence above no reported
        // neighbour is lost
        let kth = plain.neighbors.last().unwrap().distance;
        for d in &dispositions {
            if let EntryOutcome::Pruned(StageKind::Kim) = d.outcome {
                assert!(
                    d.coarse_bound >= kth,
                    "entry {}: Kim prune bound {} below final k-th {kth}",
                    d.index,
                    d.coarse_bound
                );
            }
        }
    }
}
