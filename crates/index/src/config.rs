//! Index configuration.

use sdtw::{ConstraintPolicy, SDtwConfig};
use sdtw_tseries::TsError;
use serde::Serialize;

/// Configuration of a [`crate::SdtwIndex`].
///
/// The nested [`SDtwConfig`] decides the *distance the index answers in*:
/// a `FixedCoreFixedWidth` (Sakoe-Chiba) or `FullGrid` policy gives the
/// classic exact-banded-DTW index, an adaptive policy gives the paper's
/// sDTW distance with per-pair salient-feature bands (planned from the
/// descriptors cached in the index at build time). Whatever the mode,
/// query results are identical — ids and distances — to brute-forcing the
/// same engine over the corpus.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IndexConfig {
    /// The engine configuration queries are answered under.
    pub sdtw: SDtwConfig,
    /// Z-normalise every corpus entry at build time and every query at
    /// query time (the UCR convention; makes LB_Kim's extremum terms and
    /// the envelope tubes comparable across offsets/scales).
    pub z_normalize: bool,
    /// Envelope window radius as a fraction of the series length
    /// (`radius = ceil(frac · len)`). The LB_Keogh stages only fire on
    /// pairs whose (sanitised) band stays inside this window — larger
    /// values keep the bounds applicable to wider bands but loosen them.
    pub lb_radius_frac: f64,
    /// Segment width of the coarse PAA pre-filter stage, slotted between
    /// LB_Kim and LB_Keogh in the query cascade (same convention as
    /// `sdtw_stream`): each entry carries a
    /// [`sdtw_dtw::cascade::CoarseEnvelope`] built from its LB_Keogh
    /// envelope, screened in `O(len / width)` metric evaluations before
    /// the `O(len)` fine bound runs. Values below 2 disable the stage
    /// (and the per-entry coarse artefact) entirely.
    pub paa_width: usize,
}

/// Default PAA segment width of the coarse index stage (matching
/// `sdtw_stream`'s default).
pub const DEFAULT_PAA_WIDTH: usize = 8;

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            sdtw: SDtwConfig::default(),
            z_normalize: false,
            lb_radius_frac: 0.1,
            paa_width: DEFAULT_PAA_WIDTH,
        }
    }
}

// Hand-written (the derive has no field defaults): pre-PAA snapshots
// carry no `paa_width` member, and they must keep loading — absent means
// the default width, exactly what `SdtwIndex`'s snapshot loader then
// backfills coarse envelopes for.
impl serde::Deserialize for IndexConfig {
    fn from_json(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            sdtw: serde::Deserialize::from_json(serde::obj_get(v, "sdtw")?)?,
            z_normalize: serde::Deserialize::from_json(serde::obj_get(v, "z_normalize")?)?,
            lb_radius_frac: serde::Deserialize::from_json(serde::obj_get(v, "lb_radius_frac")?)?,
            paa_width: match v.get("paa_width") {
                Some(w) => serde::Deserialize::from_json(w)?,
                None => DEFAULT_PAA_WIDTH,
            },
        })
    }
}

impl IndexConfig {
    /// Exact banded-DTW mode: a Sakoe-Chiba band of the given total width
    /// fraction, with the envelope window sized to dominate the band (so
    /// every cascade stage is applicable on equal-length corpora).
    pub fn exact_banded(width_frac: f64) -> Self {
        Self {
            sdtw: SDtwConfig {
                policy: ConstraintPolicy::FixedCoreFixedWidth { width_frac },
                ..SDtwConfig::default()
            },
            z_normalize: false,
            // the band's half-width is width_frac/2 of M (+1 for the
            // sanitiser's corner bridging); leave comfortable headroom
            lb_radius_frac: width_frac,
            paa_width: DEFAULT_PAA_WIDTH,
        }
    }

    /// sDTW-band mode: the paper's `ac2,aw` adaptive constraints, planned
    /// per pair from the salient descriptors cached in the index.
    pub fn sdtw_bands() -> Self {
        Self::default()
    }

    /// Validates the nested engine configuration and the index's own
    /// parameters.
    ///
    /// # Errors
    ///
    /// The first [`TsError::InvalidParameter`] found.
    pub fn validate(&self) -> Result<(), TsError> {
        self.sdtw.validate()?;
        if !self.lb_radius_frac.is_finite() || self.lb_radius_frac < 0.0 {
            return Err(TsError::InvalidParameter {
                name: "lb_radius_frac",
                reason: format!(
                    "envelope radius fraction must be finite and >= 0, got {}",
                    self.lb_radius_frac
                ),
            });
        }
        Ok(())
    }

    /// Envelope radius for a series of the given length, clamped to
    /// `len` (a radius covering the whole series is already the loosest
    /// envelope; larger values would only risk index overflow).
    pub fn radius_for(&self, len: usize) -> usize {
        ((self.lb_radius_frac * len as f64).ceil() as usize).min(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates_and_radii_scale_with_length() {
        let c = IndexConfig::default();
        c.validate().unwrap();
        assert_eq!(c.radius_for(100), 10);
        assert_eq!(c.radius_for(0), 0);
        assert_eq!(c.radius_for(101), 11, "ceil, not floor");
        // absurd fractions clamp to the series length, never overflow
        let wide = IndexConfig {
            lb_radius_frac: 1e18,
            ..IndexConfig::default()
        };
        wide.validate().unwrap();
        assert_eq!(wide.radius_for(32), 32);
    }

    #[test]
    fn exact_banded_mode_uses_a_sakoe_policy() {
        let c = IndexConfig::exact_banded(0.2);
        c.validate().unwrap();
        assert!(matches!(
            c.sdtw.policy,
            ConstraintPolicy::FixedCoreFixedWidth { .. }
        ));
        assert!(!c.sdtw.policy.needs_alignment());
        assert!(IndexConfig::sdtw_bands().sdtw.policy.needs_alignment());
    }

    #[test]
    fn invalid_radius_fraction_rejected() {
        let mut c = IndexConfig {
            lb_radius_frac: -0.5,
            ..IndexConfig::default()
        };
        assert!(c.validate().is_err());
        c.lb_radius_frac = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_engine_config_rejected() {
        let mut c = IndexConfig::exact_banded(0.0);
        assert!(c.validate().is_err(), "zero-width Sakoe band is invalid");
        c.sdtw.policy = ConstraintPolicy::FullGrid;
        c.validate().unwrap();
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let c = IndexConfig {
            z_normalize: true,
            lb_radius_frac: 0.25,
            paa_width: 4,
            ..IndexConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: IndexConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn pre_paa_snapshots_default_the_width() {
        // a config serialised before the coarse stage existed has no
        // `paa_width` member; it must load with the default, not error
        let c = IndexConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("paa_width"));
        let legacy = json.replace(&format!(",\"paa_width\":{DEFAULT_PAA_WIDTH}"), "");
        assert!(!legacy.contains("paa_width"), "member stripped: {legacy}");
        let back: IndexConfig = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.paa_width, DEFAULT_PAA_WIDTH);
        assert_eq!(back, c);
    }
}
