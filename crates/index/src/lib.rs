//! # sdtw-index — corpus kNN with a cascading lower-bound pruning pipeline
//!
//! The paper cuts per-pair DTW cost by constraining the grid; this crate
//! cuts *corpus* retrieval cost by not running the grid at all for most
//! candidates. A [`SdtwIndex`] is built once over a corpus and answers
//! top-k queries through the classic UCR-suite-style cascade, cheapest
//! bound first, visiting candidates in ascending lower-bound order:
//!
//! | stage | cost | prunes a candidate when |
//! |---|---|---|
//! | LB_Kim | O(1) | endpoint/extremum bound > k-th best |
//! | coarse PAA | O(n/w) | query PAA vs precomputed coarse envelope > k-th best |
//! | LB_Keogh | O(n) | query vs precomputed entry envelope > k-th best |
//! | reversed LB_Keogh | O(n) | entry vs query envelope > k-th best |
//! | early-abandoned banded DP | ≤ O(band) | a completed DP row's minimum > k-th best |
//!
//! Every bound is admissible for the band actually used (see
//! `DESIGN.md` §7), so results are **exact** — identical ids and
//! bit-identical distances to brute-forcing the same [`sdtw::SDtw`]
//! engine, in both exact-banded-DTW and adaptive sDTW-band modes.
//! Build-time artefacts per entry: optional z-normalisation, the LB_Kim
//! [`SeriesSummary`](sdtw_dtw::SeriesSummary), the LB_Keogh
//! [`Envelope`](sdtw_dtw::Envelope), and cached salient descriptors so
//! the sDTW band planner never re-extracts (paper §3.4). Queries reuse
//! one DP scratch each, batch queries run rayon-parallel, and the whole
//! index round-trips through [`SnapshotCodec`] — the binary columnar v2
//! snapshot format or the legacy JSON tree, auto-detected on load.
//!
//! # Example
//!
//! ```
//! use sdtw_index::{IndexConfig, SdtwIndex};
//! use sdtw_tseries::TimeSeries;
//!
//! let corpus: Vec<TimeSeries> = (0..12)
//!     .map(|k| {
//!         TimeSeries::new(
//!             (0..64)
//!                 .map(|i| ((i + 5 * k) as f64 / 6.0).sin())
//!                 .collect(),
//!         )
//!         .unwrap()
//!     })
//!     .collect();
//! let index = SdtwIndex::build(&corpus, IndexConfig::exact_banded(0.2)).unwrap();
//! let result = index.query(&corpus[3], 2).unwrap();
//! assert_eq!(result.neighbors[0].index, 3); // a member is its own 1-NN
//! assert_eq!(result.neighbors[0].distance, 0.0);
//! assert!(result.stats.is_consistent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod index;
pub mod knn;
pub mod snapshot;
pub mod stats;

pub use config::{IndexConfig, DEFAULT_PAA_WIDTH};
pub use index::{
    CoarseScreen, EntryBound, EntryDisposition, EntryOutcome, IndexEntry, QueryResult, SdtwIndex,
};
pub use knn::Neighbor;
pub use snapshot::{SnapshotCodec, SnapshotFormat};
pub use stats::CascadeStats;
