//! Per-stage pruning accounting for the cascade.

use serde::{Deserialize, Serialize};

/// How many candidates each cascade stage disposed of, plus the DP work
/// actually paid. One `CascadeStats` is produced per query; batch drivers
/// aggregate them with [`CascadeStats::absorb`].
///
/// Invariant (asserted by tests): every candidate is accounted for exactly
/// once —
/// `candidates == pruned_kim + pruned_keogh + pruned_keogh_rev + abandoned
/// + dp_completed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CascadeStats {
    /// Corpus entries considered (index size, per query).
    pub candidates: u64,
    /// Dropped by the O(1) LB_Kim endpoint/extremum bound.
    pub pruned_kim: u64,
    /// Dropped by LB_Keogh (query samples vs the entry's precomputed
    /// envelope).
    pub pruned_keogh: u64,
    /// Dropped by the reversed LB_Keogh (entry samples vs the query's
    /// envelope) — the classic second chance when the first direction is
    /// too loose.
    pub pruned_keogh_rev: u64,
    /// Candidates whose pair didn't satisfy the LB_Keogh admissibility
    /// conditions (unequal lengths, or a band escaping the envelope
    /// window); they skip straight from LB_Kim to the DP stage. Not a
    /// disposal — informational only.
    pub lb_inapplicable: u64,
    /// DP runs cut short by early abandoning against the best-so-far.
    pub abandoned: u64,
    /// DP runs carried to completion (the only candidates that could enter
    /// the top-k).
    pub dp_completed: u64,
    /// DP cells filled across all runs (abandoned runs are charged their
    /// full band conservatively).
    pub cells_filled: u64,
    /// True when the engine's cost kernel reported that the standard
    /// lower bounds are **not** admissible for it
    /// (`DtwOptions::lower_bounds_admissible`), so the LB_Kim/LB_Keogh
    /// stages were disabled for the whole query — the logged reason why
    /// `pruned_kim`/`pruned_keogh*` are zero. Both built-in kernels
    /// (standard and amerced, penalty ≥ 0) keep the bounds admissible, so
    /// this only fires for future discounting kernels. Early abandoning
    /// stays on either way.
    pub bounds_disabled: bool,
}

impl CascadeStats {
    /// Folds another stats record into this one (batch aggregation).
    pub fn absorb(&mut self, other: &CascadeStats) {
        self.candidates += other.candidates;
        self.pruned_kim += other.pruned_kim;
        self.pruned_keogh += other.pruned_keogh;
        self.pruned_keogh_rev += other.pruned_keogh_rev;
        self.lb_inapplicable += other.lb_inapplicable;
        self.abandoned += other.abandoned;
        self.dp_completed += other.dp_completed;
        self.cells_filled += other.cells_filled;
        self.bounds_disabled |= other.bounds_disabled;
    }

    /// Candidates disposed of before the DP stage.
    pub fn pruned_before_dp(&self) -> u64 {
        self.pruned_kim + self.pruned_keogh + self.pruned_keogh_rev
    }

    /// Fraction of candidates that never ran the DP to completion
    /// (lower-bound prunes + abandoned runs), in `[0, 1]`.
    pub fn prune_rate(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        (self.pruned_before_dp() + self.abandoned) as f64 / self.candidates as f64
    }

    /// Whether every candidate is accounted for by exactly one disposal.
    pub fn is_consistent(&self) -> bool {
        self.candidates == self.pruned_before_dp() + self.abandoned + self.dp_completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields_and_rates_follow() {
        let a = CascadeStats {
            candidates: 10,
            pruned_kim: 4,
            pruned_keogh: 2,
            pruned_keogh_rev: 1,
            lb_inapplicable: 1,
            abandoned: 1,
            dp_completed: 2,
            cells_filled: 100,
            bounds_disabled: false,
        };
        assert!(a.is_consistent());
        let mut b = a;
        b.absorb(&a);
        assert_eq!(b.candidates, 20);
        assert_eq!(b.pruned_before_dp(), 14);
        assert_eq!(b.cells_filled, 200);
        assert!(b.is_consistent());
        assert!((a.prune_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_consistent_with_zero_rate() {
        let s = CascadeStats::default();
        assert!(s.is_consistent());
        assert_eq!(s.prune_rate(), 0.0);
    }

    #[test]
    fn stats_roundtrip_through_serde() {
        let s = CascadeStats {
            candidates: 3,
            dp_completed: 3,
            cells_filled: 42,
            ..Default::default()
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: CascadeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
