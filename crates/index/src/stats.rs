//! Per-stage pruning accounting — now the workspace-shared
//! [`sdtw_dtw::cascade::CascadeStats`], re-exported here because this is
//! where it historically lived (the index was the first cascade
//! consumer; `sdtw-stream` and the sharded scanners share it now).

pub use sdtw_dtw::cascade::CascadeStats;
