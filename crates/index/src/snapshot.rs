//! Snapshot codecs: the version-tagged binary columnar `SnapshotV2`
//! format and the legacy JSON tree, behind one auto-detecting seam.
//!
//! # The binary columnar layout (format version 2)
//!
//! A v2 snapshot is a fixed header, a checksummed section table, and the
//! section payloads laid out contiguously in table order:
//!
//! ```text
//! bytes 0..8    magic  "SDTWIDX2"
//! bytes 8..12   format version, u32 LE (= 2)
//! bytes 12..20  entry count, u64 LE
//! bytes 20..28  section count, u64 LE (= SECTION_COUNT)
//! bytes 28..36  header checksum, u64 LE — FNV-1a-64 of the table bytes
//! bytes 36..    section table: SECTION_COUNT × (offset u64, len u64) LE
//! then          the payloads, ascending and gap-free
//! ```
//!
//! Per-entry artefacts are stored as *columns* — every envelope upper
//! side concatenated, every summary `first` concatenated, … — so loading
//! is a straight sequential pass: each column is read directly into one
//! typed `Vec` (`f64` columns bit-preserving, little-endian) with no
//! intermediate DOM, and the per-entry splits are recovered from the
//! `entry_lens` column. The two irreducibly tree-shaped payloads (the
//! configuration and the cached salient features) travel as embedded
//! JSON blobs in their own sections.
//!
//! The header checksum covers the section table, so corruption anywhere
//! in the *structure* (offsets, lengths) is caught before any column is
//! trusted; column payloads are validated semantically by the shared
//! assembly path (`SdtwIndex` revalidates every structural invariant on
//! load, whichever codec produced the parts). Column lengths must agree
//! exactly with the entry count and the `entry_lens` column — a snapshot
//! whose columns disagree is rejected with the offending section named.
//!
//! # Format negotiation
//!
//! The first byte decides: `'S'` (the magic) is the binary family, `'{'`
//! (or leading whitespace) is the JSON tree. A binary snapshot whose
//! version field is not 2 is rejected with a clear
//! [`TsError::SnapshotDecode`] naming both versions — mirroring the
//! trace wire schema's ratchet discipline.

use crate::config::IndexConfig;
use crate::index::{IndexEntry, SdtwIndex};
use sdtw_dtw::cascade::CoarseEnvelope;
use sdtw_dtw::lower_bound::{Envelope, SeriesSummary};
use sdtw_salient::SalientFeature;
use sdtw_tseries::io::binio;
use sdtw_tseries::{TimeSeries, TsError};
use std::io::Read;
use std::path::Path;

/// The 8-byte magic opening every binary v2 snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SDTWIDX2";

/// The binary snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Number of sections in a v2 snapshot, in table order.
const SECTION_COUNT: usize = 15;

/// Section indices (table order = payload order).
const SEC_CONFIG_JSON: usize = 0;
const SEC_ENTRY_LENS: usize = 1;
const SEC_LABELS: usize = 2;
const SEC_IDS: usize = 3;
const SEC_SAMPLES: usize = 4;
const SEC_ENV_RADII: usize = 5;
const SEC_ENV_UPPER: usize = 6;
const SEC_ENV_LOWER: usize = 7;
const SEC_SUM_FIRST: usize = 8;
const SEC_SUM_LAST: usize = 9;
const SEC_SUM_MIN: usize = 10;
const SEC_SUM_MAX: usize = 11;
const SEC_COARSE_UPPER: usize = 12;
const SEC_COARSE_LOWER: usize = 13;
const SEC_FEATURES_JSON: usize = 14;

/// Human-readable section names for decode errors.
const SECTION_NAMES: [&str; SECTION_COUNT] = [
    "config_json",
    "entry_lens",
    "labels",
    "ids",
    "samples",
    "env_radii",
    "env_upper",
    "env_lower",
    "sum_first",
    "sum_last",
    "sum_min",
    "sum_max",
    "coarse_upper",
    "coarse_lower",
    "features_json",
];

/// Sentinel in the `labels` column for a series without a label
/// (labels are `u32`, so `u64::MAX` is unambiguous).
const NO_LABEL: u64 = u64::MAX;

/// The on-disk representation of an index snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// The legacy JSON tree (still fully supported; the default of
    /// early `sdtw index build` releases).
    Json,
    /// The binary columnar v2 layout described in the module docs.
    BinaryV2,
}

impl SnapshotFormat {
    /// Sniffs the format from the payload's first bytes: the binary
    /// magic's `SDTWIDX` family prefix, or a JSON object opener
    /// (optionally behind whitespace). `None` means neither.
    pub fn detect(bytes: &[u8]) -> Option<SnapshotFormat> {
        if bytes.len() >= 7 && bytes[..7] == SNAPSHOT_MAGIC[..7] {
            return Some(SnapshotFormat::BinaryV2);
        }
        match bytes.iter().find(|b| !b.is_ascii_whitespace()) {
            Some(b'{') => Some(SnapshotFormat::Json),
            _ => None,
        }
    }

    /// The label decode errors and CLI summaries use.
    pub fn label(self) -> &'static str {
        match self {
            SnapshotFormat::Json => "json",
            SnapshotFormat::BinaryV2 => "binary-v2",
        }
    }
}

/// Convenience for binary decode errors carrying a byte offset.
fn bin_err(offset: u64, context: impl Into<String>) -> TsError {
    TsError::SnapshotDecode {
        format: "binary-v2",
        offset: Some(offset),
        context: context.into(),
    }
}

/// A reader that tracks how many bytes it has yielded, so every decode
/// error can name the byte offset it happened at.
struct CountingReader<R> {
    inner: R,
    pos: u64,
}

impl<R: Read> CountingReader<R> {
    fn new(inner: R) -> Self {
        Self { inner, pos: 0 }
    }

    fn read_u32(&mut self, what: &str) -> Result<u32, TsError> {
        let at = self.pos;
        let v = binio::read_u32(&mut self.inner)
            .map_err(|e| bin_err(at, format!("reading {what}: {e}")))?;
        self.pos += 4;
        Ok(v)
    }

    fn read_u64(&mut self, what: &str) -> Result<u64, TsError> {
        let at = self.pos;
        let v = binio::read_u64(&mut self.inner)
            .map_err(|e| bin_err(at, format!("reading {what}: {e}")))?;
        self.pos += 8;
        Ok(v)
    }

    fn read_exact(&mut self, buf: &mut [u8], what: &str) -> Result<(), TsError> {
        let at = self.pos;
        self.inner
            .read_exact(buf)
            .map_err(|e| bin_err(at, format!("reading {what}: {e}")))?;
        self.pos += buf.len() as u64;
        Ok(())
    }

    fn read_u64_column(&mut self, len: usize, what: &str) -> Result<Vec<u64>, TsError> {
        let at = self.pos;
        let col = binio::read_u64_column(&mut self.inner, len)
            .map_err(|e| bin_err(at, format!("reading {what}: {e}")))?;
        self.pos += 8 * len as u64;
        Ok(col)
    }

    fn read_f64_column(&mut self, len: usize, what: &str) -> Result<Vec<f64>, TsError> {
        let at = self.pos;
        let col = binio::read_f64_column(&mut self.inner, len)
            .map_err(|e| bin_err(at, format!("reading {what}: {e}")))?;
        self.pos += 8 * len as u64;
        Ok(col)
    }
}

/// The snapshot codec seam: every consumer (CLI, serve daemon, tests)
/// encodes and decodes indexes through these associated functions, and
/// decoding auto-detects the format, so JSON and binary snapshots are
/// interchangeable everywhere one is accepted.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotCodec;

impl SnapshotCodec {
    /// Serialises an index in the requested format.
    ///
    /// # Errors
    ///
    /// Serialisation failures from the JSON layer.
    pub fn encode(index: &SdtwIndex, format: SnapshotFormat) -> Result<Vec<u8>, TsError> {
        match format {
            SnapshotFormat::Json => Ok(index.encode_json()?.into_bytes()),
            SnapshotFormat::BinaryV2 => encode_binary(index),
        }
    }

    /// Decodes a snapshot of either format (auto-detected by magic).
    ///
    /// # Errors
    ///
    /// [`TsError::SnapshotDecode`] naming the codec, the byte offset
    /// (binary) and the failing field; configuration/structural
    /// validation errors from the shared assembly path.
    pub fn decode(bytes: &[u8]) -> Result<SdtwIndex, TsError> {
        match SnapshotFormat::detect(bytes) {
            Some(SnapshotFormat::BinaryV2) => decode_binary(CountingReader::new(bytes)),
            Some(SnapshotFormat::Json) => {
                let text = std::str::from_utf8(bytes).map_err(|e| TsError::SnapshotDecode {
                    format: "json",
                    offset: Some(e.valid_up_to() as u64),
                    context: "snapshot is not valid UTF-8".to_string(),
                })?;
                SdtwIndex::decode_json(text)
            }
            None => Err(TsError::SnapshotDecode {
                format: "auto-detect",
                offset: Some(0),
                context: "neither the binary magic nor a JSON object opener".to_string(),
            }),
        }
    }

    /// Decodes a snapshot from a reader, streaming the binary format:
    /// the header, table and columns are consumed sequentially straight
    /// into typed vectors — no intermediate byte buffer or DOM for the
    /// columnar payload. (JSON payloads are necessarily buffered whole.)
    ///
    /// # Errors
    ///
    /// As [`SnapshotCodec::decode`], plus I/O errors surfaced as decode
    /// errors with the failing byte offset.
    pub fn decode_reader<R: Read>(mut reader: R) -> Result<SdtwIndex, TsError> {
        // sniff just enough for format negotiation (short payloads are
        // invalid in both formats and fall through to the error paths)
        let mut head = Vec::with_capacity(8);
        let mut byte = [0u8; 1];
        while head.len() < 8 {
            match reader.read(&mut byte) {
                Ok(0) => break,
                Ok(_) => head.push(byte[0]),
                Err(e) => return Err(bin_err(head.len() as u64, format!("reading magic: {e}"))),
            }
        }
        match SnapshotFormat::detect(&head) {
            Some(SnapshotFormat::BinaryV2) => {
                decode_binary(CountingReader::new(head.as_slice().chain(reader)))
            }
            _ => {
                // JSON (or garbage — the JSON parser reports it): buffer
                // the rest; the tree format cannot stream through the shim
                let mut text = head;
                reader.read_to_end(&mut text).map_err(TsError::Io)?;
                Self::decode(&text)
            }
        }
    }

    /// Writes an index snapshot to a file in the requested format.
    ///
    /// # Errors
    ///
    /// Encoding or I/O failures.
    pub fn write_file<P: AsRef<Path>>(
        index: &SdtwIndex,
        path: P,
        format: SnapshotFormat,
    ) -> Result<(), TsError> {
        let bytes = Self::encode(index, format)?;
        std::fs::write(path, bytes)?;
        Ok(())
    }

    /// Loads an index snapshot from a file, auto-detecting the format
    /// and streaming the binary layout.
    ///
    /// # Errors
    ///
    /// I/O and decode failures.
    pub fn read_file<P: AsRef<Path>>(path: P) -> Result<SdtwIndex, TsError> {
        let file = std::fs::File::open(path)?;
        Self::decode_reader(std::io::BufReader::new(file))
    }
}

/// Assembles the binary v2 byte image of an index.
fn encode_binary(index: &SdtwIndex) -> Result<Vec<u8>, TsError> {
    let entries = index.entries();
    let n = entries.len();

    // ---- column assembly -------------------------------------------------
    let config_json = serde_json::to_string(index.config())
        .map_err(|e| TsError::SnapshotDecode {
            format: "binary-v2",
            offset: None,
            context: format!("serialising config: {e}"),
        })?
        .into_bytes();
    let mut entry_lens = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut ids = Vec::with_capacity(2 * n);
    let mut samples = Vec::new();
    let mut env_radii = Vec::with_capacity(n);
    let mut env_upper = Vec::new();
    let mut env_lower = Vec::new();
    let mut sum_first = Vec::with_capacity(n);
    let mut sum_last = Vec::with_capacity(n);
    let mut sum_min = Vec::with_capacity(n);
    let mut sum_max = Vec::with_capacity(n);
    let mut coarse_upper = Vec::new();
    let mut coarse_lower = Vec::new();
    let mut features: Vec<&[SalientFeature]> = Vec::with_capacity(n);
    for e in entries {
        entry_lens.push(e.series.len() as u64);
        labels.push(e.series.label().map_or(NO_LABEL, u64::from));
        match e.series.id() {
            Some(id) => {
                ids.push(1);
                ids.push(id);
            }
            None => {
                ids.push(0);
                ids.push(0);
            }
        }
        samples.extend_from_slice(e.series.values());
        env_radii.push(e.envelope.radius as u64);
        env_upper.extend_from_slice(&e.envelope.upper);
        env_lower.extend_from_slice(&e.envelope.lower);
        sum_first.push(e.summary.first);
        sum_last.push(e.summary.last);
        sum_min.push(e.summary.min);
        sum_max.push(e.summary.max);
        if let Some(c) = &e.coarse {
            coarse_upper.extend_from_slice(c.upper());
            coarse_lower.extend_from_slice(c.lower());
        }
        features.push(&e.features);
    }
    let features_json = serde_json::to_string(&features)
        .map_err(|e| TsError::SnapshotDecode {
            format: "binary-v2",
            offset: None,
            context: format!("serialising features: {e}"),
        })?
        .into_bytes();

    // ---- payload serialisation (table order) -----------------------------
    let mut payloads: [Vec<u8>; SECTION_COUNT] = Default::default();
    payloads[SEC_CONFIG_JSON] = config_json;
    payloads[SEC_FEATURES_JSON] = features_json;
    let io_bug = |e: std::io::Error| TsError::SnapshotDecode {
        format: "binary-v2",
        offset: None,
        context: format!("encoding column: {e}"),
    };
    for (sec, col) in [
        (SEC_ENTRY_LENS, &entry_lens),
        (SEC_LABELS, &labels),
        (SEC_IDS, &ids),
        (SEC_ENV_RADII, &env_radii),
    ] {
        binio::write_u64_column(&mut payloads[sec], col).map_err(io_bug)?;
    }
    for (sec, col) in [
        (SEC_SAMPLES, &samples),
        (SEC_ENV_UPPER, &env_upper),
        (SEC_ENV_LOWER, &env_lower),
        (SEC_SUM_FIRST, &sum_first),
        (SEC_SUM_LAST, &sum_last),
        (SEC_SUM_MIN, &sum_min),
        (SEC_SUM_MAX, &sum_max),
        (SEC_COARSE_UPPER, &coarse_upper),
        (SEC_COARSE_LOWER, &coarse_lower),
    ] {
        binio::write_f64_column(&mut payloads[sec], col).map_err(io_bug)?;
    }

    // ---- header + table --------------------------------------------------
    let header_len = 36u64 + (SECTION_COUNT as u64) * 16;
    let mut table = Vec::with_capacity(SECTION_COUNT * 16);
    let mut offset = header_len;
    for payload in &payloads {
        binio::write_u64(&mut table, offset).map_err(io_bug)?;
        binio::write_u64(&mut table, payload.len() as u64).map_err(io_bug)?;
        offset += payload.len() as u64;
    }
    let checksum = binio::fnv1a64(&table);

    let mut out = Vec::with_capacity(offset as usize);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    binio::write_u32(&mut out, SNAPSHOT_VERSION).map_err(io_bug)?;
    binio::write_u64(&mut out, n as u64).map_err(io_bug)?;
    binio::write_u64(&mut out, SECTION_COUNT as u64).map_err(io_bug)?;
    binio::write_u64(&mut out, checksum).map_err(io_bug)?;
    out.extend_from_slice(&table);
    for payload in &payloads {
        out.extend_from_slice(payload);
    }
    Ok(out)
}

/// Streams the binary v2 layout from a reader into an assembled index.
fn decode_binary<R: Read>(mut r: CountingReader<R>) -> Result<SdtwIndex, TsError> {
    // ---- header ----------------------------------------------------------
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic, "magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(bin_err(
            0,
            format!(
                "bad magic {:?} — not an sDTW index snapshot",
                String::from_utf8_lossy(&magic)
            ),
        ));
    }
    let version = r.read_u32("format version")?;
    if version != SNAPSHOT_VERSION {
        return Err(bin_err(
            8,
            format!(
                "unsupported index snapshot format version {version} \
                 (this build reads version {SNAPSHOT_VERSION})"
            ),
        ));
    }
    let entry_count = r.read_u64("entry count")?;
    let n = usize::try_from(entry_count).map_err(|_| {
        bin_err(
            12,
            format!("entry count {entry_count} overflows this target"),
        )
    })?;
    let section_count = r.read_u64("section count")?;
    if section_count != SECTION_COUNT as u64 {
        return Err(bin_err(
            20,
            format!("expected {SECTION_COUNT} sections, header says {section_count}"),
        ));
    }
    let checksum = r.read_u64("header checksum")?;
    let mut table_bytes = vec![0u8; SECTION_COUNT * 16];
    r.read_exact(&mut table_bytes, "section table")?;
    let actual = binio::fnv1a64(&table_bytes);
    if actual != checksum {
        return Err(bin_err(
            28,
            format!(
                "header checksum mismatch (stored {checksum:#018x}, \
                 computed {actual:#018x}) — snapshot is corrupt"
            ),
        ));
    }
    let mut sections = Vec::with_capacity(SECTION_COUNT);
    {
        let mut t = table_bytes.as_slice();
        for _ in 0..SECTION_COUNT {
            let offset = binio::read_u64(&mut t).expect("table sized above");
            let len = binio::read_u64(&mut t).expect("table sized above");
            sections.push((offset, len));
        }
    }
    // the layout is gap-free and ascending — required for streamed reads
    let header_len = 36u64 + (SECTION_COUNT as u64) * 16;
    let mut expected_offset = header_len;
    for (i, &(offset, len)) in sections.iter().enumerate() {
        if offset != expected_offset {
            return Err(bin_err(
                36,
                format!(
                    "section {} ({}) starts at {offset}, expected {expected_offset} \
                     (sections must be contiguous and ascending)",
                    i, SECTION_NAMES[i]
                ),
            ));
        }
        expected_offset = offset.checked_add(len).ok_or_else(|| {
            bin_err(
                36,
                format!("section {} ({}) length overflows", i, SECTION_NAMES[i]),
            )
        })?;
    }

    // a column whose byte length disagrees with the entry count (or the
    // entry_lens totals) is structural corruption — reject it by name
    let expect_len = |sec: usize, want: u64, r: &CountingReader<R>| -> Result<(), TsError> {
        let (offset, got) = sections[sec];
        if got != want {
            return Err(TsError::SnapshotDecode {
                format: "binary-v2",
                offset: Some(offset),
                context: format!(
                    "section `{}` holds {got} bytes but the entry count \
                     ({n}) implies {want} — column lengths disagree",
                    SECTION_NAMES[sec]
                ),
            });
        }
        let _ = r;
        Ok(())
    };

    // ---- sections, in table order ---------------------------------------
    let config_len = usize::try_from(sections[SEC_CONFIG_JSON].1).map_err(|_| {
        bin_err(
            sections[SEC_CONFIG_JSON].0,
            "config blob overflows".to_string(),
        )
    })?;
    let mut config_bytes = vec![0u8; config_len];
    r.read_exact(&mut config_bytes, "config_json section")?;
    let config_text = std::str::from_utf8(&config_bytes).map_err(|e| {
        bin_err(
            sections[SEC_CONFIG_JSON].0 + e.valid_up_to() as u64,
            "config blob is not UTF-8",
        )
    })?;
    let config: IndexConfig = serde_json::from_str(config_text)
        .map_err(|e| bin_err(sections[SEC_CONFIG_JSON].0, format!("decoding config: {e}")))?;

    expect_len(SEC_ENTRY_LENS, 8 * entry_count, &r)?;
    let entry_lens_raw = r.read_u64_column(n, "entry_lens column")?;
    let mut entry_lens = Vec::with_capacity(n);
    let mut total_samples = 0u64;
    for (i, &len) in entry_lens_raw.iter().enumerate() {
        let l = usize::try_from(len)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| {
                bin_err(
                    sections[SEC_ENTRY_LENS].0 + 8 * i as u64,
                    format!("entry {i} has invalid length {len}"),
                )
            })?;
        total_samples = total_samples.checked_add(len).ok_or_else(|| {
            bin_err(
                sections[SEC_ENTRY_LENS].0,
                "total sample count overflows".to_string(),
            )
        })?;
        entry_lens.push(l);
    }
    let total = usize::try_from(total_samples).map_err(|_| {
        bin_err(
            sections[SEC_ENTRY_LENS].0,
            "total sample count overflows".to_string(),
        )
    })?;
    // coarse columns are present exactly when the config enables the
    // PAA stage; their per-entry segment counts derive from entry_lens
    let coarse_segments: usize = if config.paa_width >= 2 {
        entry_lens
            .iter()
            .map(|&l| l.div_ceil(config.paa_width))
            .sum()
    } else {
        0
    };

    expect_len(SEC_LABELS, 8 * entry_count, &r)?;
    let labels = r.read_u64_column(n, "labels column")?;
    expect_len(SEC_IDS, 16 * entry_count, &r)?;
    let ids = r.read_u64_column(2 * n, "ids column")?;
    expect_len(SEC_SAMPLES, 8 * total_samples, &r)?;
    let samples = r.read_f64_column(total, "samples column")?;
    expect_len(SEC_ENV_RADII, 8 * entry_count, &r)?;
    let env_radii = r.read_u64_column(n, "env_radii column")?;
    expect_len(SEC_ENV_UPPER, 8 * total_samples, &r)?;
    let env_upper = r.read_f64_column(total, "env_upper column")?;
    expect_len(SEC_ENV_LOWER, 8 * total_samples, &r)?;
    let env_lower = r.read_f64_column(total, "env_lower column")?;
    expect_len(SEC_SUM_FIRST, 8 * entry_count, &r)?;
    let sum_first = r.read_f64_column(n, "sum_first column")?;
    expect_len(SEC_SUM_LAST, 8 * entry_count, &r)?;
    let sum_last = r.read_f64_column(n, "sum_last column")?;
    expect_len(SEC_SUM_MIN, 8 * entry_count, &r)?;
    let sum_min = r.read_f64_column(n, "sum_min column")?;
    expect_len(SEC_SUM_MAX, 8 * entry_count, &r)?;
    let sum_max = r.read_f64_column(n, "sum_max column")?;
    expect_len(SEC_COARSE_UPPER, 8 * coarse_segments as u64, &r)?;
    let coarse_upper = r.read_f64_column(coarse_segments, "coarse_upper column")?;
    expect_len(SEC_COARSE_LOWER, 8 * coarse_segments as u64, &r)?;
    let coarse_lower = r.read_f64_column(coarse_segments, "coarse_lower column")?;

    let features_len = usize::try_from(sections[SEC_FEATURES_JSON].1).map_err(|_| {
        bin_err(
            sections[SEC_FEATURES_JSON].0,
            "features blob overflows".to_string(),
        )
    })?;
    let mut features_bytes = vec![0u8; features_len];
    r.read_exact(&mut features_bytes, "features_json section")?;
    let features_text = std::str::from_utf8(&features_bytes).map_err(|e| {
        bin_err(
            sections[SEC_FEATURES_JSON].0 + e.valid_up_to() as u64,
            "features blob is not UTF-8",
        )
    })?;
    let features: Vec<Vec<SalientFeature>> = serde_json::from_str(features_text).map_err(|e| {
        bin_err(
            sections[SEC_FEATURES_JSON].0,
            format!("decoding features: {e}"),
        )
    })?;
    if features.len() != n {
        return Err(bin_err(
            sections[SEC_FEATURES_JSON].0,
            format!(
                "features blob holds {} entries but the entry count is {n}",
                features.len()
            ),
        ));
    }

    // ---- per-entry reassembly from the columns ---------------------------
    let mut entries = Vec::with_capacity(n);
    let mut sample_at = 0usize;
    let mut coarse_at = 0usize;
    for (i, (len, feats)) in entry_lens.iter().copied().zip(features).enumerate() {
        let values = samples[sample_at..sample_at + len].to_vec();
        let mut series = TimeSeries::new(values).map_err(|e| {
            bin_err(
                sections[SEC_SAMPLES].0 + 8 * sample_at as u64,
                format!("entry {i}: {e}"),
            )
        })?;
        if labels[i] != NO_LABEL {
            let label = u32::try_from(labels[i]).map_err(|_| {
                bin_err(
                    sections[SEC_LABELS].0 + 8 * i as u64,
                    format!("entry {i}: label {} overflows u32", labels[i]),
                )
            })?;
            series = series.labeled(label);
        }
        if ids[2 * i] != 0 {
            series = series.identified(ids[2 * i + 1]);
        }
        let radius = usize::try_from(env_radii[i]).map_err(|_| {
            bin_err(
                sections[SEC_ENV_RADII].0 + 8 * i as u64,
                format!("entry {i}: envelope radius overflows"),
            )
        })?;
        let envelope = Envelope {
            upper: env_upper[sample_at..sample_at + len].to_vec(),
            lower: env_lower[sample_at..sample_at + len].to_vec(),
            radius,
        };
        let summary = SeriesSummary {
            first: sum_first[i],
            last: sum_last[i],
            min: sum_min[i],
            max: sum_max[i],
            len,
        };
        let coarse = if config.paa_width >= 2 {
            let segments = len.div_ceil(config.paa_width);
            let c = CoarseEnvelope::from_parts(
                coarse_upper[coarse_at..coarse_at + segments].to_vec(),
                coarse_lower[coarse_at..coarse_at + segments].to_vec(),
                config.paa_width,
                len,
                radius,
            )
            .map_err(|e| {
                bin_err(
                    sections[SEC_COARSE_UPPER].0 + 8 * coarse_at as u64,
                    format!("entry {i}: {e}"),
                )
            })?;
            coarse_at += segments;
            Some(c)
        } else {
            None
        };
        sample_at += len;
        entries.push(IndexEntry {
            series,
            envelope,
            summary,
            features: feats,
            coarse,
        });
    }

    SdtwIndex::from_snapshot_parts(config, entries, "binary-v2")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus(n_entries: usize, len: usize) -> Vec<TimeSeries> {
        (0..n_entries)
            .map(|k| {
                TimeSeries::new(
                    (0..len)
                        .map(|i| ((i as f64) / 7.0 + k as f64 * 0.9).sin())
                        .collect(),
                )
                .unwrap()
                .labeled((k % 3) as u32)
                .identified(k as u64)
            })
            .collect()
    }

    #[test]
    fn binary_round_trip_preserves_every_artefact() {
        let index = SdtwIndex::build(&corpus(9, 41), IndexConfig::exact_banded(0.2)).unwrap();
        let bytes = SnapshotCodec::encode(&index, SnapshotFormat::BinaryV2).unwrap();
        assert_eq!(&bytes[..8], &SNAPSHOT_MAGIC);
        let back = SnapshotCodec::decode(&bytes).unwrap();
        assert_eq!(back.entries(), index.entries());
        assert_eq!(back.config(), index.config());
        // and the re-encoding is a byte-for-byte fixed point
        let again = SnapshotCodec::encode(&back, SnapshotFormat::BinaryV2).unwrap();
        assert_eq!(bytes, again);
    }

    #[test]
    fn json_and_binary_decode_to_identical_indexes() {
        let index = SdtwIndex::build(&corpus(7, 30), IndexConfig::default()).unwrap();
        let json = SnapshotCodec::encode(&index, SnapshotFormat::Json).unwrap();
        let bin = SnapshotCodec::encode(&index, SnapshotFormat::BinaryV2).unwrap();
        assert_eq!(SnapshotFormat::detect(&json), Some(SnapshotFormat::Json));
        assert_eq!(SnapshotFormat::detect(&bin), Some(SnapshotFormat::BinaryV2));
        let from_json = SnapshotCodec::decode(&json).unwrap();
        let from_bin = SnapshotCodec::decode(&bin).unwrap();
        assert_eq!(from_json.entries(), from_bin.entries());
        assert_eq!(from_json.config(), from_bin.config());
    }

    #[test]
    fn streamed_decode_matches_buffered_decode() {
        let index = SdtwIndex::build(&corpus(5, 27), IndexConfig::exact_banded(0.15)).unwrap();
        for format in [SnapshotFormat::Json, SnapshotFormat::BinaryV2] {
            let bytes = SnapshotCodec::encode(&index, format).unwrap();
            let streamed = SnapshotCodec::decode_reader(bytes.as_slice()).unwrap();
            assert_eq!(streamed.entries(), index.entries(), "{:?}", format);
        }
    }

    #[test]
    fn corrupted_table_is_caught_by_the_checksum() {
        let index = SdtwIndex::build(&corpus(4, 20), IndexConfig::exact_banded(0.2)).unwrap();
        let mut bytes = SnapshotCodec::encode(&index, SnapshotFormat::BinaryV2).unwrap();
        bytes[40] ^= 0xff; // inside the section table
        let err = SnapshotCodec::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn truncated_snapshot_reports_the_failing_offset() {
        let index = SdtwIndex::build(&corpus(4, 20), IndexConfig::exact_banded(0.2)).unwrap();
        let bytes = SnapshotCodec::encode(&index, SnapshotFormat::BinaryV2).unwrap();
        let err = SnapshotCodec::decode(&bytes[..bytes.len() / 2]).unwrap_err();
        match err {
            TsError::SnapshotDecode { format, offset, .. } => {
                assert_eq!(format, "binary-v2");
                assert!(offset.is_some());
            }
            other => panic!("expected SnapshotDecode, got {other}"),
        }
    }

    #[test]
    fn column_length_disagreement_is_rejected_by_name() {
        let index = SdtwIndex::build(&corpus(4, 20), IndexConfig::exact_banded(0.2)).unwrap();
        let mut bytes = SnapshotCodec::encode(&index, SnapshotFormat::BinaryV2).unwrap();
        // lower the entry count without touching the (checksummed) table:
        // columns now hold more bytes than the count implies
        bytes[12] -= 1;
        let err = SnapshotCodec::decode(&bytes).unwrap_err().to_string();
        assert!(
            err.contains("disagree") || err.contains("entries"),
            "got: {err}"
        );
    }

    #[test]
    fn neither_format_is_a_clear_error() {
        let err = SnapshotCodec::decode(b"PK\x03\x04zipfile").unwrap_err();
        assert!(matches!(err, TsError::SnapshotDecode { .. }), "{err}");
        assert_eq!(SnapshotFormat::detect(b""), None);
        assert_eq!(SnapshotFormat::detect(b"   [1,2]"), None);
    }
}
