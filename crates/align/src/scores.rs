//! Pair scoring: `µ_align`, `µ_sim`, `µ_comb` (paper §3.2.2, step 1).

use sdtw_salient::SalientFeature;

/// Alignment score: prefers pairs of *large* features whose centres sit
/// *close* in time —
/// `µ_align = ((scope(f_i) + scope(f_j)) / 2) / (1 + |center(f_i) − center(f_j)|)`.
pub fn mu_align(fi: &SalientFeature, fj: &SalientFeature) -> f64 {
    let scopes = (fi.scope_len + fj.scope_len) / 2.0;
    scopes / (1.0 + (fi.center() - fj.center()).abs())
}

/// Descriptor similarity: the paper speaks of a descriptor "matching
/// score"; we define it as `1 / (1 + ‖d_i − d_j‖₂)` so that *higher is more
/// similar* and the score is bounded in `(0, 1]` (see DESIGN.md §5).
pub fn descriptor_similarity(fi: &SalientFeature, fj: &SalientFeature) -> f64 {
    let dist = sdtw_tseries::metric::euclidean(&fi.descriptor, &fj.descriptor);
    1.0 / (1.0 + dist)
}

/// Percentage amplitude difference of the two features' scope means,
/// clamped to `[0, 1]`:
/// `Δ_amp = |a_i − a_j| / max(|a_i|, |a_j|)` (0 when both are ~zero).
pub fn delta_amp(fi: &SalientFeature, fj: &SalientFeature) -> f64 {
    let denom = fi.amplitude.abs().max(fj.amplitude.abs());
    if denom < 1e-12 {
        return 0.0;
    }
    ((fi.amplitude - fj.amplitude).abs() / denom).min(1.0)
}

/// Similarity score of a pair, given the minimum descriptor similarity
/// among all matched pairs:
/// `µ_sim = (µ_desc / µ_desc,min) × (1 − Δ_amp)`.
pub fn mu_sim(fi: &SalientFeature, fj: &SalientFeature, mu_desc_min: f64) -> f64 {
    let mu_desc = descriptor_similarity(fi, fj);
    let denom = if mu_desc_min > 0.0 { mu_desc_min } else { 1.0 };
    (mu_desc / denom) * (1.0 - delta_amp(fi, fj))
}

/// F-measure combination of two already-normalised scores (both in
/// `[0, 1]`): `2ab / (a + b)`, 0 when both are 0 — "requires both alignment
/// and similarity scores to be high for a high combined score".
pub fn f_measure(a: f64, b: f64) -> f64 {
    if a + b <= 0.0 {
        0.0
    } else {
        2.0 * a * b / (a + b)
    }
}

/// Computes `µ_comb` for every pair: raw `µ_align`/`µ_sim` are first
/// normalised by their maxima over the pair set (the paper's `ns` scores),
/// then combined with the F-measure. Returns one score per input pair.
pub fn combined_scores(pairs: &[(f64, f64)]) -> Vec<f64> {
    let max_a = pairs.iter().map(|p| p.0).fold(0.0f64, f64::max);
    let max_s = pairs.iter().map(|p| p.1).fold(0.0f64, f64::max);
    pairs
        .iter()
        .map(|&(a, s)| {
            let na = if max_a > 0.0 { a / max_a } else { 0.0 };
            let ns = if max_s > 0.0 { s / max_s } else { 0.0 };
            f_measure(na, ns)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdtw_salient::{Keypoint, Polarity};

    fn feat(
        position: usize,
        scope_len: f64,
        amplitude: f64,
        descriptor: Vec<f64>,
    ) -> SalientFeature {
        SalientFeature {
            keypoint: Keypoint {
                position,
                octave_position: position,
                octave: 0,
                level: 1,
                sigma: scope_len / 6.0,
                response: 0.5,
                polarity: Polarity::Peak,
            },
            scope_start: position.saturating_sub(scope_len as usize / 2),
            scope_end: position + scope_len as usize / 2,
            scope_len,
            amplitude,
            descriptor,
        }
    }

    #[test]
    fn mu_align_prefers_close_large_pairs() {
        let big_close_a = feat(100, 20.0, 1.0, vec![1.0]);
        let big_close_b = feat(102, 20.0, 1.0, vec![1.0]);
        let small_far_a = feat(100, 4.0, 1.0, vec![1.0]);
        let small_far_b = feat(160, 4.0, 1.0, vec![1.0]);
        assert!(mu_align(&big_close_a, &big_close_b) > mu_align(&small_far_a, &small_far_b));
    }

    #[test]
    fn mu_align_exact_value() {
        let a = feat(10, 8.0, 1.0, vec![1.0]);
        let b = feat(14, 12.0, 1.0, vec![1.0]);
        // ((8+12)/2) / (1 + 4) = 10 / 5 = 2
        assert!((mu_align(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn descriptor_similarity_bounds() {
        let a = feat(0, 6.0, 1.0, vec![1.0, 0.0]);
        let same = feat(0, 6.0, 1.0, vec![1.0, 0.0]);
        let far = feat(0, 6.0, 1.0, vec![0.0, 9.0]);
        assert_eq!(descriptor_similarity(&a, &same), 1.0);
        let s = descriptor_similarity(&a, &far);
        assert!(s > 0.0 && s < 0.2);
    }

    #[test]
    fn delta_amp_behaviour() {
        let a = feat(0, 6.0, 1.0, vec![1.0]);
        let b = feat(0, 6.0, 1.0, vec![1.0]);
        assert_eq!(delta_amp(&a, &b), 0.0);
        let c = feat(0, 6.0, 2.0, vec![1.0]);
        assert!((delta_amp(&a, &c) - 0.5).abs() < 1e-12);
        let z1 = feat(0, 6.0, 0.0, vec![1.0]);
        let z2 = feat(0, 6.0, 0.0, vec![1.0]);
        assert_eq!(delta_amp(&z1, &z2), 0.0);
        // opposite signs saturate at 1
        let n = feat(0, 6.0, -3.0, vec![1.0]);
        assert_eq!(delta_amp(&c, &n), 1.0);
    }

    #[test]
    fn mu_sim_scales_by_minimum_and_amp() {
        let a = feat(0, 6.0, 1.0, vec![1.0, 0.0]);
        let b = feat(0, 6.0, 1.0, vec![1.0, 0.0]);
        // identical descriptors, identical amplitude, min = own similarity
        assert!((mu_sim(&a, &b, 1.0) - 1.0).abs() < 1e-12);
        // halved amplitude ratio halves the score
        let c = feat(0, 6.0, 2.0, vec![1.0, 0.0]);
        assert!((mu_sim(&a, &c, 1.0) - 0.5).abs() < 1e-12);
        // degenerate min falls back to 1.0 divisor
        assert!(mu_sim(&a, &b, 0.0).is_finite());
    }

    #[test]
    fn f_measure_requires_both_high() {
        assert_eq!(f_measure(0.0, 1.0), 0.0);
        assert_eq!(f_measure(1.0, 1.0), 1.0);
        assert!((f_measure(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(f_measure(0.0, 0.0), 0.0);
    }

    #[test]
    fn combined_scores_normalise_by_max() {
        let scores = combined_scores(&[(2.0, 4.0), (1.0, 4.0), (2.0, 2.0)]);
        // pair 0: (1.0, 1.0) -> 1.0
        assert!((scores[0] - 1.0).abs() < 1e-12);
        // pair 1: (0.5, 1.0) -> 2/3
        assert!((scores[1] - 2.0 / 3.0).abs() < 1e-12);
        // pair 2: (1.0, 0.5) -> 2/3
        assert!((scores[2] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn combined_scores_handle_empty_and_zero() {
        assert!(combined_scores(&[]).is_empty());
        let s = combined_scores(&[(0.0, 0.0)]);
        assert_eq!(s[0], 0.0);
    }
}
