//! Temporal inconsistency pruning (paper §3.2.2, step 2).
//!
//! The sDTW transformation model assumes time may be stretched but feature
//! *order* is preserved, so matched pairs whose scopes are ordered
//! differently in the two series must be discarded. Pairs are considered in
//! descending combined-score order (a conflict then always evicts the
//! weaker pair); a pair is committed only when the **ranks** of its scope
//! start and end agree in the time-ordered boundary lists of both series.
//! Equal time values are the paper's footnoted special case and are
//! accepted: rank equality is tested as *rank-interval overlap*, where the
//! interval spans ties.

use crate::matcher::MatchedPair;

/// Sorted boundary list with rank queries that treat ties as a rank
/// interval.
#[derive(Debug, Default)]
struct BoundaryList {
    times: Vec<usize>, // sorted
}

impl BoundaryList {
    /// `[lower_bound, upper_bound]` rank interval of `t`: the number of
    /// committed boundaries strictly before `t`, and the number at or
    /// before `t`. Any rank in that interval is a legal insertion rank.
    fn rank_interval(&self, t: usize) -> (usize, usize) {
        let lb = self.times.partition_point(|&x| x < t);
        let ub = self.times.partition_point(|&x| x <= t);
        (lb, ub)
    }

    fn insert(&mut self, t: usize) {
        let pos = self.times.partition_point(|&x| x <= t);
        self.times.insert(pos, t);
    }
}

/// Whether two rank intervals admit a common rank.
#[inline]
fn overlaps(a: (usize, usize), b: (usize, usize)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// Prunes temporally inconsistent pairs. Returns the surviving pairs in
/// descending combined-score order (the commitment order, which examples
/// print to mirror the paper's Figure 7(c)).
pub fn prune_inconsistent(pairs: &[MatchedPair]) -> Vec<MatchedPair> {
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_by(|&a, &b| {
        pairs[b]
            .combined_score
            .partial_cmp(&pairs[a].combined_score)
            .expect("scores are finite")
    });

    let mut list1 = BoundaryList::default();
    let mut list2 = BoundaryList::default();
    let mut kept = Vec::new();

    for &k in &order {
        let p = &pairs[k];
        let (st1, end1) = p.scope1;
        let (st2, end2) = p.scope2;
        // Rank agreement for the start and for the end boundary. The end
        // boundary additionally counts its own start (st <= end in both
        // series adds one boundary below the end on each side, so the
        // offset cancels; committed boundaries are what the intervals
        // measure).
        let st_ok = overlaps(list1.rank_interval(st1), list2.rank_interval(st2));
        let end_ok = overlaps(list1.rank_interval(end1), list2.rank_interval(end2));
        // The pair's own scopes must also relate consistently to each
        // other: st's rank interval must not be entirely above end's
        // (always true since st <= end).
        if st_ok && end_ok {
            list1.insert(st1);
            list1.insert(end1);
            list2.insert(st2);
            list2.insert(end2);
            kept.push(p.clone());
        }
    }
    kept
}

/// Extracts the committed boundary times of the kept pairs, sorted, for
/// each series. Both lists always have the same length (two boundaries per
/// kept pair).
pub fn committed_boundaries(kept: &[MatchedPair]) -> (Vec<usize>, Vec<usize>) {
    let mut b1 = Vec::with_capacity(kept.len() * 2);
    let mut b2 = Vec::with_capacity(kept.len() * 2);
    for p in kept {
        b1.push(p.scope1.0);
        b1.push(p.scope1.1);
        b2.push(p.scope2.0);
        b2.push(p.scope2.1);
    }
    b1.sort_unstable();
    b2.sort_unstable();
    (b1, b2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(scope1: (usize, usize), scope2: (usize, usize), score: f64) -> MatchedPair {
        MatchedPair {
            idx1: 0,
            idx2: 0,
            desc_distance: 0.0,
            combined_score: score,
            scope1,
            scope2,
        }
    }

    #[test]
    fn keeps_consistent_pairs() {
        let pairs = vec![
            pair((0, 10), (5, 15), 1.0),
            pair((20, 30), (25, 40), 0.9),
            pair((50, 60), (70, 90), 0.8),
        ];
        let kept = prune_inconsistent(&pairs);
        assert_eq!(kept.len(), 3);
    }

    #[test]
    fn drops_crossing_pair() {
        // pair B's scope precedes A's in series 1 but follows it in series 2
        let pairs = vec![pair((40, 50), (10, 20), 1.0), pair((10, 20), (40, 50), 0.5)];
        let kept = prune_inconsistent(&pairs);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].scope1, (40, 50), "higher score wins");
    }

    #[test]
    fn commitment_order_is_score_descending() {
        let pairs = vec![pair((10, 20), (10, 20), 0.2), pair((40, 50), (40, 50), 0.9)];
        let kept = prune_inconsistent(&pairs);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].combined_score, 0.9);
    }

    #[test]
    fn interleaved_scopes_are_rejected() {
        // A committed: scope1 (10,30), scope2 (10,30).
        // Candidate: starts before A's start in series1 (st=5) but after
        // A's start in series2 (st=15): rank mismatch, dropped.
        let pairs = vec![pair((10, 30), (10, 30), 1.0), pair((5, 40), (15, 40), 0.5)];
        let kept = prune_inconsistent(&pairs);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn equal_time_values_are_the_confirmed_special_case() {
        // Candidate start coincides exactly with a committed boundary in
        // series 1 (tie) while sitting strictly between boundaries in
        // series 2 — the rank interval of the tie spans both ranks, so the
        // pair is accepted, as the paper's footnote prescribes.
        let pairs = vec![pair((10, 30), (10, 30), 1.0), pair((10, 35), (12, 35), 0.5)];
        let kept = prune_inconsistent(&pairs);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn nested_vs_disjoint_ordering() {
        // A committed (10,50)/(10,50); candidate fully nested on one side
        // but disjoint-after on the other must be dropped.
        let pairs = vec![pair((10, 50), (10, 50), 1.0), pair((20, 30), (60, 70), 0.5)];
        let kept = prune_inconsistent(&pairs);
        assert_eq!(kept.len(), 1);
        // nested on both sides is consistent
        let pairs = vec![pair((10, 50), (10, 50), 1.0), pair((20, 30), (25, 35), 0.5)];
        let kept = prune_inconsistent(&pairs);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(prune_inconsistent(&[]).is_empty());
    }

    #[test]
    fn committed_boundaries_are_sorted_and_paired() {
        let pairs = vec![pair((20, 30), (25, 40), 0.9), pair((0, 10), (5, 15), 1.0)];
        let kept = prune_inconsistent(&pairs);
        let (b1, b2) = committed_boundaries(&kept);
        assert_eq!(b1, vec![0, 10, 20, 30]);
        assert_eq!(b2, vec![5, 15, 25, 40]);
        assert_eq!(b1.len(), b2.len());
    }

    #[test]
    fn no_crossings_survive_on_random_like_input() {
        // Deterministic pseudo-random pairs; verify the invariant that the
        // kept set's boundary orderings agree rank-by-rank.
        let mut pairs = Vec::new();
        let mut s = 42u64;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (s >> 33) as usize
        };
        for k in 0..40 {
            let a = next() % 200;
            let b = a + 1 + next() % 40;
            let c = next() % 200;
            let d = c + 1 + next() % 40;
            pairs.push(pair((a, b), (c, d), 1.0 / (k + 1) as f64));
        }
        let kept = prune_inconsistent(&pairs);
        let (b1, b2) = committed_boundaries(&kept);
        assert_eq!(b1.len(), b2.len());
        // Rank-by-rank consistency: sorting both lists and walking kept
        // pairs, each pair's boundaries must occupy compatible ranks.
        for p in &kept {
            let r1 = b1.partition_point(|&x| x < p.scope1.0);
            let r1u = b1.partition_point(|&x| x <= p.scope1.0);
            let r2 = b2.partition_point(|&x| x < p.scope2.0);
            let r2u = b2.partition_point(|&x| x <= p.scope2.0);
            assert!(
                r1 <= r2u && r2 <= r1u,
                "start boundary ranks diverge: [{r1},{r1u}] vs [{r2},{r2u}]"
            );
        }
    }
}
