//! Dominant pair identification (paper §3.2.1) and the top-level matching
//! entry point.

use crate::config::MatchConfig;
use crate::interval::IntervalPartition;
use crate::prune::prune_inconsistent;
use crate::scores::{combined_scores, mu_align, mu_sim};
use sdtw_salient::SalientFeature;
use sdtw_tseries::metric::euclidean;
use serde::{Deserialize, Serialize};

/// A matched pair of salient features (indices into the two feature
/// slices) plus its scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchedPair {
    /// Index of the feature in the first series' feature slice.
    pub idx1: usize,
    /// Index of the feature in the second series' feature slice.
    pub idx2: usize,
    /// Euclidean distance between the descriptors.
    pub desc_distance: f64,
    /// Combined score `µ_comb` (filled by the scoring pass).
    pub combined_score: f64,
    /// Scope `[start, end]` of the first feature (samples of series 1).
    pub scope1: (usize, usize),
    /// Scope `[start, end]` of the second feature (samples of series 2).
    pub scope2: (usize, usize),
}

/// Full output of feature matching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchResult {
    /// Pairs surviving the dominance test, before inconsistency pruning —
    /// the state of the paper's Figure 7(a).
    pub raw_pairs: Vec<MatchedPair>,
    /// Pairs surviving inconsistency pruning — Figure 7(c).
    pub consistent_pairs: Vec<MatchedPair>,
    /// The interval partition induced by the committed scope boundaries —
    /// Figure 9.
    pub partition: IntervalPartition,
    /// Number of descriptor comparisons performed (`|S_X| × |S_Y|` work
    /// term of the paper's complexity analysis, §3.4).
    pub descriptor_comparisons: usize,
}

/// Checks the `τ_a` / `τ_s` screens for a candidate pair.
fn passes_screens(f1: &SalientFeature, f2: &SalientFeature, cfg: &MatchConfig) -> bool {
    if let Some(tau_a) = cfg.tau_a {
        if (f1.amplitude - f2.amplitude).abs() >= tau_a {
            return false;
        }
    }
    if let Some(tau_s) = cfg.tau_s {
        let (a, b) = (f1.keypoint.sigma, f2.keypoint.sigma);
        let ratio = if a > b { a / b } else { b / a };
        if ratio >= tau_s {
            return false;
        }
    }
    true
}

/// Dominant-pair search: for each feature of series 1, the nearest
/// (descriptor-Euclidean) screened candidate of series 2 is returned iff it
/// `τ_d`-dominates every other screened candidate.
fn dominant_pairs(
    feats1: &[SalientFeature],
    feats2: &[SalientFeature],
    cfg: &MatchConfig,
) -> (Vec<MatchedPair>, usize) {
    let mut out = Vec::new();
    let mut comparisons = 0usize;
    for (i, f1) in feats1.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        let mut second_best = f64::INFINITY;
        for (j, f2) in feats2.iter().enumerate() {
            if !passes_screens(f1, f2, cfg) {
                continue;
            }
            comparisons += 1;
            let d = euclidean(&f1.descriptor, &f2.descriptor);
            match best {
                None => best = Some((j, d)),
                Some((_, bd)) if d < bd => {
                    second_best = bd;
                    best = Some((j, d));
                }
                _ => second_best = second_best.min(d),
            }
        }
        if let Some((j, d)) = best {
            // absolute "small distance" ceiling, then the dominance test:
            // best * tau_d must not exceed every other candidate's
            // distance (vacuously true with no second)
            let small_enough = cfg.max_desc_distance.is_none_or(|max| d <= max);
            if small_enough && d * cfg.tau_d <= second_best {
                out.push(MatchedPair {
                    idx1: i,
                    idx2: j,
                    desc_distance: d,
                    combined_score: 0.0,
                    scope1: (feats1[i].scope_start, feats1[i].scope_end),
                    scope2: (feats2[j].scope_start, feats2[j].scope_end),
                });
            }
        }
    }
    (out, comparisons)
}

/// Scores raw pairs in place (fills `combined_score`).
fn score_pairs(pairs: &mut [MatchedPair], feats1: &[SalientFeature], feats2: &[SalientFeature]) {
    if pairs.is_empty() {
        return;
    }
    // µ_desc,min over the matched pairs
    let mu_desc_min = pairs
        .iter()
        .map(|p| 1.0 / (1.0 + p.desc_distance))
        .fold(f64::INFINITY, f64::min);
    let raw: Vec<(f64, f64)> = pairs
        .iter()
        .map(|p| {
            let f1 = &feats1[p.idx1];
            let f2 = &feats2[p.idx2];
            (mu_align(f1, f2), mu_sim(f1, f2, mu_desc_min))
        })
        .collect();
    for (pair, score) in pairs.iter_mut().zip(combined_scores(&raw)) {
        pair.combined_score = score;
    }
}

/// The complete matching pipeline of paper §3.2: dominant pairs → scoring →
/// inconsistency pruning → interval partition. `n` and `m` are the lengths
/// of the two series (needed to close the partition at the series ends).
pub fn match_features(
    feats1: &[SalientFeature],
    feats2: &[SalientFeature],
    n: usize,
    m: usize,
    cfg: &MatchConfig,
) -> MatchResult {
    let (mut raw_pairs, descriptor_comparisons) = dominant_pairs(feats1, feats2, cfg);
    score_pairs(&mut raw_pairs, feats1, feats2);
    let consistent_pairs = prune_inconsistent(&raw_pairs);
    let partition = IntervalPartition::from_pairs(&consistent_pairs, n, m);
    MatchResult {
        raw_pairs,
        consistent_pairs,
        partition,
        descriptor_comparisons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdtw_salient::{Keypoint, Polarity};

    fn feat(position: usize, sigma: f64, amplitude: f64, descriptor: Vec<f64>) -> SalientFeature {
        let scope = (3.0 * sigma) as usize;
        SalientFeature {
            keypoint: Keypoint {
                position,
                octave_position: position,
                octave: 0,
                level: 1,
                sigma,
                response: 0.5,
                polarity: Polarity::Peak,
            },
            scope_start: position.saturating_sub(scope),
            scope_end: position + scope,
            scope_len: 6.0 * sigma + 1.0,
            amplitude,
            descriptor,
        }
    }

    #[test]
    fn matches_identical_features() {
        let f1 = vec![feat(10, 2.0, 1.0, vec![1.0, 0.0, 0.0])];
        let f2 = vec![feat(12, 2.0, 1.0, vec![1.0, 0.0, 0.0])];
        let r = match_features(&f1, &f2, 100, 100, &MatchConfig::default());
        assert_eq!(r.raw_pairs.len(), 1);
        assert_eq!(r.raw_pairs[0].idx1, 0);
        assert_eq!(r.raw_pairs[0].idx2, 0);
        assert_eq!(r.raw_pairs[0].desc_distance, 0.0);
        assert_eq!(r.descriptor_comparisons, 1);
    }

    #[test]
    fn dominance_test_rejects_ambiguous_matches() {
        let f1 = vec![feat(10, 2.0, 1.0, vec![1.0, 0.0])];
        // two nearly identical candidates: neither dominates
        let f2 = vec![
            feat(10, 2.0, 1.0, vec![0.95, 0.0]),
            feat(60, 2.0, 1.0, vec![0.94, 0.0]),
        ];
        let cfg = MatchConfig {
            tau_d: 1.5,
            ..Default::default()
        };
        let r = match_features(&f1, &f2, 100, 100, &cfg);
        assert!(r.raw_pairs.is_empty(), "ambiguous match must be dropped");
        // a clearly distinct second candidate lets the best one through
        let f2b = vec![
            feat(10, 2.0, 1.0, vec![1.0, 0.0]),
            feat(60, 2.0, 1.0, vec![0.0, 5.0]),
        ];
        let r = match_features(&f1, &f2b, 100, 100, &cfg);
        assert_eq!(r.raw_pairs.len(), 1);
        assert_eq!(r.raw_pairs[0].idx2, 0);
    }

    #[test]
    fn amplitude_screen_applies_when_enabled() {
        let f1 = vec![feat(10, 2.0, 1.0, vec![1.0])];
        let f2 = vec![feat(10, 2.0, 5.0, vec![1.0])];
        let off = MatchConfig {
            tau_a: None,
            ..Default::default()
        };
        assert_eq!(match_features(&f1, &f2, 50, 50, &off).raw_pairs.len(), 1);
        let on = MatchConfig {
            tau_a: Some(1.0),
            ..Default::default()
        };
        assert!(match_features(&f1, &f2, 50, 50, &on).raw_pairs.is_empty());
    }

    #[test]
    fn scale_screen_applies_when_enabled() {
        let f1 = vec![feat(10, 1.0, 1.0, vec![1.0])];
        let f2 = vec![feat(10, 8.0, 1.0, vec![1.0])];
        let on = MatchConfig {
            tau_s: Some(4.0),
            ..Default::default()
        };
        assert!(match_features(&f1, &f2, 80, 80, &on).raw_pairs.is_empty());
        let off = MatchConfig {
            tau_s: None,
            ..Default::default()
        };
        assert_eq!(match_features(&f1, &f2, 80, 80, &off).raw_pairs.len(), 1);
    }

    #[test]
    fn scores_are_filled_and_bounded() {
        let f1 = vec![
            feat(10, 2.0, 1.0, vec![1.0, 0.0]),
            feat(50, 3.0, 0.5, vec![0.0, 1.0]),
        ];
        let f2 = vec![
            feat(11, 2.0, 1.0, vec![1.0, 0.0]),
            feat(55, 3.0, 0.5, vec![0.0, 1.0]),
        ];
        let r = match_features(&f1, &f2, 100, 100, &MatchConfig::default());
        assert_eq!(r.raw_pairs.len(), 2);
        for p in &r.raw_pairs {
            assert!((0.0..=1.0).contains(&p.combined_score));
        }
        // the perfectly aligned identical pair scores at least as high
        let p0 = r.raw_pairs.iter().find(|p| p.idx1 == 0).unwrap();
        assert!(p0.combined_score > 0.5);
    }

    #[test]
    fn empty_feature_sets_produce_empty_result() {
        let r = match_features(&[], &[], 10, 10, &MatchConfig::default());
        assert!(r.raw_pairs.is_empty());
        assert!(r.consistent_pairs.is_empty());
        assert_eq!(r.descriptor_comparisons, 0);
        assert_eq!(r.partition.interval_count(), 1); // whole-series interval
    }

    #[test]
    fn comparison_counter_counts_screened_pairs_only() {
        let f1 = vec![feat(10, 1.0, 1.0, vec![1.0]), feat(20, 1.0, 9.0, vec![1.0])];
        let f2 = vec![feat(10, 1.0, 1.0, vec![1.0]), feat(20, 1.0, 9.0, vec![1.0])];
        let cfg = MatchConfig {
            tau_a: Some(0.5),
            ..Default::default()
        };
        let r = match_features(&f1, &f2, 50, 50, &cfg);
        // only amplitude-compatible combinations are compared: (0,0), (1,1)
        assert_eq!(r.descriptor_comparisons, 2);
    }

    #[test]
    fn crossing_matches_are_pruned() {
        // two features in each series, matched crosswise: distinct
        // descriptors force idx1=0 -> idx2=1 (far in time) and vice versa.
        let f1 = vec![
            feat(10, 2.0, 1.0, vec![1.0, 0.0]),
            feat(80, 2.0, 1.0, vec![0.0, 1.0]),
        ];
        let f2 = vec![
            feat(10, 2.0, 1.0, vec![0.0, 1.0]),
            feat(80, 2.0, 1.0, vec![1.0, 0.0]),
        ];
        let r = match_features(&f1, &f2, 100, 100, &MatchConfig::default());
        assert_eq!(r.raw_pairs.len(), 2, "both cross matches found");
        // inconsistency pruning must drop one of the crossing pairs
        assert_eq!(r.consistent_pairs.len(), 1);
    }
}
